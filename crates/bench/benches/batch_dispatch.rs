//! Microbenchmark: coalescing batch dispatcher vs the threaded shared-cache
//! runner, across batch sizes.
//!
//! The grid runs 8 CNRW walkers at fixed steps through (a) the threaded
//! `MultiWalkRunner` over a lock-striped `SharedOsn` — one interface call
//! per step — and (b) the `CoalescingDispatcher` over a `SimulatedBatchOsn`
//! with batch sizes 1/8/32. Batching cannot change *charged* cost (unique
//! nodes are unique nodes); what it buys is a compressed request stream —
//! the thing per-call rate limits meter — at the price of the dispatcher's
//! queue/dedup bookkeeping, which is exactly what this bench measures.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use osn_client::{BatchConfig, SharedOsn, SimulatedBatchOsn, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_graph::NodeId;
use osn_walks::{Cnrw, MultiWalkRunner, RandomWalk};

const WALKERS: usize = 8;
const STEPS_PER_WALKER: usize = 2_000;

fn batch_dispatch(c: &mut Criterion) {
    let network = Arc::new(gplus_like(Scale::Test, 2).network);
    let n = network.graph.node_count();
    let make_walker = |i: usize, backend| {
        let start = NodeId(((i * 31) % n) as u32);
        Box::new(Cnrw::with_backend(start, backend)) as Box<dyn RandomWalk + Send>
    };

    let mut group = c.benchmark_group("batch_dispatch");
    group.throughput(Throughput::Elements((WALKERS * STEPS_PER_WALKER) as u64));

    group.bench_function(BenchmarkId::from_parameter("threaded_shared"), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let client = SharedOsn::with_stripes(SimulatedOsn::new_shared(network.clone()), 16);
            MultiWalkRunner::new(WALKERS, STEPS_PER_WALKER, seed)
                .run(&client, make_walker, |v| v.index() as f64)
                .trace
                .total_steps()
        });
    });

    for &batch_size in &[1usize, 8, 32] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("coalesced_b{batch_size}")),
            |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut client = SimulatedBatchOsn::new(
                        SimulatedOsn::new_shared(network.clone()),
                        BatchConfig::new(batch_size).with_in_flight(4),
                    );
                    MultiWalkRunner::new(WALKERS, STEPS_PER_WALKER, seed)
                        .run_batched(&mut client, make_walker, |v| v.index() as f64)
                        .trace
                        .total_steps()
                });
            },
        );
    }
    group.finish();

    // One instrumented run: how much did coalescing compress the request
    // stream relative to per-step calls?
    let mut client = SimulatedBatchOsn::new(
        SimulatedOsn::new_shared(network.clone()),
        BatchConfig::new(32).with_in_flight(4),
    );
    let report = MultiWalkRunner::new(WALKERS, STEPS_PER_WALKER, 7).run_batched(
        &mut client,
        make_walker,
        |v| v.index() as f64,
    );
    let stats = client.batch_stats();
    eprintln!(
        "\ncoalescing at B=32, {WALKERS} walkers x {STEPS_PER_WALKER} steps: \
         {} charged nodes in {} batch requests ({} walker-side queries would have \
         gone to the interface uncoalesced)",
        report.interface.unique, stats.submitted, report.trace.stats.issued
    );
}

criterion_group!(benches, batch_dispatch);
criterion_main!(benches);
