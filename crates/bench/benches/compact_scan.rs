//! Microbenchmark: neighbor-read cost of the **compressed substrate**,
//! relative to the raw CSR slice.
//!
//! Four read paths over the same 20k-node Google Plus stand-in:
//!
//! * `base` — `CsrGraph::neighbors`, the uncompressed floor (a bounds
//!   check and a slice);
//! * `compact_degree` — `CompactCsr::degree`, one offset lookup plus one
//!   varint (no gap decoding): the O(1) header read walkers use to size
//!   proposal distributions;
//! * `compact_iter` — full `neighbors_iter` decode of every list, the
//!   cold-path cost per touched node;
//! * `compact_cached` — the same reads through a [`DecodeCache`], the
//!   walker-facing path where revisits hit a decoded slice.
//!
//! The gap between `base` and `compact_cached` is the per-step price
//! `fig_scale` measures end-to-end; `compact_iter` vs `compact_cached`
//! shows what the cache buys on a revisit-heavy schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use osn_datasets::{gplus_like, Scale};
use osn_graph::compact::{CompactCsr, DecodeCache};
use osn_graph::NodeId;

const SEED: u64 = 0x0C5A_5CA1;
const CACHE_SLOTS: usize = 1024;

fn neighbor_scans(c: &mut Criterion) {
    let g = gplus_like(Scale::Default, SEED).network.graph;
    let compact = CompactCsr::from_csr(&g);
    let n = g.node_count();
    let reads = 65_536usize;
    let mut group = c.benchmark_group("compact_scan");
    group.throughput(Throughput::Elements(reads as u64));
    // Cheap LCG-ish node schedule, identical across variants; its orbit is
    // much smaller than `n`, so the cached variant sees realistic revisits.
    let schedule = |mut f: Box<dyn FnMut(NodeId) -> usize + '_>| {
        let mut acc = 0usize;
        let mut v = 1usize;
        for _ in 0..reads {
            v = (v.wrapping_mul(48271)) % n;
            acc = acc.wrapping_add(f(NodeId(v as u32)));
        }
        acc
    };
    group.bench_function(BenchmarkId::new("neighbors", "base"), |b| {
        b.iter(|| schedule(Box::new(|v| g.neighbors(v).len())))
    });
    group.bench_function(BenchmarkId::new("neighbors", "compact_degree"), |b| {
        b.iter(|| schedule(Box::new(|v| compact.degree(v))))
    });
    group.bench_function(BenchmarkId::new("neighbors", "compact_iter"), |b| {
        b.iter(|| schedule(Box::new(|v| compact.neighbors_iter(v).count())))
    });
    group.bench_function(BenchmarkId::new("neighbors", "compact_cached"), |b| {
        let mut cache = DecodeCache::new(CACHE_SLOTS);
        b.iter(|| schedule(Box::new(|v| cache.neighbors(&compact, v).len())))
    });
    group.finish();
}

criterion_group!(benches, neighbor_scans);
criterion_main!(benches);
