//! Microbenchmark: end-to-end CNRW throughput over the **compressed
//! substrate** vs the plain CSR.
//!
//! Both plans walk the identical topology from the identical seed — the
//! `runner` equivalence tests pin the traces bit-for-bit — so the entire
//! gap is varint decoding behind the client's [`DecodeCache`]. This is
//! the per-step price of running a 10⁸-edge stand-in in a footprint the
//! plain CSR could never fit; `repro fig_scale` sweeps the same number
//! across tier sizes, and `repro perf` records the compact cell to
//! `BENCH_walkers.json`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use osn_bench::perf::bench_graphs;
use osn_experiments::runner::TrialPlan;
use osn_experiments::Algorithm;
use osn_graph::compact::CompactCsr;

fn compact_walk(c: &mut Criterion) {
    let steps = 20_000usize;
    let mut group = c.benchmark_group("compact_walk");
    group.throughput(Throughput::Elements(steps as u64));
    for (gname, network) in &bench_graphs() {
        let plain = TrialPlan::steps(network.clone(), steps);
        let compact = Arc::new(CompactCsr::from_csr(&network.graph));
        let packed = TrialPlan::from_compact(compact).with_max_steps(steps);
        for (label, plan) in [("plain", &plain), ("compact", &packed)] {
            group.bench_with_input(BenchmarkId::new(label, gname), plan, |b, plan| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    plan.run(&Algorithm::Cnrw, seed).len()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, compact_walk);
criterion_main!(benches);
