//! Figure 10 workload benchmark: budget-limited trials on the paper-exact
//! clustered graph (cliques 10/30/50). Low conductance makes these the
//! longest traces per unique query — the stress case for the walk driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use osn_datasets::clustered_graph;
use osn_experiments::runner::TrialPlan;
use osn_experiments::Algorithm;

fn fig10_trial(c: &mut Criterion) {
    let network = Arc::new(clustered_graph().network);
    let mut group = c.benchmark_group("fig10_trial");
    for alg in Algorithm::srw_family_set() {
        for budget in [40u64, 80] {
            let plan = TrialPlan::budgeted(network.clone(), budget);
            group.bench_with_input(BenchmarkId::new(alg.label(), budget), &plan, |b, plan| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    plan.run(&alg, seed).len()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig10_trial);
criterion_main!(benches);
