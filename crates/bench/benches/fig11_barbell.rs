//! Figure 11 / Theorem 3 workload benchmark: barbell escape trials across
//! graph sizes for SRW and CNRW.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use osn_datasets::barbell_graph_sized;
use osn_graph::NodeId;
use osn_walks::{Cnrw, RandomWalk, Srw};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn escape_steps(
    network: &Arc<osn_graph::attributes::AttributedGraph>,
    mut walker: Box<dyn RandomWalk>,
    bell: usize,
    seed: u64,
) -> usize {
    let mut client = osn_client::SimulatedOsn::new_shared(network.clone());
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    for s in 1..=100_000usize {
        let v = walker.step(&mut client, &mut rng).expect("no budget");
        if v.index() >= bell {
            return s;
        }
    }
    100_000
}

fn fig11_escape(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_escape");
    for bell in [10usize, 20] {
        let network = Arc::new(barbell_graph_sized(bell, bell).network);
        group.bench_with_input(BenchmarkId::new("SRW", bell), &network, |b, net| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                escape_steps(net, Box::new(Srw::new(NodeId(0))), bell, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("CNRW", bell), &network, |b, net| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                escape_steps(net, Box::new(Cnrw::new(NodeId(0))), bell, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig11_escape);
criterion_main!(benches);
