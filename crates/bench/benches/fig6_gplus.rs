//! Figure 6 workload benchmark: one budget-limited estimation trial per
//! algorithm on the Google Plus stand-in.
//!
//! `repro fig6` regenerates the statistical figure; this bench tracks the
//! *cost* of producing one of its trials, which is what bounds how many
//! replications the harness can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use osn_datasets::{gplus_like, Scale};
use osn_experiments::runner::TrialPlan;
use osn_experiments::Algorithm;

fn fig6_trial(c: &mut Criterion) {
    let network = Arc::new(gplus_like(Scale::Test, 1).network);
    let mut group = c.benchmark_group("fig6_trial");
    for alg in Algorithm::figure6_set() {
        for budget in [100u64, 300] {
            let plan = TrialPlan::budgeted(network.clone(), budget);
            group.bench_with_input(BenchmarkId::new(alg.label(), budget), &plan, |b, plan| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    plan.run(&alg, seed).stats.unique
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig6_trial);
criterion_main!(benches);
