//! Figure 7 workload benchmark: the per-trial cost of the Facebook bias
//! sweep (trace + empirical distribution + estimator), and the metric
//! computations themselves (symmetric KL, ℓ2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use osn_datasets::{facebook_like, Scale};
use osn_estimate::metrics::{l2_distance, symmetric_kl, EmpiricalDistribution};
use osn_experiments::runner::TrialPlan;
use osn_experiments::Algorithm;

fn fig7_components(c: &mut Criterion) {
    let network = Arc::new(facebook_like(Scale::Default, 1).network);
    let n = network.graph.node_count();
    let target = network.graph.degree_stationary_distribution();

    let mut group = c.benchmark_group("fig7");
    group.bench_function("trial/CNRW_budget100", |b| {
        let plan = TrialPlan::budgeted(network.clone(), 100);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let trace = plan.run(&Algorithm::Cnrw, seed);
            let mut d = EmpiricalDistribution::new(n);
            d.record_all(trace.nodes());
            d.total()
        });
    });

    // Metric kernels on realistic distribution vectors.
    let mut d = EmpiricalDistribution::new(n);
    let plan = TrialPlan::budgeted(network.clone(), 140);
    for t in 0..20 {
        d.record_all(plan.run(&Algorithm::Srw, t).nodes());
    }
    let smoothed = d.probabilities_smoothed(0.5);
    let raw = d.probabilities();
    group.bench_function("metric/symmetric_kl", |b| {
        b.iter(|| symmetric_kl(&target, &smoothed))
    });
    group.bench_function("metric/l2_distance", |b| {
        b.iter(|| l2_distance(&target, &raw))
    });
    group.finish();
}

criterion_group!(benches, fig7_components);
criterion_main!(benches);
