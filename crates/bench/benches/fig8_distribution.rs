//! Figure 8 workload benchmark: one 10,000-step walk instance plus
//! distribution accumulation, for each of the three algorithms the paper
//! plots (SRW, CNRW, GNRW).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

use osn_datasets::{facebook_like, Scale};
use osn_estimate::metrics::EmpiricalDistribution;
use osn_experiments::runner::TrialPlan;
use osn_experiments::{Algorithm, GroupingSpec};

fn fig8_instance(c: &mut Criterion) {
    let network = Arc::new(facebook_like(Scale::Default, 1).network);
    let n = network.graph.node_count();
    let steps = 10_000usize;

    let mut group = c.benchmark_group("fig8_instance");
    group.throughput(Throughput::Elements(steps as u64));
    for alg in [
        Algorithm::Srw,
        Algorithm::Cnrw,
        Algorithm::Gnrw(GroupingSpec::ByDegree),
    ] {
        let plan = TrialPlan::steps(network.clone(), steps);
        group.bench_with_input(BenchmarkId::new(alg.label(), steps), &plan, |b, plan| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let trace = plan.run(&alg, seed);
                let mut d = EmpiricalDistribution::new(n);
                d.record_all(trace.nodes());
                d.total()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig8_instance);
criterion_main!(benches);
