//! Figure 9 workload benchmark: GNRW step cost per grouping strategy on the
//! Yelp stand-in — the ablation for the grouping design space (§4.1),
//! including the balanced-quantile vs value-bucketed variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

use osn_datasets::{yelp_like, Scale};
use osn_graph::NodeId;
use osn_walks::{
    ByAttribute, ByDegree, ByHash, Gnrw, RandomWalk, ValueBucketing, WalkConfig, WalkSession,
};

fn fig9_grouping(c: &mut Criterion) {
    let network = Arc::new(yelp_like(Scale::Test, 1).network);
    let steps = 10_000usize;

    type MakeStrategy = Box<dyn Fn() -> Box<dyn osn_walks::GroupingStrategy + Send>>;
    let strategies: Vec<(&str, MakeStrategy)> = vec![
        ("by_degree_quantile", Box::new(|| Box::new(ByDegree::new()))),
        ("by_degree_log2", Box::new(|| Box::new(ByDegree::log2()))),
        (
            "by_attr_quantile",
            Box::new(|| Box::new(ByAttribute::new("reviews_count"))),
        ),
        (
            "by_attr_log2",
            Box::new(|| {
                Box::new(ByAttribute::with_bucketing(
                    "reviews_count",
                    ValueBucketing::Log2,
                ))
            }),
        ),
        ("by_hash_8", Box::new(|| Box::new(ByHash::new(8)))),
    ];

    let mut group = c.benchmark_group("fig9_grouping");
    group.throughput(Throughput::Elements(steps as u64));
    for (name, make) in &strategies {
        group.bench_with_input(BenchmarkId::new("gnrw", name), name, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut client = osn_client::SimulatedOsn::new_shared(network.clone());
                let mut walker = Gnrw::new(NodeId(0), make());
                WalkSession::new(WalkConfig::steps(steps).with_seed(seed))
                    .run(&mut walker as &mut dyn RandomWalk, &mut client)
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig9_grouping);
criterion_main!(benches);
