//! Microbenchmark: scratch GNRW vs plan-backed GNRW, per degree profile.
//!
//! The plan ablation in vitro — three execution paths for the same
//! `GNRW_By_Degree` walk:
//!
//! * **scratch** — the committed-baseline path: partition `N(v)` into a
//!   hash map of groups on every historied step, two `gen_range` draws
//!   straight off the stream.
//! * **plan_exact** — precomputed [`GroupPlan`] (CSR partition, zero
//!   hashing/allocation per step) with batched draws, constrained to
//!   consume the RNG stream in scratch order (bit-identical traces).
//! * **plan_alias** — the production fast path: plan plus alias-table
//!   group proposals with rejection against the attempted/exhausted sets.
//!
//! The two dataset stand-ins are the degree profiles: facebook-like keeps
//! neighborhoods moderate (inline-friendly group sets), gplus-like's heavy
//! tail exercises wide partitions, sliced plan slots, and the alias
//! tables' rejection bound. Plans are built once per graph outside the
//! timed region — `repro perf` records the same arms (alias mode) to
//! `BENCH_walkers.json`, so regressions here show up in the committed
//! baseline too.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use osn_bench::perf::bench_graphs;
use osn_experiments::runner::TrialPlan;
use osn_experiments::{Algorithm, GroupingSpec};
use osn_walks::{HistoryBackend, PlanMode};

/// Full GNRW walks per graph: scratch vs plan-exact vs plan-alias.
fn gnrw_walks(c: &mut Criterion) {
    let graphs = bench_graphs();
    let alg = Algorithm::Gnrw(GroupingSpec::ByDegree);
    let steps = 20_000usize;

    let mut group = c.benchmark_group("gnrw_throughput");
    group.throughput(Throughput::Elements(steps as u64));
    for (gname, network) in &graphs {
        // Per-graph precomputation, shared read-only — never timed.
        let plan = Arc::new(alg.build_group_plan(network).expect("GNRW has a plan"));
        let arms: [(&str, TrialPlan); 3] = [
            (
                "scratch",
                TrialPlan::steps(network.clone(), steps).with_backend(HistoryBackend::Arena),
            ),
            (
                "plan_exact",
                TrialPlan::steps(network.clone(), steps)
                    .with_backend(HistoryBackend::Arena)
                    .with_group_plan(Arc::clone(&plan), PlanMode::Exact),
            ),
            (
                "plan_alias",
                TrialPlan::steps(network.clone(), steps)
                    .with_backend(HistoryBackend::Arena)
                    .with_group_plan(Arc::clone(&plan), PlanMode::Alias),
            ),
        ];
        for (arm, trial) in &arms {
            group.bench_with_input(BenchmarkId::new(*arm, gname), trial, |b, trial| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    trial.run(&alg, seed).len()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, gnrw_walks);
criterion_main!(benches);
