//! Microbenchmark: legacy (hash-set) vs arena (partial-Fisher–Yates)
//! circulation storage, isolated from everything else the walkers do.
//!
//! Two axes:
//!
//! * **per degree profile** — raw `EdgeHistory::draw` loops on a single hot
//!   edge whose population size sweeps from inline-friendly (4) to
//!   promotion-heavy (2048). This is the paper's §3.3 cost in vitro: the
//!   legacy backend's rejection sampling degrades to an `O(deg)` rank scan
//!   once the circulation is half-used, while the arena backend stays one
//!   `gen_range` + one swap regardless of degree or cycle position.
//! * **per graph** — full CNRW/GNRW/NB-CNRW walks over the two dataset
//!   stand-ins (facebook-like: moderate degrees; gplus-like: heavy tail),
//!   same trials as `walker_throughput` but restricted to the
//!   backend-sensitive walkers so the comparison stays front and center.
//!
//! `repro perf` runs the per-graph half of this matrix outside criterion
//! and records steps/sec to `BENCH_walkers.json` (the committed baseline
//! that `scripts/perf_check.sh` diffs against).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use osn_bench::perf::{backend_algorithms, bench_graphs};
use osn_experiments::runner::TrialPlan;
use osn_graph::NodeId;
use osn_walks::history::EdgeHistory;
use osn_walks::HistoryBackend;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Raw draw cost on one hot edge, per population size (degree profile).
fn circulation_draw(c: &mut Criterion) {
    let draws = 4096usize;
    let mut group = c.benchmark_group("circulation_draw");
    group.throughput(Throughput::Elements(draws as u64));
    for &deg in &[4usize, 32, 256, 2048] {
        let population: Vec<NodeId> = (0..deg as u32).map(NodeId).collect();
        for backend in HistoryBackend::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("deg_{deg}"), backend),
                &population,
                |b, population| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let mut rng = ChaCha12Rng::seed_from_u64(seed);
                        let mut history = EdgeHistory::with_backend(backend);
                        let (u, v) = (NodeId(0), NodeId(1));
                        let mut acc = 0u64;
                        for _ in 0..draws {
                            acc = acc.wrapping_add(u64::from(
                                history.draw(u, v, population, &mut rng).unwrap().0,
                            ));
                        }
                        acc
                    });
                },
            );
        }
    }
    group.finish();
}

/// Full history-aware walks per graph, backend-vs-backend — the same
/// (graph, algorithm) matrix `repro perf` records to `BENCH_walkers.json`,
/// imported from one definition so the two cannot drift.
fn backend_walks(c: &mut Criterion) {
    let graphs = bench_graphs();
    let algorithms = backend_algorithms();
    let steps = 20_000usize;

    let mut group = c.benchmark_group("backend_walks");
    group.throughput(Throughput::Elements(steps as u64));
    for (gname, network) in &graphs {
        for alg in &algorithms {
            for backend in HistoryBackend::ALL {
                let plan = TrialPlan::steps(network.clone(), steps).with_backend(backend);
                group.bench_with_input(
                    BenchmarkId::new(format!("{}_{gname}", alg.label()), backend),
                    &plan,
                    |b, plan| {
                        let mut seed = 0u64;
                        b.iter(|| {
                            seed += 1;
                            plan.run(alg, seed).len()
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, circulation_draw, backend_walks);
criterion_main!(benches);
