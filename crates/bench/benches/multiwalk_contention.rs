//! Microbenchmark: multi-walker throughput vs cache lock striping.
//!
//! The grid is 1/2/4/8 concurrent CNRW walkers × 1/8/64 cache stripes over
//! one seeded graph. One stripe reproduces the old single-global-mutex
//! `SharedOsn`; more stripes shrink the window in which two walkers
//! serialize on the same cache shard. The paper's cost model only counts
//! remote unique queries, but a production crawler also pays this *local*
//! contention — the bench makes it visible (steps/second, plus the
//! per-stripe contention counters printed at the end).
//!
//! Interpretation caveat: striping pays off where walkers actually run in
//! parallel. On a single-core host the OS serializes the walker threads, the
//! contention counters read ~0, and all stripe counts land within scheduler
//! noise of each other; with ≥2 cores the 1-stripe configuration serializes
//! every step on one mutex while 8/64 stripes let walkers proceed
//! independently.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use osn_client::{SharedOsn, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_graph::NodeId;
use osn_walks::{Cnrw, MultiWalkRunner, RandomWalk};

const STEPS_PER_WALKER: usize = 5_000;

fn multiwalk_contention(c: &mut Criterion) {
    let network = Arc::new(gplus_like(Scale::Test, 2).network);
    let n = network.graph.node_count();

    let mut group = c.benchmark_group("multiwalk_contention");
    for &walkers in &[1usize, 2, 4, 8] {
        for &stripes in &[1usize, 8, 64] {
            group.throughput(Throughput::Elements((walkers * STEPS_PER_WALKER) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("walkers_{walkers}"), format!("stripes_{stripes}")),
                &(walkers, stripes),
                |b, &(walkers, stripes)| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let client = SharedOsn::with_stripes(
                            SimulatedOsn::new_shared(network.clone()),
                            stripes,
                        );
                        let report = MultiWalkRunner::new(walkers, STEPS_PER_WALKER, seed).run(
                            &client,
                            |i, backend| {
                                let start = NodeId(((i * 31) % n) as u32);
                                Box::new(Cnrw::with_backend(start, backend))
                                    as Box<dyn RandomWalk + Send>
                            },
                            |v| v.index() as f64,
                        );
                        report.trace.total_steps()
                    });
                },
            );
        }
    }
    group.finish();

    // One instrumented run per config: how much lock contention did the
    // counters actually observe?
    eprintln!("\nobserved stripe contention (8 walkers, {STEPS_PER_WALKER} steps each):");
    for &stripes in &[1usize, 8, 64] {
        let client = SharedOsn::with_stripes(SimulatedOsn::new_shared(network.clone()), stripes);
        MultiWalkRunner::new(8, STEPS_PER_WALKER, 7).run(
            &client,
            |i, backend| {
                let start = NodeId(((i * 31) % n) as u32);
                Box::new(Cnrw::with_backend(start, backend)) as Box<dyn RandomWalk + Send>
            },
            |v| v.index() as f64,
        );
        let stats = client.global_stats();
        eprintln!(
            "  {stripes:>3} stripes: {:>8} contended acquisitions, hit rate {:.3}",
            client.total_contention(),
            stats.cache_hit_rate()
        );
    }
}

criterion_group!(benches, multiwalk_contention);
criterion_main!(benches);
