//! Microbenchmark: the unified orchestrator's loop overhead against
//! hand-rolled PR-4-era loops, plus the cost of an active restart policy.
//!
//! After PR 5, `WalkSession`, `MultiWalkSession`, `MultiWalkRunner`, and
//! `CoalescingDispatcher` are wrappers over one execution core
//! (`osn_walks::orchestrator`). This bench pins what that deduplication
//! costs on the hot path:
//!
//! * `handrolled_serial` — the literal pre-orchestrator `WalkSession` loop
//!   (match on `walker.step`, push to a `Vec`), inlined here as the
//!   baseline;
//! * `orchestrator_serial_never` — the same walk through
//!   `WalkOrchestrator::run_serial` under the `Never` policy (identical
//!   trace; measures cell/driver bookkeeping);
//! * `orchestrator_serial_k4_never` — 4 walkers round-robin, the active-set
//!   scheduling the serial driver adds;
//! * `orchestrator_serial_k4_steal` — the same fleet with `WorkStealing`
//!   enabled: per-step observation (window push, visited-set insert,
//!   frontier publish) plus cadence checks — the price of the policy, not
//!   of the refactor;
//! * `orchestrator_coalesced_never` — the coalesced driver at B=8 for
//!   cross-reference with the `batch_dispatch` bench.
//!
//! `scripts/perf_check.sh` tracks the serial path's steps/sec through
//! `repro perf` (the committed `BENCH_walkers.json` baseline, 15% warn
//! tolerance); this bench is the microscope for *where* any regression
//! lives.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use osn_client::{BatchConfig, SimulatedBatchOsn, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_graph::NodeId;
use osn_walks::{
    Cnrw, Never, RandomWalk, SharedFrontier, WalkOrchestrator, WalkStop, WorkStealing,
};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

const STEPS: usize = 20_000;

fn orchestrator_overhead(c: &mut Criterion) {
    let network = Arc::new(gplus_like(Scale::Test, 2).network);
    let n = network.graph.node_count();
    let make_walker = |i: usize, backend| {
        let start = NodeId(((i * 31) % n) as u32);
        Box::new(Cnrw::with_backend(start, backend)) as Box<dyn RandomWalk + Send>
    };

    let mut group = c.benchmark_group("orchestrator_overhead");
    group.throughput(Throughput::Elements(STEPS as u64));

    // The pre-orchestrator serial loop, verbatim: the baseline every
    // orchestrated number is read against.
    group.bench_function(BenchmarkId::from_parameter("handrolled_serial"), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut client = SimulatedOsn::new_shared(network.clone());
            let mut walker = Cnrw::new(NodeId(0));
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let mut nodes = Vec::with_capacity(STEPS);
            let mut stop = WalkStop::MaxSteps;
            for _ in 0..STEPS {
                match walker.step(&mut client, &mut rng) {
                    Ok(v) => nodes.push(v),
                    Err(_) => {
                        stop = WalkStop::BudgetExhausted;
                        break;
                    }
                }
            }
            (nodes.len(), stop)
        });
    });

    group.bench_function(
        BenchmarkId::from_parameter("orchestrator_serial_never"),
        |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut client = SimulatedOsn::new_shared(network.clone());
                WalkOrchestrator::new(1, STEPS, seed)
                    .run_serial(
                        &mut client,
                        |_, b| Box::new(Cnrw::with_backend(NodeId(0), b)) as _,
                        |_| 0.0,
                        &Never,
                    )
                    .trace
                    .total_steps()
            });
        },
    );

    group.bench_function(
        BenchmarkId::from_parameter("orchestrator_serial_k4_never"),
        |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut client = SimulatedOsn::new_shared(network.clone());
                WalkOrchestrator::new(4, STEPS / 4, seed)
                    .run_serial(&mut client, make_walker, |v| v.index() as f64, &Never)
                    .trace
                    .total_steps()
            });
        },
    );

    group.bench_function(
        BenchmarkId::from_parameter("orchestrator_serial_k4_steal"),
        |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut client = SimulatedOsn::new_shared(network.clone());
                let policy = WorkStealing::new(1.1, 64, SharedFrontier::new());
                let report = WalkOrchestrator::new(4, STEPS / 4, seed).run_serial(
                    &mut client,
                    make_walker,
                    |v| v.index() as f64,
                    &policy,
                );
                (report.trace.total_steps(), report.restarts.len())
            });
        },
    );

    group.bench_function(
        BenchmarkId::from_parameter("orchestrator_coalesced_never"),
        |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut client = SimulatedBatchOsn::new(
                    SimulatedOsn::new_shared(network.clone()),
                    BatchConfig::new(8).with_in_flight(4),
                );
                WalkOrchestrator::new(4, STEPS / 4, seed)
                    .run_coalesced(&mut client, make_walker, |v| v.index() as f64, &Never)
                    .trace
                    .total_steps()
            });
        },
    );

    group.finish();
}

criterion_group!(benches, orchestrator_overhead);
criterion_main!(benches);
