//! Microbenchmark: what does reading the graph **through the delta
//! overlay** cost, relative to the raw CSR slice?
//!
//! Three read paths over the same 20k-node Google Plus stand-in:
//!
//! * `base` — `CsrGraph::neighbors`, the floor;
//! * `overlay_empty` — `DeltaOverlay::neighbors` with no mutations: the
//!   advertised zero-cost passthrough (one empty-map probe);
//! * `overlay_patched` — the same read after a seeded mutation schedule
//!   patched ~5% of the nodes: untouched nodes still take the
//!   passthrough, touched ones serve their patch list.
//!
//! Plus the end-to-end view: a CNRW walk over a `SimulatedOsn` with a
//! pristine vs a patched overlay, which is the per-step price
//! `fig_evolving`'s delta arm actually pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use osn_client::SimulatedOsn;
use osn_datasets::{gplus_like, Scale};
use osn_graph::{CsrGraph, DeltaOverlay, MutationSchedule, NodeId, ScheduleSpec};
use osn_walks::{Cnrw, RandomWalk};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

const SEED: u64 = 0x0E7A_BE4C;

fn patched_overlay(g: &CsrGraph, events: usize) -> DeltaOverlay {
    let spec = ScheduleSpec::new(events, 1.0, SEED).with_delete_fraction(0.4);
    let schedule = MutationSchedule::generate(g, &spec);
    DeltaOverlay::from_log(g, schedule.events())
}

/// Raw neighbor-slice reads: base CSR vs overlay passthrough vs patched.
fn neighbor_reads(c: &mut Criterion) {
    let g = gplus_like(Scale::Default, SEED).network.graph;
    let n = g.node_count();
    let reads = 65_536usize;
    let empty = DeltaOverlay::new();
    let patched = patched_overlay(&g, n / 20);
    let mut group = c.benchmark_group("overlay_reads");
    group.throughput(Throughput::Elements(reads as u64));
    let scan = |f: &dyn Fn(NodeId) -> usize| {
        let mut acc = 0usize;
        let mut v = 1usize;
        for _ in 0..reads {
            // Cheap LCG-ish node schedule, identical across variants.
            v = (v.wrapping_mul(48271)) % n;
            acc = acc.wrapping_add(f(NodeId(v as u32)));
        }
        acc
    };
    group.bench_function(BenchmarkId::new("neighbors", "base"), |b| {
        b.iter(|| scan(&|v| g.neighbors(v).len()))
    });
    group.bench_function(BenchmarkId::new("neighbors", "overlay_empty"), |b| {
        b.iter(|| scan(&|v| empty.neighbors(&g, v).len()))
    });
    group.bench_function(BenchmarkId::new("neighbors", "overlay_patched"), |b| {
        b.iter(|| scan(&|v| patched.neighbors(&g, v).len()))
    });
    group.finish();
}

/// End-to-end: CNRW steps through a `SimulatedOsn` whose overlay is
/// pristine vs patched — the per-step price of an evolving graph.
fn walk_overhead(c: &mut Criterion) {
    let g = gplus_like(Scale::Default, SEED).network.graph;
    let n = g.node_count();
    let steps = 8_192usize;
    let mut group = c.benchmark_group("overlay_walk");
    group.throughput(Throughput::Elements(steps as u64));
    for (label, events) in [("pristine", 0usize), ("patched", n / 20)] {
        let mut client = SimulatedOsn::from_graph(g.clone());
        if events > 0 {
            let spec = ScheduleSpec::new(events, 1.0, SEED).with_delete_fraction(0.4);
            let schedule = MutationSchedule::generate(client.graph(), &spec);
            client.apply_mutations(schedule.events());
        }
        group.bench_function(BenchmarkId::new("cnrw", label), |b| {
            b.iter(|| {
                let mut client = client.clone();
                let mut walker = Cnrw::new(NodeId(0));
                let mut rng = ChaCha12Rng::seed_from_u64(SEED);
                let mut acc = 0u64;
                for _ in 0..steps {
                    acc =
                        acc.wrapping_add(u64::from(walker.step(&mut client, &mut rng).unwrap().0));
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, neighbor_reads, walk_overhead);
criterion_main!(benches);
