//! Microbenchmark: how each multi-walker backend scales with fleet size.
//!
//! The grid runs CNRW fleets of 1 / 100 / 10_000 walkers at fixed
//! steps-per-walker through (a) the poll-driven reactor, (b) the lockstep
//! coalescing dispatcher, and (c) the threaded `MultiWalkRunner` over a
//! lock-striped `SharedOsn`. The threaded arm stops at 100 walkers: it
//! spawns one OS thread per walker, so a 10k fleet would measure the
//! scheduler's thrashing, not the walk — the reactor exists precisely so
//! 10k walkers cost 10k small state machines instead of 10k stacks.
//! Throughput is normalized to walker-steps so the three arms are
//! comparable at every fleet size.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use osn_client::{BatchConfig, SharedOsn, SimulatedBatchOsn, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_graph::NodeId;
use osn_walks::{Cnrw, HistoryBackend, MultiWalkRunner, Never, RandomWalk, WalkOrchestrator};

const STEPS_PER_WALKER: usize = 64;
const FLEETS: [usize; 3] = [1, 100, 10_000];
const THREADED_CAP: usize = 100;

fn endpoint(network: &Arc<osn_graph::attributes::AttributedGraph>) -> SimulatedBatchOsn {
    SimulatedBatchOsn::new(
        SimulatedOsn::new_shared(network.clone()),
        BatchConfig::new(256).with_in_flight(4),
    )
}

fn make_walker(n: usize) -> impl Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send> + Copy {
    move |i, backend| {
        Box::new(Cnrw::with_backend(NodeId(((i * 13) % n) as u32), backend))
            as Box<dyn RandomWalk + Send>
    }
}

fn reactor_scale(c: &mut Criterion) {
    let network = Arc::new(gplus_like(Scale::Test, 5).network);
    let n = network.graph.node_count();

    let mut group = c.benchmark_group("reactor_scale");
    for &walkers in &FLEETS {
        group.throughput(Throughput::Elements((walkers * STEPS_PER_WALKER) as u64));

        group.bench_function(
            BenchmarkId::from_parameter(format!("reactor_k{walkers}")),
            |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut client = endpoint(&network);
                    WalkOrchestrator::new(walkers, STEPS_PER_WALKER, seed)
                        .run_reactor(&mut client, make_walker(n), |v| v.index() as f64, &Never)
                        .trace
                        .total_steps()
                });
            },
        );

        group.bench_function(
            BenchmarkId::from_parameter(format!("coalesced_k{walkers}")),
            |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut client = endpoint(&network);
                    WalkOrchestrator::new(walkers, STEPS_PER_WALKER, seed)
                        .run_coalesced(&mut client, make_walker(n), |v| v.index() as f64, &Never)
                        .trace
                        .total_steps()
                });
            },
        );

        if walkers <= THREADED_CAP {
            group.bench_function(
                BenchmarkId::from_parameter(format!("threaded_k{walkers}")),
                |b| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let client =
                            SharedOsn::with_stripes(SimulatedOsn::new_shared(network.clone()), 16);
                        MultiWalkRunner::new(walkers, STEPS_PER_WALKER, seed)
                            .run(&client, make_walker(n), |v| v.index() as f64)
                            .trace
                            .total_steps()
                    });
                },
            );
        }
    }
    group.finish();

    // One instrumented run at the largest fleet: the memory story the
    // timings can't show — peaks stay pinned to the endpoint's in-flight
    // window no matter how many walkers are parked behind it.
    let walkers = FLEETS[FLEETS.len() - 1];
    let mut client = endpoint(&network);
    let (report, stats) = WalkOrchestrator::new(walkers, STEPS_PER_WALKER, 7)
        .run_reactor_with_stats(&mut client, make_walker(n), |v| v.index() as f64, &Never);
    eprintln!(
        "\nreactor at k={walkers} x {STEPS_PER_WALKER} steps: {} events for {} walker-steps; \
         peaks {} in-flight batches / {} queued ids / {} parked walkers",
        stats.events,
        report.trace.total_steps(),
        stats.peak_in_flight,
        stats.peak_queued,
        stats.peak_parked,
    );
}

criterion_group!(benches, reactor_scale);
criterion_main!(benches);
