//! Microbenchmark: session-server scheduling overhead.
//!
//! The grid runs one generated multi-tenant workload to completion at
//! several `rounds_per_slice` settings. Small slices maximize fairness
//! granularity but pay the scheduler (tenant pick, cursor rotation, stats
//! deltas, estimand closure rebuild) once per slice; large slices amortize
//! it toward the bare orchestrator cost. Throughput is walker steps/sec
//! across the whole fleet, so the spread between `slice_1` and `slice_64`
//! *is* the scheduling tax. A second group prices the snapshot/resume path:
//! serialize a mid-flight server to the osn-serde text form and restore it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use osn_client::{BatchConfig, SimulatedBatchOsn, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_serde::Value;
use osn_service::traffic::{populate, TrafficConfig};
use osn_service::{ServerConfig, SessionServer};

const TENANTS: usize = 12;
const JOBS_PER_TENANT: usize = 2;
const BUDGET: u64 = 1_500;

fn endpoint(network: &std::sync::Arc<osn_graph::attributes::AttributedGraph>) -> SimulatedBatchOsn {
    SimulatedBatchOsn::configured(
        SimulatedOsn::new_shared(network.clone()),
        BatchConfig::new(8).with_in_flight(4),
        Some(BUDGET),
    )
}

fn server(
    network: &std::sync::Arc<osn_graph::attributes::AttributedGraph>,
    rounds_per_slice: usize,
    seed: u64,
) -> SessionServer {
    let mut server = SessionServer::new(
        endpoint(network),
        ServerConfig::new().with_rounds_per_slice(rounds_per_slice),
    );
    populate(
        &mut server,
        &TrafficConfig::new(TENANTS, JOBS_PER_TENANT).with_seed(seed),
    );
    server
}

fn total_steps(server: &SessionServer) -> u64 {
    (0..server.tenants().len())
        .map(|t| server.tenant_stats(t).steps)
        .sum()
}

fn service_throughput(c: &mut Criterion) {
    let network = std::sync::Arc::new(gplus_like(Scale::Test, 2).network);

    // Steps per completed workload are slice-size-independent only in
    // aggregate spirit, not exactly (the budget lands on different walks),
    // so measure each cell's own step count once for the throughput unit.
    let mut group = c.benchmark_group("service_throughput");
    for &rounds in &[1usize, 8, 64] {
        let mut probe = server(&network, rounds, 7);
        probe.run_to_completion();
        group.throughput(Throughput::Elements(total_steps(&probe).max(1)));
        group.bench_function(
            BenchmarkId::from_parameter(format!("slice_{rounds}")),
            |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut s = server(&network, rounds, seed);
                    s.run_to_completion();
                    total_steps(&s)
                });
            },
        );
    }
    group.finish();

    // Snapshot/resume round-trip of a mid-flight server (the kill/resume
    // path the service soak exercises for correctness, priced here).
    let mut mid = server(&network, 8, 7);
    for _ in 0..30 {
        if !mid.step() {
            break;
        }
    }
    let text = mid.snapshot().expect("snapshot").to_pretty();
    let mut group = c.benchmark_group("service_snapshot");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function(BenchmarkId::from_parameter("snapshot_to_text"), |b| {
        b.iter(|| mid.snapshot().expect("snapshot").to_pretty().len());
    });
    group.bench_function(BenchmarkId::from_parameter("parse_and_resume"), |b| {
        b.iter(|| {
            let parsed = Value::parse(&text).expect("parse");
            SessionServer::resume(
                endpoint(&network),
                ServerConfig::new().with_rounds_per_slice(8),
                &parsed,
            )
            .expect("resume")
            .job_count()
        });
    });
    group.finish();
}

criterion_group!(benches, service_throughput);
criterion_main!(benches);
