//! Benchmark for the Table 1 pipeline: dataset generation and the fused
//! clustering-coefficient + triangle-count analysis pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use osn_datasets::{barbell_graph, clustered_graph, facebook_like, yelp_like, Scale};
use osn_graph::analysis::summarize;

fn table1_stats(c: &mut Criterion) {
    let datasets = vec![
        ("facebook", facebook_like(Scale::Test, 1)),
        ("yelp", yelp_like(Scale::Test, 2)),
        ("clustered", clustered_graph()),
        ("barbell", barbell_graph()),
    ];

    let mut group = c.benchmark_group("table1");
    for (name, dataset) in &datasets {
        group.bench_with_input(
            BenchmarkId::new("summarize", name),
            &dataset.network.graph,
            |b, g| b.iter(|| summarize(g)),
        );
    }
    group.bench_function("generate/facebook_like", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            facebook_like(Scale::Test, seed).node_count()
        });
    });
    group.finish();
}

criterion_group!(benches, table1_stats);
criterion_main!(benches);
