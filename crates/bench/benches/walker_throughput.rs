//! Microbenchmark: transition throughput of every walker.
//!
//! The paper's §3.3/§4.2 complexity claims — amortized `O(1)` expected time
//! per CNRW step, `O(deg)` for GNRW — show up here as steps/second. This is
//! the ablation that justifies "history costs almost nothing locally while
//! saving remote queries".
//!
//! History-aware walkers run once per [`HistoryBackend`]: `[legacy]` is the
//! paper's hash-set-per-edge layout, `[arena]` the partial-Fisher–Yates
//! engine whose draws are exactly `O(1)` and hash-free. The dedicated
//! `history_backends` bench isolates the same comparison per degree
//! profile; `repro perf` records it to `BENCH_walkers.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use osn_bench::perf::bench_graphs;
use osn_experiments::runner::TrialPlan;
use osn_experiments::{Algorithm, GroupingSpec};
use osn_walks::HistoryBackend;

fn walker_throughput(c: &mut Criterion) {
    let graphs = bench_graphs();
    let algorithms = [
        Algorithm::Srw,
        Algorithm::Mhrw,
        Algorithm::NbSrw,
        Algorithm::Cnrw,
        Algorithm::Gnrw(GroupingSpec::ByDegree),
        Algorithm::Gnrw(GroupingSpec::ByHash(8)),
        Algorithm::NbCnrw,
    ];
    let steps = 20_000usize;

    let mut group = c.benchmark_group("walker_throughput");
    group.throughput(Throughput::Elements(steps as u64));
    for (gname, network) in &graphs {
        for alg in &algorithms {
            // Memoryless walkers have no storage axis; history-aware ones
            // are benched per backend.
            let backends: &[HistoryBackend] = if alg.uses_history() {
                &HistoryBackend::ALL
            } else {
                &[HistoryBackend::Arena]
            };
            for &backend in backends {
                let plan = TrialPlan::steps(network.clone(), steps).with_backend(backend);
                let label = if alg.uses_history() {
                    format!("{}[{backend}]", alg.label())
                } else {
                    alg.label()
                };
                group.bench_with_input(BenchmarkId::new(label, gname), &plan, |b, plan| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        plan.run(alg, seed).len()
                    });
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, walker_throughput);
criterion_main!(benches);
