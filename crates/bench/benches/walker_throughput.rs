//! Microbenchmark: transition throughput of every walker.
//!
//! The paper's §3.3/§4.2 complexity claims — amortized `O(1)` expected time
//! per CNRW step, `O(deg)` for GNRW — show up here as steps/second. This is
//! the ablation that justifies "history costs almost nothing locally while
//! saving remote queries".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

use osn_datasets::{facebook_like, gplus_like, Scale};
use osn_experiments::runner::TrialPlan;
use osn_experiments::{Algorithm, GroupingSpec};

fn walker_throughput(c: &mut Criterion) {
    let graphs = [
        ("facebook", Arc::new(facebook_like(Scale::Test, 1).network)),
        ("gplus", Arc::new(gplus_like(Scale::Test, 2).network)),
    ];
    let algorithms = [
        Algorithm::Srw,
        Algorithm::Mhrw,
        Algorithm::NbSrw,
        Algorithm::Cnrw,
        Algorithm::Gnrw(GroupingSpec::ByDegree),
        Algorithm::Gnrw(GroupingSpec::ByHash(8)),
        Algorithm::NbCnrw,
    ];
    let steps = 20_000usize;

    let mut group = c.benchmark_group("walker_throughput");
    group.throughput(Throughput::Elements(steps as u64));
    for (gname, network) in &graphs {
        for alg in &algorithms {
            let plan = TrialPlan::steps(network.clone(), steps);
            group.bench_with_input(BenchmarkId::new(alg.label(), gname), &plan, |b, plan| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    plan.run(alg, seed).len()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, walker_throughput);
criterion_main!(benches);
