//! `overlay_soak` — CI smoke for the evolving-graph delta overlay under a
//! reactor fleet at scale.
//!
//! ```text
//! overlay_soak [--walkers K] [--steps N] [--epochs E] [--mutations M]
//!              [--seed S] [--max-secs SECS]
//! ```
//!
//! Drives `--walkers` (default 10_000) CNRW walkers as reactor state
//! machines over a 20k-node Google Plus stand-in through one batch
//! endpoint (latency, jitter, per-id latency, whole-request failures,
//! per-id drops) while a seeded mutation schedule fires **between event
//! slices**: each epoch applies its due edge mutations to the endpoint's
//! delta overlay and drops the touched nodes' circulation state across
//! the whole fleet. Asserts:
//!
//! 1. **completion** — every walker settles with its full step count
//!    despite the graph changing under it;
//! 2. **memory bounds** — the reactor's peak in-flight batches never
//!    exceed the endpoint window (O(active batches), not O(fleet)), and
//!    the overlay's footprint stays proportional to the mutation count,
//!    never to the graph;
//! 3. **replay determinism** — the identical mutating run from the same
//!    seed reproduces traces and interface accounting bit-for-bit.
//!
//! Any violated assert exits non-zero. The `--max-secs` wall-clock guard
//! is polled between phases: a slow runner skips remaining phases with a
//! notice and exits 0 (inconclusive, never red).

use osn_client::{BatchConfig, SimulatedBatchOsn, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_experiments::Deadline;
use osn_graph::{DeltaOverlay, EdgeMutation, MutationOp, MutationSchedule, NodeId, ScheduleSpec};
use osn_walks::{Cnrw, HistoryBackend, RandomWalk, WalkOrchestrator};

struct Options {
    walkers: usize,
    steps: usize,
    epochs: usize,
    mutations: usize,
    seed: u64,
    max_secs: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            walkers: 10_000,
            steps: 64,
            epochs: 8,
            mutations: 1_600,
            seed: 0x0E7A_50AC,
            max_secs: 300,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| panic!("{flag} requires a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--walkers" => opts.walkers = value(&mut args, "--walkers").parse().expect("--walkers"),
            "--steps" => opts.steps = value(&mut args, "--steps").parse().expect("--steps"),
            "--epochs" => opts.epochs = value(&mut args, "--epochs").parse().expect("--epochs"),
            "--mutations" => {
                opts.mutations = value(&mut args, "--mutations")
                    .parse()
                    .expect("--mutations")
            }
            "--seed" => opts.seed = value(&mut args, "--seed").parse().expect("--seed"),
            "--max-secs" => {
                opts.max_secs = value(&mut args, "--max-secs").parse().expect("--max-secs")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: overlay_soak [--walkers K] [--steps N] [--epochs E] \
                     [--mutations M] [--seed S] [--max-secs SECS]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

const IN_FLIGHT: usize = 4;

fn endpoint(
    network: &std::sync::Arc<osn_graph::attributes::AttributedGraph>,
    opts: &Options,
) -> SimulatedBatchOsn {
    let batch = BatchConfig::new(256)
        .with_in_flight(IN_FLIGHT)
        .with_latency(0.005, 0.002)
        .with_per_id_latency(0.0001)
        .with_failure_every(23)
        .with_drop_node_every(37)
        .with_seed(opts.seed ^ 0x5EED);
    SimulatedBatchOsn::new(SimulatedOsn::new_shared(network.clone()), batch)
}

fn make_walker(n: usize) -> impl Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send> {
    move |i, backend| {
        Box::new(Cnrw::with_backend(NodeId(((i * 13) % n) as u32), backend))
            as Box<dyn RandomWalk + Send>
    }
}

/// The schedule's events, pre-filtered so no delete strands a walker on a
/// degree-zero node (the walkers assert full completion).
fn safe_events(g: &osn_graph::CsrGraph, opts: &Options) -> Vec<EdgeMutation> {
    let spec = ScheduleSpec::new(opts.mutations, opts.epochs as f64, opts.seed ^ 0x0E7)
        .with_delete_fraction(0.4);
    let schedule = MutationSchedule::generate(g, &spec);
    let mut overlay = DeltaOverlay::new();
    let mut events = Vec::new();
    for &m in schedule.events() {
        if m.op == MutationOp::Delete
            && (overlay.degree(g, m.u) <= 1 || overlay.degree(g, m.v) <= 1)
        {
            continue;
        }
        if overlay.apply(g, m) {
            events.push(m);
        }
    }
    events
}

struct SoakRun {
    traces: Vec<Vec<NodeId>>,
    issued: u64,
    unique: u64,
    peak_in_flight: usize,
    peak_parked: usize,
    events: usize,
    overlay_log: usize,
    overlay_patched: usize,
    overlay_heap: usize,
    dropped: usize,
}

/// One full mutating run: `epochs` slices of reactor events, the due
/// mutations applied and invalidated at every boundary, then run to
/// completion.
fn mutating_run(
    network: &std::sync::Arc<osn_graph::attributes::AttributedGraph>,
    events: &[EdgeMutation],
    opts: &Options,
) -> SoakRun {
    let n = network.graph.node_count();
    let orch = WalkOrchestrator::new(opts.walkers, opts.steps, opts.seed);
    let mut client = endpoint(network, opts);
    let mut schedule = MutationSchedule::from_events(events.to_vec());
    let mut run = orch.start_reactor(make_walker(n));
    let value = |v: NodeId| v.index() as f64;
    // Roughly `epochs + 1` equal slices of the expected event count, so
    // every epoch's mutations land while the fleet is genuinely mid-walk.
    let slice_events = (opts.walkers * opts.steps / 256 / (opts.epochs + 1)).max(1);
    let mut dropped = 0;
    for epoch in 1..=opts.epochs {
        run.run_events(&mut client, &value, slice_events);
        let due = schedule.due(epoch as f64).to_vec();
        let touched = client.apply_mutations(&due);
        dropped += run.invalidate_nodes(&touched);
    }
    run.run_events(&mut client, &value, usize::MAX);
    let stats = run.reactor_stats();
    let inner = client.inner();
    let (overlay_log, overlay_patched, overlay_heap) = (
        inner.mutation_log().len(),
        inner.overlay().patched_nodes(),
        inner.overlay().heap_bytes(),
    );
    let report = run.into_report(&client);
    let interface = report.interface.expect("reactor reports interface stats");
    SoakRun {
        traces: report.trace.per_walker,
        issued: interface.issued,
        unique: interface.unique,
        peak_in_flight: stats.peak_in_flight,
        peak_parked: stats.peak_parked,
        events: stats.events,
        overlay_log,
        overlay_patched,
        overlay_heap,
        dropped,
    }
}

fn fail(message: String) -> ! {
    eprintln!("overlay_soak FAIL: {message}");
    std::process::exit(1);
}

fn guard(deadline: &Deadline, phase: &str) {
    if deadline.exceeded() {
        eprintln!(
            "overlay_soak: wall-clock guard fired after {:.1?} before `{phase}` — \
             skipping remaining phases (inconclusive, not a failure)",
            deadline.elapsed()
        );
        std::process::exit(0);
    }
}

fn main() {
    let opts = parse_args();
    let deadline = Deadline::after_secs(opts.max_secs);
    let network = std::sync::Arc::new(gplus_like(Scale::Default, opts.seed).network);
    let n = network.graph.node_count();
    let events = safe_events(&network.graph, &opts);
    eprintln!(
        "overlay_soak: {} walkers x {} steps over {n} nodes, {} mutations in {} epochs, seed {:#x}",
        opts.walkers,
        opts.steps,
        events.len(),
        opts.epochs,
        opts.seed
    );

    // Phase 1: the mutating reference run — completion + memory bounds.
    let reference = mutating_run(&network, &events, &opts);
    if reference.traces.len() != opts.walkers {
        fail(format!(
            "{} walkers reported, {} launched",
            reference.traces.len(),
            opts.walkers
        ));
    }
    for (i, trace) in reference.traces.iter().enumerate() {
        if trace.len() != opts.steps {
            fail(format!(
                "walker {i} settled with {} of {} steps under mutation",
                trace.len(),
                opts.steps
            ));
        }
    }
    if reference.dropped == 0 {
        fail(
            "no circulation state was ever invalidated — the schedule never hit warm walkers"
                .into(),
        );
    }
    if reference.peak_in_flight > IN_FLIGHT {
        fail(format!(
            "peak in-flight batches {} exceeds the {IN_FLIGHT}-batch window — \
             the O(active batches) memory bound is broken",
            reference.peak_in_flight
        ));
    }
    if reference.overlay_log != events.len() {
        fail(format!(
            "overlay log holds {} of {} applied mutations",
            reference.overlay_log,
            events.len()
        ));
    }
    if reference.overlay_patched > 2 * events.len() {
        fail(format!(
            "{} patched nodes from {} mutations — the overlay is patching \
             untouched nodes",
            reference.overlay_patched,
            events.len()
        ));
    }
    // Patch lists hold whole neighbor copies of touched nodes only: the
    // footprint must scale with mutations x degree, never with the graph.
    // 64 KiB per mutation is orders of magnitude above any honest layout.
    if reference.overlay_heap > events.len() * 65_536 {
        fail(format!(
            "overlay heap {} bytes for {} mutations — footprint is not O(touched)",
            reference.overlay_heap,
            events.len()
        ));
    }
    eprintln!(
        "overlay_soak: completion OK — {} events, {} issued / {} unique queries, \
         {} histories dropped across {} patched nodes ({} overlay bytes), \
         peaks: {} in-flight batches (window {IN_FLIGHT}), {} parked walkers",
        reference.events,
        reference.issued,
        reference.unique,
        reference.dropped,
        reference.overlay_patched,
        reference.overlay_heap,
        reference.peak_in_flight,
        reference.peak_parked,
    );

    // Phase 2: replay determinism of the whole mutating run.
    guard(&deadline, "replay");
    let replay = mutating_run(&network, &events, &opts);
    if replay.traces != reference.traces {
        fail("an identical mutating run produced different traces".into());
    }
    if (replay.issued, replay.unique) != (reference.issued, reference.unique)
        || replay.dropped != reference.dropped
    {
        fail("an identical mutating run reached different accounting".into());
    }
    eprintln!("overlay_soak: replay determinism OK");
    eprintln!(
        "overlay_soak: all checks passed in {:.1?}",
        deadline.elapsed()
    );
}
