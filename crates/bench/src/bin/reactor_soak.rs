//! `reactor_soak` — CI smoke for the poll-driven reactor backend at fleet
//! sizes the lockstep backends were never asked to carry.
//!
//! ```text
//! reactor_soak [--walkers K] [--steps N] [--seed S] [--max-secs SECS]
//! ```
//!
//! Drives `--walkers` (default 10_000) CNRW walkers as reactor state
//! machines over a 20k-node Google Plus stand-in through one batch
//! endpoint (latency, jitter, per-id latency, whole-request failures,
//! per-id drops — every realism knob on), and **asserts**:
//!
//! 1. **completion** — every walker settles with its full step count, no
//!    walker lost to the event loop's queue discipline;
//! 2. **memory bound** — the loop's peak in-flight batches never exceed
//!    the endpoint's in-flight window: reactor memory is O(active
//!    batches), not O(fleet);
//! 3. **equivalence spot-check** — the identical spec replayed through
//!    the coalesced backend produces bit-identical traces, stops, and
//!    estimate (schedule independence under `Never` with no budget);
//! 4. **replay determinism** — a second reactor run from the same seed
//!    reproduces the first bit-for-bit.
//!
//! Any violated assert exits non-zero. The `--max-secs` wall-clock guard
//! is polled between phases: a slow runner skips remaining phases with a
//! notice and exits 0 (inconclusive, never red).

use osn_client::{BatchConfig, SimulatedBatchOsn, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_experiments::Deadline;
use osn_graph::NodeId;
use osn_walks::{Cnrw, HistoryBackend, Never, RandomWalk, WalkOrchestrator};

struct Options {
    walkers: usize,
    steps: usize,
    seed: u64,
    max_secs: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            walkers: 10_000,
            steps: 64,
            seed: 0xEAC7_50AC,
            max_secs: 300,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| panic!("{flag} requires a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--walkers" => opts.walkers = value(&mut args, "--walkers").parse().expect("--walkers"),
            "--steps" => opts.steps = value(&mut args, "--steps").parse().expect("--steps"),
            "--seed" => opts.seed = value(&mut args, "--seed").parse().expect("--seed"),
            "--max-secs" => {
                opts.max_secs = value(&mut args, "--max-secs").parse().expect("--max-secs")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: reactor_soak [--walkers K] [--steps N] [--seed S] [--max-secs SECS]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

const IN_FLIGHT: usize = 4;

fn endpoint(
    network: &std::sync::Arc<osn_graph::attributes::AttributedGraph>,
    opts: &Options,
) -> SimulatedBatchOsn {
    let batch = BatchConfig::new(256)
        .with_in_flight(IN_FLIGHT)
        .with_latency(0.005, 0.002)
        .with_per_id_latency(0.0001)
        .with_failure_every(23)
        .with_drop_node_every(37)
        .with_seed(opts.seed ^ 0x5EED);
    SimulatedBatchOsn::new(SimulatedOsn::new_shared(network.clone()), batch)
}

fn make_walker(n: usize) -> impl Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send> {
    move |i, backend| {
        Box::new(Cnrw::with_backend(NodeId(((i * 13) % n) as u32), backend))
            as Box<dyn RandomWalk + Send>
    }
}

fn fail(message: String) -> ! {
    eprintln!("reactor_soak FAIL: {message}");
    std::process::exit(1);
}

fn guard(deadline: &Deadline, phase: &str) {
    if deadline.exceeded() {
        eprintln!(
            "reactor_soak: wall-clock guard fired after {:.1?} before `{phase}` — \
             skipping remaining phases (inconclusive, not a failure)",
            deadline.elapsed()
        );
        std::process::exit(0);
    }
}

fn main() {
    let opts = parse_args();
    let deadline = Deadline::after_secs(opts.max_secs);
    let network = std::sync::Arc::new(gplus_like(Scale::Default, opts.seed).network);
    let n = network.graph.node_count();
    let orch = WalkOrchestrator::new(opts.walkers, opts.steps, opts.seed);
    eprintln!(
        "reactor_soak: {} walkers x {} steps over {n} nodes, seed {:#x}",
        opts.walkers, opts.steps, opts.seed
    );

    // Phase 1: the reference reactor run — completion + memory bound.
    let mut client = endpoint(&network, &opts);
    let (reference, stats) =
        orch.run_reactor_with_stats(&mut client, make_walker(n), |v| v.index() as f64, &Never);
    if reference.trace.per_walker.len() != opts.walkers {
        fail(format!(
            "{} walkers reported, {} launched",
            reference.trace.per_walker.len(),
            opts.walkers
        ));
    }
    for (i, trace) in reference.trace.per_walker.iter().enumerate() {
        if trace.len() != opts.steps {
            fail(format!(
                "walker {i} settled with {} of {} steps (abandoned={})",
                trace.len(),
                opts.steps,
                reference.abandoned_nodes
            ));
        }
    }
    if stats.peak_in_flight > IN_FLIGHT {
        fail(format!(
            "peak in-flight batches {} exceeds the {IN_FLIGHT}-batch window — \
             the O(active batches) memory bound is broken",
            stats.peak_in_flight
        ));
    }
    if stats.peak_parked < opts.walkers / 2 {
        fail(format!(
            "peak parked {} — the fleet never actually waited on I/O; the \
             soak is not exercising the reactor",
            stats.peak_parked
        ));
    }
    eprintln!(
        "reactor_soak: completion OK — {} events for {} steps; peaks: {} in-flight \
         batches (window {IN_FLIGHT}), {} queued ids, {} parked walkers; {:.1}s virtual",
        stats.events,
        reference.trace.total_steps(),
        stats.peak_in_flight,
        stats.peak_queued,
        stats.peak_parked,
        client.clock().elapsed_secs()
    );

    // Phase 2: equivalence spot-check against the coalesced backend.
    guard(&deadline, "equivalence");
    let mut subject = endpoint(&network, &opts);
    let coalesced = orch.run_coalesced(&mut subject, make_walker(n), |v| v.index() as f64, &Never);
    if coalesced.trace.per_walker != reference.trace.per_walker {
        fail("reactor traces diverged from the coalesced backend".into());
    }
    if coalesced.stops != reference.stops {
        fail("reactor stops diverged from the coalesced backend".into());
    }
    if coalesced.estimate.mean().map(f64::to_bits) != reference.estimate.mean().map(f64::to_bits) {
        fail("reactor estimate diverged from the coalesced backend".into());
    }
    eprintln!(
        "reactor_soak: equivalence OK — {} walkers bit-identical to run_coalesced",
        opts.walkers
    );

    // Phase 3: replay determinism.
    guard(&deadline, "replay");
    let mut again = endpoint(&network, &opts);
    let replay = orch.run_reactor(&mut again, make_walker(n), |v| v.index() as f64, &Never);
    if replay.trace.per_walker != reference.trace.per_walker
        || replay.interface != reference.interface
    {
        fail("an identical reactor run reached a different state".into());
    }
    eprintln!("reactor_soak: replay determinism OK");
    eprintln!(
        "reactor_soak: all checks passed in {:.1?}",
        deadline.elapsed()
    );
}
