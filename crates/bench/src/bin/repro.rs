//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--out DIR] [table1|fig6|fig6par|fig7|fig8|fig9|fig10|fig11|theorem3|ablation|all]
//! ```
//!
//! Each experiment prints its markdown table to stdout and, with `--out`,
//! also writes `<id>.md`, `<id>.csv` and `<id>.json` artifacts — the files
//! EXPERIMENTS.md references.

use std::io::Write;
use std::path::PathBuf;

use osn_datasets::Scale;
use osn_experiments::{
    ablation, fig10, fig11, fig6, fig6_parallel, fig7, fig8, fig9, table1, theorem3,
    ExperimentResult,
};

struct Options {
    quick: bool,
    out: Option<PathBuf>,
    targets: Vec<String>,
}

fn parse_args() -> Options {
    let mut quick = false;
    let mut out = None;
    let mut targets = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = Some(PathBuf::from(
                    args.next().expect("--out requires a directory"),
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--quick] [--out DIR] \
                     [table1|fig6|fig6par|fig7|fig8|fig9|fig10|fig11|theorem3|ablation|all]..."
                );
                std::process::exit(0);
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = [
            "table1", "fig6", "fig6par", "fig7", "fig8", "fig9", "fig10", "fig11", "theorem3",
            "ablation",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    Options {
        quick,
        out,
        targets,
    }
}

fn emit(result: &ExperimentResult, out: &Option<PathBuf>) {
    println!("{}", result.to_markdown());
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create output dir");
        let write = |ext: &str, content: String| {
            let path = dir.join(format!("{}.{ext}", result.id));
            let mut f = std::fs::File::create(&path).expect("create artifact");
            f.write_all(content.as_bytes()).expect("write artifact");
        };
        write("md", result.to_markdown());
        write("csv", result.to_csv());
        write("json", result.to_json());
    }
}

fn main() {
    let opts = parse_args();
    let started = std::time::Instant::now();
    for target in &opts.targets {
        let t0 = std::time::Instant::now();
        eprintln!(
            "== running {target} ({}) ==",
            if opts.quick { "quick" } else { "default" }
        );
        match target.as_str() {
            "table1" => {
                let scale = if opts.quick {
                    Scale::Test
                } else {
                    Scale::Default
                };
                emit(&table1::run(scale, 1), &opts.out);
            }
            "fig6" => {
                let config = if opts.quick {
                    fig6::Fig6Config::quick()
                } else {
                    Default::default()
                };
                emit(&fig6::run(&config), &opts.out);
            }
            "fig6par" => {
                let config = if opts.quick {
                    fig6_parallel::Fig6ParallelConfig::quick()
                } else {
                    Default::default()
                };
                emit(&fig6_parallel::run(&config), &opts.out);
            }
            "fig7" => {
                let config = if opts.quick {
                    fig7::Fig7Config::quick()
                } else {
                    Default::default()
                };
                let r = fig7::run(&config);
                for panel in [
                    &r.facebook_kl,
                    &r.facebook_l2,
                    &r.facebook_error,
                    &r.youtube_error,
                ] {
                    emit(panel, &opts.out);
                }
            }
            "fig8" => {
                let config = if opts.quick {
                    fig8::Fig8Config::quick()
                } else {
                    Default::default()
                };
                for panel in fig8::run(&config) {
                    // Figure 8 has one row per node; print a summary to
                    // stdout and write the full series only to --out.
                    let mut summary = panel.clone();
                    summary.series.clear();
                    for s in &panel.series {
                        let head: Vec<f64> = s.y.iter().rev().take(5).rev().copied().collect();
                        summary
                            .notes
                            .push(format!("{}: top-5 degree-rank probs {head:?}", s.label));
                    }
                    println!("{}", summary.to_markdown());
                    if let Some(dir) = &opts.out {
                        std::fs::create_dir_all(dir).expect("create output dir");
                        std::fs::write(dir.join(format!("{}.csv", panel.id)), panel.to_csv())
                            .expect("write artifact");
                        std::fs::write(dir.join(format!("{}.json", panel.id)), panel.to_json())
                            .expect("write artifact");
                    }
                }
            }
            "fig9" => {
                let config = if opts.quick {
                    fig9::Fig9Config::quick()
                } else {
                    Default::default()
                };
                let r = fig9::run(&config);
                emit(&r.average_degree, &opts.out);
                emit(&r.average_reviews, &opts.out);
            }
            "fig10" => {
                let config = if opts.quick {
                    fig10::Fig10Config::quick()
                } else {
                    Default::default()
                };
                let r = fig10::run(&config);
                for panel in [&r.kl, &r.l2, &r.error] {
                    emit(panel, &opts.out);
                }
            }
            "fig11" => {
                let config = if opts.quick {
                    fig11::Fig11Config::quick()
                } else {
                    Default::default()
                };
                let r = fig11::run(&config);
                for panel in [&r.kl, &r.l2, &r.error] {
                    emit(panel, &opts.out);
                }
            }
            "ablation" => {
                let config = if opts.quick {
                    ablation::AblationConfig::quick()
                } else {
                    Default::default()
                };
                emit(&ablation::run(&config), &opts.out);
                emit(&ablation::run_budget(&config), &opts.out);
            }
            "theorem3" => {
                let config = if opts.quick {
                    theorem3::Theorem3Config::quick()
                } else {
                    Default::default()
                };
                emit(&theorem3::run(&config), &opts.out);
            }
            other => {
                eprintln!("unknown target `{other}` (see --help)");
                std::process::exit(2);
            }
        }
        eprintln!("== {target} done in {:.1?} ==\n", t0.elapsed());
    }
    eprintln!("all targets done in {:.1?}", started.elapsed());
}
