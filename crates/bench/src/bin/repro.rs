//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--quick|--full] [--web] [--max-secs N] [--out DIR] [--record PATH] [--baseline PATH]
//!       [table1|fig6|fig6par|fig6batch|fig6steal|fig7|fig8|fig9|fig10|fig11|theorem3|ablation|
//!        fig_service|fig_reactor|fig_evolving|fig_scale|perf|all]
//! ```
//!
//! Each experiment prints its markdown table to stdout and, with `--out`,
//! also writes `<id>.md`, `<id>.csv` and `<id>.json` artifacts — the files
//! EXPERIMENTS.md references.
//!
//! `--full` runs every scale-aware target at `Scale::Full` (the largest
//! calibrated stand-ins) under a wall-clock guard: once `--max-secs`
//! (default 1800 with `--full`) has elapsed, remaining targets are skipped
//! with a notice instead of running unbounded. Defaults are unchanged
//! without the flag.
//!
//! `--web` extends `fig_scale` with the ~10⁸-edge compact-only tier
//! (minutes of build time, gigabytes of temp disk for the streaming
//! builder's spill runs).
//!
//! `perf` is the throughput-baseline target (not part of `all`): it
//! measures walker steps/sec per (graph, algorithm, history backend);
//! `--record PATH` writes the raw JSON (committed as `BENCH_walkers.json`),
//! `--baseline PATH` diffs the fresh run against a recorded baseline and
//! prints non-blocking warnings past the 15% tolerance.

use std::io::Write;
use std::path::PathBuf;

use osn_bench::perf;
use osn_datasets::Scale;
use osn_experiments::{
    ablation, fig10, fig11, fig6, fig6_batch, fig6_parallel, fig6_steal, fig7, fig8, fig9,
    fig_evolving, fig_reactor, fig_scale, fig_service, table1, theorem3, Deadline,
    ExperimentResult,
};

struct Options {
    quick: bool,
    full: bool,
    web: bool,
    max_secs: Option<u64>,
    out: Option<PathBuf>,
    record: Option<PathBuf>,
    baseline: Option<PathBuf>,
    targets: Vec<String>,
}

impl Options {
    /// The dataset scale the flags select (default scale when neither
    /// `--quick` nor `--full` is given).
    fn scale(&self) -> Scale {
        if self.quick {
            Scale::Test
        } else if self.full {
            Scale::Full
        } else {
            Scale::Default
        }
    }

    /// The wall-clock guard: explicit `--max-secs` wins; `--full` runs
    /// default to 30 minutes; everything else is unguarded.
    fn deadline(&self) -> Deadline {
        match (self.max_secs, self.full) {
            (Some(secs), _) => Deadline::after_secs(secs),
            (None, true) => Deadline::after_secs(1800),
            (None, false) => Deadline::unlimited(),
        }
    }
}

fn parse_args() -> Options {
    let mut quick = false;
    let mut full = false;
    let mut web = false;
    let mut max_secs = None;
    let mut out = None;
    let mut record = None;
    let mut baseline = None;
    let mut targets = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => full = true,
            "--web" => web = true,
            "--max-secs" => {
                max_secs = Some(
                    args.next()
                        .expect("--max-secs requires a number")
                        .parse()
                        .expect("--max-secs requires a number of seconds"),
                );
            }
            "--out" => {
                out = Some(PathBuf::from(
                    args.next().expect("--out requires a directory"),
                ));
            }
            "--record" => {
                record = Some(PathBuf::from(
                    args.next().expect("--record requires a file"),
                ));
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    args.next().expect("--baseline requires a file"),
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--quick|--full] [--web] [--max-secs N] [--out DIR] [--record PATH] \
                     [--baseline PATH] [table1|fig6|fig6par|fig6batch|fig6steal|fig7|fig8|\
                     fig9|fig10|fig11|theorem3|ablation|fig_service|fig_reactor|fig_evolving|\
                     fig_scale|perf|all]..."
                );
                std::process::exit(0);
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        // Expand `all` in place, keeping any explicitly named extra targets
        // (`perf` is deliberately not part of `all` — it is a timing run
        // whose value is the recorded baseline, not a figure of the paper —
        // but `repro all perf` must still run it).
        let standard: Vec<String> = [
            "table1",
            "fig6",
            "fig6par",
            "fig6batch",
            "fig6steal",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "theorem3",
            "ablation",
            "fig_service",
            "fig_reactor",
            "fig_evolving",
            "fig_scale",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let extras: Vec<String> = targets
            .iter()
            .filter(|t| *t != "all" && !standard.contains(t))
            .cloned()
            .collect();
        targets = standard;
        targets.extend(extras);
    }
    if quick && full {
        eprintln!("--quick and --full are mutually exclusive");
        std::process::exit(2);
    }
    Options {
        quick,
        full,
        web,
        max_secs,
        out,
        record,
        baseline,
        targets,
    }
}

/// Run the `perf` target: measure, optionally record, optionally diff
/// against a baseline (warn-only — the perf gate never fails the build).
fn run_perf(opts: &Options) -> ExperimentResult {
    let config = if opts.quick {
        perf::PerfConfig::quick()
    } else {
        perf::PerfConfig::new()
    };
    let result = perf::measure(&config);
    if let Some(path) = &opts.record {
        std::fs::write(path, result.to_json()).expect("write perf record");
        eprintln!("perf baseline recorded to {}", path.display());
    }
    if let Some(path) = &opts.baseline {
        let raw = std::fs::read_to_string(path).expect("read perf baseline");
        let baseline = ExperimentResult::from_json(&raw).expect("parse perf baseline");
        let deltas = perf::compare(&result, &baseline, perf::REGRESSION_TOLERANCE);
        let mut regressions = 0usize;
        for d in &deltas {
            if d.regressed {
                regressions += 1;
                // `::warning::` renders as an annotation on GitHub Actions
                // and is harmless noise elsewhere.
                println!(
                    "::warning::perf: {} regressed {:.1}% (current {:.0} steps/s vs baseline {:.0})",
                    d.label,
                    -d.ratio_delta * 100.0,
                    d.current,
                    d.baseline
                );
            }
        }
        // Machine-independent pass: arena-over-legacy speedups are computed
        // within one run, so they stay comparable even when this host and
        // the baseline's recording machine are different classes.
        let base_speedups = perf::speedups(&baseline);
        let mut speedup_regressions = 0usize;
        let mut speedup_cells = 0usize;
        for (label, current) in perf::speedups(&result) {
            let Some((_, base)) = base_speedups.iter().find(|(l, _)| *l == label) else {
                continue;
            };
            speedup_cells += 1;
            if current < base * (1.0 - perf::REGRESSION_TOLERANCE) {
                speedup_regressions += 1;
                println!(
                    "::warning::perf: arena-over-legacy speedup for {label} fell to {current:.2}x \
                     (baseline {base:.2}x) — machine-independent signal, likely a real regression"
                );
            }
        }
        // GNRW-specific callout: the plan-over-scratch ratio is the headline
        // of the group-plan fast path. Print it every run (not only on
        // regression) so the perf-smoke log always shows where GNRW stands,
        // and warn when the within-run ratio falls below the baseline's.
        let base_plan = perf::plan_speedups(&baseline);
        for (label, current) in perf::plan_speedups(&result) {
            match base_plan.iter().find(|(l, _)| *l == label) {
                Some((_, base)) if current < base * (1.0 - perf::REGRESSION_TOLERANCE) => {
                    println!(
                        "::warning::perf: GNRW plan-over-scratch speedup for {label} fell to \
                         {current:.2}x (baseline {base:.2}x) — the group-plan fast path regressed"
                    );
                }
                Some((_, base)) => {
                    eprintln!(
                        "perf: GNRW plan-over-scratch {label}: {current:.2}x (baseline {base:.2}x)"
                    );
                }
                None => {
                    eprintln!(
                        "perf: GNRW plan-over-scratch {label}: {current:.2}x (no baseline ratio)"
                    );
                }
            }
        }
        if regressions > deltas.len() / 2 && speedup_regressions == 0 {
            eprintln!(
                "perf note: most absolute cells shifted together while every arena-over-legacy \
                 speedup held — this usually means a different machine class than the baseline's, \
                 not a code regression"
            );
        }
        eprintln!(
            "perf check vs {}: {} absolute cells ({} beyond the {:.0}% tolerance), \
             {speedup_cells} speedup ratios ({speedup_regressions} regressed); non-blocking",
            path.display(),
            deltas.len(),
            regressions,
            perf::REGRESSION_TOLERANCE * 100.0
        );
    }
    result
}

fn emit(result: &ExperimentResult, out: &Option<PathBuf>) {
    println!("{}", result.to_markdown());
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create output dir");
        let write = |ext: &str, content: String| {
            let path = dir.join(format!("{}.{ext}", result.id));
            let mut f = std::fs::File::create(&path).expect("create artifact");
            f.write_all(content.as_bytes()).expect("write artifact");
        };
        write("md", result.to_markdown());
        write("csv", result.to_csv());
        write("json", result.to_json());
    }
}

fn main() {
    let opts = parse_args();
    let started = std::time::Instant::now();
    let deadline = opts.deadline();
    for target in &opts.targets {
        if deadline.exceeded() {
            eprintln!(
                "== wall-clock guard ({:?}) exceeded after {:.1?}: skipping {target} ==",
                deadline.limit().expect("guard fired"),
                deadline.elapsed()
            );
            continue;
        }
        let t0 = std::time::Instant::now();
        eprintln!(
            "== running {target} ({}) ==",
            if opts.quick {
                "quick"
            } else if opts.full {
                "full"
            } else {
                "default"
            }
        );
        match target.as_str() {
            "table1" => {
                emit(&table1::run(opts.scale(), 1), &opts.out);
            }
            "fig6" => {
                let config = if opts.quick {
                    fig6::Fig6Config::quick()
                } else {
                    fig6::Fig6Config {
                        scale: opts.scale(),
                        ..Default::default()
                    }
                };
                emit(&fig6::run(&config), &opts.out);
            }
            "fig6par" => {
                let config = if opts.quick {
                    fig6_parallel::Fig6ParallelConfig::quick()
                } else {
                    fig6_parallel::Fig6ParallelConfig {
                        scale: opts.scale(),
                        ..Default::default()
                    }
                };
                emit(&fig6_parallel::run(&config), &opts.out);
            }
            "fig6batch" => {
                let config = if opts.quick {
                    fig6_batch::Fig6BatchConfig::quick()
                } else {
                    fig6_batch::Fig6BatchConfig {
                        scale: opts.scale(),
                        ..Default::default()
                    }
                };
                emit(&fig6_batch::run(&config), &opts.out);
            }
            "fig6steal" => {
                let config = if opts.quick {
                    fig6_steal::Fig6StealConfig::quick()
                } else {
                    Default::default()
                };
                emit(&fig6_steal::run(&config), &opts.out);
            }
            "fig7" => {
                let config = if opts.quick {
                    fig7::Fig7Config::quick()
                } else {
                    fig7::Fig7Config {
                        scale: opts.scale(),
                        ..Default::default()
                    }
                };
                let r = fig7::run(&config);
                for panel in [
                    &r.facebook_kl,
                    &r.facebook_l2,
                    &r.facebook_error,
                    &r.youtube_error,
                ] {
                    emit(panel, &opts.out);
                }
            }
            "fig8" => {
                let config = if opts.quick {
                    fig8::Fig8Config::quick()
                } else {
                    fig8::Fig8Config {
                        scale: opts.scale(),
                        ..Default::default()
                    }
                };
                for panel in fig8::run(&config) {
                    // Figure 8 has one row per node; print a summary to
                    // stdout and write the full series only to --out.
                    let mut summary = panel.clone();
                    summary.series.clear();
                    for s in &panel.series {
                        let head: Vec<f64> = s.y.iter().rev().take(5).rev().copied().collect();
                        summary
                            .notes
                            .push(format!("{}: top-5 degree-rank probs {head:?}", s.label));
                    }
                    println!("{}", summary.to_markdown());
                    if let Some(dir) = &opts.out {
                        std::fs::create_dir_all(dir).expect("create output dir");
                        std::fs::write(dir.join(format!("{}.csv", panel.id)), panel.to_csv())
                            .expect("write artifact");
                        std::fs::write(dir.join(format!("{}.json", panel.id)), panel.to_json())
                            .expect("write artifact");
                    }
                }
            }
            "fig9" => {
                let config = if opts.quick {
                    fig9::Fig9Config::quick()
                } else {
                    fig9::Fig9Config {
                        scale: opts.scale(),
                        ..Default::default()
                    }
                };
                let r = fig9::run(&config);
                emit(&r.average_degree, &opts.out);
                emit(&r.average_reviews, &opts.out);
                // Panel (c): the plan-vs-scratch NRMSE-at-equal-wall-clock
                // arm — each execution path gets the steps it completes in
                // the same time window.
                let base_steps: &[usize] = if opts.quick {
                    &[400, 1_200]
                } else {
                    &[10_000, 30_000]
                };
                emit(&fig9::plan_equal_walltime(&config, base_steps), &opts.out);
            }
            "fig10" => {
                let config = if opts.quick {
                    fig10::Fig10Config::quick()
                } else {
                    Default::default()
                };
                let r = fig10::run(&config);
                for panel in [&r.kl, &r.l2, &r.error] {
                    emit(panel, &opts.out);
                }
            }
            "fig11" => {
                let config = if opts.quick {
                    fig11::Fig11Config::quick()
                } else {
                    Default::default()
                };
                let r = fig11::run(&config);
                for panel in [&r.kl, &r.l2, &r.error] {
                    emit(panel, &opts.out);
                }
            }
            "ablation" => {
                let config = if opts.quick {
                    ablation::AblationConfig::quick()
                } else {
                    Default::default()
                };
                emit(&ablation::run(&config), &opts.out);
                emit(&ablation::run_budget(&config), &opts.out);
            }
            "theorem3" => {
                let config = if opts.quick {
                    theorem3::Theorem3Config::quick()
                } else {
                    Default::default()
                };
                emit(&theorem3::run(&config), &opts.out);
            }
            "fig_service" | "figservice" => {
                let config = if opts.quick {
                    fig_service::FigServiceConfig::quick()
                } else {
                    fig_service::FigServiceConfig {
                        scale: opts.scale(),
                        ..Default::default()
                    }
                };
                emit(&fig_service::run(&config), &opts.out);
            }
            "fig_reactor" | "figreactor" => {
                let config = if opts.quick {
                    fig_reactor::FigReactorConfig::quick()
                } else {
                    fig_reactor::FigReactorConfig {
                        scale: opts.scale(),
                        ..Default::default()
                    }
                };
                emit(&fig_reactor::run(&config), &opts.out);
            }
            "fig_evolving" | "figevolving" => {
                let config = if opts.quick {
                    fig_evolving::FigEvolvingConfig::quick()
                } else {
                    fig_evolving::FigEvolvingConfig {
                        scale: opts.scale(),
                        ..Default::default()
                    }
                };
                emit(&fig_evolving::run(&config), &opts.out);
            }
            "fig_scale" | "figscale" => {
                let mut config = if opts.quick {
                    fig_scale::FigScaleConfig::quick()
                } else if opts.full {
                    fig_scale::FigScaleConfig::full()
                } else {
                    fig_scale::FigScaleConfig::default()
                };
                // The per-tier guard inherits the run's wall-clock limit so
                // an oversized tier cannot blow through the outer deadline.
                config.max_secs = opts.max_secs.or(opts.full.then_some(1800));
                if opts.web {
                    config = config.with_web_tier();
                }
                emit(&fig_scale::run(&config), &opts.out);
            }
            "perf" => {
                let result = run_perf(&opts);
                emit(&result, &opts.out);
            }
            other => {
                eprintln!("unknown target `{other}` (see --help)");
                std::process::exit(2);
            }
        }
        eprintln!("== {target} done in {:.1?} ==\n", t0.elapsed());
    }
    eprintln!("all targets done in {:.1?}", started.elapsed());
}
