//! `scale_soak` — CI smoke for the web-scale compressed substrate.
//!
//! ```text
//! scale_soak [--edges E] [--degree D] [--chunk ARCS] [--steps N]
//!            [--seed S] [--max-secs SECS]
//! ```
//!
//! Streams a multi-million-edge web stand-in (default 4M edges) through
//! the external-sort [`CompactBuilder`] with a deliberately small chunk
//! capacity so runs actually spill to disk, then asserts the four claims
//! the substrate makes:
//!
//! 1. **memory bound** — the build's peak-RSS growth (`VmHWM` from
//!    `/proc/self/status`) stays within the documented budget: the stage
//!    buffer (`chunk × 8 B`), the offset table (`8 B × (n+1)`), the
//!    compressed output (with allocator headroom), and a fixed slack —
//!    never the `≈12 B/arc` a plain CSR build would need;
//! 2. **build determinism** — rebuilding the same stream with a different
//!    chunk capacity (different spill pattern) is byte-identical;
//! 3. **disk round trip** — `write_to` → `open` / `open_mmap` preserves
//!    every byte, passes checksum validation, and serves identical
//!    degrees and neighbor lists on a sampled node schedule;
//! 4. **walk bit-identity** — CNRW traces over the compact substrate
//!    match the decompressed plain CSR step-for-step across seeds.
//!
//! Any violated assert exits non-zero. The `--max-secs` wall-clock guard
//! is polled between phases: a slow runner skips remaining phases with a
//! notice and exits 0 (inconclusive, never red).

use std::sync::Arc;

use osn_experiments::runner::TrialPlan;
use osn_experiments::{Algorithm, Deadline};
use osn_graph::attributes::AttributedGraph;
use osn_graph::compact::{CompactBuilder, CompactCsr};
use osn_graph::generators::{web_graph_compact_with, WebGraphConfig};
use osn_graph::NodeId;

struct Options {
    edges: u64,
    degree: f64,
    chunk: usize,
    steps: usize,
    seed: u64,
    max_secs: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            edges: 4_000_000,
            degree: 16.0,
            chunk: 1 << 20,
            steps: 100_000,
            seed: 0x5CA1_E50AC,
            max_secs: 600,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| panic!("{flag} requires a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--edges" => opts.edges = value(&mut args, "--edges").parse().expect("--edges"),
            "--degree" => opts.degree = value(&mut args, "--degree").parse().expect("--degree"),
            "--chunk" => opts.chunk = value(&mut args, "--chunk").parse().expect("--chunk"),
            "--steps" => opts.steps = value(&mut args, "--steps").parse().expect("--steps"),
            "--seed" => opts.seed = value(&mut args, "--seed").parse().expect("--seed"),
            "--max-secs" => {
                opts.max_secs = value(&mut args, "--max-secs").parse().expect("--max-secs")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: scale_soak [--edges E] [--degree D] [--chunk ARCS] \
                     [--steps N] [--seed S] [--max-secs SECS]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn fail(message: String) -> ! {
    eprintln!("scale_soak FAIL: {message}");
    std::process::exit(1);
}

fn guard(deadline: &Deadline, phase: &str) {
    if deadline.exceeded() {
        eprintln!(
            "scale_soak: wall-clock guard fired after {:.1?} before `{phase}` — \
             skipping remaining phases (inconclusive, not a failure)",
            deadline.elapsed()
        );
        std::process::exit(0);
    }
}

/// Peak resident set (`VmHWM`) in bytes, from `/proc/self/status`.
/// `None` off Linux — the memory assert is then skipped as inconclusive.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kib: u64 = status
        .lines()
        .find(|line| line.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kib * 1024)
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let opts = parse_args();
    let deadline = Deadline::after_secs(opts.max_secs);
    let nodes = ((2.0 * opts.edges as f64) / opts.degree).round() as usize;
    let communities = (nodes / 2_000).clamp(8, 2_048);
    let config = WebGraphConfig::new(nodes, opts.degree, opts.seed).with_communities(communities);
    eprintln!(
        "scale_soak: {} target edges over {nodes} nodes ({communities} communities), \
         chunk {} arcs, seed {:#x}",
        config.target_edges(),
        opts.chunk,
        opts.seed
    );

    // Phase 1: streaming build under the documented memory bound. The
    // chunk is far smaller than the arc count, so the builder must spill
    // and k-way-merge; peak-RSS growth may cover the stage buffer, the
    // offset table, and the compressed output (with allocator headroom +
    // fixed slack) — never the plain CSR's ≈12 B/arc.
    let rss_before = peak_rss_bytes();
    let built = web_graph_compact_with(&config, CompactBuilder::with_chunk_capacity(opts.chunk))
        .unwrap_or_else(|e| fail(format!("streaming build failed: {e}")));
    let rss_after = peak_rss_bytes();
    // Duplicate draws collapse during the merge, so the built count sits a
    // little under the raw stream target — but never above it, and a large
    // shortfall would mean the spill/merge lost arcs.
    if built.edge_count() > config.target_edges()
        || (built.edge_count() as f64) < 0.9 * config.target_edges() as f64
    {
        fail(format!(
            "built {} of {} target edges",
            built.edge_count(),
            config.target_edges()
        ));
    }
    match (rss_before, rss_after) {
        (Some(before), Some(after)) => {
            let growth = after.saturating_sub(before);
            let budget = (opts.chunk as u64) * 8
                + 8 * (nodes as u64 + 1)
                + 4 * built.byte_len() as u64
                + (48 << 20);
            if growth > budget {
                fail(format!(
                    "build grew peak RSS by {:.1} MiB, budget {:.1} MiB \
                     (chunk {:.1} MiB, offsets {:.1} MiB, output {:.1} MiB)",
                    mib(growth),
                    mib(budget),
                    mib(opts.chunk as u64 * 8),
                    mib(8 * (nodes as u64 + 1)),
                    mib(built.byte_len() as u64),
                ));
            }
            eprintln!(
                "scale_soak: memory bound OK — {} edges into {:.1} MiB compact \
                 ({:.2}x ratio), peak-RSS growth {:.1} MiB within {:.1} MiB budget",
                built.edge_count(),
                mib(built.byte_len() as u64),
                built.compression_ratio(),
                mib(growth),
                mib(budget),
            );
        }
        _ => eprintln!("scale_soak: /proc/self/status unavailable — memory bound skipped"),
    }

    // Phase 2: build determinism — a different chunk capacity changes the
    // spill pattern but must not change a single output byte.
    guard(&deadline, "determinism rebuild");
    let other_chunk = (opts.chunk / 3).max(2) | 1;
    let rebuilt = web_graph_compact_with(&config, CompactBuilder::with_chunk_capacity(other_chunk))
        .unwrap_or_else(|e| fail(format!("rebuild failed: {e}")));
    if rebuilt.as_bytes() != built.as_bytes() {
        fail(format!(
            "rebuild with chunk {other_chunk} is not byte-identical to chunk {}",
            opts.chunk
        ));
    }
    eprintln!(
        "scale_soak: build determinism OK (chunk {other_chunk} vs {})",
        opts.chunk
    );

    // Phase 3: disk round trip through both load paths.
    guard(&deadline, "disk round trip");
    let dir = std::env::temp_dir().join(format!("scale_soak_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(format!("temp dir: {e}")));
    let path = dir.join("web.osncc");
    built
        .write_to(&path)
        .unwrap_or_else(|e| fail(format!("write_to: {e}")));
    let loaded = CompactCsr::open(&path).unwrap_or_else(|e| fail(format!("open: {e}")));
    let mapped = CompactCsr::open_mmap(&path).unwrap_or_else(|e| fail(format!("open_mmap: {e}")));
    if loaded.as_bytes() != built.as_bytes() {
        fail("`open` did not read back identical bytes".into());
    }
    if let Err(e) = mapped.validate() {
        fail(format!("mapped snapshot failed checksum validation: {e}"));
    }
    let mut probe = 0usize;
    for _ in 0..4_096 {
        probe = (probe.wrapping_mul(48271) + 11) % nodes;
        let v = NodeId(probe as u32);
        if built.degree(v) != mapped.degree(v)
            || !built.neighbors_iter(v).eq(mapped.neighbors_iter(v))
        {
            fail(format!(
                "mapped snapshot disagrees with the in-memory build at node {v:?}"
            ));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    eprintln!(
        "scale_soak: disk round trip OK — {:.1} MiB file, mmap load is_mapped={}",
        mib(built.byte_len() as u64),
        mapped.is_mapped()
    );

    // Phase 4: walk bit-identity against the decompressed plain CSR.
    guard(&deadline, "walk bit-identity");
    let compact = Arc::new(built);
    let plain = compact
        .to_csr()
        .unwrap_or_else(|e| fail(format!("decompress: {e}")));
    let packed_plan = TrialPlan::from_compact(Arc::clone(&compact)).with_max_steps(opts.steps);
    let plain_plan =
        TrialPlan::new(Arc::new(AttributedGraph::bare(plain))).with_max_steps(opts.steps);
    for round in 0..3u64 {
        let seed = opts.seed ^ (round * 0x9E37_79B9);
        let a = packed_plan.run(&Algorithm::Cnrw, seed);
        let b = plain_plan.run(&Algorithm::Cnrw, seed);
        if a.nodes() != b.nodes() || a.start != b.start {
            fail(format!(
                "CNRW over compact diverged from plain at seed {seed:#x} \
                 ({} vs {} steps)",
                a.len(),
                b.len()
            ));
        }
    }
    eprintln!(
        "scale_soak: walk bit-identity OK — 3 seeds x {} CNRW steps",
        opts.steps
    );
    eprintln!(
        "scale_soak: all checks passed in {:.1?}",
        deadline.elapsed()
    );
}
