//! `service_soak` — CI smoke for the sampling service under a generated
//! multi-tenant workload.
//!
//! ```text
//! service_soak [--tenants N] [--jobs J] [--budget B] [--seed S]
//!              [--kill-slices K] [--tolerance FRAC] [--max-secs SECS]
//! ```
//!
//! Populates a [`SessionServer`] with hundreds of weighted tenants from the
//! seeded traffic generator (every endpoint realism knob on: rate limit,
//! heterogeneous latency, whole-request failures, per-id partial drops),
//! runs the fleet against one shared unique-query budget, and **asserts**:
//!
//! 1. **fair share** — every tenant's charged-query share lands within
//!    `--tolerance` (default 10%) relative of its configured weight share;
//! 2. **replay determinism** — an identically-constructed server reaches a
//!    byte-identical final snapshot;
//! 3. **resume determinism** — a server killed after `--kill-slices`
//!    scheduling slices, persisted through the `osn-serde` text form, and
//!    resumed into a fresh endpoint finishes byte-identical to the
//!    uninterrupted run.
//!
//! Any violated assert exits non-zero. The `--max-secs` wall-clock guard is
//! polled between phases: a slow runner skips remaining phases with a
//! notice and exits 0 (inconclusive, never red).

use osn_client::{BatchConfig, RateLimitConfig, SimulatedBatchOsn, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_experiments::Deadline;
use osn_serde::Value;
use osn_service::traffic::{populate, TrafficConfig};
use osn_service::{ServerConfig, SessionServer};

struct Options {
    tenants: usize,
    jobs: usize,
    budget: u64,
    seed: u64,
    kill_slices: usize,
    tolerance: f64,
    max_secs: u64,
}

impl Default for Options {
    fn default() -> Self {
        // 240 tenants (weights cycling 1:2:4) over a 20k-node snapshot:
        // the weight-1 charged target is 16_800/560 = 30 queries, well
        // above the single-round slice granularity, and per-tenant demand
        // (2 jobs x at least 600 steps each) dwarfs even the weight-4
        // target of 120, keeping every tenant backlogged until the shared
        // budget dies — the regime where fair share is exact.
        Options {
            tenants: 240,
            jobs: 2,
            budget: 16_800,
            seed: 0x50AC,
            kill_slices: 500,
            tolerance: 0.10,
            max_secs: 300,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next()
            .unwrap_or_else(|| panic!("{flag} requires a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tenants" => opts.tenants = value(&mut args, "--tenants").parse().expect("--tenants"),
            "--jobs" => opts.jobs = value(&mut args, "--jobs").parse().expect("--jobs"),
            "--budget" => opts.budget = value(&mut args, "--budget").parse().expect("--budget"),
            "--seed" => opts.seed = value(&mut args, "--seed").parse().expect("--seed"),
            "--kill-slices" => {
                opts.kill_slices = value(&mut args, "--kill-slices")
                    .parse()
                    .expect("--kill-slices")
            }
            "--tolerance" => {
                opts.tolerance = value(&mut args, "--tolerance")
                    .parse()
                    .expect("--tolerance")
            }
            "--max-secs" => {
                opts.max_secs = value(&mut args, "--max-secs").parse().expect("--max-secs")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: service_soak [--tenants N] [--jobs J] [--budget B] [--seed S] \
                     [--kill-slices K] [--tolerance FRAC] [--max-secs SECS]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn endpoint(
    network: &std::sync::Arc<osn_graph::attributes::AttributedGraph>,
    opts: &Options,
) -> SimulatedBatchOsn {
    let batch = BatchConfig::new(8)
        .with_in_flight(4)
        .with_rate_limit(RateLimitConfig {
            calls_per_window: 200,
            window_secs: 1.0,
        })
        .with_latency(0.002, 0.001)
        .with_per_id_latency(0.0002)
        .with_failure_every(23)
        .with_drop_node_every(37)
        .with_seed(opts.seed ^ 0x5EED);
    SimulatedBatchOsn::configured(
        SimulatedOsn::new_shared(network.clone()),
        batch,
        Some(opts.budget),
    )
}

fn build_server(
    network: &std::sync::Arc<osn_graph::attributes::AttributedGraph>,
    opts: &Options,
) -> SessionServer {
    let mut server = SessionServer::new(
        endpoint(network, opts),
        ServerConfig::new().with_rounds_per_slice(1),
    );
    populate(
        &mut server,
        &TrafficConfig::new(opts.tenants, opts.jobs)
            .with_seed(opts.seed)
            .with_max_steps(1200)
            .with_max_walkers(1),
    );
    server
}

fn fail(message: String) -> ! {
    eprintln!("service_soak FAIL: {message}");
    std::process::exit(1);
}

fn guard(deadline: &Deadline, phase: &str) {
    if deadline.exceeded() {
        eprintln!(
            "service_soak: wall-clock guard fired after {:.1?} before `{phase}` — \
             skipping remaining phases (inconclusive, not a failure)",
            deadline.elapsed()
        );
        std::process::exit(0);
    }
}

fn main() {
    let opts = parse_args();
    let deadline = Deadline::after_secs(opts.max_secs);
    let network = std::sync::Arc::new(gplus_like(Scale::Default, opts.seed).network);
    eprintln!(
        "service_soak: {} tenants x {} jobs over {} nodes, shared budget {}, seed {:#x}",
        opts.tenants,
        opts.jobs,
        network.graph.node_count(),
        opts.budget,
        opts.seed
    );

    // Phase 1: the reference run + fair-share assert.
    let mut reference = build_server(&network, &opts);
    reference.run_to_completion();
    if reference.remaining_budget() != Some(0) {
        fail(format!(
            "budget never contended ({:?} remaining) — the workload is too small \
             for a fair-share assertion",
            reference.remaining_budget()
        ));
    }
    let charged: Vec<u64> = (0..opts.tenants)
        .map(|t| reference.tenant_stats(t).charged)
        .collect();
    let total: u64 = charged.iter().sum();
    let weight_total: f64 = reference.tenants().iter().map(|t| t.weight).sum();
    let mut worst = (0.0f64, 0usize);
    for (t, spec) in reference.tenants().iter().enumerate() {
        let share = charged[t] as f64 / total as f64;
        let target = spec.weight / weight_total;
        let rel = (share - target).abs() / target;
        if rel > worst.0 {
            worst = (rel, t);
        }
        if rel > opts.tolerance {
            fail(format!(
                "tenant {t} (weight {}) charged share {share:.4} vs weight share \
                 {target:.4} — relative deviation {:.1}% exceeds the {:.0}% tolerance",
                spec.weight,
                rel * 100.0,
                opts.tolerance * 100.0
            ));
        }
    }
    let done = (0..reference.job_count())
        .filter(|&id| reference.job_result(id).is_some())
        .count();
    eprintln!(
        "service_soak: fair share OK — worst tenant {} deviates {:.1}% (tolerance {:.0}%); \
         {done}/{} jobs completed, {} unique queries charged in {:.1}s of virtual time",
        worst.1,
        worst.0 * 100.0,
        opts.tolerance * 100.0,
        reference.job_count(),
        total,
        reference.elapsed_secs()
    );
    let reference_final = reference
        .snapshot()
        .unwrap_or_else(|e| fail(format!("reference snapshot: {e}")))
        .to_pretty();

    // Phase 2: replay determinism.
    guard(&deadline, "replay");
    let mut replay = build_server(&network, &opts);
    replay.run_to_completion();
    let replay_final = replay
        .snapshot()
        .unwrap_or_else(|e| fail(format!("replay snapshot: {e}")))
        .to_pretty();
    if replay_final != reference_final {
        fail("an identically-constructed server reached a different final state".into());
    }
    eprintln!(
        "service_soak: replay determinism OK ({} snapshot bytes)",
        replay_final.len()
    );

    // Phase 3: kill mid-flight, resume from the text form, finish.
    guard(&deadline, "kill/resume");
    let mut killed = build_server(&network, &opts);
    let mut slices = 0usize;
    for _ in 0..opts.kill_slices {
        if !killed.step() {
            break;
        }
        slices += 1;
    }
    let text = killed
        .snapshot()
        .unwrap_or_else(|e| fail(format!("mid-flight snapshot: {e}")))
        .to_pretty();
    drop(killed);
    let parsed =
        Value::parse(&text).unwrap_or_else(|e| fail(format!("snapshot text re-parse: {e}")));
    let mut resumed = SessionServer::resume(
        endpoint(&network, &opts),
        ServerConfig::new().with_rounds_per_slice(1),
        &parsed,
    )
    .unwrap_or_else(|e| fail(format!("resume: {e}")));
    resumed.run_to_completion();
    let resumed_final = resumed
        .snapshot()
        .unwrap_or_else(|e| fail(format!("resumed snapshot: {e}")))
        .to_pretty();
    if resumed_final != reference_final {
        fail(format!(
            "a server killed after {slices} slices and resumed from its snapshot \
             diverged from the uninterrupted run"
        ));
    }
    eprintln!(
        "service_soak: resume determinism OK — killed after {slices} slices \
         ({} snapshot bytes), resumed bit-identical",
        text.len()
    );
    eprintln!(
        "service_soak: all checks passed in {:.1?}",
        deadline.elapsed()
    );
}
