//! # osn-bench
//!
//! Criterion benchmarks and reproduction binaries for every table and figure
//! of the paper's evaluation. See `benches/` for the per-figure benchmark
//! targets and `src/bin/repro.rs` for the full reproduction CLI.
