//! # osn-bench
//!
//! Criterion benchmarks and reproduction binaries for every table and figure
//! of the paper's evaluation. See `benches/` for the per-figure benchmark
//! targets and `src/bin/repro.rs` for the full reproduction CLI.
//!
//! The [`perf`] module backs the `repro perf` subcommand: it measures
//! walker steps/sec per (graph, algorithm, history backend) and records the
//! result to `BENCH_walkers.json`, the committed perf baseline that
//! `scripts/perf_check.sh` diffs against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;
