//! Walker-throughput measurement behind `repro perf`: the machine-readable
//! perf baseline (`BENCH_walkers.json`) and its regression check.
//!
//! Criterion benches print human-oriented timings; this module runs the
//! same backend-vs-backend walker matrix (`history_backends`'s per-graph
//! half) with plain `Instant` timing and records **steps per second** into
//! an [`ExperimentResult`] — one series per `graph/algorithm/backend`, one
//! point per repetition — so the numbers can be committed, diffed, and
//! trended across PRs. `scripts/perf_check.sh` re-measures in quick mode
//! and [`compare`]s against the committed baseline, warning (non-blocking)
//! past [`REGRESSION_TOLERANCE`].

use std::sync::Arc;
use std::time::Instant;

use osn_datasets::{facebook_like, gplus_like, Scale};
use osn_experiments::runner::TrialPlan;
use osn_experiments::{Algorithm, ExperimentResult, GroupingSpec, Series};
use osn_graph::attributes::AttributedGraph;
use osn_walks::{HistoryBackend, PlanMode};

/// Relative steps/sec drop beyond which [`compare`] emits a warning.
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// The two benchmark graphs — the single definition shared by
/// `walker_throughput`, `history_backends`, and `repro perf`, so the
/// committed baseline always measures the same workload the benches print.
pub fn bench_graphs() -> [(&'static str, Arc<AttributedGraph>); 2] {
    [
        ("facebook", Arc::new(facebook_like(Scale::Test, 1).network)),
        ("gplus", Arc::new(gplus_like(Scale::Test, 2).network)),
    ]
}

/// The history-backend-sensitive walkers every backend comparison measures
/// (shared with the `history_backends` bench for the same reason).
pub fn backend_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Cnrw,
        Algorithm::Gnrw(GroupingSpec::ByDegree),
        Algorithm::NbCnrw,
    ]
}

/// Measurement plan for one `repro perf` run.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Transitions per timed walk.
    pub steps: usize,
    /// Timed repetitions per (graph, algorithm, backend) cell; the *best*
    /// rep is what [`compare`] uses (least scheduler noise).
    pub reps: usize,
}

impl PerfConfig {
    /// Default plan: long enough walks for stable steps/sec.
    pub fn new() -> Self {
        PerfConfig {
            steps: 200_000,
            reps: 3,
        }
    }

    /// CI-sized plan (about a second). Keeps the walk length of the
    /// default plan — steps/sec depends on it through cache warm-up, so a
    /// shorter quick walk would read systematically slower than the
    /// committed baseline — and only drops repetitions.
    pub fn quick() -> Self {
        PerfConfig {
            steps: 200_000,
            reps: 1,
        }
    }
}

impl Default for PerfConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The measured matrix: [`backend_algorithms`] × both backends, plus SRW
/// as the no-history reference.
fn algorithms() -> Vec<(Algorithm, Vec<HistoryBackend>)> {
    let both = HistoryBackend::ALL.to_vec();
    let mut matrix = vec![(Algorithm::Srw, vec![HistoryBackend::Arena])];
    matrix.extend(backend_algorithms().into_iter().map(|a| (a, both.clone())));
    matrix
}

/// Series label for one cell, `graph/ALG/backend`.
fn label(graph: &str, alg: &Algorithm, backend: HistoryBackend) -> String {
    format!("{graph}/{}/{backend}", alg.label())
}

/// Time one trial plan: warm-up walk, then `reps` timed walks, recorded as
/// steps/sec per repetition.
fn time_cell(plan: &TrialPlan, alg: &Algorithm, reps: usize) -> (Vec<f64>, Vec<f64>) {
    // One untimed warm-up walk per cell (page in the snapshot).
    plan.run(alg, 0);
    let mut xs = Vec::with_capacity(reps);
    let mut ys = Vec::with_capacity(reps);
    for rep in 0..reps {
        let started = Instant::now();
        let done = plan.run(alg, rep as u64 + 1).len();
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        xs.push(rep as f64);
        ys.push(done as f64 / secs);
    }
    (xs, ys)
}

/// Run the full matrix and return the recorded steps/sec document.
///
/// GNRW's arena cells run **plan-backed** (shared [`osn_walks::GroupPlan`],
/// alias-mode group selection, batched draws) — the production fast path;
/// the plan is built once per graph outside the timed region, matching how
/// a fleet amortizes it. The per-step scratch derivation is kept as an
/// extra `graph/GNRW_By_Degree/scratch` series so the plan-vs-scratch gap
/// stays visible in the committed baseline; legacy cells stay scratch (the
/// alias path's circulation state is an arena-engine representation).
pub fn measure(config: &PerfConfig) -> ExperimentResult {
    let graphs = bench_graphs();
    let mut result = ExperimentResult::new(
        "BENCH_walkers",
        "Walker throughput baseline: steps/sec per graph, algorithm, and history backend",
        "repetition",
        "steps per second",
    )
    .with_note(format!(
        "steps={} reps={}; best rep is the comparison statistic; \
         regression tolerance {:.0}% (scripts/perf_check.sh, non-blocking); \
         GNRW arena cells are plan-backed (alias mode), the */scratch series \
         is the per-step partition reference",
        config.steps,
        config.reps,
        REGRESSION_TOLERANCE * 100.0
    ));
    for (gname, network) in &graphs {
        for (alg, backends) in algorithms() {
            // Group plans are per-graph precomputation, shared read-only:
            // build once per (graph, grouping), outside the timed region.
            let group_plan = alg.build_group_plan(network).map(Arc::new);
            for backend in backends {
                let mut plan =
                    TrialPlan::steps(network.clone(), config.steps).with_backend(backend);
                if backend == HistoryBackend::Arena {
                    if let Some(gp) = &group_plan {
                        plan = plan.with_group_plan(Arc::clone(gp), PlanMode::Alias);
                    }
                }
                let (xs, ys) = time_cell(&plan, &alg, config.reps);
                result = result.with_series(Series::new(label(gname, &alg, backend), xs, ys));
            }
            if group_plan.is_some() {
                // The scratch reference cell: same walker on the arena
                // backend, partition re-derived every step.
                let plan = TrialPlan::steps(network.clone(), config.steps)
                    .with_backend(HistoryBackend::Arena);
                let (xs, ys) = time_cell(&plan, &alg, config.reps);
                result = result.with_series(Series::new(
                    format!("{gname}/{}/scratch", alg.label()),
                    xs,
                    ys,
                ));
            }
        }
        // The compact-substrate cell: CNRW over the delta-varint snapshot
        // (bit-identical traces to the `/arena` twin above; the gap is
        // decode overhead). Paired with `graph/CNRW/arena` the ratio is
        // machine-independent, like the arena-over-legacy speedups.
        let compact = Arc::new(osn_graph::compact::CompactCsr::from_csr(&network.graph));
        let plan = TrialPlan::from_compact(compact).with_max_steps(config.steps);
        let (xs, ys) = time_cell(&plan, &Algorithm::Cnrw, config.reps);
        result = result.with_series(Series::new(format!("{gname}/CNRW/compact"), xs, ys));
    }
    result
}

/// Best (maximum) steps/sec across a series' repetitions.
fn best(series: &Series) -> f64 {
    series.y.iter().copied().fold(f64::NAN, f64::max)
}

/// Arena-over-legacy speedup per `graph/ALG` cell pair, computed *within*
/// one document. Both cells of a ratio share the host and the run, so this
/// statistic is machine-independent — the signal to trust when a fresh run
/// and the committed baseline come from different machine classes (e.g.
/// shared CI runners vs the recording machine), where the absolute
/// steps/sec comparison mostly measures the hardware.
pub fn speedups(doc: &ExperimentResult) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for series in &doc.series {
        if let Some(prefix) = series.label.strip_suffix("/arena") {
            if let Some(legacy) = doc.series_by_label(&format!("{prefix}/legacy")) {
                let (a, l) = (best(series), best(legacy));
                if a.is_finite() && l.is_finite() && l > 0.0 {
                    out.push((prefix.to_string(), a / l));
                }
            }
        }
    }
    out
}

/// Plan-over-scratch speedup per GNRW cell pair, pairing each
/// `graph/ALG/scratch` reference series with its plan-backed
/// `graph/ALG/arena` twin. Like [`speedups`], both cells of a ratio come
/// from one run on one host, so the statistic survives machine-class
/// changes — this is the number the group-plan work is accountable to
/// (the committed baseline records it at ~4–5x on the bench graphs).
pub fn plan_speedups(doc: &ExperimentResult) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for series in &doc.series {
        if let Some(prefix) = series.label.strip_suffix("/scratch") {
            if let Some(arena) = doc.series_by_label(&format!("{prefix}/arena")) {
                let (a, s) = (best(arena), best(series));
                if a.is_finite() && s.is_finite() && s > 0.0 {
                    out.push((prefix.to_string(), a / s));
                }
            }
        }
    }
    out
}

/// Outcome of one baseline comparison.
#[derive(Clone, Debug)]
pub struct PerfDelta {
    /// `graph/ALG/backend`.
    pub label: String,
    /// Best steps/sec in the current run.
    pub current: f64,
    /// Best steps/sec in the baseline.
    pub baseline: f64,
    /// `current / baseline - 1` (negative = slower than baseline).
    pub ratio_delta: f64,
    /// Whether the drop exceeds the tolerance.
    pub regressed: bool,
}

/// Diff `current` against `baseline`, flagging cells whose best steps/sec
/// dropped more than `tolerance` (e.g. [`REGRESSION_TOLERANCE`]). Cells
/// present on only one side are skipped — adding or retiring a walker must
/// not trip the check.
pub fn compare(
    current: &ExperimentResult,
    baseline: &ExperimentResult,
    tolerance: f64,
) -> Vec<PerfDelta> {
    let mut deltas = Vec::new();
    for base in &baseline.series {
        let Some(cur) = current.series_by_label(&base.label) else {
            continue;
        };
        let (b, c) = (best(base), best(cur));
        if !(b.is_finite() && c.is_finite()) || b <= 0.0 {
            continue;
        }
        let ratio_delta = c / b - 1.0;
        deltas.push(PerfDelta {
            label: base.label.clone(),
            current: c,
            baseline: b,
            ratio_delta,
            regressed: ratio_delta < -tolerance,
        });
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(label: &str, ys: &[f64]) -> ExperimentResult {
        ExperimentResult::new("BENCH_walkers", "t", "x", "y").with_series(Series::new(
            label,
            (0..ys.len()).map(|i| i as f64).collect(),
            ys.to_vec(),
        ))
    }

    #[test]
    fn quick_measure_records_full_matrix() {
        let result = measure(&PerfConfig {
            steps: 300,
            reps: 1,
        });
        // 2 graphs x (1 SRW + 3 history walkers x 2 backends + 1 GNRW
        // scratch reference + 1 CNRW compact-substrate cell) = 18 series.
        assert_eq!(result.series.len(), 18);
        for s in &result.series {
            assert!(best(s) > 0.0, "{} recorded no throughput", s.label);
        }
        for g in ["facebook", "gplus"] {
            assert!(
                result
                    .series_by_label(&format!("{g}/GNRW_By_Degree/scratch"))
                    .is_some(),
                "missing {g} scratch reference series"
            );
            assert!(
                result
                    .series_by_label(&format!("{g}/CNRW/compact"))
                    .is_some(),
                "missing {g} compact-substrate series"
            );
        }
        // Round-trips through the JSON the baseline file uses.
        let parsed = ExperimentResult::from_json(&result.to_json()).unwrap();
        assert_eq!(parsed.series.len(), result.series.len());
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let baseline = doc("g/CNRW/arena", &[100.0, 120.0]);
        let ok = compare(&doc("g/CNRW/arena", &[110.0]), &baseline, 0.15);
        assert_eq!(ok.len(), 1);
        assert!(!ok[0].regressed, "faster run must not warn");
        let slight = compare(&doc("g/CNRW/arena", &[105.0]), &baseline, 0.15);
        assert!(!slight[0].regressed, "12.5% drop is inside tolerance");
        let bad = compare(&doc("g/CNRW/arena", &[90.0]), &baseline, 0.15);
        assert!(bad[0].regressed, "25% drop must warn");
    }

    #[test]
    fn compare_skips_unmatched_series() {
        let baseline = doc("g/CNRW/arena", &[100.0]);
        let deltas = compare(&doc("g/CNRW/legacy", &[10.0]), &baseline, 0.15);
        assert!(deltas.is_empty());
    }

    #[test]
    fn plan_speedups_pair_plan_backed_arena_with_scratch_cells() {
        let result = ExperimentResult::new("BENCH_walkers", "t", "x", "y")
            .with_series(Series::new(
                "g/GNRW_By_Degree/scratch",
                vec![0.0],
                vec![40.0],
            ))
            .with_series(Series::new(
                "g/GNRW_By_Degree/arena",
                vec![0.0],
                vec![200.0],
            ))
            .with_series(Series::new("g/CNRW/arena", vec![0.0], vec![999.0]));
        let s = plan_speedups(&result);
        // CNRW has no scratch reference -> exactly the GNRW ratio.
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, "g/GNRW_By_Degree");
        assert!((s[0].1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn speedups_pair_arena_with_legacy_cells() {
        let result = ExperimentResult::new("BENCH_walkers", "t", "x", "y")
            .with_series(Series::new("g/CNRW/legacy", vec![0.0], vec![50.0]))
            .with_series(Series::new(
                "g/CNRW/arena",
                vec![0.0, 1.0],
                vec![120.0, 150.0],
            ))
            .with_series(Series::new("g/SRW/arena", vec![0.0], vec![999.0]));
        let s = speedups(&result);
        // SRW has no legacy twin -> exactly one ratio, best-vs-best.
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, "g/CNRW");
        assert!((s[0].1 - 3.0).abs() < 1e-12);
    }
}
