//! Batched client interface: batch endpoints, bounded in-flight windows,
//! transient failures, bounded retry.
//!
//! Real OSN APIs do not serve one neighbor list per HTTP round-trip: they
//! expose **batch endpoints** (e.g. `users/lookup?ids=a,b,c,…`) that accept
//! up to `B` ids per call, allow a bounded number of concurrent in-flight
//! requests, and fail transiently (drops, timeouts) at some background rate.
//! The synchronous [`crate::OsnClient`] hides all of that; this module
//! models it explicitly:
//!
//! * [`BatchOsnClient`] — the trait: `submit` up to
//!   [`BatchLimits::max_batch_size`] node ids as one request (refused while
//!   [`BatchLimits::max_in_flight`] requests are outstanding), then `poll`
//!   completions in virtual-completion-time order.
//! * [`SimulatedBatchOsn`] — the simulation, layered over the same
//!   machinery the synchronous path uses: a [`SimulatedOsn`] snapshot/cache
//!   for unique-query accounting, an optional hard unique-query budget, and
//!   a token-bucket rate limit over a [`VirtualClock`] — charged **per
//!   request attempt** (each batch call consumes one token, retries
//!   included), which is exactly how real platforms meter batch endpoints.
//!
//! ## Cost model
//!
//! The paper's §2.3 rule is preserved: the *budget* is charged **at most
//! once per unique node**, on successful delivery only. A node already in
//! the cache is served free; a node refused by the budget charges nothing
//! and stays uncached; a dropped request charges nothing at all. Requests
//! (and their retries) consume *rate-limit tokens* instead — the separation
//! real APIs make between "how much may you learn" (budget) and "how fast
//! may you ask" (rate).
//!
//! ## Failure model
//!
//! Failures are **deterministic and seeded** so tests can replay them: with
//! [`BatchConfig::failure_every`]` = Some(k)`, every `k`-th request attempt
//! (globally numbered, retries included) is dropped. A dropped attempt is
//! retried internally up to [`BatchConfig::max_retries`] times — each retry
//! consumes a fresh rate token and a fresh latency sample — before the
//! request surfaces as a permanent failure ([`BatchNodeError::Dropped`] for
//! every id in it). Real batch endpoints additionally fail **per id**: one
//! user of a `users/lookup` batch is suspended or transiently unreadable
//! while the batch-mates deliver fine. With
//! [`BatchConfig::drop_node_every`]` = Some(j)`, every `j`-th delivered id
//! (globally numbered across delivered requests) surfaces as
//! [`BatchNodeError::Dropped`] on its own — uncharged, resubmittable —
//! while the rest of its request succeeds.
//!
//! Per-request latency is `base_latency_secs` plus
//! `per_id_latency_secs × ids` (bigger batches take longer — heterogeneous
//! per-batch latency) plus a SplitMix64-seeded jitter in `[0,
//! jitter_secs)`, so completion *order* is reproducible for a given seed.

use std::fmt;

use osn_graph::{EdgeMutation, MutationOp, NodeId};
use osn_serde::Value;

use crate::budget::BudgetExhausted;
use crate::client::{OsnClient, SimulatedOsn};
use crate::rate::{RateLimitConfig, VirtualClock};
use crate::stats::QueryStats;

/// Static limits of a batch interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchLimits {
    /// Maximum node ids per request.
    pub max_batch_size: usize,
    /// Maximum concurrently outstanding requests.
    pub max_in_flight: usize,
}

/// AIMD (additive-increase / multiplicative-decrease) batch sizing.
///
/// Off by default. When configured via [`BatchConfig::with_adaptive`], the
/// endpoint's *advertised* [`BatchLimits::max_batch_size`] becomes dynamic:
/// it starts at the configured maximum, shrinks multiplicatively whenever a
/// request shows congestion (a retry, a permanent drop, or a completion
/// slower than [`Self::latency_target_secs`]), and creeps back up
/// additively on every clean, fast completion. Callers that re-read
/// `limits()` before each submission — as the orchestrator's coalescing
/// pump does — pick up the new size automatically; the fixed
/// [`BatchConfig::max_batch_size`] stays the hard ceiling and
/// [`Self::min_batch`] the floor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveBatchConfig {
    /// Smallest batch size congestion may shrink to (clamped to ≥ 1).
    pub min_batch: usize,
    /// Ids added to the advertised size per clean completion.
    pub increase: usize,
    /// Multiplicative shrink factor on congestion, clamped to `[0, 1)`.
    pub backoff: f64,
    /// Completions slower than this (in virtual seconds, measured from
    /// submission to final delivery) count as congestion; `INFINITY`
    /// disables latency-based backoff so only drops/retries shrink.
    pub latency_target_secs: f64,
}

impl AdaptiveBatchConfig {
    /// Halve on congestion, grow by one per clean completion, no
    /// latency-based backoff.
    pub fn new(min_batch: usize) -> Self {
        AdaptiveBatchConfig {
            min_batch: min_batch.max(1),
            increase: 1,
            backoff: 0.5,
            latency_target_secs: f64::INFINITY,
        }
    }

    /// Override the additive increment.
    #[must_use]
    pub fn with_increase(mut self, increase: usize) -> Self {
        self.increase = increase.max(1);
        self
    }

    /// Override the multiplicative backoff factor.
    #[must_use]
    pub fn with_backoff(mut self, backoff: f64) -> Self {
        self.backoff = backoff.clamp(0.0, 0.99);
        self
    }

    /// Treat completions slower than `secs` as congestion.
    #[must_use]
    pub fn with_latency_target(mut self, secs: f64) -> Self {
        self.latency_target_secs = secs.max(0.0);
        self
    }
}

/// Configuration of a [`SimulatedBatchOsn`].
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Maximum node ids per request (clamped to at least 1).
    pub max_batch_size: usize,
    /// Maximum outstanding requests (clamped to at least 1).
    pub max_in_flight: usize,
    /// Token-bucket rate limit charged per request **attempt** (retries
    /// included); `None` disables rate accounting.
    pub rate_limit: Option<RateLimitConfig>,
    /// Base virtual latency of one request, in seconds.
    pub base_latency_secs: f64,
    /// Additional virtual latency per id in the request, in seconds —
    /// bigger batches take longer (heterogeneous per-batch latency).
    pub per_id_latency_secs: f64,
    /// Uniform seeded jitter added to each attempt's latency, `[0, jitter)`.
    pub jitter_secs: f64,
    /// Drop every `k`-th request attempt (globally numbered, 1-based);
    /// `None` disables failure injection.
    pub failure_every: Option<u64>,
    /// Drop every `j`-th *delivered id* (globally numbered, 1-based) on its
    /// own while its batch-mates succeed — the per-id partial-failure mode
    /// of real batch endpoints. The id charges nothing and may be
    /// resubmitted. `None` disables per-id failures.
    pub drop_node_every: Option<u64>,
    /// Internal retries per request before it surfaces as permanently
    /// dropped.
    pub max_retries: u32,
    /// Seed of the latency-jitter stream.
    pub seed: u64,
    /// AIMD batch sizing on observed per-batch latency and failures;
    /// `None` (the default) keeps the advertised batch size fixed.
    pub adaptive: Option<AdaptiveBatchConfig>,
}

impl BatchConfig {
    /// A reliable batch endpoint: batches of `max_batch_size`, window of 4,
    /// no rate limit, no latency, no failures, 2 retries.
    pub fn new(max_batch_size: usize) -> Self {
        BatchConfig {
            max_batch_size: max_batch_size.max(1),
            max_in_flight: 4,
            rate_limit: None,
            base_latency_secs: 0.0,
            per_id_latency_secs: 0.0,
            jitter_secs: 0.0,
            failure_every: None,
            drop_node_every: None,
            max_retries: 2,
            seed: 0,
            adaptive: None,
        }
    }

    /// Set the in-flight window (clamped to at least 1).
    #[must_use]
    pub fn with_in_flight(mut self, window: usize) -> Self {
        self.max_in_flight = window.max(1);
        self
    }

    /// Meter request attempts against a token-bucket rate limit.
    #[must_use]
    pub fn with_rate_limit(mut self, config: RateLimitConfig) -> Self {
        self.rate_limit = Some(config);
        self
    }

    /// Set the per-request latency model (base plus seeded jitter).
    #[must_use]
    pub fn with_latency(mut self, base_secs: f64, jitter_secs: f64) -> Self {
        self.base_latency_secs = base_secs.max(0.0);
        self.jitter_secs = jitter_secs.max(0.0);
        self
    }

    /// Add per-id latency: each request takes `secs × ids` longer, so
    /// bigger batches complete later (heterogeneous per-batch latency).
    #[must_use]
    pub fn with_per_id_latency(mut self, secs: f64) -> Self {
        self.per_id_latency_secs = secs.max(0.0);
        self
    }

    /// Drop every `k`-th request attempt (deterministic failure injection).
    #[must_use]
    pub fn with_failure_every(mut self, k: u64) -> Self {
        self.failure_every = Some(k.max(1));
        self
    }

    /// Drop every `j`-th delivered id individually while its batch-mates
    /// succeed (deterministic per-id partial failures).
    #[must_use]
    pub fn with_drop_node_every(mut self, j: u64) -> Self {
        self.drop_node_every = Some(j.max(1));
        self
    }

    /// Set the bounded retry count.
    #[must_use]
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Seed the latency-jitter stream.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable AIMD batch sizing (see [`AdaptiveBatchConfig`]).
    #[must_use]
    pub fn with_adaptive(mut self, adaptive: AdaptiveBatchConfig) -> Self {
        self.adaptive = Some(adaptive);
        self
    }

    /// The static limits this configuration advertises.
    pub fn limits(&self) -> BatchLimits {
        BatchLimits {
            max_batch_size: self.max_batch_size.max(1),
            max_in_flight: self.max_in_flight.max(1),
        }
    }
}

/// Handle identifying one submitted request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TicketId(pub u64);

/// Why a [`BatchOsnClient::submit`] call was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The in-flight window is full; `poll` before submitting more.
    WindowFull {
        /// The window that is saturated.
        max_in_flight: usize,
    },
    /// More ids than [`BatchLimits::max_batch_size`] in one request.
    TooLarge {
        /// Ids in the refused request.
        len: usize,
        /// The advertised per-request maximum.
        max_batch_size: usize,
    },
    /// An empty id list.
    Empty,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::WindowFull { max_in_flight } => {
                write!(f, "in-flight window of {max_in_flight} requests is full")
            }
            SubmitError::TooLarge {
                len,
                max_batch_size,
            } => write!(
                f,
                "batch of {len} ids exceeds the maximum of {max_batch_size}"
            ),
            SubmitError::Empty => write!(f, "empty batch"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why one node of an otherwise delivered request has no neighbor list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchNodeError {
    /// The unique-query budget refused to charge this (new) node.
    Budget(BudgetExhausted),
    /// The request was dropped even after every retry; the node was never
    /// charged and may be resubmitted.
    Dropped,
}

impl fmt::Display for BatchNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchNodeError::Budget(e) => write!(f, "{e}"),
            BatchNodeError::Dropped => write!(f, "request dropped after bounded retries"),
        }
    }
}

/// The final outcome of one submitted request.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The ticket [`BatchOsnClient::submit`] returned for this request.
    pub ticket: TicketId,
    /// Attempts consumed (1 = succeeded first try; retries add one each).
    pub attempts: u32,
    /// Per-node results, in submission order. Budget refusals are per node
    /// (a batch can partially succeed); a permanently dropped request
    /// reports [`BatchNodeError::Dropped`] for every id.
    pub per_node: Vec<(NodeId, Result<Vec<NodeId>, BatchNodeError>)>,
}

/// A batch-endpoint view of an online social network.
///
/// The interaction is submit/poll: `submit` registers up to
/// [`BatchLimits::max_batch_size`] node ids as one in-flight request (or
/// refuses with [`SubmitError::WindowFull`]); `poll` completes the
/// earliest-finishing outstanding request, applying the implementation's
/// retry policy internally, so every submitted request eventually surfaces
/// exactly one [`BatchOutcome`]. Metadata peeks stay free, as in
/// [`OsnClient`].
pub trait BatchOsnClient {
    /// The advertised batch-size and in-flight limits.
    fn limits(&self) -> BatchLimits;

    /// Outstanding (submitted, not yet polled-out) requests.
    fn in_flight(&self) -> usize;

    /// Submit one request of up to [`BatchLimits::max_batch_size`] ids.
    ///
    /// # Errors
    /// [`SubmitError`] when the window is full, the batch is oversized, or
    /// the id list is empty. No state changes on error.
    fn submit(&mut self, ids: &[NodeId]) -> Result<TicketId, SubmitError>;

    /// Complete the earliest-finishing in-flight request and return its
    /// outcome; `None` when nothing is in flight.
    fn poll(&mut self) -> Option<BatchOutcome>;

    /// Poll-readiness hook: the virtual-clock instant at which the
    /// earliest-finishing in-flight request completes — i.e. when the next
    /// [`Self::poll`] event fires — or `None` when nothing is in flight (or
    /// the implementation does not model time). Event loops use this to
    /// *observe* the completion-time order `poll` will deliver without
    /// consuming the event; the reactor's determinism suites assert the
    /// canonical schedule against it. The default `None` is always safe.
    fn next_ready_at(&self) -> Option<f64> {
        None
    }

    /// Interface-side query accounting (unique = charged).
    fn stats(&self) -> QueryStats;

    /// Remaining unique-query budget; `None` means unlimited.
    fn remaining_budget(&self) -> Option<u64> {
        None
    }

    /// Degree of `u` as free listing metadata.
    fn peek_degree(&self, u: NodeId) -> usize;

    /// Attribute of `u` as free listing metadata.
    fn peek_attribute(&self, u: NodeId, name: &str) -> Option<f64>;

    /// Whether `u` has been delivered (and charged) by this endpoint before,
    /// so re-fetching it is free. The orchestrator hook that lets restart
    /// decisions ride the batch queue cheaply: the work-stealing policy
    /// prefers relocation targets the endpoint already served, and anything
    /// else it picks is fetched through the next coalesced batch like any
    /// other walker request. The default `false` is always safe.
    fn is_cached(&self, _u: NodeId) -> bool {
        false
    }
}

/// Running counters of batch-interface usage (requests, not nodes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Request attempts issued, retries included (= rate tokens consumed
    /// when a rate limit is configured).
    pub attempts: u64,
    /// Requests accepted by `submit`.
    pub submitted: u64,
    /// Node ids across all accepted requests.
    pub submitted_ids: u64,
    /// Internal retries of dropped attempts.
    pub retries: u64,
    /// Requests that surfaced as permanently dropped.
    pub dropped: u64,
    /// Individual ids dropped by per-id failure injection while the rest of
    /// their request delivered (see [`BatchConfig::drop_node_every`]).
    pub node_drops: u64,
}

/// One outstanding request of a [`SimulatedBatchOsn`].
#[derive(Clone, Debug)]
struct InFlight {
    ticket: TicketId,
    ids: Vec<NodeId>,
    /// Virtual instant the request was first submitted — retries keep the
    /// original, so adaptive sizing sees end-to-end latency.
    submitted_at: f64,
    completes_at: f64,
    attempts: u32,
    fails: bool,
}

/// Simulated batch endpoint over an in-memory snapshot (see module docs).
///
/// Layered over [`SimulatedOsn`] (the cache and unique-query accounting of
/// the synchronous path), plus an optional hard budget and a token-bucket
/// rate limit over a [`VirtualClock`] charged per request attempt.
#[derive(Clone, Debug)]
pub struct SimulatedBatchOsn {
    inner: SimulatedOsn,
    config: BatchConfig,
    budget_limit: u64,
    budget_remaining: Option<u64>,
    clock: VirtualClock,
    tokens: u64,
    window_started: f64,
    in_flight: Vec<InFlight>,
    next_ticket: u64,
    attempt_counter: u64,
    delivery_counter: u64,
    batch_stats: BatchStats,
    /// Currently advertised batch size; `config.max_batch_size` and never
    /// moved unless [`BatchConfig::adaptive`] is set.
    effective_batch: usize,
}

impl SimulatedBatchOsn {
    /// Expose `osn` through a batch endpoint with no budget.
    pub fn new(osn: SimulatedOsn, config: BatchConfig) -> Self {
        Self::configured(osn, config, None)
    }

    /// Fully configured constructor: an optional hard unique-query budget
    /// on top of the batch model. Accounting already performed by `osn` is
    /// preserved, and the budget is charged for unique queries already
    /// spent — mirroring [`crate::SharedOsn::configured`].
    pub fn configured(osn: SimulatedOsn, config: BatchConfig, budget: Option<u64>) -> Self {
        let tokens = config
            .rate_limit
            .map(|r| r.calls_per_window)
            .unwrap_or(u64::MAX);
        let spent = osn.stats().unique;
        let effective_batch = config.max_batch_size.max(1);
        SimulatedBatchOsn {
            budget_limit: budget.unwrap_or(0),
            budget_remaining: budget.map(|b| b.saturating_sub(spent)),
            inner: osn,
            config,
            clock: VirtualClock::default(),
            tokens,
            window_started: 0.0,
            in_flight: Vec::new(),
            next_ticket: 0,
            attempt_counter: 0,
            delivery_counter: 0,
            batch_stats: BatchStats::default(),
            effective_batch,
        }
    }

    /// The wrapped synchronous simulator (cache + accounting).
    pub fn inner(&self) -> &SimulatedOsn {
        &self.inner
    }

    /// Unwrap into the synchronous simulator, keeping cache and accounting.
    /// In-flight requests are discarded (they charged nothing yet).
    pub fn into_inner(self) -> SimulatedOsn {
        self.inner
    }

    /// The configuration in force.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Record one edge mutation against the wrapped simulator (see
    /// [`SimulatedOsn::apply_mutation`]): queries read through the delta
    /// overlay from now on, and an effective mutation evicts both endpoints
    /// from the cache so their next delivery is re-charged. Requests
    /// already in flight resolve at delivery time, so they observe the
    /// post-mutation listing — apply mutations at quiescent boundaries for
    /// deterministic replay.
    pub fn apply_mutation(&mut self, m: EdgeMutation) -> bool {
        self.inner.apply_mutation(m)
    }

    /// Record a batch of mutations, returning the sorted, deduplicated
    /// nodes whose neighbor lists changed (see
    /// [`SimulatedOsn::apply_mutations`]).
    pub fn apply_mutations(&mut self, ms: &[EdgeMutation]) -> Vec<NodeId> {
        self.inner.apply_mutations(ms)
    }

    /// Request-level counters (attempts, retries, drops).
    pub fn batch_stats(&self) -> BatchStats {
        self.batch_stats
    }

    /// The virtual clock: how long this workload "took" against the
    /// rate-limited platform (0 when no rate limit is configured).
    pub fn clock(&self) -> VirtualClock {
        self.clock
    }

    /// Advance the virtual clock to absolute time `secs`; a no-op when the
    /// clock is already past it. The job server uses this to realize tenant
    /// arrival times: when every admitted job is done and the next
    /// submission lies in the future, virtual time jumps forward to it.
    pub fn advance_clock_to(&mut self, secs: f64) {
        let now = self.clock.elapsed_secs();
        if secs > now {
            self.clock.advance(secs - now);
        }
    }

    /// Serialize the endpoint's dynamic state — cache membership, query and
    /// batch accounting, remaining budget, virtual clock, and the rate-token
    /// bucket — as an [`osn_serde::Value`]. Construction-time spec (the
    /// graph snapshot and the [`BatchConfig`]) is *not* serialized;
    /// [`Self::import_state`] validates against it instead.
    ///
    /// # Errors
    /// When requests are still in flight: snapshots are taken at quiescent
    /// boundaries only, so poll everything out first.
    pub fn export_state(&self) -> Result<Value, String> {
        if !self.in_flight.is_empty() {
            return Err(format!(
                "cannot snapshot a batch endpoint with {} request(s) in flight",
                self.in_flight.len()
            ));
        }
        let cached: Vec<Value> = self
            .inner
            .queried_flags()
            .iter()
            .enumerate()
            .filter(|&(_, &q)| q)
            .map(|(i, _)| Value::Uint(i as u64))
            .collect();
        let s = self.inner.stats();
        let bs = self.batch_stats;
        let mutations: Vec<Value> = self
            .inner
            .mutation_log()
            .iter()
            .map(|m| {
                Value::obj([
                    ("at", Value::Num(m.at)),
                    ("u", Value::Uint(u64::from(m.u.0))),
                    ("v", Value::Uint(u64::from(m.v.0))),
                    (
                        "op",
                        Value::Str(
                            match m.op {
                                MutationOp::Insert => "insert",
                                MutationOp::Delete => "delete",
                            }
                            .into(),
                        ),
                    ),
                ])
            })
            .collect();
        Ok(Value::obj([
            ("cached", Value::Arr(cached)),
            ("mutations", Value::Arr(mutations)),
            (
                "stats",
                Value::obj([
                    ("issued", Value::Uint(s.issued)),
                    ("unique", Value::Uint(s.unique)),
                    ("cache_hits", Value::Uint(s.cache_hits)),
                ]),
            ),
            (
                "budget",
                match self.budget_remaining {
                    Some(b) => Value::Uint(b),
                    None => Value::Null,
                },
            ),
            ("clock_secs", Value::Num(self.clock.elapsed_secs())),
            ("tokens", Value::Uint(self.tokens)),
            ("window_started", Value::Num(self.window_started)),
            ("next_ticket", Value::Uint(self.next_ticket)),
            ("attempt_counter", Value::Uint(self.attempt_counter)),
            ("delivery_counter", Value::Uint(self.delivery_counter)),
            ("effective_batch", Value::Uint(self.effective_batch as u64)),
            (
                "batch_stats",
                Value::obj([
                    ("attempts", Value::Uint(bs.attempts)),
                    ("submitted", Value::Uint(bs.submitted)),
                    ("submitted_ids", Value::Uint(bs.submitted_ids)),
                    ("retries", Value::Uint(bs.retries)),
                    ("dropped", Value::Uint(bs.dropped)),
                    ("node_drops", Value::Uint(bs.node_drops)),
                ]),
            ),
        ]))
    }

    /// Restore state exported by [`Self::export_state`] into an endpoint
    /// built over the same graph snapshot, [`BatchConfig`], and budget
    /// shape. After a successful import the endpoint continues the original
    /// workload bit-identically: cache hits, budget charges, rate windows,
    /// and failure injection all pick up where the exporter left off.
    ///
    /// # Errors
    /// When requests are in flight, a cached node id is out of range or
    /// duplicated, or the budget shape (limited vs unlimited) disagrees
    /// with construction. `self` is unchanged on error.
    pub fn import_state(&mut self, state: &Value) -> Result<(), String> {
        if !self.in_flight.is_empty() {
            return Err(format!(
                "cannot restore over a batch endpoint with {} request(s) in flight",
                self.in_flight.len()
            ));
        }
        let n = self.inner.network().graph.node_count();
        let mut queried = vec![false; n];
        for v in state.field("cached")?.as_array()? {
            let i = v.decode::<u64>()? as usize;
            let slot = queried
                .get_mut(i)
                .ok_or_else(|| format!("cached node {i} out of range for a {n}-node snapshot"))?;
            if *slot {
                return Err(format!("duplicate cached node {i}"));
            }
            *slot = true;
        }
        let sv = state.field("stats")?;
        let stats = QueryStats {
            issued: sv.field("issued")?.decode()?,
            unique: sv.field("unique")?.decode()?,
            cache_hits: sv.field("cache_hits")?.decode()?,
        };
        let budget = match state.field("budget")? {
            Value::Null => None,
            other => Some(other.decode::<u64>()?),
        };
        if budget.is_some() != self.budget_remaining.is_some() {
            return Err(
                "budget mismatch: snapshot and endpoint disagree on whether a \
                 unique-query budget is in force"
                    .into(),
            );
        }
        let clock_secs: f64 = state.field("clock_secs")?.decode()?;
        let tokens: u64 = state.field("tokens")?.decode()?;
        let window_started: f64 = state.field("window_started")?.decode()?;
        let next_ticket: u64 = state.field("next_ticket")?.decode()?;
        let attempt_counter: u64 = state.field("attempt_counter")?.decode()?;
        let delivery_counter: u64 = state.field("delivery_counter")?.decode()?;
        let bv = state.field("batch_stats")?;
        let batch_stats = BatchStats {
            attempts: bv.field("attempts")?.decode()?,
            submitted: bv.field("submitted")?.decode()?,
            submitted_ids: bv.field("submitted_ids")?.decode()?,
            retries: bv.field("retries")?.decode()?,
            dropped: bv.field("dropped")?.decode()?,
            node_drops: bv.field("node_drops")?.decode()?,
        };
        // Absent in snapshots taken before adaptive sizing: restore the
        // configured (fixed) size.
        let mut effective_batch = self.config.max_batch_size.max(1);
        if let Ok(v) = state.field("effective_batch") {
            effective_batch =
                (v.decode::<u64>()? as usize).clamp(1, self.config.max_batch_size.max(1));
        }
        // Absent in snapshots taken before evolving-graph support: an empty
        // log restores a pristine overlay.
        let mut mutations = Vec::new();
        if let Ok(list) = state.field("mutations") {
            for mv in list.as_array()? {
                let at: f64 = mv.field("at")?.decode()?;
                let u = NodeId(mv.field("u")?.decode()?);
                let v = NodeId(mv.field("v")?.decode()?);
                mutations.push(match mv.field("op")?.as_str()? {
                    "insert" => EdgeMutation::insert(at, u, v),
                    "delete" => EdgeMutation::delete(at, u, v),
                    other => return Err(format!("unknown mutation op `{other}`")),
                });
            }
        }

        self.inner.restore_overlay(&mutations)?;
        self.inner.restore_accounting(queried, stats);
        self.budget_remaining = budget;
        self.clock = VirtualClock::default();
        if clock_secs > 0.0 {
            self.clock.advance(clock_secs);
        }
        self.tokens = tokens;
        self.window_started = window_started;
        self.next_ticket = next_ticket;
        self.attempt_counter = attempt_counter;
        self.delivery_counter = delivery_counter;
        self.batch_stats = batch_stats;
        self.effective_batch = effective_batch;
        Ok(())
    }

    /// Consume one rate token for a request attempt, advancing the virtual
    /// clock to the next window when the bucket is empty. Mirrors
    /// [`crate::RateLimitedOsn`], but metered per *request*, not per node.
    fn charge_token(&mut self) {
        let Some(rate) = self.config.rate_limit else {
            return;
        };
        if self.tokens == 0 {
            let next_window = self.window_started + rate.window_secs;
            if next_window > self.clock.elapsed_secs() {
                let wait = next_window - self.clock.elapsed_secs();
                self.clock.advance(wait);
            }
            self.window_started = self.clock.elapsed_secs();
            self.tokens = rate.calls_per_window;
        }
        self.tokens -= 1;
    }

    /// The batch size currently advertised through `limits()` — moves only
    /// under [`BatchConfig::adaptive`].
    pub fn effective_batch(&self) -> usize {
        self.effective_batch
    }

    /// Multiplicative decrease on congestion (drop, retry, slow delivery).
    fn batch_backoff(&mut self) {
        if let Some(a) = self.config.adaptive {
            let shrunk = (self.effective_batch as f64 * a.backoff).floor() as usize;
            self.effective_batch = shrunk.max(a.min_batch.max(1));
        }
    }

    /// Additive increase on a clean, fast delivery, capped at the
    /// configured hard maximum.
    fn batch_increase(&mut self) {
        if let Some(a) = self.config.adaptive {
            self.effective_batch = self
                .effective_batch
                .saturating_add(a.increase)
                .min(self.config.max_batch_size.max(1));
        }
    }

    /// Issue one attempt for the (re)queued request: consume a rate token,
    /// sample latency, and decide deterministically whether it drops.
    fn launch(&mut self, ticket: TicketId, ids: Vec<NodeId>, submitted_at: f64, attempts: u32) {
        self.charge_token();
        self.attempt_counter += 1;
        self.batch_stats.attempts += 1;
        let fails = self
            .config
            .failure_every
            .is_some_and(|k| self.attempt_counter.is_multiple_of(k));
        let jitter = if self.config.jitter_secs > 0.0 {
            let r = osn_graph::mix::splitmix64_stream(self.config.seed, self.attempt_counter);
            (r >> 11) as f64 / (1u64 << 53) as f64 * self.config.jitter_secs
        } else {
            0.0
        };
        let completes_at = self.clock.elapsed_secs()
            + self.config.base_latency_secs
            + self.config.per_id_latency_secs * ids.len() as f64
            + jitter;
        self.in_flight.push(InFlight {
            ticket,
            ids,
            submitted_at,
            completes_at,
            attempts,
            fails,
        });
    }

    /// Resolve one delivered id against cache, budget, and snapshot.
    fn resolve(&mut self, u: NodeId) -> Result<Vec<NodeId>, BatchNodeError> {
        if !self.inner.is_cached(u) {
            if let Some(remaining) = &mut self.budget_remaining {
                let Some(r) = remaining.checked_sub(1) else {
                    // Refused: charged nothing, recorded nothing, uncached.
                    return Err(BatchNodeError::Budget(BudgetExhausted {
                        budget: self.budget_limit,
                    }));
                };
                *remaining = r;
            }
        }
        Ok(self
            .inner
            .neighbors(u)
            .expect("bare simulator never fails")
            .to_vec())
    }
}

impl BatchOsnClient for SimulatedBatchOsn {
    fn limits(&self) -> BatchLimits {
        let mut limits = self.config.limits();
        if self.config.adaptive.is_some() {
            limits.max_batch_size = self.effective_batch;
        }
        limits
    }

    fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    fn submit(&mut self, ids: &[NodeId]) -> Result<TicketId, SubmitError> {
        let limits = self.limits();
        if ids.is_empty() {
            return Err(SubmitError::Empty);
        }
        if ids.len() > limits.max_batch_size {
            return Err(SubmitError::TooLarge {
                len: ids.len(),
                max_batch_size: limits.max_batch_size,
            });
        }
        if self.in_flight.len() >= limits.max_in_flight {
            return Err(SubmitError::WindowFull {
                max_in_flight: limits.max_in_flight,
            });
        }
        let ticket = TicketId(self.next_ticket);
        self.next_ticket += 1;
        self.batch_stats.submitted += 1;
        self.batch_stats.submitted_ids += ids.len() as u64;
        let now = self.clock.elapsed_secs();
        self.launch(ticket, ids.to_vec(), now, 1);
        Ok(ticket)
    }

    fn next_ready_at(&self) -> Option<f64> {
        // Mirror `poll`'s selection exactly: earliest completion, ties by
        // ticket. A retry relaunched by `poll` may complete later than this
        // instant, but the *request* selected here is the one `poll` will
        // service next.
        self.in_flight
            .iter()
            .min_by(|a, b| {
                a.completes_at
                    .total_cmp(&b.completes_at)
                    .then(a.ticket.cmp(&b.ticket))
            })
            .map(|req| req.completes_at.max(self.clock.elapsed_secs()))
    }

    fn poll(&mut self) -> Option<BatchOutcome> {
        loop {
            // Earliest completion first; ties broken by ticket so the order
            // is fully deterministic.
            let idx = self
                .in_flight
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.completes_at
                        .total_cmp(&b.completes_at)
                        .then(a.ticket.cmp(&b.ticket))
                })
                .map(|(i, _)| i)?;
            let req = self.in_flight.swap_remove(idx);
            if req.completes_at > self.clock.elapsed_secs() {
                let wait = req.completes_at - self.clock.elapsed_secs();
                self.clock.advance(wait);
            }
            if req.fails {
                if req.attempts <= self.config.max_retries {
                    // Transparent bounded retry: fresh token, fresh latency.
                    // A retry is a congestion signal for adaptive sizing.
                    self.batch_stats.retries += 1;
                    self.batch_backoff();
                    self.launch(req.ticket, req.ids, req.submitted_at, req.attempts + 1);
                    continue;
                }
                self.batch_stats.dropped += 1;
                self.batch_backoff();
                return Some(BatchOutcome {
                    ticket: req.ticket,
                    attempts: req.attempts,
                    per_node: req
                        .ids
                        .into_iter()
                        .map(|u| (u, Err(BatchNodeError::Dropped)))
                        .collect(),
                });
            }
            // Delivered: end-to-end latency over target shrinks the
            // advertised batch size; a clean, fast delivery grows it.
            let latency = req.completes_at - req.submitted_at;
            let slow = self
                .config
                .adaptive
                .is_some_and(|a| latency > a.latency_target_secs);
            if slow {
                self.batch_backoff();
            } else {
                self.batch_increase();
            }
            let per_node = req
                .ids
                .into_iter()
                .map(|u| {
                    // Per-id partial failure: this id drops on its own
                    // (uncharged, resubmittable) while its batch-mates
                    // resolve normally.
                    self.delivery_counter += 1;
                    let dropped = self
                        .config
                        .drop_node_every
                        .is_some_and(|j| self.delivery_counter.is_multiple_of(j));
                    if dropped {
                        self.batch_stats.node_drops += 1;
                        (u, Err(BatchNodeError::Dropped))
                    } else {
                        (u, self.resolve(u))
                    }
                })
                .collect();
            return Some(BatchOutcome {
                ticket: req.ticket,
                attempts: req.attempts,
                per_node,
            });
        }
    }

    fn stats(&self) -> QueryStats {
        self.inner.stats()
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.budget_remaining
    }

    fn peek_degree(&self, u: NodeId) -> usize {
        self.inner.peek_degree(u)
    }

    fn peek_attribute(&self, u: NodeId, name: &str) -> Option<f64> {
        self.inner.peek_attribute(u, name)
    }

    fn is_cached(&self, u: NodeId) -> bool {
        self.inner.is_cached(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::GraphBuilder;

    fn star_osn(leaves: u32) -> SimulatedOsn {
        let mut b = GraphBuilder::new();
        for i in 1..=leaves {
            b.push_edge(0, i);
        }
        SimulatedOsn::from_graph(b.build().unwrap())
    }

    fn ids(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    #[test]
    fn submit_validates_size_window_and_emptiness() {
        let mut c = SimulatedBatchOsn::new(star_osn(10), BatchConfig::new(3).with_in_flight(1));
        assert_eq!(c.submit(&[]), Err(SubmitError::Empty));
        assert_eq!(
            c.submit(&ids(0..4)),
            Err(SubmitError::TooLarge {
                len: 4,
                max_batch_size: 3
            })
        );
        c.submit(&ids(0..3)).unwrap();
        assert_eq!(
            c.submit(&ids(3..5)),
            Err(SubmitError::WindowFull { max_in_flight: 1 })
        );
        // Polling frees the window.
        assert!(c.poll().is_some());
        assert!(c.submit(&ids(3..5)).is_ok());
    }

    #[test]
    fn delivery_matches_graph_and_charges_unique_once() {
        let mut c = SimulatedBatchOsn::new(star_osn(6), BatchConfig::new(4));
        // Duplicate id inside one batch: the second occurrence is a hit.
        c.submit(&[NodeId(1), NodeId(2), NodeId(1)]).unwrap();
        let outcome = c.poll().unwrap();
        assert_eq!(outcome.attempts, 1);
        for (u, res) in &outcome.per_node {
            assert_eq!(res.as_ref().unwrap(), &vec![NodeId(0)], "node {u}");
        }
        let s = c.stats();
        assert_eq!((s.issued, s.unique, s.cache_hits), (3, 2, 1));
        // Re-fetching across requests is also free.
        c.submit(&[NodeId(2)]).unwrap();
        c.poll().unwrap();
        assert_eq!(c.stats().unique, 2);
    }

    #[test]
    fn mutations_survive_snapshot_round_trip() {
        let mut c = SimulatedBatchOsn::new(star_osn(5), BatchConfig::new(4));
        c.submit(&[NodeId(0), NodeId(1)]).unwrap();
        c.poll().unwrap();
        assert!(c.apply_mutation(EdgeMutation::insert(1.0, NodeId(1), NodeId(2))));
        assert!(c.apply_mutation(EdgeMutation::delete(2.0, NodeId(0), NodeId(3))));
        let snap = c.export_state().unwrap();

        // A fresh endpoint over the same base snapshot restores the overlay
        // and serves the post-mutation listings.
        let mut fresh = SimulatedBatchOsn::new(star_osn(5), BatchConfig::new(4));
        fresh.import_state(&snap).unwrap();
        assert_eq!(fresh.inner().mutation_log(), c.inner().mutation_log());
        fresh.submit(&[NodeId(1)]).unwrap();
        let out = fresh.poll().unwrap();
        assert_eq!(
            out.per_node[0].1.as_ref().unwrap(),
            &vec![NodeId(0), NodeId(2)]
        );
        assert_eq!(fresh.peek_degree(NodeId(0)), 4);

        // Pre-evolving snapshots (no `mutations` field) restore cleanly: a
        // mutated endpoint rolls back to a pristine overlay.
        let pristine = SimulatedBatchOsn::new(star_osn(5), BatchConfig::new(4))
            .export_state()
            .unwrap();
        assert!(pristine.field("mutations").is_ok());
        c.import_state(&pristine).unwrap();
        assert!(c.inner().mutation_log().is_empty());
        assert_eq!(c.peek_degree(NodeId(0)), 5);
    }

    #[test]
    fn budget_refuses_per_node_without_charging() {
        let mut c = SimulatedBatchOsn::configured(star_osn(8), BatchConfig::new(8), Some(2));
        c.submit(&ids(1..5)).unwrap();
        let outcome = c.poll().unwrap();
        let oks: Vec<bool> = outcome.per_node.iter().map(|(_, r)| r.is_ok()).collect();
        assert_eq!(oks, vec![true, true, false, false]);
        assert!(matches!(
            outcome.per_node[2].1,
            Err(BatchNodeError::Budget(BudgetExhausted { budget: 2 }))
        ));
        assert_eq!(c.remaining_budget(), Some(0));
        assert_eq!(c.stats().unique, 2);
        // Cached nodes stay free after exhaustion; refused nodes stay
        // refused (they were never cached).
        c.submit(&[NodeId(1), NodeId(3)]).unwrap();
        let again = c.poll().unwrap();
        assert!(again.per_node[0].1.is_ok());
        assert!(again.per_node[1].1.is_err());
        assert_eq!(c.stats().unique, 2, "never double-charged");
    }

    #[test]
    fn failure_every_k_is_retried_then_succeeds() {
        // Attempts are numbered globally: with k = 2 and 1 retry, attempt 2
        // (the first request's retry? no — the second attempt overall)
        // drops and is retried transparently.
        let config = BatchConfig::new(2)
            .with_failure_every(2)
            .with_max_retries(1);
        let mut c = SimulatedBatchOsn::new(star_osn(6), config);
        c.submit(&[NodeId(1)]).unwrap(); // attempt 1: ok
        let first = c.poll().unwrap();
        assert_eq!(first.attempts, 1);
        assert!(first.per_node[0].1.is_ok());
        c.submit(&[NodeId(2)]).unwrap(); // attempt 2: drops; retry = attempt 3: ok
        let second = c.poll().unwrap();
        assert_eq!(second.attempts, 2);
        assert!(second.per_node[0].1.is_ok());
        let bs = c.batch_stats();
        assert_eq!((bs.attempts, bs.retries, bs.dropped), (3, 1, 0));
        // Nothing was double-charged along the way.
        assert_eq!(c.stats().unique, 2);
    }

    #[test]
    fn exhausted_retries_surface_dropped_without_charging() {
        // Every attempt fails: after 1 + max_retries attempts the request
        // surfaces as Dropped and no node was charged.
        let config = BatchConfig::new(4)
            .with_failure_every(1)
            .with_max_retries(3);
        let mut c = SimulatedBatchOsn::new(star_osn(6), config);
        c.submit(&ids(1..4)).unwrap();
        let outcome = c.poll().unwrap();
        assert_eq!(outcome.attempts, 4);
        assert!(outcome
            .per_node
            .iter()
            .all(|(_, r)| matches!(r, Err(BatchNodeError::Dropped))));
        assert_eq!(c.stats().unique, 0);
        assert_eq!(c.batch_stats().dropped, 1);
    }

    #[test]
    fn rate_tokens_metered_per_attempt_advance_the_clock() {
        // 2 calls per 10-second window, zero latency: attempts 1-2 at t=0,
        // attempt 3 (a retry!) must wait for the next window.
        let rate = RateLimitConfig {
            calls_per_window: 2,
            window_secs: 10.0,
        };
        let config = BatchConfig::new(1)
            .with_rate_limit(rate)
            .with_failure_every(2)
            .with_max_retries(1)
            .with_in_flight(4);
        let mut c = SimulatedBatchOsn::new(star_osn(6), config);
        c.submit(&[NodeId(1)]).unwrap(); // attempt 1, t = 0
        c.submit(&[NodeId(2)]).unwrap(); // attempt 2 (drops), t = 0
        assert_eq!(c.clock().elapsed_secs(), 0.0);
        c.poll().unwrap();
        let second = c.poll().unwrap(); // retry = attempt 3 waits until t = 10
        assert!(second.per_node[0].1.is_ok());
        assert_eq!(c.clock().elapsed_secs(), 10.0);
        assert_eq!(c.batch_stats().attempts, 3);
    }

    #[test]
    fn latency_and_jitter_order_completions_deterministically() {
        let config = BatchConfig::new(1)
            .with_latency(1.0, 0.5)
            .with_in_flight(8)
            .with_seed(9);
        let run = |mut c: SimulatedBatchOsn| {
            for u in ids(1..5) {
                c.submit(&[u]).unwrap();
            }
            let mut order = Vec::new();
            while let Some(o) = c.poll() {
                order.push(o.per_node[0].0);
            }
            (order, c.clock().elapsed_secs())
        };
        let a = run(SimulatedBatchOsn::new(star_osn(6), config.clone()));
        let b = run(SimulatedBatchOsn::new(star_osn(6), config));
        assert_eq!(a, b, "same seed, same completion order and clock");
        assert!(
            a.1 >= 1.0 && a.1 < 1.5,
            "clock within latency+jitter: {}",
            a.1
        );
    }

    #[test]
    fn peeks_are_free() {
        let c = SimulatedBatchOsn::new(star_osn(5), BatchConfig::new(2));
        assert_eq!(c.peek_degree(NodeId(0)), 5);
        assert_eq!(c.peek_attribute(NodeId(0), "nope"), None);
        assert_eq!(c.stats().issued, 0);
    }

    #[test]
    fn per_id_drops_spare_batch_mates_and_charge_nothing() {
        // Every 3rd delivered id drops on its own: in a 4-id batch the 3rd
        // position fails while positions 1, 2, and 4 resolve normally.
        let config = BatchConfig::new(4).with_drop_node_every(3);
        let mut c = SimulatedBatchOsn::new(star_osn(6), config);
        c.submit(&ids(1..5)).unwrap();
        let outcome = c.poll().unwrap();
        let oks: Vec<bool> = outcome.per_node.iter().map(|(_, r)| r.is_ok()).collect();
        assert_eq!(oks, vec![true, true, false, true]);
        assert!(matches!(
            outcome.per_node[2].1,
            Err(BatchNodeError::Dropped)
        ));
        // The dropped id charged nothing and stays resubmittable.
        assert_eq!(c.stats().unique, 3);
        assert_eq!(c.batch_stats().node_drops, 1);
        c.submit(&[NodeId(3)]).unwrap(); // delivery 5: succeeds
        let again = c.poll().unwrap();
        assert!(again.per_node[0].1.is_ok());
        assert_eq!(c.stats().unique, 4);
        // The whole-request counter is untouched by per-id failures.
        assert_eq!(c.batch_stats().dropped, 0);
    }

    #[test]
    fn per_id_latency_makes_bigger_batches_slower() {
        // base 1s + 0.5s per id: a 1-id and a 3-id request submitted
        // together complete at t = 1.5 and t = 2.5 respectively.
        let config = BatchConfig::new(3)
            .with_latency(1.0, 0.0)
            .with_per_id_latency(0.5)
            .with_in_flight(2);
        let mut c = SimulatedBatchOsn::new(star_osn(6), config);
        c.submit(&ids(1..4)).unwrap();
        c.submit(&[NodeId(4)]).unwrap();
        // The small batch finishes first despite being submitted second.
        let first = c.poll().unwrap();
        assert_eq!(first.per_node[0].0, NodeId(4));
        assert_eq!(c.clock().elapsed_secs(), 1.5);
        let second = c.poll().unwrap();
        assert_eq!(second.per_node.len(), 3);
        assert_eq!(c.clock().elapsed_secs(), 2.5);
    }

    #[test]
    fn advance_clock_to_is_monotone() {
        let mut c = SimulatedBatchOsn::new(star_osn(4), BatchConfig::new(2));
        c.advance_clock_to(5.0);
        assert_eq!(c.clock().elapsed_secs(), 5.0);
        c.advance_clock_to(3.0); // already past: no-op
        assert_eq!(c.clock().elapsed_secs(), 5.0);
    }

    #[test]
    fn export_import_round_trips_through_text() {
        // A workload with every knob active: rate limit, latency, whole-
        // request failures, per-id drops, a hard budget.
        let config = BatchConfig::new(3)
            .with_rate_limit(RateLimitConfig {
                calls_per_window: 4,
                window_secs: 10.0,
            })
            .with_latency(0.25, 0.1)
            .with_per_id_latency(0.05)
            .with_failure_every(5)
            .with_drop_node_every(7)
            .with_seed(11);
        let fresh = || SimulatedBatchOsn::configured(star_osn(12), config.clone(), Some(9));
        let drive = |c: &mut SimulatedBatchOsn, batches: std::ops::Range<u32>| {
            for lo in batches {
                c.submit(&[NodeId(lo % 12), NodeId((lo + 1) % 12)]).unwrap();
                c.poll().unwrap();
            }
        };

        // Reference: one uninterrupted endpoint.
        let mut reference = fresh();
        drive(&mut reference, 0..9);

        // Kill after 4 batches, persist through the text form, restore into
        // a cold endpoint, and finish the workload.
        let mut first = fresh();
        drive(&mut first, 0..4);
        let text = first.export_state().unwrap().to_pretty();
        let mut resumed = fresh();
        resumed
            .import_state(&Value::parse(&text).map_err(|e| e.to_string()).unwrap())
            .unwrap();
        drive(&mut resumed, 4..9);

        assert_eq!(resumed.stats(), reference.stats());
        assert_eq!(resumed.batch_stats(), reference.batch_stats());
        assert_eq!(resumed.remaining_budget(), reference.remaining_budget());
        assert_eq!(
            resumed.clock().elapsed_secs().to_bits(),
            reference.clock().elapsed_secs().to_bits()
        );
        assert_eq!(
            resumed.export_state().unwrap().to_pretty(),
            reference.export_state().unwrap().to_pretty(),
            "full state must round-trip bit-identically"
        );
    }

    #[test]
    fn export_refuses_in_flight_and_import_validates() {
        let mut c = SimulatedBatchOsn::new(star_osn(4), BatchConfig::new(2));
        c.submit(&[NodeId(4)]).unwrap();
        assert!(c.export_state().unwrap_err().contains("in flight"));
        c.poll().unwrap();
        let snap = c.export_state().unwrap();

        // Budget shape must match construction.
        let mut budgeted = SimulatedBatchOsn::configured(star_osn(4), BatchConfig::new(2), Some(3));
        assert!(budgeted
            .import_state(&snap)
            .unwrap_err()
            .contains("budget mismatch"));

        // A smaller snapshot rejects out-of-range cached ids.
        let mut tiny = SimulatedBatchOsn::new(star_osn(2), BatchConfig::new(2));
        assert!(tiny
            .import_state(&snap)
            .unwrap_err()
            .contains("out of range"));

        // The matching shape restores fine.
        let mut ok = SimulatedBatchOsn::new(star_osn(4), BatchConfig::new(2));
        ok.import_state(&snap).unwrap();
        assert_eq!(ok.stats(), c.stats());
    }

    #[test]
    fn adaptive_shrinks_on_failure_and_tracks_limits() {
        // Every 2nd attempt drops: each retried request halves the
        // advertised batch; clean completions then grow it back by 1.
        let config = BatchConfig::new(8)
            .with_failure_every(2)
            .with_max_retries(2)
            .with_adaptive(AdaptiveBatchConfig::new(2));
        let mut c = SimulatedBatchOsn::new(star_osn(10), config);
        assert_eq!(c.limits().max_batch_size, 8, "starts at the hard maximum");
        c.submit(&ids(1..3)).unwrap(); // attempt 1: ok → grow (capped at 8)
        c.poll().unwrap();
        assert_eq!(c.effective_batch(), 8);
        c.submit(&ids(3..5)).unwrap(); // attempt 2 drops → 4; retry ok → 5
        c.poll().unwrap();
        assert_eq!(c.effective_batch(), 5);
        assert_eq!(c.limits().max_batch_size, 5, "limits track the AIMD size");
        // Oversized submissions are refused against the *current* size.
        assert!(matches!(
            c.submit(&ids(1..8)),
            Err(SubmitError::TooLarge {
                max_batch_size: 5,
                ..
            })
        ));
    }

    #[test]
    fn adaptive_never_shrinks_below_floor() {
        let config = BatchConfig::new(8)
            .with_failure_every(1) // every attempt drops
            .with_max_retries(0)
            .with_adaptive(AdaptiveBatchConfig::new(3).with_backoff(0.5));
        let mut c = SimulatedBatchOsn::new(star_osn(10), config);
        for _ in 0..6 {
            c.submit(&[NodeId(1)]).unwrap();
            c.poll().unwrap();
        }
        assert_eq!(c.effective_batch(), 3, "clamped at min_batch");
    }

    #[test]
    fn adaptive_latency_target_backs_off_slow_batches() {
        // 0.2s per id with a 0.5s target: 3-id batches (0.6s) shrink the
        // size, 1-id batches (0.2s) grow it.
        let config = BatchConfig::new(4)
            .with_per_id_latency(0.2)
            .with_adaptive(AdaptiveBatchConfig::new(1).with_latency_target(0.5));
        let mut c = SimulatedBatchOsn::new(star_osn(10), config);
        c.submit(&ids(1..4)).unwrap();
        c.poll().unwrap();
        assert_eq!(c.effective_batch(), 2, "slow delivery halves 4 → 2");
        c.submit(&[NodeId(1)]).unwrap();
        c.poll().unwrap();
        assert_eq!(c.effective_batch(), 3, "fast delivery grows 2 → 3");
    }

    #[test]
    fn fixed_mode_is_unchanged_by_adaptive_machinery() {
        // The equivalence pin: with `adaptive: None` (the default) an
        // endpoint driven through a failing, latency-heavy workload behaves
        // exactly as before — static limits, identical stats and clock.
        let config = BatchConfig::new(3)
            .with_latency(0.25, 0.1)
            .with_per_id_latency(0.05)
            .with_failure_every(3)
            .with_max_retries(1)
            .with_seed(5);
        assert!(config.adaptive.is_none(), "off by default");
        let drive = |mut c: SimulatedBatchOsn| {
            for lo in 0..8u32 {
                assert_eq!(c.limits(), config.limits(), "limits never move");
                c.submit(&[NodeId(lo % 10), NodeId((lo + 1) % 10)]).unwrap();
                c.poll().unwrap();
            }
            (
                c.stats(),
                c.batch_stats(),
                c.clock().elapsed_secs().to_bits(),
            )
        };
        let fixed = drive(SimulatedBatchOsn::new(star_osn(10), config.clone()));
        let again = drive(SimulatedBatchOsn::new(star_osn(10), config.clone()));
        assert_eq!(fixed, again);
    }

    #[test]
    fn adaptive_state_survives_snapshot_round_trip() {
        let config = BatchConfig::new(8)
            .with_failure_every(2)
            .with_max_retries(2)
            .with_adaptive(AdaptiveBatchConfig::new(2));
        let mut c = SimulatedBatchOsn::new(star_osn(10), config.clone());
        c.submit(&ids(1..3)).unwrap();
        c.poll().unwrap();
        c.submit(&ids(3..5)).unwrap();
        c.poll().unwrap();
        let shrunk = c.effective_batch();
        assert_ne!(shrunk, 8);
        let snap = c.export_state().unwrap();
        let mut fresh = SimulatedBatchOsn::new(star_osn(10), config);
        fresh.import_state(&snap).unwrap();
        assert_eq!(fresh.effective_batch(), shrunk);
    }

    #[test]
    fn preserves_prior_accounting_and_budget_spend() {
        let mut osn = star_osn(5);
        osn.neighbors(NodeId(1)).unwrap();
        let c = SimulatedBatchOsn::configured(osn, BatchConfig::new(2), Some(3));
        assert_eq!(c.remaining_budget(), Some(2));
        assert_eq!(c.stats().unique, 1);
    }
}
