//! Unique-query budget enforcement.

use std::fmt;

use osn_graph::NodeId;

use crate::client::OsnClient;
use crate::stats::QueryStats;

/// The error returned when a walk tries to exceed its unique-query budget.
///
/// The paper's experiments run every sampler "with a query budget ranging
/// from 20 to 1000" — this type is how that cutoff surfaces to the walk
/// driver, which then stops and hands the collected samples to the
/// estimators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// The budget that was in force.
    pub budget: u64,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unique-query budget of {} exhausted", self.budget)
    }
}

impl std::error::Error for BudgetExhausted {}

/// Decorator enforcing a hard unique-query budget on any [`OsnClient`].
///
/// Cached repeats stay free (they don't consume the budget), matching the
/// paper's cost model. Once the budget is spent, any query for a *new* node
/// fails with [`BudgetExhausted`]; cached nodes remain queryable so the
/// driver can finish bookkeeping deterministically.
pub struct BudgetedClient<C> {
    inner: C,
    seen: Vec<bool>,
    budget: u64,
    used: u64,
}

impl<C: OsnClient> BudgetedClient<C> {
    /// Wrap `inner`, allowing at most `budget` unique queries.
    /// `node_capacity` sizes the seen-set (use the graph's node count).
    pub fn new(inner: C, budget: u64, node_capacity: usize) -> Self {
        BudgetedClient {
            inner,
            seen: vec![false; node_capacity],
            budget,
            used: 0,
        }
    }

    /// Unique queries consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The configured budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Unwrap, returning the inner client.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Access the inner client.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: OsnClient> OsnClient for BudgetedClient<C> {
    fn neighbors(&mut self, u: NodeId) -> Result<&[NodeId], BudgetExhausted> {
        let idx = u.index();
        if idx >= self.seen.len() {
            self.seen.resize(idx + 1, false);
        }
        if !self.seen[idx] {
            if self.used >= self.budget {
                return Err(BudgetExhausted {
                    budget: self.budget,
                });
            }
            self.seen[idx] = true;
            self.used += 1;
        }
        self.inner.neighbors(u)
    }

    fn peek_degree(&self, u: NodeId) -> usize {
        self.inner.peek_degree(u)
    }

    fn peek_attribute(&self, u: NodeId, name: &str) -> Option<f64> {
        self.inner.peek_attribute(u, name)
    }

    fn stats(&self) -> QueryStats {
        self.inner.stats()
    }

    fn remaining_budget(&self) -> Option<u64> {
        Some(self.budget - self.used)
    }

    fn is_cached(&self, u: NodeId) -> bool {
        self.inner.is_cached(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SimulatedOsn;
    use osn_graph::GraphBuilder;

    fn path_client() -> SimulatedOsn {
        // 0 - 1 - 2 - 3 - 4
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.push_edge(i, i + 1);
        }
        SimulatedOsn::from_graph(b.build().unwrap())
    }

    #[test]
    fn budget_cuts_off_new_nodes() {
        let mut c = BudgetedClient::new(path_client(), 2, 5);
        assert!(c.neighbors(NodeId(0)).is_ok());
        assert!(c.neighbors(NodeId(1)).is_ok());
        let err = c.neighbors(NodeId(2)).unwrap_err();
        assert_eq!(err, BudgetExhausted { budget: 2 });
        assert_eq!(c.used(), 2);
    }

    #[test]
    fn cached_nodes_stay_free_after_exhaustion() {
        let mut c = BudgetedClient::new(path_client(), 1, 5);
        c.neighbors(NodeId(3)).unwrap();
        assert!(c.neighbors(NodeId(3)).is_ok());
        assert!(c.neighbors(NodeId(0)).is_err());
        assert_eq!(c.remaining_budget(), Some(0));
    }

    #[test]
    fn remaining_budget_counts_down() {
        let mut c = BudgetedClient::new(path_client(), 3, 5);
        assert_eq!(c.remaining_budget(), Some(3));
        c.neighbors(NodeId(0)).unwrap();
        assert_eq!(c.remaining_budget(), Some(2));
        c.neighbors(NodeId(0)).unwrap(); // cached, no change
        assert_eq!(c.remaining_budget(), Some(2));
    }

    #[test]
    fn peeks_do_not_consume_budget() {
        let c = BudgetedClient::new(path_client(), 1, 5);
        assert_eq!(c.peek_degree(NodeId(2)), 2);
        assert_eq!(c.remaining_budget(), Some(1));
    }

    #[test]
    fn seen_set_grows_on_demand() {
        let mut c = BudgetedClient::new(path_client(), 10, 1);
        assert!(c.neighbors(NodeId(4)).is_ok());
        assert_eq!(c.used(), 1);
    }

    #[test]
    fn display_message() {
        let e = BudgetExhausted { budget: 7 };
        assert!(e.to_string().contains('7'));
    }
}
