//! The `OsnClient` trait and its in-memory simulation.

use std::sync::Arc;

use osn_graph::attributes::AttributedGraph;
use osn_graph::compact::{CompactCsr, DecodeCache};
use osn_graph::{AdjacencyRead, CsrGraph, DeltaOverlay, EdgeMutation, NodeId};

use crate::budget::BudgetExhausted;
use crate::stats::QueryStats;

/// The restricted access interface of an online social network (paper §2.1).
///
/// A query takes a user id and returns the user's neighbor list; the paper's
/// experiments charge **one unit per unique node queried** (repeats are free,
/// served from the sampler's local cache).
///
/// ### Metadata visibility
///
/// `peek_degree` / `peek_attribute` model the profile metadata a neighbor
/// listing exposes *without* a dedicated query (follower counts, displayed
/// attributes). The paper's cost accounting implies this visibility: GNRW
/// groups the neighbors of the current node by degree or by an attribute and
/// MHRW needs the proposed neighbor's degree for its acceptance test, yet
/// neither is charged extra queries in the evaluation. We make that rule
/// explicit and uniform across all algorithms.
pub trait OsnClient {
    /// Neighbor-list query for `u`.
    ///
    /// # Errors
    /// [`BudgetExhausted`] when a wrapper enforces a unique-query budget and
    /// the call would exceed it; the bare simulator never fails.
    fn neighbors(&mut self, u: NodeId) -> Result<&[NodeId], BudgetExhausted>;

    /// Degree of `u` as listing metadata (free of query cost).
    fn peek_degree(&self, u: NodeId) -> usize;

    /// Attribute value of `u` as listing metadata (free of query cost);
    /// `None` when the attribute does not exist.
    fn peek_attribute(&self, u: NodeId, name: &str) -> Option<f64>;

    /// Snapshot of the query accounting so far.
    fn stats(&self) -> QueryStats;

    /// Remaining charged queries before a budget wrapper cuts the walk off;
    /// `None` means unlimited.
    fn remaining_budget(&self) -> Option<u64> {
        None
    }

    /// Whether `u`'s neighbor list has already been fetched through this
    /// client — i.e. a further [`neighbors`](Self::neighbors) call for it is
    /// free. Advisory: the restart policies of the walk orchestrator use it
    /// to prefer relocation targets that cost nothing to re-query. The
    /// default `false` is always safe; caching implementations override it.
    fn is_cached(&self, _u: NodeId) -> bool {
        false
    }
}

/// In-memory simulation of an OSN's restricted interface over an
/// [`AttributedGraph`] snapshot, with unique-query accounting.
///
/// This mirrors the paper's setup exactly: *"we simulated a restricted-access
/// web interface precisely according to the definition in Section 2.1, and
/// ran our algorithms over the simulated interface."*
/// The snapshot is held behind an `Arc`, so cloning a `SimulatedOsn` (or
/// building many from [`SimulatedOsn::new_shared`]) shares the graph memory:
/// experiment harnesses run thousands of independent trials against one
/// loaded snapshot without duplication.
/// ### Evolving graphs
///
/// The simulated network can evolve mid-walk: [`Self::apply_mutation`] /
/// [`Self::apply_mutations`] record timestamped edge insertions and
/// deletions in a [`DeltaOverlay`] over the shared snapshot (which stays
/// immutable — other clients on the same `Arc` are unaffected). Every
/// neighbor query and degree peek reads through the overlay, and a mutated
/// node's cached flag is cleared so its next query is **re-charged** as a
/// fresh unique query — a real interface would have to be re-asked for the
/// changed listing.
#[derive(Clone, Debug)]
pub struct SimulatedOsn {
    network: Arc<AttributedGraph>,
    /// Compressed topology, when this client was built with
    /// [`Self::from_compact`]. Adjacency then decodes from here (through
    /// the scratch cache) and `network.graph` is an edgeless placeholder
    /// that only carries the node count for accounting.
    compact: Option<CompactTopology>,
    /// Live edge mutations over the immutable snapshot (empty until the
    /// driver applies a mutation schedule).
    overlay: DeltaOverlay,
    queried: Vec<bool>,
    stats: QueryStats,
}

/// A shared compressed snapshot plus this client's private decode cache.
#[derive(Clone, Debug)]
struct CompactTopology {
    graph: Arc<CompactCsr>,
    cache: DecodeCache,
}

/// Decode-cache slots per compact-backed client: covers a walker wave's hot
/// set while costing well under a megabyte on typical degrees.
const COMPACT_CACHE_SLOTS: usize = 1024;

impl SimulatedOsn {
    /// Wrap an attributed graph snapshot.
    pub fn new(network: AttributedGraph) -> Self {
        Self::new_shared(Arc::new(network))
    }

    /// Wrap an already-shared snapshot (no copy).
    pub fn new_shared(network: Arc<AttributedGraph>) -> Self {
        let n = network.graph.node_count();
        SimulatedOsn {
            network,
            compact: None,
            overlay: DeltaOverlay::new(),
            queried: vec![false; n],
            stats: QueryStats::default(),
        }
    }

    /// Wrap a bare graph (no attributes).
    pub fn from_graph(graph: CsrGraph) -> Self {
        Self::new(AttributedGraph::bare(graph))
    }

    /// Wrap a shared **compressed** snapshot: neighbor queries decode
    /// through a per-client scratch cache instead of borrowing CSR slices,
    /// and answers (hence walks) are bit-identical to a plain client over
    /// the decompressed graph. No attributes; [`Self::graph`] returns an
    /// edgeless placeholder — use [`Self::compact_graph`] for topology.
    pub fn from_compact(graph: Arc<CompactCsr>) -> Self {
        let n = graph.node_count();
        let placeholder = CsrGraph::edgeless(n).expect("compact snapshot is non-empty");
        SimulatedOsn {
            network: Arc::new(AttributedGraph::bare(placeholder)),
            compact: Some(CompactTopology {
                graph,
                cache: DecodeCache::new(COMPACT_CACHE_SLOTS),
            }),
            overlay: DeltaOverlay::new(),
            queried: vec![false; n],
            stats: QueryStats::default(),
        }
    }

    /// The compressed snapshot backing this client, when built with
    /// [`Self::from_compact`].
    pub fn compact_graph(&self) -> Option<&Arc<CompactCsr>> {
        self.compact.as_ref().map(|t| &t.graph)
    }

    /// Decode-cache `(hits, misses)` of a compact-backed client; `None`
    /// for plain clients (their neighbor reads are zero-copy borrows).
    pub fn decode_cache_stats(&self) -> Option<(u64, u64)> {
        self.compact.as_ref().map(|t| t.cache.stats())
    }

    /// The underlying **base** topology (ground-truth side of experiments; a
    /// real third party would not have this). Pre-mutation: when an overlay
    /// is live, [`Self::rebuilt_graph`] materializes the current topology.
    /// For a compact-backed client this is an edgeless placeholder — use
    /// [`Self::compact_graph`] instead.
    pub fn graph(&self) -> &CsrGraph {
        &self.network.graph
    }

    /// Record one edge mutation in the client's [`DeltaOverlay`], returning
    /// whether it was effective (inserting an existing edge or deleting an
    /// absent one is a no-op). An effective mutation clears both endpoints'
    /// queried flags: their neighbor lists changed, so the next query is
    /// re-charged as a fresh unique query.
    pub fn apply_mutation(&mut self, m: EdgeMutation) -> bool {
        let effective = match &mut self.compact {
            Some(t) => {
                let e = self.overlay.apply(t.graph.as_ref(), m);
                if e {
                    // Patched nodes are served from the overlay from now
                    // on; dropping stale slices just frees the slots.
                    t.cache.evict(m.u);
                    t.cache.evict(m.v);
                }
                e
            }
            None => self.overlay.apply(&self.network.graph, m),
        };
        if effective {
            self.uncache(m.u);
            self.uncache(m.v);
        }
        effective
    }

    /// Record a batch of mutations (e.g. one
    /// [`osn_graph::MutationSchedule`] drain), returning the sorted,
    /// deduplicated nodes whose neighbor lists changed — the list drivers
    /// feed to the walk backends' `invalidate_nodes`.
    pub fn apply_mutations(&mut self, ms: &[EdgeMutation]) -> Vec<NodeId> {
        let touched = match &mut self.compact {
            Some(t) => {
                let touched = self.overlay.apply_batch(t.graph.as_ref(), ms);
                for &v in &touched {
                    t.cache.evict(v);
                }
                touched
            }
            None => self.overlay.apply_batch(&self.network.graph, ms),
        };
        for &v in &touched {
            self.uncache(v);
        }
        touched
    }

    fn uncache(&mut self, v: NodeId) {
        if let Some(flag) = self.queried.get_mut(v.index()) {
            *flag = false;
        }
    }

    /// Replace the overlay by replaying `log` over the base snapshot — the
    /// restore side of the batch endpoint's snapshot import. Queried flags
    /// are untouched: the snapshot's `cached` set already reflects the
    /// evictions performed when the log was recorded live.
    ///
    /// # Errors
    /// When some logged mutation does not replay effectively over the base
    /// snapshot (a snapshot/graph mismatch). `self` is unchanged on error.
    pub(crate) fn restore_overlay(&mut self, log: &[EdgeMutation]) -> Result<(), String> {
        let overlay = match &self.compact {
            Some(t) => DeltaOverlay::from_log(t.graph.as_ref(), log),
            None => DeltaOverlay::from_log(&self.network.graph, log),
        };
        if overlay.log().len() != log.len() {
            return Err(format!(
                "mutation log does not replay over this snapshot: {} of {} effective",
                overlay.log().len(),
                log.len()
            ));
        }
        self.overlay = overlay;
        Ok(())
    }

    /// The live mutation overlay (empty until a mutation is applied).
    pub fn overlay(&self) -> &DeltaOverlay {
        &self.overlay
    }

    /// The effective mutations applied so far, in application order — the
    /// batch endpoint serializes this in its snapshot export.
    pub fn mutation_log(&self) -> &[EdgeMutation] {
        self.overlay.log()
    }

    /// Materialize the **current** topology (base snapshot plus overlay) as
    /// a fresh CSR — the ground truth an evolving-graph experiment compares
    /// its estimates against, and what the differential tests walk to check
    /// overlay reads are exact.
    pub fn rebuilt_graph(&self) -> CsrGraph {
        match &self.compact {
            Some(t) => t
                .graph
                .rebuilt(&self.overlay)
                .and_then(|g| g.to_csr())
                .expect("mutations were validated when applied"),
            None => self
                .network
                .graph
                .rebuilt(&self.overlay)
                .expect("mutations were validated when applied"),
        }
    }

    /// The underlying attributes (ground-truth side of experiments).
    pub fn network(&self) -> &AttributedGraph {
        &self.network
    }

    /// A shared handle to the snapshot (no copy) — lets drivers build
    /// value functions or ground truths over the same graph without
    /// borrowing the client.
    pub fn network_shared(&self) -> Arc<AttributedGraph> {
        Arc::clone(&self.network)
    }

    /// Reset all accounting, keeping the snapshot **and** any applied
    /// mutations (the overlay is world state, not accounting). Lets one
    /// loaded graph serve many independent trials without rebuilding.
    pub fn reset(&mut self) {
        self.queried.iter_mut().for_each(|q| *q = false);
        self.stats = QueryStats::default();
    }

    /// Number of distinct nodes queried so far.
    pub fn unique_queries(&self) -> u64 {
        self.stats.unique
    }

    /// Whether `u` has been queried before (a further query is free). The
    /// batch endpoint uses this to decide budget charging *before* a fetch.
    pub fn is_cached(&self, u: NodeId) -> bool {
        self.queried.get(u.index()).copied().unwrap_or(false)
    }

    /// The per-node queried flags (cache membership) — used by the batch
    /// endpoint's snapshot export.
    pub(crate) fn queried_flags(&self) -> &[bool] {
        &self.queried
    }

    /// Overwrite the accounting state — the restore side of the batch
    /// endpoint's snapshot import. `queried` must be node-count sized.
    pub(crate) fn restore_accounting(&mut self, queried: Vec<bool>, stats: QueryStats) {
        debug_assert_eq!(queried.len(), self.network.graph.node_count());
        self.queried = queried;
        self.stats = stats;
    }

    /// Decompose into `(snapshot, queried flags, stats)` — used by
    /// [`crate::SharedOsn`] to distribute the cache state over lock stripes.
    /// A live overlay is **folded** into a rebuilt snapshot first (the
    /// striped client reads topology lock-free from the shared `Arc`, so it
    /// cannot consult a per-handle overlay).
    pub(crate) fn into_parts(self) -> (Arc<AttributedGraph>, Vec<bool>, QueryStats) {
        // A compact-backed client is materialized to a plain CSR here: the
        // striped client's lock-free reads need borrowed neighbor slices,
        // which the packed form cannot hand out.
        let network = match &self.compact {
            Some(t) => {
                let graph = t
                    .graph
                    .rebuilt(&self.overlay)
                    .and_then(|g| g.to_csr())
                    .expect("mutations were validated when applied");
                let attributes = self.network.attributes.clone();
                Arc::new(
                    AttributedGraph::new(graph, attributes)
                        .expect("mutations never change the node count"),
                )
            }
            None if self.overlay.is_empty() => self.network,
            None => {
                let graph = self
                    .network
                    .graph
                    .rebuilt(&self.overlay)
                    .expect("mutations were validated when applied");
                let attributes = self.network.attributes.clone();
                Arc::new(
                    AttributedGraph::new(graph, attributes)
                        .expect("mutations never change the node count"),
                )
            }
        };
        (network, self.queried, self.stats)
    }

    /// Rebuild from parts — the inverse of [`Self::into_parts`], used when a
    /// [`crate::SharedOsn`] collapses back into a plain simulator.
    pub(crate) fn from_parts(
        network: Arc<AttributedGraph>,
        queried: Vec<bool>,
        stats: QueryStats,
    ) -> Self {
        debug_assert_eq!(queried.len(), network.graph.node_count());
        SimulatedOsn {
            network,
            overlay: DeltaOverlay::new(),
            compact: None,
            queried,
            stats,
        }
    }
}

impl OsnClient for SimulatedOsn {
    fn neighbors(&mut self, u: NodeId) -> Result<&[NodeId], BudgetExhausted> {
        let seen = &mut self.queried[u.index()];
        self.stats.record(!*seen);
        *seen = true;
        match &mut self.compact {
            Some(t) => {
                // Mutated nodes are served from the overlay's patch;
                // everything else decodes through the slice cache.
                if let Some(patch) = self.overlay.patched(u) {
                    Ok(patch)
                } else {
                    Ok(t.cache.neighbors(&t.graph, u))
                }
            }
            None => Ok(self.overlay.neighbors(&self.network.graph, u)),
        }
    }

    fn peek_degree(&self, u: NodeId) -> usize {
        match &self.compact {
            Some(t) => self.overlay.degree(t.graph.as_ref(), u),
            None => self.overlay.degree(&self.network.graph, u),
        }
    }

    fn peek_attribute(&self, u: NodeId, name: &str) -> Option<f64> {
        self.network.attributes.value_f64(name, u).ok()
    }

    fn stats(&self) -> QueryStats {
        self.stats
    }

    fn is_cached(&self, u: NodeId) -> bool {
        SimulatedOsn::is_cached(self, u)
    }
}

// Allow `&mut C` to be used wherever an `OsnClient` is expected, so drivers
// can hand walkers a reborrowed client.
impl<C: OsnClient + ?Sized> OsnClient for &mut C {
    fn neighbors(&mut self, u: NodeId) -> Result<&[NodeId], BudgetExhausted> {
        (**self).neighbors(u)
    }
    fn peek_degree(&self, u: NodeId) -> usize {
        (**self).peek_degree(u)
    }
    fn peek_attribute(&self, u: NodeId, name: &str) -> Option<f64> {
        (**self).peek_attribute(u, name)
    }
    fn stats(&self) -> QueryStats {
        (**self).stats()
    }
    fn remaining_budget(&self) -> Option<u64> {
        (**self).remaining_budget()
    }
    fn is_cached(&self, u: NodeId) -> bool {
        (**self).is_cached(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::attributes::NodeAttributes;
    use osn_graph::GraphBuilder;

    fn triangle_client() -> SimulatedOsn {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(0, 2)
            .build()
            .unwrap();
        SimulatedOsn::from_graph(g)
    }

    #[test]
    fn unique_accounting() {
        let mut c = triangle_client();
        c.neighbors(NodeId(0)).unwrap();
        c.neighbors(NodeId(1)).unwrap();
        c.neighbors(NodeId(0)).unwrap(); // cached
        let s = c.stats();
        assert_eq!(s.issued, 3);
        assert_eq!(s.unique, 2);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn neighbors_match_graph() {
        let mut c = triangle_client();
        let ns = c.neighbors(NodeId(1)).unwrap().to_vec();
        assert_eq!(ns, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn peeks_are_free() {
        let c = triangle_client();
        assert_eq!(c.peek_degree(NodeId(0)), 2);
        assert_eq!(c.stats().issued, 0);
        assert_eq!(c.peek_attribute(NodeId(0), "nope"), None);
    }

    #[test]
    fn peek_attribute_reads_columns() {
        let g = GraphBuilder::new().add_edge(0, 1).build().unwrap();
        let mut attrs = NodeAttributes::for_graph(&g);
        attrs.insert_uint("reviews", vec![3, 9]).unwrap();
        let c = SimulatedOsn::new(AttributedGraph::new(g, attrs).unwrap());
        assert_eq!(c.peek_attribute(NodeId(1), "reviews"), Some(9.0));
    }

    #[test]
    fn reset_clears_accounting() {
        let mut c = triangle_client();
        c.neighbors(NodeId(0)).unwrap();
        c.reset();
        assert_eq!(c.stats(), QueryStats::default());
        c.neighbors(NodeId(0)).unwrap();
        assert_eq!(c.stats().unique, 1);
    }

    #[test]
    fn mutations_read_through_and_recharge() {
        let mut c = triangle_client();
        c.neighbors(NodeId(0)).unwrap();
        c.neighbors(NodeId(1)).unwrap();
        assert_eq!(c.stats().unique, 2);

        // Delete 0-1: both endpoints drop out of the cache and re-charge.
        assert!(c.apply_mutation(EdgeMutation::delete(1.0, NodeId(0), NodeId(1))));
        assert!(!c.is_cached(NodeId(0)) && !c.is_cached(NodeId(1)));
        assert_eq!(c.neighbors(NodeId(0)).unwrap(), &[NodeId(2)]);
        assert_eq!(c.neighbors(NodeId(1)).unwrap(), &[NodeId(2)]);
        assert_eq!(c.stats().unique, 4, "mutated endpoints re-charge");
        assert_eq!(c.peek_degree(NodeId(0)), 1);

        // Re-deleting is ineffective: no cache eviction, no log growth.
        c.neighbors(NodeId(0)).unwrap();
        assert!(!c.apply_mutation(EdgeMutation::delete(2.0, NodeId(1), NodeId(0))));
        assert!(c.is_cached(NodeId(0)));
        assert_eq!(c.mutation_log().len(), 1);

        // The base snapshot is untouched; the rebuilt graph reflects the
        // overlay and matches what queries see.
        assert_eq!(c.graph().degree(NodeId(0)), 2);
        let rebuilt = c.rebuilt_graph();
        assert_eq!(rebuilt.neighbors(NodeId(0)), &[NodeId(2)]);
        assert_eq!(rebuilt.edge_count(), 2);
    }

    #[test]
    fn apply_mutations_returns_touched_nodes() {
        let mut c = triangle_client();
        let batch = [
            EdgeMutation::delete(0.5, NodeId(0), NodeId(1)),
            EdgeMutation::insert(0.7, NodeId(0), NodeId(1)), // net no-op, still touches
            EdgeMutation::delete(0.9, NodeId(1), NodeId(2)),
        ];
        let touched = c.apply_mutations(&batch);
        assert_eq!(touched, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(c.peek_degree(NodeId(2)), 1);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = triangle_client();
        let r = &mut c;
        r.neighbors(NodeId(0)).unwrap();
        assert_eq!(r.stats().unique, 1);
        assert_eq!(r.remaining_budget(), None);
    }

    fn compact_pair() -> (SimulatedOsn, SimulatedOsn) {
        // A graph with hubs, a chain and varied degrees.
        let g = GraphBuilder::new()
            .with_nodes(8)
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(0, 3)
            .add_edge(0, 7)
            .add_edge(1, 2)
            .add_edge(3, 4)
            .add_edge(4, 5)
            .add_edge(5, 6)
            .build()
            .unwrap();
        let compact = Arc::new(CompactCsr::from_csr(&g));
        (
            SimulatedOsn::from_compact(compact),
            SimulatedOsn::from_graph(g),
        )
    }

    #[test]
    fn compact_client_matches_plain() {
        let (mut compact, mut plain) = compact_pair();
        assert_eq!(compact.compact_graph().unwrap().node_count(), 8);
        for u in 0..8u32 {
            assert_eq!(compact.peek_degree(NodeId(u)), plain.peek_degree(NodeId(u)));
            assert_eq!(
                compact.neighbors(NodeId(u)).unwrap().to_vec(),
                plain.neighbors(NodeId(u)).unwrap().to_vec(),
                "node {u}"
            );
        }
        assert_eq!(compact.stats(), plain.stats());
        // Repeat reads hit both the budget cache and the decode cache.
        compact.neighbors(NodeId(0)).unwrap();
        let (hits, misses) = compact.decode_cache_stats().unwrap();
        assert!(hits >= 1, "decode cache hits {hits} / misses {misses}");
        assert!(plain.decode_cache_stats().is_none());
    }

    #[test]
    fn compact_client_mutations_match_plain() {
        let (mut compact, mut plain) = compact_pair();
        let batch = [
            EdgeMutation::delete(0.1, NodeId(0), NodeId(1)),
            EdgeMutation::insert(0.2, NodeId(2), NodeId(6)),
            EdgeMutation::delete(0.3, NodeId(4), NodeId(5)),
        ];
        assert_eq!(
            compact.apply_mutations(&batch),
            plain.apply_mutations(&batch)
        );
        for u in 0..8u32 {
            assert_eq!(compact.peek_degree(NodeId(u)), plain.peek_degree(NodeId(u)));
            assert_eq!(
                compact.neighbors(NodeId(u)).unwrap().to_vec(),
                plain.neighbors(NodeId(u)).unwrap().to_vec(),
                "node {u} after mutations"
            );
        }
        assert_eq!(compact.rebuilt_graph(), plain.rebuilt_graph());
        // Ineffective mutations are ineffective on both backends.
        assert!(!compact.apply_mutation(EdgeMutation::insert(0.4, NodeId(2), NodeId(6))));
        assert!(!plain.apply_mutation(EdgeMutation::insert(0.4, NodeId(2), NodeId(6))));
    }
}
