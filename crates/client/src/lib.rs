//! # osn-client
//!
//! A faithful simulation of the **restricted access model** of online social
//! networks (paper §2.1): the only operations available to a third party are
//!
//! * `neighbors(u)` — the full neighbor list of a user, and
//! * `attribute(u, name)` — the user's profile attributes,
//!
//! plus the two cost rules the paper's evaluation depends on (§2.3):
//!
//! * **query cost counts unique queries only** — a repeated query for the
//!   same node is served from a local cache and costs nothing;
//! * real platforms impose **query-rate limits** (e.g. Twitter's 15 calls per
//!   15 minutes), simulated here over a virtual clock so experiments can
//!   report wall-clock-equivalent sampling times without waiting.
//!
//! The central trait is [`OsnClient`]; [`SimulatedOsn`] implements it over an
//! in-memory [`osn_graph::attributes::AttributedGraph`]. [`BudgetedClient`]
//! decorates any client with a hard unique-query budget, and
//! [`RateLimitedOsn`] adds the rate-limit simulation. The paper runs its
//! algorithms "over the simulated interface" of downloaded snapshots —
//! exactly what this crate provides.
//!
//! For **parallel multi-walker sampling** (one crawler, many walker threads),
//! [`SharedOsn`] shares one snapshot and one cache between cloned handles
//! through an N-way lock-striped cache (stripe = `fnv(node) % N`) with
//! per-stripe hit/miss/contention counters ([`StripeStats`]) and an optional
//! budget enforced atomically across all handles — see [`shared`].
//!
//! For **batched I/O** — real platforms expose batch endpoints with bounded
//! in-flight windows and transient failures — [`BatchOsnClient`] models the
//! submit/poll interaction and [`SimulatedBatchOsn`] simulates it over the
//! same cache/budget/rate-limit machinery (latency + seeded jitter,
//! deterministic drop-every-`k`-th failure injection, bounded retry, budget
//! charged at most once per unique node) — see [`batch`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod budget;
mod client;
pub mod rate;
pub mod shared;
mod stats;

pub use batch::{
    AdaptiveBatchConfig, BatchConfig, BatchLimits, BatchNodeError, BatchOsnClient, BatchOutcome,
    BatchStats, SimulatedBatchOsn, SubmitError, TicketId,
};
pub use budget::{BudgetExhausted, BudgetedClient};
pub use client::{OsnClient, SimulatedOsn};
pub use rate::{RateLimitConfig, RateLimitedOsn, VirtualClock};
pub use shared::{SharedOsn, StripeStats, DEFAULT_STRIPES};
pub use stats::QueryStats;
