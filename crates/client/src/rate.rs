//! Query-rate-limit simulation over a virtual clock.
//!
//! Real platforms throttle third parties hard — the paper cites Twitter's
//! "15 calls every 15 minutes" and Yelp's 25,000 calls/day. Experiments
//! cannot wait real minutes per query, so this module advances a *virtual*
//! clock: every charged query consumes a token from a token bucket; when the
//! bucket is empty the clock jumps to the next refill. The resulting
//! [`VirtualClock::elapsed_secs`] is the wall-clock time the same walk would
//! have taken against the live platform — the quantity that makes "CNRW
//! needs 447 queries instead of 800" legible as hours of crawling saved.

use osn_graph::NodeId;

use crate::budget::BudgetExhausted;
use crate::client::OsnClient;
use crate::stats::QueryStats;

/// A token-bucket rate-limit description.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateLimitConfig {
    /// Queries allowed per window.
    pub calls_per_window: u64,
    /// Window length in (virtual) seconds.
    pub window_secs: f64,
}

impl RateLimitConfig {
    /// Twitter's published limit at the time of the paper: 15 calls / 15 min.
    pub fn twitter() -> Self {
        RateLimitConfig {
            calls_per_window: 15,
            window_secs: 15.0 * 60.0,
        }
    }

    /// Yelp's published limit: 25,000 calls / day.
    pub fn yelp() -> Self {
        RateLimitConfig {
            calls_per_window: 25_000,
            window_secs: 24.0 * 3600.0,
        }
    }

    /// Seconds per query when saturating the limit.
    pub fn secs_per_call(&self) -> f64 {
        self.window_secs / self.calls_per_window as f64
    }
}

/// Discrete virtual clock advanced by the rate limiter.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// Seconds elapsed since the walk started.
    pub fn elapsed_secs(&self) -> f64 {
        self.now
    }

    /// Elapsed time formatted as `h:mm:ss` for reports.
    pub fn display(&self) -> String {
        let total = self.now.round() as u64;
        format!(
            "{}:{:02}:{:02}",
            total / 3600,
            (total % 3600) / 60,
            total % 60
        )
    }

    pub(crate) fn advance(&mut self, secs: f64) {
        self.now += secs;
    }
}

/// Decorator simulating a platform rate limit on top of any [`OsnClient`].
///
/// Only *charged* (unique) queries consume tokens — cached repeats are local
/// and instantaneous, exactly the reason the paper counts unique queries.
pub struct RateLimitedOsn<C> {
    inner: C,
    config: RateLimitConfig,
    clock: VirtualClock,
    tokens: u64,
    window_started: f64,
    seen: Vec<bool>,
}

impl<C: OsnClient> RateLimitedOsn<C> {
    /// Wrap `inner` with the given rate limit.
    pub fn new(inner: C, config: RateLimitConfig) -> Self {
        RateLimitedOsn {
            tokens: config.calls_per_window,
            window_started: 0.0,
            clock: VirtualClock::default(),
            seen: Vec::new(),
            inner,
            config,
        }
    }

    /// The virtual clock (how long the walk "took" against the platform).
    pub fn clock(&self) -> VirtualClock {
        self.clock
    }

    /// Unwrap the inner client.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn charge_token(&mut self) {
        if self.tokens == 0 {
            // Jump to the start of the next window.
            let next_window = self.window_started + self.config.window_secs;
            if next_window > self.clock.elapsed_secs() {
                let wait = next_window - self.clock.elapsed_secs();
                self.clock.advance(wait);
            }
            self.window_started = self.clock.elapsed_secs();
            self.tokens = self.config.calls_per_window;
        }
        self.tokens -= 1;
    }
}

impl<C: OsnClient> OsnClient for RateLimitedOsn<C> {
    fn neighbors(&mut self, u: NodeId) -> Result<&[NodeId], BudgetExhausted> {
        // Track uniqueness in our own bitmap (mirrors the cache semantics of
        // the inner client) so we know *before* the call whether it is
        // charged, keeping this a single pass-through query.
        let idx = u.index();
        if idx >= self.seen.len() {
            self.seen.resize(idx + 1, false);
        }
        if !self.seen[idx] {
            self.seen[idx] = true;
            self.charge_token();
        }
        self.inner.neighbors(u)
    }

    fn peek_degree(&self, u: NodeId) -> usize {
        self.inner.peek_degree(u)
    }

    fn peek_attribute(&self, u: NodeId, name: &str) -> Option<f64> {
        self.inner.peek_attribute(u, name)
    }

    fn stats(&self) -> QueryStats {
        self.inner.stats()
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.inner.remaining_budget()
    }

    fn is_cached(&self, u: NodeId) -> bool {
        self.inner.is_cached(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SimulatedOsn;
    use osn_graph::GraphBuilder;

    fn star_client() -> SimulatedOsn {
        let mut b = GraphBuilder::new();
        for i in 1..=30 {
            b.push_edge(0, i);
        }
        SimulatedOsn::from_graph(b.build().unwrap())
    }

    fn tiny_limit() -> RateLimitConfig {
        RateLimitConfig {
            calls_per_window: 2,
            window_secs: 10.0,
        }
    }

    #[test]
    fn clock_advances_on_window_exhaustion() {
        let mut c = RateLimitedOsn::new(star_client(), tiny_limit());
        // 2 tokens free; third unique query waits until t=10.
        c.neighbors(NodeId(1)).unwrap();
        c.neighbors(NodeId(2)).unwrap();
        assert_eq!(c.clock().elapsed_secs(), 0.0);
        c.neighbors(NodeId(3)).unwrap();
        assert_eq!(c.clock().elapsed_secs(), 10.0);
        c.neighbors(NodeId(4)).unwrap();
        assert_eq!(c.clock().elapsed_secs(), 10.0);
        c.neighbors(NodeId(5)).unwrap();
        assert_eq!(c.clock().elapsed_secs(), 20.0);
    }

    #[test]
    fn cached_queries_cost_no_tokens() {
        let mut c = RateLimitedOsn::new(star_client(), tiny_limit());
        c.neighbors(NodeId(1)).unwrap();
        for _ in 0..100 {
            c.neighbors(NodeId(1)).unwrap();
        }
        assert_eq!(c.clock().elapsed_secs(), 0.0);
    }

    #[test]
    fn twitter_preset_is_one_per_minute() {
        assert!((RateLimitConfig::twitter().secs_per_call() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn clock_display() {
        let mut clock = VirtualClock::default();
        clock.advance(3_723.0);
        assert_eq!(clock.display(), "1:02:03");
    }

    #[test]
    fn stats_pass_through() {
        let mut c = RateLimitedOsn::new(star_client(), tiny_limit());
        c.neighbors(NodeId(1)).unwrap();
        c.neighbors(NodeId(1)).unwrap();
        assert_eq!(c.stats().issued, 2);
        assert_eq!(c.stats().unique, 1);
    }

    #[test]
    fn yelp_preset() {
        let y = RateLimitConfig::yelp();
        assert!((y.secs_per_call() - 3.456).abs() < 1e-9);
    }
}
