//! Thread-safe shared client for parallel random walks, with a lock-striped
//! cache.
//!
//! The paper's related-work section cites Alon et al., *"Many random walks
//! are faster than one"* — running several walkers against one interface and
//! pooling their queries through a **shared cache**. [`SharedOsn`] makes that
//! pattern expressible: clone a handle per walker thread; all handles share
//! one snapshot, so a node queried by any walker is cached (free) for every
//! other walker, and the unique-query count is global.
//!
//! ## Lock striping
//!
//! A single global mutex serializes every walker on the hot `neighbors` path
//! even though two walkers visiting *different* nodes never touch the same
//! cache entry. [`SharedOsn`] therefore shards the mutable cache state
//! (queried-set and counters) into `N` **stripes**, assigning each node to
//! stripe `fnv(node) % N` ([`osn_graph::fnv`]). Walkers only contend when
//! they hit the same stripe at the same instant; the immutable graph snapshot
//! itself is read lock-free through an [`Arc`]. Per-stripe
//! [hit/miss/contention counters](StripeStats) make the contention that
//! remains observable, and the `multiwalk_contention` bench in `osn-bench`
//! measures it (1/2/4/8 walkers × 1/8/64 stripes).
//!
//! Striping is invisible to correctness: a node belongs to exactly one
//! stripe, so "was this node queried before" has the same answer as with one
//! global lock, and [`SharedOsn::global_stats`] (the sum over stripes) equals
//! the single-lock accounting bit-for-bit on any workload
//! (`tests/striped_cache.rs` pins this equivalence).
//!
//! ## Shared budgets
//!
//! For parallel budget-sweep experiments the unique-query budget must be
//! global across walkers, not per handle. [`SharedOsn::configured`] installs
//! an atomic budget shared by all clones: a query for a *new* node atomically
//! consumes one unit or fails with [`BudgetExhausted`]; cached nodes stay
//! free, exactly like [`crate::BudgetedClient`] in the single-walker world.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};

use osn_graph::attributes::AttributedGraph;
use osn_graph::fnv::{hash_node_id, FnvHashSet};
use osn_graph::NodeId;

use crate::budget::BudgetExhausted;
use crate::client::{OsnClient, SimulatedOsn};
use crate::stats::QueryStats;

/// Default stripe count for [`SharedOsn::new`]: enough to make contention
/// rare for typical walker counts (≤ 16) without measurable memory cost.
pub const DEFAULT_STRIPES: usize = 16;

/// Lock a mutex, recovering the data if a previous holder panicked.
///
/// This is the one place in the crate that handles lock poisoning (the
/// repeated `lock().unwrap_or_else(|p| p.into_inner())` pattern, now
/// deduplicated). Returns the guard plus whether poison was observed, so
/// callers with context (stripe index, holder id) can report *who* poisoned
/// *what* instead of swallowing it.
fn lock_recovering<T>(mutex: &Mutex<T>) -> (MutexGuard<'_, T>, bool) {
    match mutex.lock() {
        Ok(guard) => (guard, false),
        Err(poisoned) => {
            // Clear the sticky flag so each panic is reported exactly once
            // rather than on every later acquisition.
            mutex.clear_poison();
            (poisoned.into_inner(), true)
        }
    }
}

/// Observability snapshot of one cache stripe.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StripeStats {
    /// Queries answered by this stripe that hit an already-cached node.
    pub hits: u64,
    /// Queries that charged a new unique node (cache misses).
    pub misses: u64,
    /// Lock acquisitions that found the stripe lock already held and had to
    /// wait — the direct measure of walker-vs-walker contention.
    pub contention: u64,
    /// Times the stripe lock was recovered after a holder panicked.
    pub poison_recoveries: u64,
}

/// Mutable per-stripe cache state, protected by the stripe mutex.
struct StripeState {
    /// Node ids (of this stripe) that have been queried at least once.
    queried: FnvHashSet<u32>,
    /// Per-stripe accounting; [`SharedOsn::global_stats`] sums these.
    stats: QueryStats,
    /// Handle id of the current/most recent lock holder. After a poisoning
    /// panic this still names the culprit, letting the recovery message say
    /// which walker died rather than swallowing the context.
    holder: u32,
}

/// One cache stripe: the locked state plus lock-free counters that must stay
/// readable while the lock is held (or poisoned).
struct Stripe {
    state: Mutex<StripeState>,
    contention: AtomicU64,
    poison_recoveries: AtomicU64,
}

/// Shared atomic unique-query budget (see module docs).
struct SharedBudget {
    limit: u64,
    remaining: AtomicU64,
}

/// State shared by every cloned [`SharedOsn`] handle.
struct Shared {
    network: Arc<AttributedGraph>,
    stripes: Box<[Stripe]>,
    budget: Option<SharedBudget>,
    /// Next handle id (handle 0 is the constructor's).
    next_handle: AtomicU32,
    /// Human-readable records of every poison recovery.
    poison_log: Mutex<Vec<String>>,
}

/// A cloneable, thread-safe handle to a shared, lock-striped OSN cache.
///
/// Clone one handle per walker thread. All clones share the snapshot, the
/// cache, the accounting, and (if configured) the query budget; each clone
/// carries its own id (for poison attribution) and scratch buffer.
///
/// `neighbors` returns an owned `Vec` via [`SharedOsn::neighbors_owned`]
/// (no lock is held across the trait's borrowed return); the [`OsnClient`]
/// impl keeps a per-handle scratch buffer so walkers can use the trait
/// interface unchanged.
pub struct SharedOsn {
    shared: Arc<Shared>,
    /// This handle's id, recorded as the stripe-lock holder while locked.
    handle: u32,
    scratch: Vec<NodeId>,
}

impl Clone for SharedOsn {
    fn clone(&self) -> Self {
        SharedOsn {
            shared: Arc::clone(&self.shared),
            handle: self.shared.next_handle.fetch_add(1, Ordering::Relaxed),
            scratch: Vec::new(),
        }
    }
}

impl SharedOsn {
    /// Share `osn` between any number of cloned handles, with
    /// [`DEFAULT_STRIPES`] cache stripes and no budget.
    pub fn new(osn: SimulatedOsn) -> Self {
        Self::configured(osn, DEFAULT_STRIPES, None)
    }

    /// Share `osn` with an explicit stripe count (clamped to at least 1).
    /// `with_stripes(osn, 1)` reproduces the old single-global-lock behavior.
    pub fn with_stripes(osn: SimulatedOsn, stripes: usize) -> Self {
        Self::configured(osn, stripes, None)
    }

    /// Fully configured constructor: stripe count plus an optional shared
    /// unique-query budget enforced atomically across all handles.
    ///
    /// Accounting already performed by `osn` is preserved: its queried-set is
    /// distributed to the home stripe of each node, its accumulated
    /// [`QueryStats`] seed stripe 0 (so [`Self::global_stats`] continues the
    /// same totals), and a budget is charged for the unique queries already
    /// spent.
    pub fn configured(osn: SimulatedOsn, stripes: usize, budget: Option<u64>) -> Self {
        let stripes = stripes.max(1);
        let (network, queried, stats) = osn.into_parts();
        let mut states: Vec<StripeState> = (0..stripes)
            .map(|_| StripeState {
                queried: FnvHashSet::default(),
                stats: QueryStats::default(),
                holder: 0,
            })
            .collect();
        for (idx, _) in queried.iter().enumerate().filter(|(_, &q)| q) {
            let id = idx as u32;
            states[stripe_index(id, stripes)].queried.insert(id);
        }
        states[0].stats = stats;
        SharedOsn {
            shared: Arc::new(Shared {
                network,
                stripes: states
                    .into_iter()
                    .map(|state| Stripe {
                        state: Mutex::new(state),
                        contention: AtomicU64::new(0),
                        poison_recoveries: AtomicU64::new(0),
                    })
                    .collect(),
                budget: budget.map(|limit| SharedBudget {
                    limit,
                    remaining: AtomicU64::new(limit.saturating_sub(stats.unique)),
                }),
                next_handle: AtomicU32::new(1),
                poison_log: Mutex::new(Vec::new()),
            }),
            handle: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of cache stripes.
    pub fn stripe_count(&self) -> usize {
        self.shared.stripes.len()
    }

    /// The stripe `u` maps to (`fnv(u) % stripe_count`).
    pub fn stripe_of(&self, u: NodeId) -> usize {
        stripe_index(u.0, self.shared.stripes.len())
    }

    /// The shared snapshot (ground-truth side of experiments; a real third
    /// party would not have this). Lock-free.
    pub fn network(&self) -> &AttributedGraph {
        &self.shared.network
    }

    /// Lock stripe `idx`, counting contention and recovering from poisoning.
    ///
    /// On recovery the culprit handle id (the holder recorded before the
    /// panic) and the stripe index are appended to [`Self::poison_events`] —
    /// the cache state itself (queried-set inserts and counter increments
    /// are each atomic under the lock) stays valid.
    fn lock_stripe(&self, idx: usize) -> MutexGuard<'_, StripeState> {
        let stripe = &self.shared.stripes[idx];
        let (guard, was_poisoned) = match stripe.state.try_lock() {
            Ok(guard) => (guard, false),
            Err(TryLockError::Poisoned(poisoned)) => {
                stripe.state.clear_poison();
                (poisoned.into_inner(), true)
            }
            Err(TryLockError::WouldBlock) => {
                stripe.contention.fetch_add(1, Ordering::Relaxed);
                lock_recovering(&stripe.state)
            }
        };
        let mut guard = self.note_poison(idx, guard, was_poisoned);
        guard.holder = self.handle;
        guard
    }

    /// Lock stripe `idx` for **observation** (stats readers): recovers from
    /// poisoning like [`Self::lock_stripe`] but does not count contention or
    /// claim holdership, so monitoring threads polling stats cannot inflate
    /// the walker-vs-walker contention metric or disturb poison attribution.
    fn observe_stripe(&self, idx: usize) -> MutexGuard<'_, StripeState> {
        let (guard, was_poisoned) = lock_recovering(&self.shared.stripes[idx].state);
        self.note_poison(idx, guard, was_poisoned)
    }

    /// Record a poison recovery (counter + human-readable event naming the
    /// culprit holder and the recovering handle), if one happened.
    fn note_poison<'a>(
        &'a self,
        idx: usize,
        guard: MutexGuard<'a, StripeState>,
        was_poisoned: bool,
    ) -> MutexGuard<'a, StripeState> {
        if was_poisoned {
            self.shared.stripes[idx]
                .poison_recoveries
                .fetch_add(1, Ordering::Relaxed);
            let message = format!(
                "stripe {idx}: lock poisoned by walker handle {} (panicked mid-update); \
                 state recovered by walker handle {}",
                guard.holder, self.handle
            );
            lock_recovering(&self.shared.poison_log).0.push(message);
        }
        guard
    }

    /// Record a query for `u` in its stripe: classify hit/miss, enforce the
    /// shared budget on misses, and update the stripe counters.
    fn record_query(&self, u: NodeId) -> Result<(), BudgetExhausted> {
        let mut state = self.lock_stripe(self.stripe_of(u));
        if state.queried.contains(&u.0) {
            state.stats.record(false);
            return Ok(());
        }
        if let Some(budget) = &self.shared.budget {
            // Atomically consume one unit; a refused query charges nothing
            // and records nothing, mirroring `BudgetedClient`.
            if budget
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
                .is_err()
            {
                return Err(BudgetExhausted {
                    budget: budget.limit,
                });
            }
        }
        state.queried.insert(u.0);
        state.stats.record(true);
        Ok(())
    }

    /// Query neighbors, returning an owned copy.
    ///
    /// # Errors
    /// [`BudgetExhausted`] when a shared budget was configured and this call
    /// would charge a unique query beyond it; unbudgeted handles never fail.
    pub fn neighbors_owned(&self, u: NodeId) -> Result<Vec<NodeId>, BudgetExhausted> {
        self.record_query(u)?;
        Ok(self.shared.network.graph.neighbors(u).to_vec())
    }

    /// Global query statistics, summed over all stripes and handles.
    ///
    /// Stripes are sampled one at a time, so under concurrent mutation the
    /// totals are a consistent *per-stripe* snapshot (never torn counters),
    /// though in-flight queries on other stripes may or may not be included.
    pub fn global_stats(&self) -> QueryStats {
        let mut total = QueryStats::default();
        for idx in 0..self.shared.stripes.len() {
            total.merge(&self.observe_stripe(idx).stats);
        }
        total
    }

    /// Per-stripe hit/miss/contention/poison counters, in stripe order.
    pub fn stripe_stats(&self) -> Vec<StripeStats> {
        (0..self.shared.stripes.len())
            .map(|idx| {
                let stripe = &self.shared.stripes[idx];
                let state = self.observe_stripe(idx);
                StripeStats {
                    hits: state.stats.cache_hits,
                    misses: state.stats.unique,
                    contention: stripe.contention.load(Ordering::Relaxed),
                    poison_recoveries: stripe.poison_recoveries.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Total lock acquisitions across all stripes that had to wait for
    /// another walker (the workload's observed contention).
    pub fn total_contention(&self) -> u64 {
        self.shared
            .stripes
            .iter()
            .map(|s| s.contention.load(Ordering::Relaxed))
            .sum()
    }

    /// Poison-recovery records: which stripe was poisoned by which walker
    /// handle, and which handle recovered it. Empty when no walker thread
    /// has panicked while holding a stripe lock.
    pub fn poison_events(&self) -> Vec<String> {
        lock_recovering(&self.shared.poison_log).0.clone()
    }

    /// Try to collapse back into a plain [`SimulatedOsn`] (succeeds when
    /// this is the last handle). The striped cache state is merged back into
    /// one queried-set; accumulated stats are preserved.
    pub fn try_into_inner(self) -> Option<SimulatedOsn> {
        let shared = Arc::try_unwrap(self.shared).ok()?;
        let n = shared.network.graph.node_count();
        let mut queried = vec![false; n];
        let mut stats = QueryStats::default();
        for stripe in shared.stripes.into_vec() {
            let state = match stripe.state.into_inner() {
                Ok(state) => state,
                Err(poisoned) => poisoned.into_inner(),
            };
            for id in state.queried {
                queried[id as usize] = true;
            }
            stats.merge(&state.stats);
        }
        Some(SimulatedOsn::from_parts(shared.network, queried, stats))
    }
}

/// Home stripe of node id `id` among `stripes` stripes.
fn stripe_index(id: u32, stripes: usize) -> usize {
    (hash_node_id(id) % stripes as u64) as usize
}

impl OsnClient for SharedOsn {
    fn neighbors(&mut self, u: NodeId) -> Result<&[NodeId], BudgetExhausted> {
        self.record_query(u)?;
        // The snapshot is immutable behind the Arc: copy to the per-handle
        // scratch without holding any lock.
        let slice = self.shared.network.graph.neighbors(u);
        self.scratch.clear();
        self.scratch.extend_from_slice(slice);
        Ok(&self.scratch)
    }

    fn peek_degree(&self, u: NodeId) -> usize {
        self.shared.network.graph.degree(u)
    }

    fn peek_attribute(&self, u: NodeId, name: &str) -> Option<f64> {
        self.shared.network.attributes.value_f64(name, u).ok()
    }

    fn stats(&self) -> QueryStats {
        self.global_stats()
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.shared
            .budget
            .as_ref()
            .map(|b| b.remaining.load(Ordering::Relaxed))
    }

    fn is_cached(&self, u: NodeId) -> bool {
        // Observation lock: cache probes must not inflate the
        // walker-vs-walker contention metric.
        self.observe_stripe(self.stripe_of(u))
            .queried
            .contains(&u.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::GraphBuilder;

    fn path_osn() -> SimulatedOsn {
        let mut b = GraphBuilder::new();
        for i in 0..9 {
            b.push_edge(i, i + 1);
        }
        SimulatedOsn::from_graph(b.build().unwrap())
    }

    fn shared_path() -> SharedOsn {
        SharedOsn::new(path_osn())
    }

    #[test]
    fn handles_share_cache() {
        let a = shared_path();
        let mut b = a.clone();
        let mut a = a;
        a.neighbors(NodeId(0)).unwrap();
        b.neighbors(NodeId(0)).unwrap(); // cached globally
        let s = a.global_stats();
        assert_eq!(s.unique, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn concurrent_walkers_account_globally() {
        let shared = shared_path();
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let mut h = shared.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10u32 {
                    h.neighbors(NodeId((t * 2 + i) % 10)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = shared.global_stats();
        assert_eq!(s.issued, 40);
        // 4 threads cover at most 10 distinct nodes.
        assert!(s.unique <= 10);
        assert_eq!(s.unique + s.cache_hits, 40);
    }

    #[test]
    fn owned_neighbors_match_trait() {
        let mut shared = shared_path();
        let owned = shared.neighbors_owned(NodeId(5)).unwrap();
        let borrowed = shared.neighbors(NodeId(5)).unwrap().to_vec();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn try_into_inner_when_sole_handle() {
        let shared = shared_path();
        assert!(shared.try_into_inner().is_some());
        let shared = shared_path();
        let clone = shared.clone();
        assert!(shared.try_into_inner().is_none());
        drop(clone);
    }

    #[test]
    fn try_into_inner_merges_stripe_state() {
        let mut shared = SharedOsn::with_stripes(path_osn(), 8);
        shared.neighbors(NodeId(2)).unwrap();
        shared.neighbors(NodeId(7)).unwrap();
        shared.neighbors(NodeId(2)).unwrap(); // hit
        let mut inner = shared.try_into_inner().unwrap();
        let s = inner.stats();
        assert_eq!((s.issued, s.unique, s.cache_hits), (3, 2, 1));
        // The merged queried-set still marks both nodes as cached.
        inner.neighbors(NodeId(7)).unwrap();
        assert_eq!(inner.stats().cache_hits, 2);
    }

    #[test]
    fn wrapping_a_used_simulator_preserves_accounting() {
        let mut osn = path_osn();
        osn.neighbors(NodeId(3)).unwrap();
        osn.neighbors(NodeId(3)).unwrap();
        let mut shared = SharedOsn::with_stripes(osn, 4);
        // Node 3 is already cached: querying it again is a hit, not a charge.
        shared.neighbors(NodeId(3)).unwrap();
        let s = shared.global_stats();
        assert_eq!((s.issued, s.unique, s.cache_hits), (3, 1, 2));
    }

    #[test]
    fn stripe_of_is_stable_and_in_range() {
        let shared = SharedOsn::with_stripes(path_osn(), 7);
        for i in 0..10u32 {
            let s = shared.stripe_of(NodeId(i));
            assert!(s < 7);
            assert_eq!(s, shared.stripe_of(NodeId(i)));
        }
        // Zero stripes is clamped to one rather than dividing by zero.
        assert_eq!(SharedOsn::with_stripes(path_osn(), 0).stripe_count(), 1);
    }

    #[test]
    fn stripe_stats_sum_to_global() {
        let mut shared = SharedOsn::with_stripes(path_osn(), 8);
        for i in 0..10u32 {
            shared.neighbors(NodeId(i % 6)).unwrap();
        }
        let global = shared.global_stats();
        let per: Vec<StripeStats> = shared.stripe_stats();
        assert_eq!(per.len(), 8);
        assert_eq!(per.iter().map(|s| s.hits).sum::<u64>(), global.cache_hits);
        assert_eq!(per.iter().map(|s| s.misses).sum::<u64>(), global.unique);
    }

    #[test]
    fn shared_budget_is_enforced_globally() {
        let mut a = SharedOsn::configured(path_osn(), 4, Some(3));
        let mut b = a.clone();
        assert_eq!(a.remaining_budget(), Some(3));
        a.neighbors(NodeId(0)).unwrap();
        b.neighbors(NodeId(1)).unwrap();
        a.neighbors(NodeId(2)).unwrap();
        assert_eq!(b.remaining_budget(), Some(0));
        // New node refused for every handle; cached nodes stay free.
        assert!(b.neighbors(NodeId(5)).is_err());
        assert!(a.neighbors(NodeId(1)).is_ok());
        let s = a.global_stats();
        assert_eq!(s.unique, 3);
        // The refused query was not recorded anywhere.
        assert_eq!(s.issued, 4);
    }

    #[test]
    fn budget_accounts_for_already_spent_queries() {
        let mut osn = path_osn();
        osn.neighbors(NodeId(0)).unwrap();
        let shared = SharedOsn::configured(osn, 2, Some(3));
        assert_eq!(shared.remaining_budget(), Some(2));
    }

    #[test]
    fn poison_recovery_names_stripe_and_walker() {
        let shared = SharedOsn::with_stripes(path_osn(), 4);
        let culprit = shared.clone();
        let culprit_handle = culprit.handle;
        let target = NodeId(5);
        let idx = shared.stripe_of(target);
        // Panic while holding the stripe lock, as a crashed walker would.
        let result = std::thread::spawn(move || {
            let _guard = culprit.lock_stripe(idx);
            panic!("walker died mid-update");
        })
        .join();
        assert!(result.is_err());
        // The next query on that stripe recovers and records the context.
        let mut h = shared.clone();
        h.neighbors(target).unwrap();
        let events = shared.poison_events();
        assert_eq!(events.len(), 1);
        assert!(
            events[0].contains(&format!("stripe {idx}"))
                && events[0].contains(&format!("handle {culprit_handle}")),
            "event should name stripe and culprit: {}",
            events[0]
        );
        assert_eq!(shared.stripe_stats()[idx].poison_recoveries, 1);
        // The cache itself stayed usable and consistent.
        assert_eq!(shared.global_stats().unique, 1);
    }

    #[test]
    fn contention_counter_observes_blocked_acquisitions() {
        // Force contention deterministically: hold a stripe lock in one
        // thread while another queries a node on the same stripe.
        let shared = SharedOsn::with_stripes(path_osn(), 2);
        let target = NodeId(4);
        let idx = shared.stripe_of(target);
        let holder = shared.clone();
        std::thread::scope(|scope| {
            let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
            let (held_tx, held_rx) = std::sync::mpsc::channel::<()>();
            scope.spawn(move || {
                let _guard = holder.lock_stripe(idx);
                held_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            });
            held_rx.recv().unwrap();
            let mut walker = shared.clone();
            let waiter = scope.spawn(move || {
                walker.neighbors(target).unwrap();
            });
            // Wait until the walker has blocked on the held stripe, then
            // release. `total_contention` reads atomics only, so polling it
            // here cannot itself block on the held stripe lock.
            while shared.total_contention() == 0 {
                std::thread::yield_now();
            }
            release_tx.send(()).unwrap();
            waiter.join().unwrap();
        });
        assert!(shared.total_contention() >= 1);
    }
}
