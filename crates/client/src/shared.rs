//! Thread-safe shared client for parallel random walks.
//!
//! The paper's related-work section cites Alon et al., *"Many random walks
//! are faster than one"* — running several walkers against one interface and
//! pooling their queries through a **shared cache**. [`SharedOsn`] makes that
//! pattern expressible: clone a handle per walker thread; all handles share
//! one [`SimulatedOsn`], so a node queried by any walker is cached (free) for
//! every other walker, and the unique-query count is global.

use std::sync::{Arc, Mutex, MutexGuard};

use osn_graph::NodeId;

use crate::budget::BudgetExhausted;
use crate::client::{OsnClient, SimulatedOsn};
use crate::stats::QueryStats;

/// A cloneable, thread-safe handle to a shared [`SimulatedOsn`].
///
/// `neighbors` returns an owned `Vec` (the lock cannot be held across the
/// trait's borrowed return), exposed via [`SharedOsn::neighbors_owned`];
/// the `OsnClient` impl keeps a per-handle scratch buffer so walkers can use
/// the trait interface unchanged.
#[derive(Clone)]
pub struct SharedOsn {
    inner: Arc<Mutex<SimulatedOsn>>,
    scratch: Vec<NodeId>,
}

impl SharedOsn {
    /// Share `osn` between any number of cloned handles.
    pub fn new(osn: SimulatedOsn) -> Self {
        SharedOsn {
            inner: Arc::new(Mutex::new(osn)),
            scratch: Vec::new(),
        }
    }

    /// Lock the shared simulator, recovering from poisoning: the cache and
    /// counters stay valid even if another walker thread panicked. Takes
    /// the mutex (not `&self`) so callers can keep `self.scratch` mutable
    /// while the guard is live.
    fn locked(inner: &Mutex<SimulatedOsn>) -> MutexGuard<'_, SimulatedOsn> {
        inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Query neighbors, returning an owned copy.
    ///
    /// # Errors
    /// Never fails for the bare simulator; kept fallible for interface
    /// symmetry with budget wrappers.
    pub fn neighbors_owned(&self, u: NodeId) -> Result<Vec<NodeId>, BudgetExhausted> {
        let mut guard = Self::locked(&self.inner);
        guard.neighbors(u).map(|s| s.to_vec())
    }

    /// Global query statistics across all handles.
    pub fn global_stats(&self) -> QueryStats {
        Self::locked(&self.inner).stats()
    }

    /// Try to unwrap the inner simulator (succeeds when this is the last
    /// handle).
    pub fn try_into_inner(self) -> Option<SimulatedOsn> {
        Arc::try_unwrap(self.inner).ok().map(|m| {
            m.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        })
    }
}

impl OsnClient for SharedOsn {
    fn neighbors(&mut self, u: NodeId) -> Result<&[NodeId], BudgetExhausted> {
        let mut guard = Self::locked(&self.inner);
        let slice = guard.neighbors(u)?;
        self.scratch.clear();
        self.scratch.extend_from_slice(slice);
        drop(guard);
        Ok(&self.scratch)
    }

    fn peek_degree(&self, u: NodeId) -> usize {
        Self::locked(&self.inner).peek_degree(u)
    }

    fn peek_attribute(&self, u: NodeId, name: &str) -> Option<f64> {
        Self::locked(&self.inner).peek_attribute(u, name)
    }

    fn stats(&self) -> QueryStats {
        self.global_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::GraphBuilder;

    fn shared_path() -> SharedOsn {
        let mut b = GraphBuilder::new();
        for i in 0..9 {
            b.push_edge(i, i + 1);
        }
        SharedOsn::new(SimulatedOsn::from_graph(b.build().unwrap()))
    }

    #[test]
    fn handles_share_cache() {
        let a = shared_path();
        let mut b = a.clone();
        let mut a = a;
        a.neighbors(NodeId(0)).unwrap();
        b.neighbors(NodeId(0)).unwrap(); // cached globally
        let s = a.global_stats();
        assert_eq!(s.unique, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn concurrent_walkers_account_globally() {
        let shared = shared_path();
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let mut h = shared.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10u32 {
                    h.neighbors(NodeId((t * 2 + i) % 10)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = shared.global_stats();
        assert_eq!(s.issued, 40);
        // 4 threads cover at most 10 distinct nodes.
        assert!(s.unique <= 10);
        assert_eq!(s.unique + s.cache_hits, 40);
    }

    #[test]
    fn owned_neighbors_match_trait() {
        let mut shared = shared_path();
        let owned = shared.neighbors_owned(NodeId(5)).unwrap();
        let borrowed = shared.neighbors(NodeId(5)).unwrap().to_vec();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn try_into_inner_when_sole_handle() {
        let shared = shared_path();
        assert!(shared.try_into_inner().is_some());
        let shared = shared_path();
        let clone = shared.clone();
        assert!(shared.try_into_inner().is_none());
        drop(clone);
    }
}
