//! Query accounting.

/// Running counters of interface usage.
///
/// The paper's cost model (§2.3): *"query cost here is defined as the number
/// of unique queries required, as any duplicate query can be immediately
/// retrieved from local cache without consuming the query rate limit."*
/// [`QueryStats::unique`] is therefore the number every experiment reports on
/// its x-axis; `issued` and `cache_hits` are kept for diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total neighbor-list calls made by the sampler.
    pub issued: u64,
    /// Calls that hit a never-before-queried node — the *charged* cost.
    pub unique: u64,
    /// Calls served from the local cache (free).
    pub cache_hits: u64,
}

impl QueryStats {
    /// Record one call; `was_unique` says whether it was charged. Public so
    /// external drivers (e.g. the coalescing batch dispatcher in
    /// `osn-walks`) can keep walker-side accounting in the same shape.
    pub fn record(&mut self, was_unique: bool) {
        self.issued += 1;
        if was_unique {
            self.unique += 1;
        } else {
            self.cache_hits += 1;
        }
    }

    /// Fold another accounting snapshot into this one (used to sum the
    /// per-stripe counters of a striped shared cache).
    pub fn merge(&mut self, other: &QueryStats) {
        self.issued += other.issued;
        self.unique += other.unique;
        self.cache_hits += other.cache_hits;
    }

    /// Fraction of calls served from cache (0 when none issued).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / self.issued as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_both_kinds() {
        let mut s = QueryStats::default();
        s.record(true);
        s.record(false);
        s.record(false);
        assert_eq!(s.issued, 3);
        assert_eq!(s.unique, 1);
        assert_eq!(s.cache_hits, 2);
        assert!((s.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_hit_rate_zero() {
        assert_eq!(QueryStats::default().cache_hit_rate(), 0.0);
    }
}
