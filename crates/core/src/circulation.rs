//! Arena-backed partial-Fisher–Yates circulation engine.
//!
//! This is the storage layer behind [`crate::history`]: the per-edge
//! without-replacement "circulation" state of CNRW (Algorithm 1) and GNRW
//! (Algorithm 2), reworked from one-hash-set-per-edge into compact,
//! index-based layouts that make the steady-state per-draw hot path
//! **exactly `O(1)`** — no rejection loop, no rank scan, and zero hashing
//! *inside* a promoted circulation. (Locating the edge's state still costs
//! the one packed-edge-key map lookup per draw that every layout pays; what
//! the arena removes is the per-candidate membership hashing within it.)
//!
//! ## Layout
//!
//! All touched edges of one walker share a single arena (`Vec<NodeId>` for
//! the node engine, two `Vec<u32>` for the group engine). Each promoted edge
//! owns a contiguous slice of it holding a permutation of the edge's
//! candidate population, plus a cursor:
//!
//! ```text
//! arena:  [ .. | d  a  c  b | .. ]      slice of edge (u, v), len = 4
//!                      ^cursor = 2      a, d used this cycle; c, b unused
//! ```
//!
//! A draw is one *partial Fisher–Yates* step: pick a uniform position in the
//! unused suffix `[cursor, len)`, swap it to `cursor`, advance the cursor —
//! one `gen_range`, one swap, no membership test. When the cursor reaches
//! `len` the circulation is complete and reset is a cursor rewind to `0`
//! (the slice already holds a permutation of the population, so the next
//! cycle draws from the full population again).
//!
//! ## Staged states and the `O(K)` space bound
//!
//! Most directed edges of a long walk are transited only a handful of
//! times, and a promoted slice costs `O(deg)` regardless of how few draws
//! it served — so promoting eagerly would break the paper's `O(K)` history
//! bound (§3.3) on heavy-tailed graphs. Per-edge state therefore moves
//! through three stages, each `O(draws recorded)`:
//!
//! 1. **Inline** — up to [`INLINE_CAP`] used node ids in a fixed array
//!    stored directly in the map slot (no heap allocation at all); draws
//!    use bounded rejection sampling against the tiny array.
//! 2. **Spill** — a hash set of used ids, one entry per draw (the legacy
//!    layout, `O(1)` expected draws), entered only when the inline array
//!    fills before the edge qualifies for promotion.
//! 3. **Promoted** — the arena slice. An edge is promoted once it has at
//!    least `promotion_threshold` recorded draws (tunable, see
//!    [`CirculationEngine::with_threshold`]) **and** the slice would cost
//!    at most [`PROMOTION_SPAN`]` × draws` — or unconditionally once half
//!    its population is used, where the slice costs `≤ 2 × draws` and the
//!    legacy layout would start degrading to rank scans.
//!
//! Promotion preserves the already-used set, so the drawn coverage of a
//! cycle is independent of the threshold; and since a slice never exceeds
//! `PROMOTION_SPAN ×` the draws recorded on its edge, total memory stays
//! `O(K)` after `K` steps (within that constant), matching the legacy
//! backend's bound.
//!
//! The [`GroupEngine`] used by GNRW applies the same staging: a small
//! hash-set stage (exactly the legacy probes GNRW would otherwise do)
//! until the edge earns its slices, then `O(1)` array-compare membership —
//! the probe GNRW issues `deg` times per step — via the inverse
//! permutation.

use osn_graph::NodeId;
use osn_serde::Value;
use rand::{Rng, RngCore};

use crate::fnv::{FnvHashMap, FnvHashSet};
use crate::groupplan::{AliasTable, DrawBatch, NodeGroups};

/// Which storage backs the per-edge circulation history of a walker.
///
/// Both backends realize the same without-replacement semantics (same
/// per-cycle coverage, same uniform marginals, same stationary distribution)
/// but consume RNG differently, so traces are seed-stable *per backend*, not
/// bit-identical across backends. The `walker_throughput` and
/// `history_backends` benches ablate one against the other.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HistoryBackend {
    /// The paper's suggested layout: a `HashMap` keyed by the directed edge
    /// whose values are hash *sets* of used neighbors. Draws rejection-sample
    /// (bounded, falling back to a rank scan) and probe the set per
    /// candidate.
    Legacy,
    /// Arena-backed partial Fisher–Yates (the default): each hot edge owns
    /// a slice of a shared arena plus a cursor; a draw is one `gen_range`
    /// and one swap — exactly `O(1)`, with no hashing beyond the edge-key
    /// lookup — while cold edges stay in `O(draws)` inline/spill states.
    #[default]
    Arena,
}

impl HistoryBackend {
    /// Both backends, in ablation order — the single definition every
    /// backend-comparison matrix (benches, `repro perf`, tests) iterates.
    pub const ALL: [HistoryBackend; 2] = [HistoryBackend::Legacy, HistoryBackend::Arena];

    /// Short lowercase label for bench/series names (`"legacy"`/`"arena"`).
    pub fn label(&self) -> &'static str {
        match self {
            HistoryBackend::Legacy => "legacy",
            HistoryBackend::Arena => "arena",
        }
    }
}

impl std::fmt::Display for HistoryBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Capacity of the inline (pre-spill) used-item array, and therefore the
/// hard upper bound on [`CirculationEngine`] promotion thresholds.
pub const INLINE_CAP: usize = 8;

/// Maximum ratio between a promoted slice's length and the draws recorded
/// on its edge at promotion time. This is what keeps arena memory `O(K)`:
/// every promoted `deg`-sized slice is backed by at least `deg / SPAN`
/// recorded draws, so the arena never exceeds `SPAN × steps` entries.
pub const PROMOTION_SPAN: usize = 8;

/// Iteration cap for every rejection-sampling draw loop in this crate.
///
/// Acceptance is kept at ≥ ½ by the half-used promotion/scan rules, so 32
/// failed candidates has probability ≤ 2⁻³²; the cap exists to bound the
/// worst case on adversarial RNG streams, falling back to an exact
/// `O(population)` rank scan.
pub const MAX_REJECTION_ITERS: usize = 32;

/// Uniform draw from the items of `population` not matched by `is_used`
/// (`remaining` of them): up to `max_rejections` rejection-sampling
/// proposals, then an exact rank scan. The single implementation behind
/// every pre-promotion draw path — inline, spill, and the legacy
/// [`crate::history::CirculationSet`] (which passes `max_rejections = 0`
/// on half-used populations to go straight to the scan).
pub(crate) fn draw_excluding<R: Rng + ?Sized>(
    population: &[NodeId],
    remaining: usize,
    max_rejections: usize,
    is_used: impl Fn(&NodeId) -> bool,
    rng: &mut R,
) -> NodeId {
    debug_assert!(remaining > 0 && remaining <= population.len());
    for _ in 0..max_rejections {
        let cand = population[rng.gen_range(0..population.len())];
        if !is_used(&cand) {
            return cand;
        }
    }
    let mut rank = rng.gen_range(0..remaining);
    *population
        .iter()
        .filter(|w| !is_used(w))
        .find(|_| {
            if rank == 0 {
                true
            } else {
                rank -= 1;
                false
            }
        })
        .expect("rank < remaining unused items")
}

/// Does an edge with `used` recorded draws out of a `plen`-item population
/// qualify for promotion (given a configured minimum of `threshold` draws)?
///
/// Promotion requires the slice to cost at most [`PROMOTION_SPAN`]` × used`
/// — the `O(K)` guard — except at the half-used point (`slice ≤ 2 × used`),
/// where it is always worthwhile: that is exactly where hash-set layouts
/// start degrading. The completing draw of a cycle never promotes (the
/// state resets instead).
#[inline]
fn promotable(used: usize, plen: usize, threshold: usize) -> bool {
    used + 1 < plen && (2 * used >= plen || (used >= threshold && plen <= PROMOTION_SPAN * used))
}

/// Per-edge state of the node engine: staged from inline through spill to
/// an owned arena slice (see the module docs).
#[derive(Clone, Debug)]
enum Slot {
    /// Up to `INLINE_CAP` used node ids, stored in place.
    Inline { used: [NodeId; INLINE_CAP], len: u8 },
    /// Used ids in a hash set — `O(draws)` memory for edges whose
    /// population is too large to promote yet.
    Spill(FnvHashSet<NodeId>),
    /// `arena[start..start + len]` is a permutation of the population;
    /// positions `< cursor` are used this cycle.
    Promoted { start: u32, len: u32, cursor: u32 },
}

impl Slot {
    fn used_len(&self) -> usize {
        match self {
            Slot::Inline { len, .. } => usize::from(*len),
            Slot::Spill(set) => set.len(),
            Slot::Promoted { cursor, .. } => *cursor as usize,
        }
    }
}

/// The arena-backed circulation engine for node circulations (`b(u, v)` of
/// Algorithm 1), shared by every edge one walker has touched.
///
/// Keys are opaque `u64`s (packed directed edges for CNRW/NB-CNRW, node ids
/// for the node-keyed ablation). The population for a key is supplied at
/// each draw — it is the neighbor list, owned by the graph — and must be
/// identical across draws of the same key (true for static snapshots).
#[derive(Clone, Debug)]
pub struct CirculationEngine {
    slots: FnvHashMap<u64, Slot>,
    arena: Vec<NodeId>,
    promotion_threshold: usize,
}

impl Default for CirculationEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CirculationEngine {
    /// Engine with the default promotion threshold ([`INLINE_CAP`] draws).
    pub fn new() -> Self {
        Self::with_threshold(INLINE_CAP)
    }

    /// Engine with a custom minimum draw count before an edge may be
    /// promoted to an arena slice (clamped to `1..=INLINE_CAP`). Lower
    /// thresholds reach the `O(1)`-exact draw path earlier; the drawn
    /// coverage per cycle is the same for every threshold, and the
    /// [`PROMOTION_SPAN`] memory guard applies regardless.
    pub fn with_threshold(threshold: usize) -> Self {
        CirculationEngine {
            slots: FnvHashMap::default(),
            arena: Vec::new(),
            promotion_threshold: threshold.clamp(1, INLINE_CAP),
        }
    }

    /// The configured promotion threshold.
    pub fn promotion_threshold(&self) -> usize {
        self.promotion_threshold
    }

    /// Number of keys with live circulation state.
    pub fn tracked(&self) -> usize {
        self.slots.len()
    }

    /// Total used-items across all keys (the `O(K)` accounting quantity of
    /// §3.3 — identical to the legacy backend's set-size sum).
    pub fn total_entries(&self) -> usize {
        self.slots.values().map(Slot::used_len).sum()
    }

    /// Used-item count for `key`, or `None` if the key has no state. Never
    /// creates state (read-only probe).
    pub fn used_len(&self, key: u64) -> Option<usize> {
        self.slots.get(&key).map(Slot::used_len)
    }

    /// Drop all state, **keeping the slab allocations**: the arena's
    /// backing buffer and the slot map's buckets are retained at their
    /// current capacity so the next walk re-promotes into already-owned
    /// memory. This is the contract `RandomWalk::restart` relies on — a
    /// restarted walker must not re-allocate its history from scratch
    /// (pinned by `arena_slab_is_reused_across_restarts` in
    /// `tests/circulation_props.rs`, via [`Self::arena_capacity`]).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.arena.clear();
    }

    /// Allocated capacity of the shared arena, in entries. Survives
    /// [`Self::clear`] unchanged — the no-re-allocation observable of the
    /// slab-reuse contract.
    pub fn arena_capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Drop every slot whose circulation population is the neighbor list of
    /// `target` — the evolving-graph invalidation hook. Keys pack the
    /// circulated node in the **low 32 bits** (`edge_key(u, v)` draws from
    /// `N(v)`; the node-keyed ablation packs `(v, v)`), so a mutation at
    /// `v` invalidates exactly the keys with low word `v`. Dropping (rather
    /// than rewinding) is required for correctness: a promoted slot's arena
    /// permutation materializes the *old* population, and both its length
    /// and contents are stale after the mutation. Returns the number of
    /// slots dropped. Arena slices of dropped promoted slots leak until the
    /// next [`Self::clear`] — bounded by [`PROMOTION_SPAN`], same as
    /// re-promotion churn.
    pub fn invalidate_target(&mut self, target: u32) -> usize {
        let before = self.slots.len();
        self.slots
            .retain(|&key, _| (key & 0xFFFF_FFFF) as u32 != target);
        before - self.slots.len()
    }

    /// Serialize the engine's full state to a [`Value`] tree for
    /// snapshot/resume.
    ///
    /// Arena contents and promoted cursors are exported **verbatim** — the
    /// slice permutation determines every future draw, so a resumed engine
    /// continues bit-identically on the same RNG stream. Spill sets are
    /// membership-only and serialize sorted; slots are sorted by key, making
    /// the export a deterministic function of the engine state.
    pub fn export_state(&self) -> Value {
        let mut slots: Vec<(u64, &Slot)> = self.slots.iter().map(|(&k, s)| (k, s)).collect();
        slots.sort_unstable_by_key(|&(k, _)| k);
        let slots: Vec<Value> = slots
            .into_iter()
            .map(|(key, slot)| match slot {
                Slot::Inline { used, len } => Value::obj([
                    ("key", Value::Uint(key)),
                    ("kind", Value::Str("inline".into())),
                    (
                        "used",
                        Value::Arr(
                            used[..usize::from(*len)]
                                .iter()
                                .map(|n| Value::Uint(u64::from(n.0)))
                                .collect(),
                        ),
                    ),
                ]),
                Slot::Spill(set) => {
                    let mut used: Vec<u64> = set.iter().map(|n| u64::from(n.0)).collect();
                    used.sort_unstable();
                    Value::obj([
                        ("key", Value::Uint(key)),
                        ("kind", Value::Str("spill".into())),
                        (
                            "used",
                            Value::Arr(used.into_iter().map(Value::Uint).collect()),
                        ),
                    ])
                }
                Slot::Promoted { start, len, cursor } => Value::obj([
                    ("key", Value::Uint(key)),
                    ("kind", Value::Str("promoted".into())),
                    ("start", Value::Uint(u64::from(*start))),
                    ("len", Value::Uint(u64::from(*len))),
                    ("cursor", Value::Uint(u64::from(*cursor))),
                ]),
            })
            .collect();
        Value::obj([
            ("threshold", Value::Uint(self.promotion_threshold as u64)),
            (
                "arena",
                Value::Arr(
                    self.arena
                        .iter()
                        .map(|n| Value::Uint(u64::from(n.0)))
                        .collect(),
                ),
            ),
            ("slots", Value::Arr(slots)),
        ])
    }

    /// Rebuild an engine from [`export_state`](Self::export_state) output.
    ///
    /// # Errors
    /// Returns a message when the tree is malformed or internally
    /// inconsistent (slice out of arena bounds, oversized inline set, …).
    pub fn import_state(state: &Value) -> Result<Self, String> {
        let threshold: usize = state.field("threshold")?.decode()?;
        if !(1..=INLINE_CAP).contains(&threshold) {
            return Err(format!("promotion threshold {threshold} out of range"));
        }
        let arena: Vec<NodeId> = state
            .field("arena")?
            .decode::<Vec<u32>>()?
            .into_iter()
            .map(NodeId)
            .collect();
        let mut slots = FnvHashMap::default();
        for entry in state.field("slots")?.as_array()? {
            let key: u64 = entry.field("key")?.decode()?;
            let kind: String = entry.field("kind")?.decode()?;
            let slot = match kind.as_str() {
                "inline" => {
                    let ids: Vec<u32> = entry.field("used")?.decode()?;
                    if ids.len() > INLINE_CAP {
                        return Err(format!("inline slot holds {} > {INLINE_CAP}", ids.len()));
                    }
                    let mut used = [NodeId(0); INLINE_CAP];
                    for (dst, id) in used.iter_mut().zip(&ids) {
                        *dst = NodeId(*id);
                    }
                    Slot::Inline {
                        used,
                        len: ids.len() as u8,
                    }
                }
                "spill" => Slot::Spill(
                    entry
                        .field("used")?
                        .decode::<Vec<u32>>()?
                        .into_iter()
                        .map(NodeId)
                        .collect(),
                ),
                "promoted" => {
                    let start: u32 = entry.field("start")?.decode()?;
                    let len: u32 = entry.field("len")?.decode()?;
                    let cursor: u32 = entry.field("cursor")?.decode()?;
                    if (start as usize) + (len as usize) > arena.len() {
                        return Err(format!(
                            "promoted slice {start}+{len} exceeds arena of {}",
                            arena.len()
                        ));
                    }
                    if len == 0 || cursor >= len {
                        return Err(format!("promoted cursor {cursor} out of slice of {len}"));
                    }
                    Slot::Promoted { start, len, cursor }
                }
                other => return Err(format!("unknown slot kind `{other}`")),
            };
            if slots.insert(key, slot).is_some() {
                return Err(format!("duplicate slot key {key}"));
            }
        }
        Ok(CirculationEngine {
            slots,
            arena,
            promotion_threshold: threshold,
        })
    }

    /// Draw uniformly at random from `population \ used(key)`, record the
    /// draw, and reset the cycle once the population is exhausted (the
    /// completing draw triggers the reset, so the *next* draw sees the full
    /// population again). Returns `None` only for an empty population.
    pub fn draw<R: Rng + ?Sized>(
        &mut self,
        key: u64,
        population: &[NodeId],
        rng: &mut R,
    ) -> Option<NodeId> {
        let plen = population.len();
        if plen == 0 {
            return None;
        }
        let threshold = self.promotion_threshold;
        let slot = self.slots.entry(key).or_insert(Slot::Inline {
            used: [NodeId(0); INLINE_CAP],
            len: 0,
        });
        // Stage transitions first (no RNG consumed). Promotion preserves
        // the used set, so a cycle's coverage never depends on when (or
        // whether) it happens.
        if !matches!(slot, Slot::Promoted { .. }) && promotable(slot.used_len(), plen, threshold) {
            let start = self.arena.len();
            self.arena.extend_from_slice(population);
            // Partition the fresh slice: swap every already-used item into
            // the prefix. One pass; the membership probes are over the
            // O(draws)-sized pre-promotion state.
            let slice = &mut self.arena[start..];
            let mut cursor = 0usize;
            match &*slot {
                Slot::Inline { used, len } => {
                    let used = &used[..usize::from(*len)];
                    for i in 0..plen {
                        if used.contains(&slice[i]) {
                            slice.swap(cursor, i);
                            cursor += 1;
                        }
                    }
                }
                Slot::Spill(set) => {
                    for i in 0..plen {
                        if set.contains(&slice[i]) {
                            slice.swap(cursor, i);
                            cursor += 1;
                        }
                    }
                }
                Slot::Promoted { .. } => unreachable!("guarded by the !Promoted check above"),
            }
            debug_assert_eq!(cursor, slot.used_len(), "used set ⊆ population");
            // Fail loudly rather than silently aliasing slices if a
            // pathological walk ever grows the arena past u32 offsets.
            let start = u32::try_from(start).expect("arena exceeds u32::MAX entries");
            *slot = Slot::Promoted {
                start,
                len: plen as u32,
                cursor: cursor as u32,
            };
        } else if let Slot::Inline { used, len } = slot {
            // Inline full but the population is too large for the span
            // guard: spill to a hash set that grows one entry per draw.
            if usize::from(*len) == INLINE_CAP {
                *slot = Slot::Spill(used.iter().copied().collect());
            }
        }
        match slot {
            Slot::Inline { used, len } => {
                let used_len = usize::from(*len);
                debug_assert!(used_len < plen && used_len < INLINE_CAP);
                // Bounded rejection against the tiny inline array (probes
                // are hash-free). Acceptance is > 1/2 below the half-used
                // promotion point; only the cycle-completing draw of a
                // small population can sit lower (≥ 1/plen), and the cap
                // bounds that too.
                let pick = draw_excluding(
                    population,
                    plen - used_len,
                    MAX_REJECTION_ITERS,
                    |w| used[..used_len].contains(w),
                    rng,
                );
                if used_len + 1 == plen {
                    *len = 0; // circulation complete -> reset
                } else {
                    used[used_len] = pick;
                    *len += 1;
                }
                Some(pick)
            }
            Slot::Spill(set) => {
                // Spill implies 2*used < plen (the half-used rule would
                // have promoted otherwise): acceptance > 1/2, and the
                // cycle cannot complete in this stage.
                debug_assert!(2 * set.len() < plen);
                let pick = draw_excluding(
                    population,
                    plen - set.len(),
                    MAX_REJECTION_ITERS,
                    |w| set.contains(w),
                    rng,
                );
                set.insert(pick);
                Some(pick)
            }
            Slot::Promoted { start, len, cursor } => {
                let (start, slen) = (*start as usize, *len as usize);
                debug_assert_eq!(slen, plen, "population changed between draws");
                let c = *cursor as usize;
                // Partial Fisher–Yates: uniform position in the unused
                // suffix, swapped to the cursor. Exactly O(1).
                let j = rng.gen_range(c..slen);
                self.arena.swap(start + c, start + j);
                let pick = self.arena[start + c];
                *cursor += 1;
                if *cursor as usize == slen {
                    *cursor = 0; // reset is a cursor rewind
                }
                Some(pick)
            }
        }
    }
}

/// Per-edge state of the [`GroupEngine`]: a small hash-backed stage
/// (`O(draws)` memory, legacy-style probes) until the edge earns its arena
/// slices.
#[derive(Clone, Debug)]
enum GroupSlot {
    /// Pre-promotion: used population indices + attempted groups.
    Small {
        /// Indices into `N(v)` chosen this super-cycle (`b(u, v)`).
        used: FnvHashSet<u32>,
        /// Groups attempted in the current sub-cycle (`S(u, v)`).
        used_groups: Vec<u64>,
    },
    /// Promoted: `items`/`pos` slices in the shared arenas.
    Sliced {
        start: u32,
        len: u32,
        cursor: u32,
        /// Groups attempted in the current sub-cycle; group counts are a
        /// handful, so a linear-scan vec beats a hash set.
        used_groups: Vec<u64>,
    },
    /// Plan-path pre-promotion stage: up to [`INLINE_CAP`] used member
    /// indices in place — heap-free for the short-lived edges that dominate
    /// a walk — plus the attempted-group bitmask (plan group ordinals are
    /// dense `0..G`, `G ≤ 64`, so `S(u, v)` is one `u64`).
    PlanInline {
        used: [u32; INLINE_CAP],
        len: u8,
        attempted: u64,
    },
    /// Plan-path spill stage: used member indices in a hash set,
    /// `O(draws)` memory for big populations that cannot promote yet.
    PlanSpill {
        used: FnvHashSet<u32>,
        attempted: u64,
    },
    /// Plan-path promoted stage: `items[start..start+len]` holds the
    /// node's plan permutation re-permuted in place, **group-major** — each
    /// group's span has its used members in a prefix tracked by that
    /// group's cursor. A member draw is one partial-Fisher–Yates step
    /// inside the group span; remaining counts are `group_len − cursor`,
    /// `O(1)` per group. (The `pos` arena is not used by plan slots: plan
    /// draws never membership-test an arbitrary index.)
    PlanSliced {
        start: u32,
        len: u32,
        used_total: u32,
        cursors: GroupCursors,
        attempted: u64,
    },
}

/// Per-group used-prefix cursors of a [`GroupSlot::PlanSliced`] edge:
/// inline for the common ≤ [`INLINE_CAP`]-group nodes, heap otherwise.
#[derive(Clone, Debug)]
pub(crate) enum GroupCursors {
    /// Cursor per group, in place (group count ≤ [`INLINE_CAP`]).
    Inline([u32; INLINE_CAP]),
    /// Cursor per group, heap-allocated.
    Heap(Vec<u32>),
}

impl GroupCursors {
    fn zeroed(group_count: usize) -> Self {
        if group_count <= INLINE_CAP {
            GroupCursors::Inline([0; INLINE_CAP])
        } else {
            GroupCursors::Heap(vec![0; group_count])
        }
    }

    #[inline]
    fn as_slice(&self, group_count: usize) -> &[u32] {
        match self {
            GroupCursors::Inline(c) => &c[..group_count],
            GroupCursors::Heap(c) => c,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self, group_count: usize) -> &mut [u32] {
        match self {
            GroupCursors::Inline(c) => &mut c[..group_count],
            GroupCursors::Heap(c) => c,
        }
    }
}

impl GroupSlot {
    fn used_len(&self) -> usize {
        match self {
            GroupSlot::Small { used, .. } => used.len(),
            GroupSlot::Sliced { cursor, .. } => *cursor as usize,
            GroupSlot::PlanInline { len, .. } => usize::from(*len),
            GroupSlot::PlanSpill { used, .. } => used.len(),
            GroupSlot::PlanSliced { used_total, .. } => *used_total as usize,
        }
    }

    fn attempted_groups(&self) -> usize {
        match self {
            GroupSlot::Small { used_groups, .. } | GroupSlot::Sliced { used_groups, .. } => {
                used_groups.len()
            }
            GroupSlot::PlanInline { attempted, .. }
            | GroupSlot::PlanSpill { attempted, .. }
            | GroupSlot::PlanSliced { attempted, .. } => attempted.count_ones() as usize,
        }
    }
}

/// The arena-backed engine for GNRW's per-edge state (Algorithm 2).
///
/// Promoted edges own slices of two parallel arenas: `items` holds a
/// permutation of the population indices `0..len` (used prefix / unused
/// suffix around a cursor, exactly like [`CirculationEngine`]); `pos` is
/// the inverse permutation, making "has neighbor *i* been chosen this
/// super-cycle?" a single array compare — the probe GNRW issues `deg`
/// times per step. Cold edges stay in an `O(draws)` hash-set stage and are
/// promoted under the same [`PROMOTION_SPAN`] rule as the node engine, so
/// group-history memory is `O(K)` too.
#[derive(Clone, Debug, Default)]
pub struct GroupEngine {
    slots: FnvHashMap<u64, GroupSlot>,
    items: Vec<u32>,
    pos: Vec<u32>,
    /// Arena for [`GroupSlot::PlanSliced`] slices (group-major member
    /// permutations). Separate from `items`/`pos` — plan slices have no
    /// inverse permutation, so sharing the paired arenas would desync
    /// their offsets.
    plan_items: Vec<u32>,
}

impl GroupEngine {
    /// Number of keys with live state.
    pub fn tracked(&self) -> usize {
        self.slots.len()
    }

    /// Total used-node entries across all keys (the `O(K)` quantity).
    pub fn total_entries(&self) -> usize {
        self.slots.values().map(GroupSlot::used_len).sum()
    }

    /// `(used nodes, attempted groups)` for `key` without creating state.
    pub fn probe(&self, key: u64) -> Option<(usize, usize)> {
        self.slots
            .get(&key)
            .map(|s| (s.used_len(), s.attempted_groups()))
    }

    /// Drop all state, **keeping the slab allocations** (both arenas and
    /// the slot-map buckets) — same restart-reuse contract as
    /// [`CirculationEngine::clear`].
    pub fn clear(&mut self) {
        self.slots.clear();
        self.items.clear();
        self.pos.clear();
        self.plan_items.clear();
    }

    /// Allocated capacity of the `items` arena, in entries (`pos` always
    /// mirrors it). Survives [`Self::clear`] unchanged.
    pub fn arena_capacity(&self) -> usize {
        self.items.capacity()
    }

    /// Allocated capacity of the plan-slice arena, in entries. Survives
    /// [`Self::clear`] unchanged — the plan path honors the same
    /// restart-reuse contract as the scratch path.
    pub fn plan_arena_capacity(&self) -> usize {
        self.plan_items.capacity()
    }

    /// Drop every slot keyed on `target` as the circulated node (low 32
    /// bits of the packed edge key) — the evolving-graph invalidation hook,
    /// mirroring [`CirculationEngine::invalidate_target`]. This is how
    /// "`GroupPlan` slots for `v` rebuild lazily": the per-edge plan state
    /// (`GroupSlot::PlanInline`/`GroupSlot::PlanSpill`/
    /// `GroupSlot::PlanSliced`) is dropped here and re-created from the
    /// plan on the next visit. Arena slices of dropped sliced slots leak
    /// until the next [`Self::clear`] — bounded, same as re-promotion
    /// churn. Returns the number of slots dropped.
    pub fn invalidate_target(&mut self, target: u32) -> usize {
        let before = self.slots.len();
        self.slots
            .retain(|&key, _| (key & 0xFFFF_FFFF) as u32 != target);
        before - self.slots.len()
    }

    /// Serialize the engine's full state to a [`Value`] tree for
    /// snapshot/resume. Arena slices, inverse permutations, cursors, and
    /// group-attempt *order* are exported verbatim (they shape future
    /// behavior); the small-stage used sets are membership-only and
    /// serialize sorted. Slots are sorted by key.
    pub fn export_state(&self) -> Value {
        let mut slots: Vec<(u64, &GroupSlot)> = self.slots.iter().map(|(&k, s)| (k, s)).collect();
        slots.sort_unstable_by_key(|&(k, _)| k);
        let groups_value =
            |groups: &[u64]| Value::Arr(groups.iter().map(|&g| Value::Uint(g)).collect());
        let slots: Vec<Value> = slots
            .into_iter()
            .map(|(key, slot)| match slot {
                GroupSlot::Small { used, used_groups } => {
                    let mut used: Vec<u32> = used.iter().copied().collect();
                    used.sort_unstable();
                    Value::obj([
                        ("key", Value::Uint(key)),
                        ("kind", Value::Str("small".into())),
                        (
                            "used",
                            Value::Arr(
                                used.into_iter()
                                    .map(|i| Value::Uint(u64::from(i)))
                                    .collect(),
                            ),
                        ),
                        ("groups", groups_value(used_groups)),
                    ])
                }
                GroupSlot::Sliced {
                    start,
                    len,
                    cursor,
                    used_groups,
                } => Value::obj([
                    ("key", Value::Uint(key)),
                    ("kind", Value::Str("sliced".into())),
                    ("start", Value::Uint(u64::from(*start))),
                    ("len", Value::Uint(u64::from(*len))),
                    ("cursor", Value::Uint(u64::from(*cursor))),
                    ("groups", groups_value(used_groups)),
                ]),
                GroupSlot::PlanInline {
                    used,
                    len,
                    attempted,
                } => {
                    let mut used: Vec<u32> = used[..usize::from(*len)].to_vec();
                    used.sort_unstable();
                    Value::obj([
                        ("key", Value::Uint(key)),
                        ("kind", Value::Str("plan_inline".into())),
                        ("used", Value::arr(&used)),
                        ("attempted", Value::Uint(*attempted)),
                    ])
                }
                GroupSlot::PlanSpill { used, attempted } => {
                    let mut used: Vec<u32> = used.iter().copied().collect();
                    used.sort_unstable();
                    Value::obj([
                        ("key", Value::Uint(key)),
                        ("kind", Value::Str("plan_spill".into())),
                        ("used", Value::arr(&used)),
                        ("attempted", Value::Uint(*attempted)),
                    ])
                }
                GroupSlot::PlanSliced {
                    start,
                    len,
                    used_total,
                    cursors,
                    attempted,
                } => {
                    // Inline cursor arrays don't record their group count
                    // (the plan owns it); exporting all INLINE_CAP entries
                    // is lossless — trailing zeros are vacuous cursors.
                    let cursors = match cursors {
                        GroupCursors::Inline(c) => &c[..],
                        GroupCursors::Heap(c) => &c[..],
                    };
                    Value::obj([
                        ("key", Value::Uint(key)),
                        ("kind", Value::Str("plan_sliced".into())),
                        ("start", Value::Uint(u64::from(*start))),
                        ("len", Value::Uint(u64::from(*len))),
                        ("used_total", Value::Uint(u64::from(*used_total))),
                        ("cursors", Value::arr(cursors)),
                        ("attempted", Value::Uint(*attempted)),
                    ])
                }
            })
            .collect();
        Value::obj([
            ("items", Value::arr(&self.items)),
            ("pos", Value::arr(&self.pos)),
            ("plan_items", Value::arr(&self.plan_items)),
            ("slots", Value::Arr(slots)),
        ])
    }

    /// Rebuild an engine from [`export_state`](Self::export_state) output.
    ///
    /// # Errors
    /// Returns a message when the tree is malformed or internally
    /// inconsistent (mismatched arenas, slice out of bounds, …).
    pub fn import_state(state: &Value) -> Result<Self, String> {
        let items: Vec<u32> = state.field("items")?.decode()?;
        let pos: Vec<u32> = state.field("pos")?.decode()?;
        if items.len() != pos.len() {
            return Err(format!(
                "items/pos arena length mismatch: {} vs {}",
                items.len(),
                pos.len()
            ));
        }
        // Absent in exports predating the plan path: read as empty.
        let plan_items: Vec<u32> = match state.field("plan_items") {
            Ok(v) => v.decode()?,
            Err(_) => Vec::new(),
        };
        let mut slots = FnvHashMap::default();
        for entry in state.field("slots")?.as_array()? {
            let key: u64 = entry.field("key")?.decode()?;
            let kind: String = entry.field("kind")?.decode()?;
            let slot = match kind.as_str() {
                "small" => GroupSlot::Small {
                    used: entry
                        .field("used")?
                        .decode::<Vec<u32>>()?
                        .into_iter()
                        .collect(),
                    used_groups: entry.field("groups")?.decode()?,
                },
                "sliced" => {
                    let start: u32 = entry.field("start")?.decode()?;
                    let len: u32 = entry.field("len")?.decode()?;
                    let cursor: u32 = entry.field("cursor")?.decode()?;
                    if (start as usize) + (len as usize) > items.len() {
                        return Err(format!(
                            "sliced state {start}+{len} exceeds arena of {}",
                            items.len()
                        ));
                    }
                    if len == 0 || cursor >= len {
                        return Err(format!("sliced cursor {cursor} out of slice of {len}"));
                    }
                    GroupSlot::Sliced {
                        start,
                        len,
                        cursor,
                        used_groups: entry.field("groups")?.decode()?,
                    }
                }
                "plan_inline" => {
                    let ids: Vec<u32> = entry.field("used")?.decode()?;
                    if ids.len() > INLINE_CAP {
                        return Err(format!(
                            "plan_inline slot holds {} > {INLINE_CAP}",
                            ids.len()
                        ));
                    }
                    let mut used = [0u32; INLINE_CAP];
                    used[..ids.len()].copy_from_slice(&ids);
                    GroupSlot::PlanInline {
                        used,
                        len: ids.len() as u8,
                        attempted: entry.field("attempted")?.decode()?,
                    }
                }
                "plan_spill" => GroupSlot::PlanSpill {
                    used: entry
                        .field("used")?
                        .decode::<Vec<u32>>()?
                        .into_iter()
                        .collect(),
                    attempted: entry.field("attempted")?.decode()?,
                },
                "plan_sliced" => {
                    let start: u32 = entry.field("start")?.decode()?;
                    let len: u32 = entry.field("len")?.decode()?;
                    let used_total: u32 = entry.field("used_total")?.decode()?;
                    let cursor_vals: Vec<u32> = entry.field("cursors")?.decode()?;
                    if (start as usize) + (len as usize) > plan_items.len() {
                        return Err(format!(
                            "plan_sliced state {start}+{len} exceeds plan arena of {}",
                            plan_items.len()
                        ));
                    }
                    let sum: u64 = cursor_vals.iter().map(|&c| u64::from(c)).sum();
                    if sum != u64::from(used_total) {
                        return Err(format!(
                            "plan_sliced cursors sum to {sum}, used_total is {used_total}"
                        ));
                    }
                    if len == 0 || used_total >= len {
                        return Err(format!(
                            "plan_sliced used_total {used_total} out of slice of {len}"
                        ));
                    }
                    // ≤ INLINE_CAP cursors pack inline; per-group bounds are
                    // validated against the plan on first use.
                    let cursors = if cursor_vals.len() <= INLINE_CAP {
                        let mut c = [0u32; INLINE_CAP];
                        c[..cursor_vals.len()].copy_from_slice(&cursor_vals);
                        GroupCursors::Inline(c)
                    } else {
                        GroupCursors::Heap(cursor_vals)
                    };
                    GroupSlot::PlanSliced {
                        start,
                        len,
                        used_total,
                        cursors,
                        attempted: entry.field("attempted")?.decode()?,
                    }
                }
                other => return Err(format!("unknown slot kind `{other}`")),
            };
            if slots.insert(key, slot).is_some() {
                return Err(format!("duplicate slot key {key}"));
            }
        }
        Ok(GroupEngine {
            slots,
            items,
            pos,
            plan_items,
        })
    }

    /// Mutable view of `key`'s state, created on first touch and promoted
    /// to arena slices once it qualifies. `population_len` must be stable
    /// across visits.
    pub fn view(&mut self, key: u64, population_len: usize) -> ArenaGroupView<'_> {
        let slot = self.slots.entry(key).or_insert_with(|| GroupSlot::Small {
            used: FnvHashSet::default(),
            used_groups: Vec::new(),
        });
        if let GroupSlot::Small { used, used_groups } = slot {
            if promotable(used.len(), population_len, INLINE_CAP) {
                let start = self.items.len();
                self.items.extend(0..population_len as u32);
                self.pos.extend(0..population_len as u32);
                let items = &mut self.items[start..];
                let pos = &mut self.pos[start..];
                // Partition used indices into the prefix, maintaining the
                // inverse permutation through the same swap discipline the
                // steady state uses.
                let mut cursor = 0usize;
                for i in 0..population_len {
                    let idx = items[i] as usize;
                    if used.contains(&(idx as u32)) {
                        let other = items[cursor] as usize;
                        items.swap(cursor, i);
                        pos[idx] = cursor as u32;
                        pos[other] = i as u32;
                        cursor += 1;
                    }
                }
                debug_assert_eq!(cursor, used.len(), "used indices ⊆ population");
                let start = u32::try_from(start).expect("arena exceeds u32::MAX entries");
                *slot = GroupSlot::Sliced {
                    start,
                    len: population_len as u32,
                    cursor: cursor as u32,
                    used_groups: std::mem::take(used_groups),
                };
            }
        }
        match slot {
            GroupSlot::Small { used, used_groups } => ArenaGroupView(ViewRepr::Small {
                used,
                used_groups,
                population_len,
            }),
            GroupSlot::Sliced {
                start,
                len,
                cursor,
                used_groups,
            } => {
                debug_assert_eq!(
                    *len as usize, population_len,
                    "population changed between visits"
                );
                let range = *start as usize..(*start + *len) as usize;
                ArenaGroupView(ViewRepr::Sliced {
                    len: *len,
                    cursor,
                    used_groups,
                    items: &mut self.items[range.clone()],
                    pos: &mut self.pos[range],
                })
            }
            GroupSlot::PlanInline { .. }
            | GroupSlot::PlanSpill { .. }
            | GroupSlot::PlanSliced { .. } => {
                panic!("group-engine key {key} holds plan-path state; use plan_view")
            }
        }
    }

    /// Mutable plan-path view of `key`'s state (see [`PlanEdgeView`]),
    /// created on first touch and promoted to a group-major arena slice
    /// once it qualifies under the same [`PROMOTION_SPAN`] rule as the
    /// scratch path. `groups` must be the plan slice of the edge's head
    /// node, identical across visits.
    ///
    /// # Panics
    /// Panics if `key` already holds scratch-path (non-plan) state — one
    /// edge's history must be driven by exactly one of the two paths.
    pub fn plan_view(&mut self, key: u64, groups: &NodeGroups<'_>) -> PlanEdgeView<'_> {
        let plen = groups.len();
        let group_count = groups.group_count();
        debug_assert!(
            group_count <= 64,
            "plan path requires ≤ 64 groups per node (attempted-set bitmask)"
        );
        let slot = self.slots.entry(key).or_insert(GroupSlot::PlanInline {
            used: [0; INLINE_CAP],
            len: 0,
            attempted: 0,
        });
        // Stage transitions first, exactly mirroring the scratch path: no
        // RNG consumed, used set preserved, so per-cycle coverage never
        // depends on when promotion happens.
        let promote = match &*slot {
            GroupSlot::PlanInline { len, .. } => promotable(usize::from(*len), plen, INLINE_CAP),
            GroupSlot::PlanSpill { used, .. } => promotable(used.len(), plen, INLINE_CAP),
            GroupSlot::PlanSliced { .. } => false,
            GroupSlot::Small { .. } | GroupSlot::Sliced { .. } => {
                panic!("group-engine key {key} holds scratch-path state; use view")
            }
        };
        if promote {
            let is_used = |idx: u32| match &*slot {
                GroupSlot::PlanInline { used, len, .. } => used[..usize::from(*len)].contains(&idx),
                GroupSlot::PlanSpill { used, .. } => used.contains(&idx),
                _ => unreachable!("only pre-promotion slots promote"),
            };
            let start = self.plan_items.len();
            self.plan_items.extend_from_slice(groups.members);
            let slice = &mut self.plan_items[start..];
            // Partition each group's used members into its prefix; the
            // per-group cursor is the prefix length.
            let mut cursors = GroupCursors::zeroed(group_count);
            let mut used_total = 0u32;
            for (g, cursor) in cursors.as_mut_slice(group_count).iter_mut().enumerate() {
                let (gs, ge) = groups.bounds(g);
                let mut c = 0usize;
                for i in gs..ge {
                    if is_used(slice[i]) {
                        slice.swap(gs + c, i);
                        c += 1;
                    }
                }
                *cursor = c as u32;
                used_total += c as u32;
            }
            let attempted = match &*slot {
                GroupSlot::PlanInline { attempted, .. }
                | GroupSlot::PlanSpill { attempted, .. } => *attempted,
                _ => unreachable!("only pre-promotion slots promote"),
            };
            debug_assert_eq!(
                used_total as usize,
                slot.used_len(),
                "used set ⊆ population"
            );
            let start = u32::try_from(start).expect("plan arena exceeds u32::MAX entries");
            *slot = GroupSlot::PlanSliced {
                start,
                len: plen as u32,
                used_total,
                cursors,
                attempted,
            };
        } else if let GroupSlot::PlanInline {
            used,
            len,
            attempted,
        } = slot
        {
            // Inline full but the population too large for the span guard:
            // spill to a hash set that grows one entry per draw.
            if usize::from(*len) == INLINE_CAP {
                *slot = GroupSlot::PlanSpill {
                    used: used.iter().copied().collect(),
                    attempted: *attempted,
                };
            }
        }
        match slot {
            GroupSlot::PlanInline {
                used,
                len,
                attempted,
            } => PlanEdgeView(PlanViewRepr::Inline {
                used,
                len,
                attempted,
            }),
            GroupSlot::PlanSpill { used, attempted } => {
                PlanEdgeView(PlanViewRepr::Spill { used, attempted })
            }
            GroupSlot::PlanSliced {
                start,
                len,
                used_total,
                cursors,
                attempted,
            } => {
                debug_assert_eq!(*len as usize, plen, "population changed between visits");
                let range = *start as usize..(*start + *len) as usize;
                PlanEdgeView(PlanViewRepr::Sliced {
                    used_total,
                    cursors,
                    attempted,
                    items: &mut self.plan_items[range],
                })
            }
            GroupSlot::Small { .. } | GroupSlot::Sliced { .. } => {
                unreachable!("rejected before the stage transition")
            }
        }
    }
}

/// Borrowed view of one edge's [`GroupEngine`] state.
pub struct ArenaGroupView<'a>(ViewRepr<'a>);

enum ViewRepr<'a> {
    Small {
        used: &'a mut FnvHashSet<u32>,
        used_groups: &'a mut Vec<u64>,
        population_len: usize,
    },
    Sliced {
        len: u32,
        cursor: &'a mut u32,
        used_groups: &'a mut Vec<u64>,
        items: &'a mut [u32],
        pos: &'a mut [u32],
    },
}

impl ArenaGroupView<'_> {
    /// Has population index `idx` been chosen in the current super-cycle?
    #[inline]
    pub fn is_used(&self, idx: usize) -> bool {
        match &self.0 {
            ViewRepr::Small { used, .. } => used.contains(&(idx as u32)),
            ViewRepr::Sliced { pos, cursor, .. } => pos[idx] < **cursor,
        }
    }

    /// Nodes chosen so far in the current super-cycle.
    pub fn used_count(&self) -> usize {
        match &self.0 {
            ViewRepr::Small { used, .. } => used.len(),
            ViewRepr::Sliced { cursor, .. } => **cursor as usize,
        }
    }

    /// Has `group` been attempted in the current group sub-cycle?
    pub fn group_attempted(&self, group: u64) -> bool {
        match &self.0 {
            ViewRepr::Small { used_groups, .. } | ViewRepr::Sliced { used_groups, .. } => {
                used_groups.contains(&group)
            }
        }
    }

    /// Reset the group sub-cycle (`S(u, v) <- ∅`).
    pub fn clear_attempted(&mut self) {
        match &mut self.0 {
            ViewRepr::Small { used_groups, .. } | ViewRepr::Sliced { used_groups, .. } => {
                used_groups.clear()
            }
        }
    }

    /// Record the choice of population index `idx` from `group`: mark the
    /// node used, mark the group attempted, and reset the whole super-cycle
    /// once every node is covered.
    pub fn record(&mut self, idx: usize, group: u64) {
        match &mut self.0 {
            ViewRepr::Small {
                used,
                used_groups,
                population_len,
            } => {
                let inserted = used.insert(idx as u32);
                debug_assert!(inserted, "index already used this super-cycle");
                if !used_groups.contains(&group) {
                    used_groups.push(group);
                }
                if used.len() == *population_len {
                    used.clear(); // super-cycle complete (Algorithm 2 step 4)
                    used_groups.clear();
                }
            }
            ViewRepr::Sliced {
                len,
                cursor,
                used_groups,
                items,
                pos,
            } => {
                let c = **cursor as usize;
                let p = pos[idx] as usize;
                debug_assert!(p >= c, "index already used this super-cycle");
                let other = items[c] as usize;
                items.swap(c, p);
                pos[idx] = c as u32;
                pos[other] = p as u32;
                **cursor += 1;
                if !used_groups.contains(&group) {
                    used_groups.push(group);
                }
                if **cursor == *len {
                    **cursor = 0; // super-cycle complete (Algorithm 2 step 4)
                    used_groups.clear();
                }
            }
        }
    }
}

/// Borrowed plan-path view of one edge's [`GroupEngine`] state: the GNRW
/// fast path. A [`draw`](Self::draw) performs the whole Algorithm-2 step —
/// group sub-cycle bookkeeping, alias-table group proposal, within-group
/// partial-Fisher–Yates member pick, super-cycle reset — against the
/// immutable [`NodeGroups`] slice of a
/// [`GroupPlan`](crate::groupplan::GroupPlan), consuming RNG only through a
/// [`DrawBatch`].
///
/// Group selection proposes from the alias table (∝ **full** group size)
/// and rejects attempted/exhausted groups, falling back to an exact
/// remaining-weighted scan after [`MAX_REJECTION_ITERS`]. That reorders and
/// re-weights draws relative to the scratch path (which scans un-attempted
/// transitions) — equivalent in stationary distribution by the paper's
/// Theorem 4 (per-super-cycle exact coverage is preserved verbatim), not in
/// trace.
pub struct PlanEdgeView<'a>(PlanViewRepr<'a>);

enum PlanViewRepr<'a> {
    Inline {
        used: &'a mut [u32; INLINE_CAP],
        len: &'a mut u8,
        attempted: &'a mut u64,
    },
    Spill {
        used: &'a mut FnvHashSet<u32>,
        attempted: &'a mut u64,
    },
    Sliced {
        used_total: &'a mut u32,
        cursors: &'a mut GroupCursors,
        attempted: &'a mut u64,
        items: &'a mut [u32],
    },
}

impl PlanEdgeView<'_> {
    /// Nodes chosen so far in the current super-cycle.
    pub fn used_count(&self) -> usize {
        match &self.0 {
            PlanViewRepr::Inline { len, .. } => usize::from(**len),
            PlanViewRepr::Spill { used, .. } => used.len(),
            PlanViewRepr::Sliced { used_total, .. } => **used_total as usize,
        }
    }

    /// Has population index `idx` been chosen in the current super-cycle?
    /// (`groups` locates `idx`'s group for the promoted representation.)
    pub fn is_used(&self, idx: usize, groups: &NodeGroups<'_>) -> bool {
        match &self.0 {
            PlanViewRepr::Inline { used, len, .. } => {
                used[..usize::from(**len)].contains(&(idx as u32))
            }
            PlanViewRepr::Spill { used, .. } => used.contains(&(idx as u32)),
            PlanViewRepr::Sliced { cursors, items, .. } => {
                // Promoted slices keep used members in each group's prefix;
                // scan only idx's group span (draws never call this — it
                // exists for tests and invariant checks).
                let g = (0..groups.group_count())
                    .find(|&g| groups.members_of(g).contains(&(idx as u32)))
                    .expect("index belongs to some group");
                let (gs, _) = groups.bounds(g);
                let c = cursors.as_slice(groups.group_count())[g] as usize;
                items[gs..gs + c].contains(&(idx as u32))
            }
        }
    }

    /// Groups attempted in the current sub-cycle, as a bitmask.
    pub fn attempted_mask(&self) -> u64 {
        match &self.0 {
            PlanViewRepr::Inline { attempted, .. }
            | PlanViewRepr::Spill { attempted, .. }
            | PlanViewRepr::Sliced { attempted, .. } => **attempted,
        }
    }

    /// Per-group not-yet-chosen counts for the current super-cycle, written
    /// into `rem` (cleared first). `O(groups)` when promoted, `O(deg)`
    /// before.
    pub fn remaining_per_group(&self, groups: &NodeGroups<'_>, rem: &mut Vec<u32>) {
        rem.clear();
        let group_count = groups.group_count();
        match &self.0 {
            PlanViewRepr::Inline { used, len, .. } => {
                let used = &used[..usize::from(**len)];
                rem.extend((0..group_count).map(|g| {
                    groups
                        .members_of(g)
                        .iter()
                        .filter(|m| !used.contains(m))
                        .count() as u32
                }));
            }
            PlanViewRepr::Spill { used, .. } => {
                rem.extend((0..group_count).map(|g| {
                    groups
                        .members_of(g)
                        .iter()
                        .filter(|m| !used.contains(m))
                        .count() as u32
                }));
            }
            PlanViewRepr::Sliced { cursors, .. } => {
                let cursors = cursors.as_slice(group_count);
                rem.extend((0..group_count).map(|g| groups.group_len(g) as u32 - cursors[g]));
            }
        }
    }

    /// One full GNRW transition on this edge: choose a group (un-attempted,
    /// non-exhausted — resetting the sub-cycle when none qualifies), choose
    /// an unvisited member uniformly within it, record both, and reset the
    /// super-cycle when `N(v)` is covered. Returns the chosen **local
    /// neighbor index**.
    ///
    /// `alias` is the node's table over full group sizes (`None` means a
    /// single group). `rem` is caller-owned scratch for per-group remaining
    /// counts.
    pub fn draw(
        &mut self,
        groups: &NodeGroups<'_>,
        alias: Option<&AliasTable>,
        batch: &mut DrawBatch,
        rng: &mut dyn RngCore,
        rem: &mut Vec<u32>,
    ) -> usize {
        let group_count = groups.group_count();
        debug_assert!((1..=64).contains(&group_count));
        self.remaining_per_group(groups, rem);
        debug_assert!(
            rem.iter().map(|&r| u64::from(r)).sum::<u64>() > 0,
            "draw on an exhausted super-cycle (reset happens at record time)"
        );
        let mut attempted = self.attempted_mask();
        // Sub-cycle reset (Algorithm 2 step 2): no un-attempted group has
        // unvisited members left.
        let candidate =
            |attempted: u64, g: usize, rem: &[u32]| rem[g] > 0 && attempted & (1 << g) == 0;
        if !(0..group_count).any(|g| candidate(attempted, g, rem)) {
            attempted = 0;
            self.set_attempted(0);
        }
        // Group choice. A single candidate consumes no RNG; otherwise alias
        // proposals ∝ full group size with rejection, then the exact
        // remaining-weighted scan as a bounded fallback.
        let mut candidates = (0..group_count).filter(|&g| candidate(attempted, g, rem));
        let first = candidates.next().expect("some group has members left");
        let chosen = if candidates.next().is_none() {
            first
        } else {
            let mut pick = None;
            if let Some(alias) = alias {
                for _ in 0..MAX_REJECTION_ITERS {
                    let g = alias.sample(batch.next_u64(rng));
                    if candidate(attempted, g, rem) {
                        pick = Some(g);
                        break;
                    }
                }
            }
            pick.unwrap_or_else(|| {
                let total: u64 = (0..group_count)
                    .filter(|&g| candidate(attempted, g, rem))
                    .map(|g| u64::from(rem[g]))
                    .sum();
                let mut target = batch.range(total as usize, rng) as u64;
                (0..group_count)
                    .filter(|&g| candidate(attempted, g, rem))
                    .find(|&g| {
                        if target < u64::from(rem[g]) {
                            true
                        } else {
                            target -= u64::from(rem[g]);
                            false
                        }
                    })
                    .expect("target < total remaining")
            })
        };
        // Member choice within the chosen group, then record + resets.
        let remaining = rem[chosen] as usize;
        let (gs, ge) = groups.bounds(chosen);
        let population_len = groups.len();
        match &mut self.0 {
            PlanViewRepr::Sliced {
                used_total,
                cursors,
                attempted,
                items,
            } => {
                // Partial Fisher–Yates inside the group span: one draw, one
                // swap, exactly O(1).
                let c = cursors.as_slice(group_count)[chosen] as usize;
                let j = if remaining == 1 {
                    0
                } else {
                    batch.range(remaining, rng)
                };
                items.swap(gs + c, gs + c + j);
                let pick = items[gs + c] as usize;
                cursors.as_mut_slice(group_count)[chosen] += 1;
                **used_total += 1;
                **attempted |= 1 << chosen;
                if **used_total as usize == population_len {
                    // Super-cycle complete (Algorithm 2 step 4): cursor
                    // rewind per group, groups forgotten.
                    **used_total = 0;
                    cursors.as_mut_slice(group_count).fill(0);
                    **attempted = 0;
                }
                pick
            }
            PlanViewRepr::Inline {
                used,
                len,
                attempted,
            } => {
                let members = &groups.members[gs..ge];
                let used_slice = &used[..usize::from(**len)];
                let pick =
                    plan_member_pick(members, remaining, |m| used_slice.contains(&m), batch, rng);
                **attempted |= 1 << chosen;
                if usize::from(**len) + 1 == population_len {
                    **len = 0; // super-cycle complete -> reset
                    **attempted = 0;
                } else {
                    used[usize::from(**len)] = pick;
                    **len += 1;
                }
                pick as usize
            }
            PlanViewRepr::Spill { used, attempted } => {
                let members = &groups.members[gs..ge];
                let pick = plan_member_pick(members, remaining, |m| used.contains(&m), batch, rng);
                **attempted |= 1 << chosen;
                if used.len() + 1 == population_len {
                    used.clear();
                    **attempted = 0;
                } else {
                    used.insert(pick);
                }
                pick as usize
            }
        }
    }

    fn set_attempted(&mut self, mask: u64) {
        match &mut self.0 {
            PlanViewRepr::Inline { attempted, .. }
            | PlanViewRepr::Spill { attempted, .. }
            | PlanViewRepr::Sliced { attempted, .. } => **attempted = mask,
        }
    }
}

/// Uniform pick among the unvisited `remaining` members of a group slice
/// (pre-promotion stages): bounded rejection sampling over the group, then
/// an exact rank scan — the plan-path twin of [`draw_excluding`], consuming
/// RNG through the batch.
fn plan_member_pick(
    members: &[u32],
    remaining: usize,
    is_used: impl Fn(u32) -> bool,
    batch: &mut DrawBatch,
    rng: &mut dyn RngCore,
) -> u32 {
    debug_assert!(remaining > 0 && remaining <= members.len());
    if remaining == 1 {
        return *members
            .iter()
            .find(|&&m| !is_used(m))
            .expect("one member remaining");
    }
    if remaining == members.len() {
        // Untouched group: every member is valid, one direct draw.
        return members[batch.range(members.len(), rng)];
    }
    for _ in 0..MAX_REJECTION_ITERS {
        let cand = members[batch.range(members.len(), rng)];
        if !is_used(cand) {
            return cand;
        }
    }
    let mut rank = batch.range(remaining, rng);
    *members
        .iter()
        .filter(|&&m| !is_used(m))
        .find(|_| {
            if rank == 0 {
                true
            } else {
                rank -= 1;
                false
            }
        })
        .expect("rank < remaining unused members")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn pop(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn every_cycle_is_a_permutation_across_promotion() {
        // Degree 20 with threshold 4: the first cycle crosses the
        // inline -> promoted boundary mid-way and must still cover the
        // population exactly once, as must every later (fully promoted)
        // cycle.
        let population = pop(20);
        for threshold in [1usize, 2, 4, 8] {
            let mut engine = CirculationEngine::with_threshold(threshold);
            let mut rng = ChaCha12Rng::seed_from_u64(9);
            for cycle in 0..4 {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..population.len() {
                    let d = engine.draw(7, &population, &mut rng).unwrap();
                    assert!(seen.insert(d), "repeat in cycle {cycle} (t={threshold})");
                }
                assert_eq!(seen.len(), population.len());
            }
        }
    }

    #[test]
    fn small_populations_never_promote() {
        // A population completing its cycles inside the inline capacity
        // stays inline forever: zero arena growth.
        let population = pop(3);
        let mut engine = CirculationEngine::new();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..30 {
            engine.draw(1, &population, &mut rng).unwrap();
        }
        assert!(engine.arena.is_empty());
        assert_eq!(engine.tracked(), 1);
    }

    #[test]
    fn large_populations_spill_then_promote_within_the_span_bound() {
        // Degree 200 > PROMOTION_SPAN * INLINE_CAP: the edge must pass
        // through the spill stage and only promote once the slice costs at
        // most PROMOTION_SPAN times the recorded draws — the O(K) memory
        // guard.
        let plen = 200usize;
        let population = pop(plen as u32);
        let mut engine = CirculationEngine::new();
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for draws in 1..=plen {
            seen.insert(engine.draw(0, &population, &mut rng).unwrap());
            if !engine.arena.is_empty() {
                // Promotion just happened (or already had): the O(K) bound.
                assert!(
                    engine.arena.len() <= PROMOTION_SPAN * draws,
                    "slice of {} after {draws} draws breaks the span bound",
                    engine.arena.len()
                );
            } else {
                // Still inline/spilled: memory is exactly the used set, and
                // the state seen at the start of this draw was legitimately
                // not yet promotable.
                assert_eq!(engine.used_len(0), Some(draws));
                assert!(!promotable(draws - 1, plen, INLINE_CAP));
            }
        }
        // Promotion must have happened well before the cycle completed,
        // and the cycle still covered everything exactly once.
        assert_eq!(engine.arena.len(), plen);
        assert_eq!(seen.len(), plen);
        assert_eq!(engine.total_entries(), 0); // cursor rewound
    }

    #[test]
    fn promoted_reset_is_a_cursor_rewind() {
        let population = pop(12);
        let mut engine = CirculationEngine::with_threshold(2);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        for _ in 0..12 {
            engine.draw(0, &population, &mut rng).unwrap();
        }
        // Cycle complete: accounting shows zero used, arena still owns the
        // (single) slice.
        assert_eq!(engine.total_entries(), 0);
        assert_eq!(engine.arena.len(), 12);
        // Second full cycle re-covers everything.
        let seen: std::collections::HashSet<NodeId> = (0..12)
            .map(|_| engine.draw(0, &population, &mut rng).unwrap())
            .collect();
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn used_len_probe_never_creates_state() {
        let mut engine = CirculationEngine::new();
        assert_eq!(engine.used_len(3), None);
        assert_eq!(engine.tracked(), 0);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        engine.draw(3, &pop(5), &mut rng).unwrap();
        assert_eq!(engine.used_len(3), Some(1));
        assert_eq!(engine.used_len(4), None);
        assert_eq!(engine.tracked(), 1);
    }

    #[test]
    fn empty_population_draws_none() {
        let mut engine = CirculationEngine::new();
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        assert_eq!(engine.draw(0, &[], &mut rng), None);
        assert_eq!(engine.tracked(), 0);
    }

    #[test]
    fn singleton_population_always_draws_it() {
        let mut engine = CirculationEngine::new();
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        for _ in 0..10 {
            assert_eq!(engine.draw(0, &pop(1), &mut rng), Some(NodeId(0)));
        }
        assert_eq!(engine.total_entries(), 0);
    }

    #[test]
    fn clear_empties_arena_but_keeps_capacity() {
        let mut engine = CirculationEngine::with_threshold(1);
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        for _ in 0..5 {
            engine.draw(0, &pop(30), &mut rng).unwrap();
        }
        assert!(!engine.arena.is_empty());
        let capacity = engine.arena_capacity();
        engine.clear();
        assert_eq!(engine.tracked(), 0);
        assert!(engine.arena.is_empty());
        // The slab itself is retained for the next walk (restart reuse).
        assert_eq!(engine.arena_capacity(), capacity);
    }

    #[test]
    fn group_engine_membership_and_reset() {
        let mut engine = GroupEngine::default();
        {
            let mut view = engine.view(42, 4);
            assert_eq!(view.used_count(), 0);
            assert!(!view.is_used(2));
            view.record(2, 100);
            assert!(view.is_used(2));
            assert!(view.group_attempted(100));
            assert!(!view.group_attempted(200));
            view.record(0, 200);
            view.record(3, 100);
            assert_eq!(view.used_count(), 3);
            // Completing the super-cycle resets nodes and groups.
            view.record(1, 200);
            assert_eq!(view.used_count(), 0);
            assert!(!view.group_attempted(100));
            for i in 0..4 {
                assert!(!view.is_used(i), "index {i} leaked across super-cycles");
            }
        }
        assert_eq!(engine.tracked(), 1);
        assert_eq!(engine.total_entries(), 0);
        assert_eq!(engine.probe(42), Some((0, 0)));
        assert_eq!(engine.probe(43), None);
    }

    #[test]
    fn group_engine_promotes_at_half_used_and_stays_consistent() {
        // Population 6: records through fresh views (as the walker does,
        // one view per step) promote the edge at the half-used point; the
        // membership answers must be identical across the transition.
        let mut engine = GroupEngine::default();
        engine.view(9, 6).record(4, 1);
        engine.view(9, 6).record(1, 2);
        assert!(engine.items.is_empty(), "too early to promote");
        // Third record leaves 3 of 6 used; the next view creation crosses
        // the half-used point and must promote without changing any answer.
        engine.view(9, 6).record(5, 1);
        {
            let view = engine.view(9, 6);
            assert_eq!(view.used_count(), 3);
            for idx in [1usize, 4, 5] {
                assert!(view.is_used(idx), "index {idx} lost in promotion");
            }
            for idx in [0usize, 2, 3] {
                assert!(!view.is_used(idx), "index {idx} wrongly used");
            }
            assert!(view.group_attempted(1) && view.group_attempted(2));
        }
        assert!(!engine.items.is_empty(), "half-used edge must be promoted");
        // Finish the super-cycle through the sliced path.
        let mut view = engine.view(9, 6);
        view.record(0, 3);
        view.record(2, 1);
        view.record(3, 2);
        assert_eq!(engine.total_entries(), 0); // rewound
        assert_eq!(engine.probe(9), Some((0, 0)));
    }

    #[test]
    fn group_engine_keeps_large_cold_edges_compact() {
        // One draw on a degree-500 edge must not materialize slices: the
        // small stage is O(draws), the O(K) guard for GNRW.
        let mut engine = GroupEngine::default();
        engine.view(1, 500).record(123, 7);
        assert!(engine.items.is_empty() && engine.pos.is_empty());
        assert_eq!(engine.total_entries(), 1);
        assert!(engine.view(1, 500).is_used(123));
        assert!(!engine.view(1, 500).is_used(124));
    }

    #[test]
    fn group_engine_separate_keys_have_separate_slices() {
        let mut engine = GroupEngine::default();
        engine.view(1, 3).record(0, 7);
        engine.view(2, 5).record(4, 9);
        assert_eq!(engine.tracked(), 2);
        assert_eq!(engine.total_entries(), 2);
        assert!(engine.view(1, 3).is_used(0));
        assert!(!engine.view(1, 3).is_used(1));
        assert!(engine.view(2, 5).is_used(4));
        assert!(!engine.view(2, 5).is_used(0));
    }

    // --- plan-path slots ---

    use crate::groupplan::{AliasTable, DrawBatch, NodeGroups};

    /// Three groups of sizes 5/4/3 over population 12 (indices in order).
    fn plan_fixture() -> (Vec<u32>, Vec<u32>, Vec<u64>) {
        ((0..12).collect(), vec![5, 9, 12], vec![10, 20, 30])
    }

    #[test]
    fn plan_draws_cover_population_each_super_cycle() {
        // Population 12 > INLINE_CAP: the first cycle crosses the
        // PlanInline -> PlanSliced boundary mid-way; every cycle must still
        // be a permutation of the population (Theorem 4's invariant).
        let (members, ends, keys) = plan_fixture();
        let groups = NodeGroups {
            members: &members,
            ends: &ends,
            keys: &keys,
        };
        let alias = AliasTable::new(&[5, 4, 3]);
        let mut engine = GroupEngine::default();
        let mut batch = DrawBatch::new();
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut rem = Vec::new();
        for cycle in 0..5 {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..12 {
                let idx = engine.plan_view(5, &groups).draw(
                    &groups,
                    Some(&alias),
                    &mut batch,
                    &mut rng,
                    &mut rem,
                );
                assert!(seen.insert(idx), "repeat of {idx} in cycle {cycle}");
            }
            assert_eq!(seen.len(), 12, "cycle {cycle} incomplete");
        }
        // The slot must have promoted into the plan arena by now, and the
        // completed super-cycle leaves zero recorded entries.
        assert!(engine.plan_arena_capacity() >= 12);
        assert_eq!(engine.total_entries(), 0);
    }

    #[test]
    fn plan_draws_without_alias_fall_back_to_weighted_scan() {
        // `alias: None` (single-group nodes or alias construction skipped)
        // must preserve the same coverage invariant through the linear
        // remaining-weighted fallback.
        let (members, ends, keys) = plan_fixture();
        let groups = NodeGroups {
            members: &members,
            ends: &ends,
            keys: &keys,
        };
        let mut engine = GroupEngine::default();
        let mut batch = DrawBatch::new();
        let mut rng = ChaCha12Rng::seed_from_u64(8);
        let mut rem = Vec::new();
        for _ in 0..3 {
            let seen: std::collections::HashSet<usize> = (0..12)
                .map(|_| {
                    engine
                        .plan_view(5, &groups)
                        .draw(&groups, None, &mut batch, &mut rng, &mut rem)
                })
                .collect();
            assert_eq!(seen.len(), 12);
        }
    }

    #[test]
    fn plan_promotion_preserves_used_and_attempted_sets() {
        // Drive a slot just past the promotion point and check membership
        // and the attempted mask survive the inline -> sliced transition.
        let (members, ends, keys) = plan_fixture();
        let groups = NodeGroups {
            members: &members,
            ends: &ends,
            keys: &keys,
        };
        let alias = AliasTable::new(&[5, 4, 3]);
        let mut engine = GroupEngine::default();
        let mut batch = DrawBatch::new();
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let mut rem = Vec::new();
        let mut drawn = Vec::new();
        for _ in 0..7 {
            drawn.push(engine.plan_view(5, &groups).draw(
                &groups,
                Some(&alias),
                &mut batch,
                &mut rng,
                &mut rem,
            ));
        }
        assert!(
            engine.plan_arena_capacity() >= 12,
            "7 of 12 used must have promoted"
        );
        let view = engine.plan_view(5, &groups);
        assert_eq!(view.used_count(), 7);
        for idx in 0..12usize {
            assert_eq!(
                view.is_used(idx, &groups),
                drawn.contains(&idx),
                "membership for {idx} changed across promotion"
            );
        }
    }

    #[test]
    fn plan_slots_roundtrip_through_export_import() {
        // One slot per stage (inline, spill, sliced); the re-imported
        // engine must agree on counts and membership, and continue to a
        // full cover.
        let (members, ends, keys) = plan_fixture();
        let sliced_groups = NodeGroups {
            members: &members,
            ends: &ends,
            keys: &keys,
        };
        let alias = AliasTable::new(&[5, 4, 3]);
        // A wide population keeps its slot in the spill stage: the inline
        // cap is exceeded but the slice would break the span bound.
        let wide_members: Vec<u32> = (0..200).collect();
        let wide_ends = vec![100, 160, 200];
        let wide_keys = vec![1, 2, 3];
        let wide_groups = NodeGroups {
            members: &wide_members,
            ends: &wide_ends,
            keys: &wide_keys,
        };
        let wide_alias = AliasTable::new(&[100, 60, 40]);
        let mut engine = GroupEngine::default();
        let mut batch = DrawBatch::new();
        let mut rng = ChaCha12Rng::seed_from_u64(10);
        let mut rem = Vec::new();
        let mut draw = |engine: &mut GroupEngine,
                        key: u64,
                        groups: &NodeGroups<'_>,
                        alias: &AliasTable,
                        n: usize| {
            for _ in 0..n {
                engine.plan_view(key, groups).draw(
                    groups,
                    Some(alias),
                    &mut batch,
                    &mut rng,
                    &mut rem,
                );
            }
        };
        draw(&mut engine, 1, &sliced_groups, &alias, 3); // inline
        draw(&mut engine, 2, &sliced_groups, &alias, 9); // sliced
        draw(&mut engine, 3, &wide_groups, &wide_alias, 10); // spill
        let state = engine.export_state();
        let mut imported = GroupEngine::import_state(&state).unwrap();
        assert_eq!(imported.tracked(), engine.tracked());
        assert_eq!(imported.total_entries(), engine.total_entries());
        for key in [1u64, 2] {
            let snapshot: Vec<bool> = {
                let a = engine.plan_view(key, &sliced_groups);
                (0..12).map(|idx| a.is_used(idx, &sliced_groups)).collect()
            };
            let b = imported.plan_view(key, &sliced_groups);
            let original = engine.plan_view(key, &sliced_groups);
            assert_eq!(original.used_count(), b.used_count(), "key {key}");
            assert_eq!(original.attempted_mask(), b.attempted_mask(), "key {key}");
            for (idx, &was) in snapshot.iter().enumerate() {
                assert_eq!(b.is_used(idx, &sliced_groups), was, "key {key}/{idx}");
            }
        }
        {
            let spill = imported.plan_view(3, &wide_groups);
            assert_eq!(spill.used_count(), 10);
        }
        // The imported sliced slot must finish its super-cycle cleanly: 3
        // draws cover the remaining 3 members and rewind the cycle.
        let mut batch2 = DrawBatch::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            let idx = imported.plan_view(2, &sliced_groups).draw(
                &sliced_groups,
                Some(&alias),
                &mut batch2,
                &mut rng,
                &mut rem,
            );
            assert!(seen.insert(idx), "repeat of {idx} closing the cycle");
        }
        assert_eq!(imported.plan_view(2, &sliced_groups).used_count(), 0);
    }

    #[test]
    #[should_panic(expected = "plan-path state")]
    fn scratch_view_rejects_plan_slots() {
        let (members, ends, keys) = plan_fixture();
        let groups = NodeGroups {
            members: &members,
            ends: &ends,
            keys: &keys,
        };
        let mut engine = GroupEngine::default();
        let _ = engine.plan_view(5, &groups);
        let _ = engine.view(5, 12);
    }

    #[test]
    #[should_panic(expected = "scratch-path state")]
    fn plan_view_rejects_scratch_slots() {
        let (members, ends, keys) = plan_fixture();
        let groups = NodeGroups {
            members: &members,
            ends: &ends,
            keys: &keys,
        };
        let mut engine = GroupEngine::default();
        let _ = engine.view(5, 12);
        let _ = engine.plan_view(5, &groups);
    }
}
