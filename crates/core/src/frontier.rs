//! Frontier sampling (Ribeiro & Towsley, SIGCOMM 2010 — the paper's \[17\]).
//!
//! An `m`-dimensional random walk: keep `m` walker positions; at each step
//! choose one position with probability proportional to its degree, move it
//! to a uniform neighbor, and emit the traversed edge. The emitted edge
//! sequence converges to uniform-over-edges, so emitted *endpoints* are
//! degree-proportional — the same target distribution as SRW — while the
//! multiple dimensions make the sampler far less sensitive to where it
//! started (the property the paper's related work credits it for).
//!
//! Included as a baseline rounding out the related-work comparison set; it
//! composes with the same clients, budgets and estimators as everything
//! else in this crate.

use osn_client::{BudgetExhausted, OsnClient, QueryStats};
use osn_graph::NodeId;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Frontier sampler state: `m` walker positions.
#[derive(Clone, Debug)]
pub struct FrontierSampler {
    positions: Vec<NodeId>,
}

impl FrontierSampler {
    /// Start with the given positions (their number is the sampler's
    /// dimension `m`; Ribeiro & Towsley recommend tens).
    ///
    /// # Panics
    /// Panics if `positions` is empty.
    pub fn new(positions: Vec<NodeId>) -> Self {
        assert!(!positions.is_empty(), "frontier needs at least one walker");
        FrontierSampler { positions }
    }

    /// Spread `m` walkers over the first `n` node ids deterministically
    /// (stand-in for the uniform seed nodes the original paper assumes).
    pub fn spread(m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0);
        let positions = (0..m).map(|i| NodeId(((i * n) / m) as u32)).collect();
        FrontierSampler { positions }
    }

    /// Current walker positions.
    pub fn positions(&self) -> &[NodeId] {
        &self.positions
    }

    /// One frontier step: pick a position degree-proportionally, move it to
    /// a uniform neighbor, return the node arrived at.
    ///
    /// # Errors
    /// [`BudgetExhausted`] if the neighbor query is refused; positions are
    /// unchanged in that case.
    pub fn step(
        &mut self,
        client: &mut dyn OsnClient,
        rng: &mut dyn RngCore,
    ) -> Result<NodeId, BudgetExhausted> {
        // Degree-proportional choice of which walker advances (degrees are
        // listing metadata — free, see osn-client's access model).
        let total: usize = self
            .positions
            .iter()
            .map(|&p| client.peek_degree(p).max(1))
            .sum();
        let mut pick = (*rng).gen_range(0..total);
        let mut chosen = 0usize;
        for (i, &p) in self.positions.iter().enumerate() {
            let w = client.peek_degree(p).max(1);
            if pick < w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        let at = self.positions[chosen];
        let neighbors = client.neighbors(at)?;
        if neighbors.is_empty() {
            return Ok(at);
        }
        let next = neighbors[(*rng).gen_range(0..neighbors.len())];
        self.positions[chosen] = next;
        Ok(next)
    }

    /// Run for up to `max_steps`, collecting emitted nodes; stops early on
    /// budget exhaustion. Deterministic per seed.
    pub fn run<C: OsnClient>(
        &mut self,
        client: &mut C,
        max_steps: usize,
        seed: u64,
    ) -> (Vec<NodeId>, QueryStats) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(max_steps.min(1 << 20));
        for _ in 0..max_steps {
            match self.step(&mut *client, &mut rng) {
                Ok(v) => out.push(v),
                Err(_) => break,
            }
        }
        (out, client.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_client::{BudgetedClient, SimulatedOsn};
    use osn_graph::generators::{barbell, erdos_renyi};

    #[test]
    fn emitted_nodes_are_degree_proportional() {
        let g = erdos_renyi(60, 0.15, 1).unwrap();
        let pi = g.degree_stationary_distribution();
        let mut client = SimulatedOsn::from_graph(g);
        let mut fs = FrontierSampler::spread(10, 60);
        let (nodes, _) = fs.run(&mut client, 300_000, 2);
        let mut counts = vec![0usize; 60];
        for v in &nodes {
            counts[v.index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / nodes.len() as f64;
            assert!(
                (freq - pi[i]).abs() < 0.01,
                "node {i}: freq {freq} vs pi {}",
                pi[i]
            );
        }
    }

    #[test]
    fn respects_budget() {
        let g = barbell(10, 10).unwrap();
        let n = g.node_count();
        let client = SimulatedOsn::from_graph(g);
        let mut client = BudgetedClient::new(client, 8, n);
        let mut fs = FrontierSampler::spread(4, n);
        let (nodes, stats) = fs.run(&mut client, 100_000, 3);
        assert!(stats.unique <= 8);
        assert!(!nodes.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let g = barbell(8, 8).unwrap();
        let run = |seed| {
            let mut client = SimulatedOsn::from_graph(g.clone());
            let mut fs = FrontierSampler::spread(3, 16);
            fs.run(&mut client, 500, seed).0
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn multiple_dimensions_reduce_start_sensitivity() {
        // All walkers start in the left bell vs spread across both bells:
        // the spread frontier covers the right bell sooner.
        let g = barbell(25, 25).unwrap();
        let first_right_visit = |positions: Vec<NodeId>| {
            let mut client = SimulatedOsn::from_graph(g.clone());
            let mut fs = FrontierSampler::new(positions);
            let (nodes, _) = fs.run(&mut client, 50_000, 5);
            nodes.iter().position(|v| v.index() >= 25).unwrap_or(50_000)
        };
        let clumped = first_right_visit(vec![NodeId(0); 8]);
        let spread = first_right_visit((0..8).map(|i| NodeId(i * 6)).collect());
        assert!(
            spread <= clumped,
            "spread {spread} should reach the right bell no later than clumped {clumped}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one walker")]
    fn empty_frontier_panics() {
        let _ = FrontierSampler::new(vec![]);
    }

    #[test]
    fn spread_positions_cover_range() {
        let fs = FrontierSampler::spread(4, 100);
        let ids: Vec<u32> = fs.positions().iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 25, 50, 75]);
    }
}
