//! Frontier sampling (Ribeiro & Towsley, SIGCOMM 2010 — the paper's \[17\])
//! and the shared frontier pool built on its idea.
//!
//! [`FrontierSampler`] is the original `m`-dimensional random walk: keep `m`
//! walker positions; at each step choose one position with probability
//! proportional to its degree, move it to a uniform neighbor, and emit the
//! traversed edge. The emitted edge sequence converges to
//! uniform-over-edges, so emitted *endpoints* are degree-proportional — the
//! same target distribution as SRW — while the multiple dimensions make the
//! sampler far less sensitive to where it started (the property the paper's
//! related work credits it for).
//!
//! [`SharedFrontier`] transplants that insight into the multi-walker
//! orchestrator (`crate::orchestrator`): cooperating walkers **publish** the
//! high-degree nodes they walk through into a lock-striped pool, and a
//! walker whose own neighborhood has gone sterile **steals** a position
//! discovered by another walker instead of burning budget where coverage is
//! saturated. Degree-biased retention mirrors the frontier sampler's
//! degree-proportional position choice; the striping mirrors
//! `osn_client::SharedOsn`'s cache so publishes from concurrent walker
//! threads rarely contend.

use std::sync::{Arc, Mutex, PoisonError};

use osn_client::{BudgetExhausted, OsnClient, QueryStats};
use osn_graph::NodeId;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Frontier sampler state: `m` walker positions.
#[derive(Clone, Debug)]
pub struct FrontierSampler {
    positions: Vec<NodeId>,
}

impl FrontierSampler {
    /// Start with the given positions (their number is the sampler's
    /// dimension `m`; Ribeiro & Towsley recommend tens).
    ///
    /// # Panics
    /// Panics if `positions` is empty.
    pub fn new(positions: Vec<NodeId>) -> Self {
        assert!(!positions.is_empty(), "frontier needs at least one walker");
        FrontierSampler { positions }
    }

    /// Spread `m` walkers over the first `n` node ids deterministically
    /// (stand-in for the uniform seed nodes the original paper assumes).
    pub fn spread(m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0);
        let positions = (0..m).map(|i| NodeId(((i * n) / m) as u32)).collect();
        FrontierSampler { positions }
    }

    /// Current walker positions.
    pub fn positions(&self) -> &[NodeId] {
        &self.positions
    }

    /// One frontier step: pick a position degree-proportionally, move it to
    /// a uniform neighbor, return the node arrived at.
    ///
    /// # Errors
    /// [`BudgetExhausted`] if the neighbor query is refused; positions are
    /// unchanged in that case.
    pub fn step(
        &mut self,
        client: &mut dyn OsnClient,
        rng: &mut dyn RngCore,
    ) -> Result<NodeId, BudgetExhausted> {
        // Degree-proportional choice of which walker advances (degrees are
        // listing metadata — free, see osn-client's access model).
        let total: usize = self
            .positions
            .iter()
            .map(|&p| client.peek_degree(p).max(1))
            .sum();
        let mut pick = (*rng).gen_range(0..total);
        let mut chosen = 0usize;
        for (i, &p) in self.positions.iter().enumerate() {
            let w = client.peek_degree(p).max(1);
            if pick < w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        let at = self.positions[chosen];
        let neighbors = client.neighbors(at)?;
        if neighbors.is_empty() {
            return Ok(at);
        }
        let next = neighbors[(*rng).gen_range(0..neighbors.len())];
        self.positions[chosen] = next;
        Ok(next)
    }

    /// Run for up to `max_steps`, collecting emitted nodes; stops early on
    /// budget exhaustion. Deterministic per seed.
    pub fn run<C: OsnClient>(
        &mut self,
        client: &mut C,
        max_steps: usize,
        seed: u64,
    ) -> (Vec<NodeId>, QueryStats) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(max_steps.min(1 << 20));
        for _ in 0..max_steps {
            match self.step(&mut *client, &mut rng) {
                Ok(v) => out.push(v),
                Err(_) => break,
            }
        }
        (out, client.stats())
    }
}

/// One restart candidate in a [`SharedFrontier`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrontierEntry {
    /// The published node. Its neighbor list was fetched by the owner when
    /// it departed, so restarting here re-queries nothing.
    pub node: NodeId,
    /// The node's degree (free listing metadata) — the retention and steal
    /// priority.
    pub degree: usize,
    /// Index of the walker that published it.
    pub owner: usize,
}

/// A lock-striped stripe of the frontier pool: a small degree-ordered set
/// of candidates, deduplicated by node.
#[derive(Debug, Default)]
struct FrontierStripe {
    entries: Vec<FrontierEntry>,
}

/// Lock-striped pool of restart candidates shared by cooperating walkers.
///
/// Walkers [`publish`](SharedFrontier::publish) every node they depart from;
/// each stripe (`fnv(node) % stripes`, the same mapping
/// `osn_client::SharedOsn` stripes its cache with) retains its
/// `per_stripe_cap` highest-degree candidates, so the pool as a whole keeps
/// the fleet's best-connected discovered territory in `O(stripes × cap)`
/// memory. [`steal`](SharedFrontier::steal) removes and returns the best
/// candidate published by *another* walker — max degree first, smallest node
/// id on ties, cached candidates preferred — which is fully deterministic
/// given the pool contents.
///
/// Clones share the pool (the handle is an `Arc`), mirroring `SharedOsn`.
#[derive(Clone, Debug)]
pub struct SharedFrontier {
    stripes: Arc<Vec<Mutex<FrontierStripe>>>,
    per_stripe_cap: usize,
}

impl Default for SharedFrontier {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedFrontier {
    /// Default pool: 16 stripes of up to 32 candidates each.
    pub fn new() -> Self {
        Self::with_stripes(16, 32)
    }

    /// Pool with an explicit stripe count and per-stripe capacity (both
    /// clamped to at least 1).
    pub fn with_stripes(stripes: usize, per_stripe_cap: usize) -> Self {
        SharedFrontier {
            stripes: Arc::new((0..stripes.max(1)).map(|_| Mutex::default()).collect()),
            per_stripe_cap: per_stripe_cap.max(1),
        }
    }

    /// Number of lock stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_of(&self, u: NodeId) -> &Mutex<FrontierStripe> {
        let i = (osn_graph::fnv::hash_node_id(u.0) % self.stripes.len() as u64) as usize;
        &self.stripes[i]
    }

    /// Lock a stripe, recovering from poisoning: the pool holds plain
    /// copyable data, so a panicked publisher cannot leave it inconsistent.
    fn lock(m: &Mutex<FrontierStripe>) -> std::sync::MutexGuard<'_, FrontierStripe> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Offer `(node, degree)` discovered by walker `owner` to the pool.
    /// Kept if its stripe has room or `degree` beats the stripe's weakest
    /// retained candidate; re-publishing an already-pooled node refreshes
    /// nothing (first discoverer keeps ownership).
    pub fn publish(&self, node: NodeId, degree: usize, owner: usize) {
        let mut stripe = Self::lock(self.stripe_of(node));
        if stripe.entries.iter().any(|e| e.node == node) {
            return;
        }
        if stripe.entries.len() < self.per_stripe_cap {
            stripe.entries.push(FrontierEntry {
                node,
                degree,
                owner,
            });
            return;
        }
        // Full: replace the weakest entry if strictly weaker than the
        // newcomer (ties keep the incumbent — older discoveries win).
        if let Some(weakest) = stripe
            .entries
            .iter_mut()
            .min_by_key(|e| (e.degree, std::cmp::Reverse(e.node.0)))
        {
            if weakest.degree < degree {
                *weakest = FrontierEntry {
                    node,
                    degree,
                    owner,
                };
            }
        }
    }

    /// Remove and return the best candidate for walker `thief`: published by
    /// a *different* walker, of degree at least `min_degree` (degree-biased
    /// steering, in the spirit of the frontier sampler's
    /// degree-proportional position choice — pass the thief's current
    /// degree plus one to demand strictly better-connected territory, or 0
    /// to accept anything), not rejected by `reject` (the thief's own
    /// visited set), preferring candidates for which `cached` holds (their
    /// neighbor list is free to re-fetch), then maximum degree, then
    /// smallest node id. `None` when no other walker has published anything
    /// the thief could use.
    pub fn steal(
        &self,
        thief: usize,
        min_degree: usize,
        mut reject: impl FnMut(NodeId) -> bool,
        mut cached: impl FnMut(NodeId) -> bool,
    ) -> Option<FrontierEntry> {
        let mut best: Option<(bool, usize, std::cmp::Reverse<u32>)> = None;
        let mut best_entry: Option<FrontierEntry> = None;
        for stripe in self.stripes.iter() {
            let stripe = Self::lock(stripe);
            for e in &stripe.entries {
                if e.owner == thief || e.degree < min_degree || reject(e.node) {
                    continue;
                }
                let key = (cached(e.node), e.degree, std::cmp::Reverse(e.node.0));
                if best.is_none_or(|b| key > b) {
                    best = Some(key);
                    best_entry = Some(*e);
                }
            }
        }
        let entry = best_entry?;
        let mut stripe = Self::lock(self.stripe_of(entry.node));
        // Under concurrent theft the pool may have changed between the scan
        // and this re-lock: the candidate may be gone, or its slot may hold
        // a *republished* entry (same node, different owner) the filters
        // above never vetted. Only remove the exact entry that was chosen;
        // stealing nothing is the safe outcome.
        let idx = stripe.entries.iter().position(|e| *e == entry)?;
        Some(stripe.entries.swap_remove(idx))
    }

    /// Non-destructive variant of [`steal`](Self::steal): pick — without
    /// removing — a candidate for `thief` under the same filters, rotating
    /// by `rotation` through the (cached-first, degree-ranked) matches so
    /// repeated calls spread over the pool instead of piling onto one hub.
    /// Used for budget-rescue relocations, where the pool must keep serving
    /// every dying walker for the rest of the run.
    pub fn borrow_target(
        &self,
        thief: usize,
        min_degree: usize,
        rotation: u64,
        mut reject: impl FnMut(NodeId) -> bool,
        mut cached: impl FnMut(NodeId) -> bool,
    ) -> Option<FrontierEntry> {
        let mut matches: Vec<(bool, FrontierEntry)> = Vec::new();
        for stripe in self.stripes.iter() {
            let stripe = Self::lock(stripe);
            for e in &stripe.entries {
                if e.owner == thief || e.degree < min_degree || reject(e.node) {
                    continue;
                }
                matches.push((cached(e.node), *e));
            }
        }
        if matches.is_empty() {
            return None;
        }
        matches.sort_by_key(|(is_cached, e)| (!*is_cached, std::cmp::Reverse(e.degree), e.node.0));
        Some(matches[(rotation % matches.len() as u64) as usize].1)
    }

    /// Snapshot of every pooled candidate (diagnostics and tests).
    pub fn entries(&self) -> Vec<FrontierEntry> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            out.extend(Self::lock(stripe).entries.iter().copied());
        }
        out
    }

    /// Total pooled candidates.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| Self::lock(s).entries.len())
            .sum()
    }

    /// Whether the pool holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_client::{BudgetedClient, SimulatedOsn};
    use osn_graph::generators::{barbell, erdos_renyi};

    #[test]
    fn emitted_nodes_are_degree_proportional() {
        let g = erdos_renyi(60, 0.15, 1).unwrap();
        let pi = g.degree_stationary_distribution();
        let mut client = SimulatedOsn::from_graph(g);
        let mut fs = FrontierSampler::spread(10, 60);
        let (nodes, _) = fs.run(&mut client, 300_000, 2);
        let mut counts = vec![0usize; 60];
        for v in &nodes {
            counts[v.index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / nodes.len() as f64;
            assert!(
                (freq - pi[i]).abs() < 0.01,
                "node {i}: freq {freq} vs pi {}",
                pi[i]
            );
        }
    }

    #[test]
    fn respects_budget() {
        let g = barbell(10, 10).unwrap();
        let n = g.node_count();
        let client = SimulatedOsn::from_graph(g);
        let mut client = BudgetedClient::new(client, 8, n);
        let mut fs = FrontierSampler::spread(4, n);
        let (nodes, stats) = fs.run(&mut client, 100_000, 3);
        assert!(stats.unique <= 8);
        assert!(!nodes.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let g = barbell(8, 8).unwrap();
        let run = |seed| {
            let mut client = SimulatedOsn::from_graph(g.clone());
            let mut fs = FrontierSampler::spread(3, 16);
            fs.run(&mut client, 500, seed).0
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn multiple_dimensions_reduce_start_sensitivity() {
        // All walkers start in the left bell vs spread across both bells:
        // the spread frontier covers the right bell sooner.
        let g = barbell(25, 25).unwrap();
        let first_right_visit = |positions: Vec<NodeId>| {
            let mut client = SimulatedOsn::from_graph(g.clone());
            let mut fs = FrontierSampler::new(positions);
            let (nodes, _) = fs.run(&mut client, 50_000, 5);
            nodes.iter().position(|v| v.index() >= 25).unwrap_or(50_000)
        };
        let clumped = first_right_visit(vec![NodeId(0); 8]);
        let spread = first_right_visit((0..8).map(|i| NodeId(i * 6)).collect());
        assert!(
            spread <= clumped,
            "spread {spread} should reach the right bell no later than clumped {clumped}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one walker")]
    fn empty_frontier_panics() {
        let _ = FrontierSampler::new(vec![]);
    }

    #[test]
    fn spread_positions_cover_range() {
        let fs = FrontierSampler::spread(4, 100);
        let ids: Vec<u32> = fs.positions().iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![0, 25, 50, 75]);
    }

    #[test]
    fn shared_frontier_dedupes_and_steals_best_other_walker() {
        let pool = SharedFrontier::with_stripes(4, 8);
        pool.publish(NodeId(1), 10, 0);
        pool.publish(NodeId(1), 99, 1); // duplicate node: first owner kept
        pool.publish(NodeId(2), 50, 0);
        pool.publish(NodeId(3), 50, 1);
        assert_eq!(pool.len(), 3);

        // Thief 1 cannot take its own entry (node 3); best of the rest is
        // node 2 (degree 50 beats node 1's 10).
        let stolen = pool.steal(1, 0, |_| false, |_| false).unwrap();
        assert_eq!(stolen.node, NodeId(2));
        assert_eq!(stolen.owner, 0);
        // Stolen entries are gone.
        assert_eq!(pool.len(), 2);

        // Rejection filter skips visited nodes.
        let stolen = pool.steal(1, 0, |u| u == NodeId(1), |_| false);
        assert!(stolen.is_none(), "only node 1 remains for thief 1");
        // Thief 0 can take walker 1's node 3.
        assert_eq!(
            pool.steal(0, 0, |_| false, |_| false).unwrap().node,
            NodeId(3)
        );
    }

    #[test]
    fn shared_frontier_prefers_cached_then_degree_then_smallest_id() {
        let pool = SharedFrontier::with_stripes(1, 8);
        pool.publish(NodeId(5), 100, 0);
        pool.publish(NodeId(6), 20, 0);
        pool.publish(NodeId(7), 20, 0);
        // A cached low-degree candidate beats an uncached high-degree one.
        let stolen = pool.steal(3, 0, |_| false, |u| u.0 >= 6).unwrap();
        assert_eq!(stolen.node, NodeId(6), "cached first, then smallest id");
        // With no cached candidates the highest degree wins.
        let stolen = pool.steal(3, 0, |_| false, |_| false).unwrap();
        assert_eq!(stolen.node, NodeId(5));
    }

    #[test]
    fn shared_frontier_capped_stripe_keeps_highest_degree() {
        let pool = SharedFrontier::with_stripes(1, 2);
        pool.publish(NodeId(1), 5, 0);
        pool.publish(NodeId(2), 9, 0);
        pool.publish(NodeId(3), 7, 0); // evicts degree-5 node 1
        pool.publish(NodeId(4), 1, 0); // too weak: dropped
        let mut degrees: Vec<usize> = pool.entries().iter().map(|e| e.degree).collect();
        degrees.sort_unstable();
        assert_eq!(degrees, vec![7, 9]);
    }

    #[test]
    fn shared_frontier_clones_share_the_pool() {
        let pool = SharedFrontier::new();
        let handle = pool.clone();
        handle.publish(NodeId(8), 3, 2);
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
        assert_eq!(pool.stripe_count(), 16);
        assert_eq!(
            pool.steal(0, 0, |_| false, |_| true).unwrap().node,
            NodeId(8)
        );
        assert!(handle.is_empty());
    }
}
