//! Grouping strategies for GNRW.
//!
//! GNRW stratifies the neighbors of the current node into groups and
//! circulates among groups before circulating within them. *Which* grouping
//! to use is a modelling decision the paper studies directly (§4.1, Figure
//! 9): group by the attribute you intend to aggregate and the walk
//! propagates across attribute values faster, improving exactly the estimate
//! you care about. The evaluated strategies:
//!
//! * [`ByDegree`] — `GNRW_By_Degree`: similar-degree neighbors together;
//! * [`ByAttribute`] — `GNRW_By_ReviewsCount` etc.: group by a profile
//!   attribute (visible as listing metadata, see `osn-client`);
//! * [`ByHash`] — `GNRW_By_MD5`: pseudorandom attribute-independent groups
//!   (our stand-in hashes ids with FNV-1a instead of MD5; only uniformity
//!   matters);
//! * [`ByNode`] — singleton groups, the degenerate extreme where GNRW
//!   collapses to CNRW (§4.1).
//!
//! ## Balanced strata and the singleton-group transient
//!
//! The paper leaves the bucketing of numeric values unspecified. This
//! matters more than it looks: value-based buckets (e.g. `log2(degree)`) on
//! heavy-tailed attributes put hub nodes in **singleton groups**, and the
//! group circulation visits every group once before repeating any — so in
//! walks short enough that super-cycles rarely complete, members of tiny
//! groups are sampled earlier (and thus more often) than uniform. The
//! stationary distribution is untouched (circulations cover every neighbor
//! exactly once), but the *transient* over-samples hubs, which is exactly
//! the regime budget-limited sampling lives in.
//!
//! The default here is therefore **rank-quantile grouping**: neighbors are
//! sorted by value and dealt into `k` equal-size strata per neighborhood.
//! This honors "group similar values together" while keeping strata
//! balanced, making the early-cycle marginal essentially uniform. The
//! value-bucketed variants remain available ([`ByDegree::log2`],
//! [`ByAttribute::with_bucketing`]) — the ablation bench compares them.

use osn_client::OsnClient;
use osn_graph::NodeId;

use crate::fnv::hash_node_id;

/// How to quantize a numeric value into a group key (value-based modes).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ValueBucketing {
    /// Every distinct value is its own group.
    Exact,
    /// Fixed-width buckets: `floor(value / width)`.
    Linear(f64),
    /// Logarithmic buckets: `floor(log2(1 + value))` — natural for
    /// heavy-tailed attributes like degree or review counts.
    Log2,
}

impl ValueBucketing {
    /// Map a non-negative value to its bucket id.
    pub fn bucket(&self, value: f64) -> u64 {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        match self {
            ValueBucketing::Exact => v.to_bits(),
            ValueBucketing::Linear(width) => {
                debug_assert!(*width > 0.0, "bucket width must be positive");
                (v / width).floor() as u64
            }
            ValueBucketing::Log2 => (1.0 + v).log2().floor() as u64,
        }
    }
}

/// Grouping mode shared by the value-driven strategies.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Mode {
    /// Group by bucketed value (group key independent of the neighborhood).
    Bucketed(ValueBucketing),
    /// Sort the neighborhood by value and deal into `k` equal strata.
    Quantile(usize),
}

/// Assign group keys for a whole neighbor list under a mode, reading each
/// node's value through `value`.
fn assign_by_value<F: FnMut(NodeId) -> f64>(
    mode: Mode,
    nodes: &[NodeId],
    out: &mut Vec<u64>,
    mut value: F,
) {
    out.clear();
    match mode {
        Mode::Bucketed(bucketing) => {
            out.extend(nodes.iter().map(|&n| bucketing.bucket(value(n))));
        }
        Mode::Quantile(k) => {
            let k = k.max(1);
            // Sort indices by (value, id) for deterministic tie-breaking.
            let mut idx: Vec<usize> = (0..nodes.len()).collect();
            let values: Vec<f64> = nodes.iter().map(|&n| value(n)).collect();
            idx.sort_by(|&a, &b| {
                values[a]
                    .partial_cmp(&values[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(nodes[a].cmp(&nodes[b]))
            });
            out.resize(nodes.len(), 0);
            for (rank, &i) in idx.iter().enumerate() {
                out[i] = (rank * k / nodes.len().max(1)) as u64;
            }
        }
    }
}

/// A deterministic assignment of nodes to groups, computable by the sampler
/// from interface-visible metadata only.
///
/// Strategies assign keys for a whole neighbor list at once
/// ([`assign`](Self::assign)) because balanced (quantile) strategies need
/// the neighborhood context; the group key of a node may therefore differ
/// between neighborhoods, which is fine — GNRW's history is keyed per
/// directed edge, where the neighborhood is fixed.
pub trait GroupingStrategy {
    /// Human-readable name for reports (e.g. `"GNRW_By_Degree"`).
    fn label(&self) -> String;

    /// Fill `out` with one group key per node in `nodes`. Must be
    /// deterministic for a fixed `nodes` slice (static snapshot).
    fn assign(&self, client: &dyn OsnClient, nodes: &[NodeId], out: &mut Vec<u64>);
}

/// Group neighbors by degree — the paper's `GNRW_By_Degree`.
#[derive(Clone, Debug)]
pub struct ByDegree {
    mode: Mode,
}

impl ByDegree {
    /// Default: rank-quantile grouping into 4 equal strata per
    /// neighborhood (see the module discussion of balanced strata).
    pub fn new() -> Self {
        ByDegree {
            mode: Mode::Quantile(4),
        }
    }

    /// Rank-quantile grouping into `k` strata.
    pub fn quantile(k: usize) -> Self {
        ByDegree {
            mode: Mode::Quantile(k),
        }
    }

    /// Value-bucketed grouping: `floor(log2(1 + degree))`.
    pub fn log2() -> Self {
        ByDegree {
            mode: Mode::Bucketed(ValueBucketing::Log2),
        }
    }

    /// Value-bucketed grouping with custom bucketing.
    pub fn with_bucketing(bucketing: ValueBucketing) -> Self {
        ByDegree {
            mode: Mode::Bucketed(bucketing),
        }
    }
}

impl Default for ByDegree {
    fn default() -> Self {
        Self::new()
    }
}

impl GroupingStrategy for ByDegree {
    fn label(&self) -> String {
        "GNRW_By_Degree".to_string()
    }

    fn assign(&self, client: &dyn OsnClient, nodes: &[NodeId], out: &mut Vec<u64>) {
        assign_by_value(self.mode, nodes, out, |n| client.peek_degree(n) as f64);
    }
}

/// Group neighbors by a profile attribute — e.g. the paper's
/// `GNRW_By_ReviewsCount` on Yelp.
///
/// Nodes missing the attribute read as value 0 under quantile mode and fall
/// into a sentinel group under bucketed modes.
#[derive(Clone, Debug)]
pub struct ByAttribute {
    name: String,
    mode: Mode,
}

impl ByAttribute {
    /// Group by `name` with the default rank-quantile (4 strata) mode.
    pub fn new(name: impl Into<String>) -> Self {
        ByAttribute {
            name: name.into(),
            mode: Mode::Quantile(4),
        }
    }

    /// Rank-quantile grouping into `k` strata.
    pub fn quantile(name: impl Into<String>, k: usize) -> Self {
        ByAttribute {
            name: name.into(),
            mode: Mode::Quantile(k),
        }
    }

    /// Value-bucketed grouping.
    pub fn with_bucketing(name: impl Into<String>, bucketing: ValueBucketing) -> Self {
        ByAttribute {
            name: name.into(),
            mode: Mode::Bucketed(bucketing),
        }
    }

    /// The attribute name.
    pub fn attribute(&self) -> &str {
        &self.name
    }
}

impl GroupingStrategy for ByAttribute {
    fn label(&self) -> String {
        format!("GNRW_By_{}", self.name)
    }

    fn assign(&self, client: &dyn OsnClient, nodes: &[NodeId], out: &mut Vec<u64>) {
        match self.mode {
            Mode::Bucketed(_) => {
                out.clear();
                out.extend(nodes.iter().map(|&n| {
                    match client.peek_attribute(n, &self.name) {
                        Some(v) => match self.mode {
                            Mode::Bucketed(b) => b.bucket(v),
                            Mode::Quantile(_) => unreachable!(),
                        },
                        None => u64::MAX, // sentinel "missing" group
                    }
                }));
            }
            Mode::Quantile(_) => {
                assign_by_value(self.mode, nodes, out, |n| {
                    client.peek_attribute(n, &self.name).unwrap_or(0.0)
                });
            }
        }
    }
}

/// Pseudorandom attribute-independent grouping — the paper's `GNRW_By_MD5`
/// (we hash ids with FNV-1a; only the uniform, attribute-independent
/// property of the hash is exercised).
///
/// With enough groups that most neighbors land alone, GNRW degenerates to
/// CNRW — the paper's "one extreme" of the grouping design space (§4.1).
#[derive(Clone, Copy, Debug)]
pub struct ByHash {
    groups: u64,
}

impl ByHash {
    /// Hash into `groups` pseudorandom groups.
    ///
    /// # Panics
    /// Panics if `groups == 0`.
    pub fn new(groups: u64) -> Self {
        assert!(groups > 0, "need at least one group");
        ByHash { groups }
    }
}

impl GroupingStrategy for ByHash {
    fn label(&self) -> String {
        "GNRW_By_MD5".to_string()
    }

    fn assign(&self, _client: &dyn OsnClient, nodes: &[NodeId], out: &mut Vec<u64>) {
        out.clear();
        out.extend(nodes.iter().map(|&n| hash_node_id(n.0) % self.groups));
    }
}

/// Every neighbor in its own group — the *other* extreme of the grouping
/// design space (§4.1): the group pick is the member pick, so GNRW
/// collapses to plain CNRW. Mostly useful as a degenerate-grouping probe
/// (a [`GroupPlan`](crate::groupplan::GroupPlan) built over it reports
/// [`Singletons`](crate::groupplan::DegenerateGrouping::Singletons) and the
/// plan-backed walker delegates to the CNRW step, bit-identical to
/// [`Cnrw`](crate::walkers::Cnrw)).
#[derive(Clone, Copy, Debug, Default)]
pub struct ByNode;

impl ByNode {
    /// The singleton-groups strategy.
    pub fn new() -> Self {
        ByNode
    }
}

impl GroupingStrategy for ByNode {
    fn label(&self) -> String {
        "GNRW_By_Node".to_string()
    }

    fn assign(&self, _client: &dyn OsnClient, nodes: &[NodeId], out: &mut Vec<u64>) {
        out.clear();
        out.extend(nodes.iter().map(|&n| u64::from(n.0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_client::SimulatedOsn;
    use osn_graph::attributes::{AttributedGraph, NodeAttributes};
    use osn_graph::GraphBuilder;

    fn client_with_reviews() -> SimulatedOsn {
        // Star: hub 0, spokes 1..=4 with reviews 0, 1, 10, 100.
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(0, 3)
            .add_edge(0, 4)
            .build()
            .unwrap();
        let mut attrs = NodeAttributes::for_graph(&g);
        attrs
            .insert_uint("reviews", vec![5, 0, 1, 10, 100])
            .unwrap();
        SimulatedOsn::new(AttributedGraph::new(g, attrs).unwrap())
    }

    fn groups_of(strategy: &dyn GroupingStrategy, client: &SimulatedOsn, ids: &[u32]) -> Vec<u64> {
        let nodes: Vec<NodeId> = ids.iter().map(|&i| NodeId(i)).collect();
        let mut out = Vec::new();
        strategy.assign(client, &nodes, &mut out);
        out
    }

    #[test]
    fn bucketing_modes() {
        assert_eq!(ValueBucketing::Log2.bucket(0.0), 0);
        assert_eq!(ValueBucketing::Log2.bucket(1.0), 1);
        assert_eq!(ValueBucketing::Log2.bucket(7.0), 3);
        assert_eq!(ValueBucketing::Linear(10.0).bucket(35.0), 3);
        assert_eq!(ValueBucketing::Linear(10.0).bucket(9.99), 0);
        let e = ValueBucketing::Exact;
        assert_eq!(e.bucket(2.5), e.bucket(2.5));
        assert_ne!(e.bucket(2.5), e.bucket(2.6));
        assert_eq!(ValueBucketing::Log2.bucket(-3.0), 0);
        assert_eq!(ValueBucketing::Linear(1.0).bucket(f64::NAN), 0);
    }

    #[test]
    fn by_degree_log2_groups_hub_apart_from_spokes() {
        let c = client_with_reviews();
        let s = ByDegree::log2();
        let g = groups_of(&s, &c, &[0, 1, 2]);
        assert_ne!(g[0], g[1], "hub and spoke share a log2 bucket");
        assert_eq!(g[1], g[2]);
        assert_eq!(s.label(), "GNRW_By_Degree");
    }

    #[test]
    fn quantile_groups_are_balanced() {
        let c = client_with_reviews();
        let s = ByDegree::quantile(2);
        // Neighborhood of 4 spokes (all degree 1) + conceptually the hub:
        // with equal values the split is still into equal halves.
        let g = groups_of(&s, &c, &[1, 2, 3, 4]);
        let zeros = g.iter().filter(|&&x| x == 0).count();
        let ones = g.iter().filter(|&&x| x == 1).count();
        assert_eq!(zeros, 2);
        assert_eq!(ones, 2);
    }

    #[test]
    fn quantile_orders_by_value() {
        let c = client_with_reviews();
        let s = ByAttribute::quantile("reviews", 2);
        // Reviews: node1=0, node2=1, node3=10, node4=100.
        let g = groups_of(&s, &c, &[1, 2, 3, 4]);
        assert_eq!(g[0], g[1], "low-review nodes together");
        assert_eq!(g[2], g[3], "high-review nodes together");
        assert_ne!(g[0], g[2]);
    }

    #[test]
    fn by_attribute_bucketed_reads_reviews() {
        let c = client_with_reviews();
        let s = ByAttribute::with_bucketing("reviews", ValueBucketing::Log2);
        assert_eq!(s.label(), "GNRW_By_reviews");
        assert_eq!(s.attribute(), "reviews");
        // reviews 0 -> bucket 0; 1 -> 1; 10 -> 3; 100 -> 6
        assert_eq!(groups_of(&s, &c, &[1, 2, 3, 4]), vec![0, 1, 3, 6]);
    }

    #[test]
    fn missing_attribute_sentinel_or_zero() {
        let c = client_with_reviews();
        let bucketed = ByAttribute::with_bucketing("nope", ValueBucketing::Log2);
        assert_eq!(groups_of(&bucketed, &c, &[1]), vec![u64::MAX]);
        let quantile = ByAttribute::new("nope");
        // All values read 0 -> still dealt into quantile strata.
        let g = groups_of(&quantile, &c, &[1, 2, 3, 4]);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn by_hash_spreads_and_is_deterministic() {
        let c = client_with_reviews();
        let s = ByHash::new(3);
        let a = groups_of(&s, &c, &[1, 2, 3, 4]);
        let b = groups_of(&s, &c, &[1, 2, 3, 4]);
        assert_eq!(a, b);
        assert!(a.iter().all(|&g| g < 3));
        assert_eq!(s.label(), "GNRW_By_MD5");
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn by_hash_zero_groups_panics() {
        let _ = ByHash::new(0);
    }

    #[test]
    fn quantile_deterministic_under_ties() {
        let c = client_with_reviews();
        let s = ByDegree::quantile(2);
        // All spokes have degree 1: ties broken by node id, stable.
        let a = groups_of(&s, &c, &[4, 3, 2, 1]);
        let b = groups_of(&s, &c, &[4, 3, 2, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn by_node_assigns_singleton_groups() {
        let c = client_with_reviews();
        let s = ByNode::new();
        let g = groups_of(&s, &c, &[4, 1, 2]);
        assert_eq!(g, vec![4, 1, 2]);
        assert_eq!(s.label(), "GNRW_By_Node");
    }

    #[test]
    fn linear_bucketing_of_attribute() {
        let c = client_with_reviews();
        let s = ByAttribute::with_bucketing("reviews", ValueBucketing::Linear(50.0));
        assert_eq!(groups_of(&s, &c, &[1, 3, 4]), vec![0, 0, 2]);
    }
}
