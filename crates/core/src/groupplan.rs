//! Precomputed group plans for GNRW.
//!
//! The scratch GNRW step re-derives the neighborhood partition on **every
//! historied transition**: one strategy `assign` pass, a hash-map
//! re-bucketing, and a key sort — work proportional to `deg(v)` with heavy
//! constant factors, repeated millions of times over the same static
//! snapshot. A [`GroupPlan`] hoists all of it into a one-off streaming pass
//! over the graph:
//!
//! * **Flat CSR-style storage** — per node, `member_perm` holds the local
//!   neighbor indices grouped contiguously (groups in ascending key order,
//!   members in ascending index order within a group — the exact order the
//!   scratch path derives per step), with `adj_offsets`/`group_index`
//!   offset arrays locating each node's slice. Memory is `O(E)` `u32`s.
//! * **Alias tables** — size-proportional group selection in `O(1)` per
//!   draw ([`AliasTable`], integer Vose construction), built lazily on
//!   first touch of a node or eagerly via
//!   [`GroupPlan::warm_alias_tables`].
//! * **Degenerate-grouping detection** — per-node singleton groups or a
//!   single group per node make GNRW *equal* to CNRW (paper §4.1's two
//!   extremes); the plan detects both at build time so the walker can
//!   delegate to the plain CNRW circulation, bit-identical to [`Cnrw`].
//! * **Batched RNG** — [`DrawBatch`] buffers a block of `u64`s per walker
//!   (filled through [`rand::RngCore::fill_u64s`], one virtual call per
//!   block instead of per draw) and serves both the group pick and the
//!   member pick.
//!
//! A plan is immutable and shared (`Arc`) across walkers, backends, and
//! threads; per-edge circulation state stays in the walker's own
//! [`GroupEngine`](crate::circulation::GroupEngine).
//!
//! ## Equivalence boundaries
//!
//! [`PlanMode::Exact`] preserves the scratch path's RNG consumption *order*
//! and is pinned bit-identical to it. [`PlanMode::Alias`] deliberately
//! reorders draws: group proposals come from the alias table (∝ full group
//! size, rejecting attempted/exhausted groups) instead of a weighted scan
//! over not-yet-attempted transitions, so mid-super-cycle group choice has
//! a different conditional distribution. The super-cycle invariant —
//! `b(u, v)` covers `N(v)` exactly once per cycle — is untouched, and by
//! Theorem 4 that is the only property the stationary distribution needs;
//! the alias path is therefore pinned by per-cycle exact-coverage and
//! stationarity tests rather than trace equality.
//!
//! [`Cnrw`]: crate::walkers::Cnrw

use std::sync::OnceLock;

use osn_client::{BudgetExhausted, OsnClient, QueryStats};
use osn_graph::attributes::AttributedGraph;
use osn_graph::partition::{partition_by_key, FlatPartition};
use osn_graph::NodeId;
use rand::RngCore;

use crate::grouping::GroupingStrategy;

/// How a plan-backed GNRW walker consumes its plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlanMode {
    /// Same step algorithm as the scratch path — groups are read from the
    /// plan instead of re-derived, RNG consumption order is preserved, and
    /// traces are **bit-identical** to the scratch walker on the same seed
    /// (pinned by proptest). Roughly removes the per-step partition cost.
    Exact,
    /// The fast path (default): `O(1)` alias-table group proposals and
    /// partial-Fisher–Yates member picks over per-group arena cursors.
    /// Deliberately reorders RNG draws — equivalent in distribution
    /// (Theorem 4), not in trace.
    #[default]
    Alias,
}

impl PlanMode {
    /// Short label for bench/series names (`"exact"` / `"alias"`).
    pub fn label(&self) -> &'static str {
        match self {
            PlanMode::Exact => "exact",
            PlanMode::Alias => "alias",
        }
    }
}

/// A grouping that makes GNRW collapse to CNRW (paper §4.1's two extremes
/// of the grouping design space).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegenerateGrouping {
    /// Every node's neighbors fall in one group: group circulation is
    /// vacuous and the walk is exactly CNRW.
    SingleGroup,
    /// Every neighbor is its own group: the group pick *is* the member
    /// pick, again exactly CNRW.
    Singletons,
}

/// Number of `u64`s a [`DrawBatch`] requests per refill.
pub const DRAW_BATCH: usize = 8;

/// A small per-walker buffer of raw RNG output, refilled a block at a time
/// through [`RngCore::fill_u64s`] — so a walker stepping through
/// `&mut dyn RngCore` pays one virtual call per [`DRAW_BATCH`] draws
/// instead of one per draw.
///
/// Draw *values* are identical to calling the generator directly: the
/// `k`-th ranged draw uses the `k`-th `next_u64` output under the same
/// widening-multiply reduction `gen_range` uses. Buffered-but-unused draws
/// are part of a walker's resumable state ([`Self::pending`] /
/// [`Self::restore`]); discarding them (e.g. on restart) is a documented
/// equivalence boundary.
#[derive(Clone, Debug, Default)]
pub struct DrawBatch {
    buf: [u64; DRAW_BATCH],
    pos: u8,
    len: u8,
}

impl DrawBatch {
    /// An empty buffer (first draw triggers a refill).
    pub fn new() -> Self {
        Self::default()
    }

    /// The next raw `u64`, refilling from `rng` when the buffer is empty.
    #[inline]
    pub fn next_u64(&mut self, rng: &mut dyn RngCore) -> u64 {
        if self.pos == self.len {
            rng.fill_u64s(&mut self.buf);
            self.pos = 0;
            self.len = DRAW_BATCH as u8;
        }
        let draw = self.buf[usize::from(self.pos)];
        self.pos += 1;
        draw
    }

    /// Uniform draw from `0..span` consuming exactly one buffered `u64`,
    /// via the same widening-multiply reduction as `gen_range` — so a
    /// batched consumer reproduces an unbatched one bit-for-bit.
    #[inline]
    pub fn range(&mut self, span: usize, rng: &mut dyn RngCore) -> usize {
        debug_assert!(span > 0, "cannot sample empty range");
        ((u128::from(self.next_u64(rng)) * span as u128) >> 64) as usize
    }

    /// Buffered draws not yet consumed — the state to serialize on export.
    pub fn pending(&self) -> &[u64] {
        &self.buf[usize::from(self.pos)..usize::from(self.len)]
    }

    /// Discard any buffered draws (used on restart; see the struct docs).
    pub fn clear(&mut self) {
        self.pos = 0;
        self.len = 0;
    }

    /// Rebuild a buffer from [`pending`](Self::pending) output, preserving
    /// consumption order.
    ///
    /// # Errors
    /// Returns a message when more than [`DRAW_BATCH`] draws are supplied.
    pub fn restore(pending: &[u64]) -> Result<Self, String> {
        if pending.len() > DRAW_BATCH {
            return Err(format!(
                "pending draw buffer holds {} > {DRAW_BATCH}",
                pending.len()
            ));
        }
        let mut buf = [0u64; DRAW_BATCH];
        buf[..pending.len()].copy_from_slice(pending);
        Ok(DrawBatch {
            buf,
            pos: 0,
            len: pending.len() as u8,
        })
    }
}

/// An alias table over integer weights: `O(1)` draws from the distribution
/// `P(i) = w_i / Σw`, built in `O(n)` with Vose's method on 64-bit
/// fixed-point thresholds (exact up to 1 part in 2⁶⁴).
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance threshold of each slot, as a 2⁻⁶⁴ fixed-point fraction.
    prob: Vec<u64>,
    /// Donor column for rejected slots (self-alias when the slot is full).
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build the table for `weights` (all nonzero).
    ///
    /// # Panics
    /// Panics on empty input or a zero weight.
    pub fn new(weights: &[u64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let n = weights.len();
        let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
        assert!(total > 0, "alias table weights must not all be zero");
        // Scale each weight by n so the average column is exactly `total`.
        let mut scaled: Vec<u128> = weights
            .iter()
            .map(|&w| {
                assert!(w > 0, "alias table weights must be nonzero");
                u128::from(w) * n as u128
            })
            .collect();
        let mut prob = vec![u64::MAX; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < total {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            let (s, l) = (s as usize, l as usize);
            debug_assert!(scaled[s] < (1u128 << 64), "underfull column overflows");
            prob[s] = ((scaled[s] << 64) / total) as u64;
            alias[s] = l as u32;
            scaled[l] -= total - scaled[s];
            if scaled[l] < total {
                large.pop();
                small.push(l as u32);
            }
        }
        // Leftover columns (either queue) are exactly full up to rounding:
        // keep their initialized always-accept state.
        AliasTable { prob, alias }
    }

    /// Number of weights the table was built over.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Map one uniform `u64` to a weighted index: the high bits pick the
    /// column, the low bits run the accept/alias test — one multiply, one
    /// compare, no second draw.
    #[inline]
    pub fn sample(&self, r: u64) -> usize {
        let wide = u128::from(r) * self.prob.len() as u128;
        let col = (wide >> 64) as usize;
        let frac = wide as u64;
        if frac < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

/// One node's slice of a [`GroupPlan`]: the neighbor partition in flat
/// form. `members` holds **local neighbor indices** (positions in `N(v)`),
/// grouped contiguously; `ends`/`keys` describe the groups.
#[derive(Clone, Copy, Debug)]
pub struct NodeGroups<'a> {
    /// Local neighbor indices, group-major; a permutation of `0..deg(v)`.
    pub members: &'a [u32],
    /// Per-group end offset (exclusive) into `members`.
    pub ends: &'a [u32],
    /// Per-group strategy key, ascending — the `S(u, v)` identity of each
    /// group, identical to what the scratch path derives.
    pub keys: &'a [u64],
}

impl NodeGroups<'_> {
    /// `deg(v)`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the node has no neighbors.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.ends.len()
    }

    /// Half-open `members` range of group `g`.
    #[inline]
    pub fn bounds(&self, g: usize) -> (usize, usize) {
        let start = if g == 0 { 0 } else { self.ends[g - 1] as usize };
        (start, self.ends[g] as usize)
    }

    /// Size of group `g`.
    #[inline]
    pub fn group_len(&self, g: usize) -> usize {
        let (start, end) = self.bounds(g);
        end - start
    }

    /// The local neighbor indices of group `g`, ascending.
    #[inline]
    pub fn members_of(&self, g: usize) -> &[u32] {
        let (start, end) = self.bounds(g);
        &self.members[start..end]
    }
}

/// Free-peek [`OsnClient`] over a borrowed snapshot, used to drive
/// [`GroupingStrategy::assign`] during plan construction. Neighbor queries
/// answer from the graph without accounting — the plan is built by the
/// *operator* of the snapshot, not by the budget-limited sampler; strategy
/// peeks (degree, attributes) are free through any client anyway.
struct PlanProbe<'a> {
    network: &'a AttributedGraph,
}

impl OsnClient for PlanProbe<'_> {
    fn neighbors(&mut self, u: NodeId) -> Result<&[NodeId], BudgetExhausted> {
        Ok(self.network.graph.neighbors(u))
    }

    fn peek_degree(&self, u: NodeId) -> usize {
        self.network.graph.degree(u)
    }

    fn peek_attribute(&self, u: NodeId, name: &str) -> Option<f64> {
        // Same lookup as `SimulatedOsn::peek_attribute`: the plan's group
        // keys must equal what the walker-facing client would produce.
        self.network.attributes.value_f64(name, u).ok()
    }

    fn stats(&self) -> QueryStats {
        QueryStats::default()
    }
}

/// The per-graph, per-strategy precomputed grouping: every node's neighbor
/// partition in CSR-style flat storage, plus lazily built alias tables for
/// size-proportional group selection. See the module docs for layout and
/// equivalence guarantees.
#[derive(Debug)]
pub struct GroupPlan {
    strategy_label: String,
    /// `node_count + 1` offsets into `member_perm` (== the graph's CSR
    /// offsets, re-derived so the plan is self-contained).
    adj_offsets: Vec<u32>,
    /// Local neighbor indices, group-major per node (see [`NodeGroups`]).
    member_perm: Vec<u32>,
    /// `node_count + 1` offsets into `group_ends` / `group_keys`.
    group_index: Vec<u32>,
    /// Per-group end offsets, local to the owning node's `members` slice.
    group_ends: Vec<u32>,
    /// Per-group strategy keys, ascending per node.
    group_keys: Vec<u64>,
    /// Lazily built per-node alias tables (nodes with ≥ 2 groups only).
    alias: Vec<OnceLock<AliasTable>>,
    max_groups: usize,
    degenerate: Option<DegenerateGrouping>,
}

impl GroupPlan {
    /// Build the plan: one streaming pass over the adjacency, running the
    /// strategy's `assign` per neighborhood (attribute peeks answered from
    /// the snapshot's real columns) and flattening each partition.
    ///
    /// # Panics
    /// Panics if the graph holds more than `u32::MAX` directed edges (the
    /// flat `u32` offsets — and the alias tables' overflow-free integer
    /// arithmetic — assume arc counts fit 32 bits).
    pub fn build(network: &AttributedGraph, strategy: &dyn GroupingStrategy) -> Self {
        let graph = &network.graph;
        let n = graph.node_count();
        assert!(
            graph.total_degree() <= u64::from(u32::MAX),
            "group plan requires arc count to fit u32"
        );
        let probe = PlanProbe { network };
        let mut keys = Vec::new();
        let mut part = FlatPartition::default();
        let total_arcs = graph.total_degree() as usize;
        let mut plan = GroupPlan {
            strategy_label: strategy.label(),
            adj_offsets: Vec::with_capacity(n + 1),
            member_perm: Vec::with_capacity(total_arcs),
            group_index: Vec::with_capacity(n + 1),
            group_ends: Vec::new(),
            group_keys: Vec::new(),
            alias: Vec::new(),
            max_groups: 0,
            degenerate: None,
        };
        plan.adj_offsets.push(0);
        plan.group_index.push(0);
        plan.alias.resize_with(n, OnceLock::new);
        // A grouping is degenerate only if it is so on every node where the
        // distinction matters (deg ≥ 2); trivial neighborhoods are
        // compatible with both forms.
        let mut all_single = true;
        let mut all_singleton = true;
        for v in 0..n {
            let neighbors = graph.neighbors(NodeId(v as u32));
            strategy.assign(&probe, neighbors, &mut keys);
            debug_assert_eq!(keys.len(), neighbors.len(), "assign fills one key per node");
            partition_by_key(&keys, &mut part);
            plan.member_perm.extend_from_slice(&part.perm);
            plan.group_ends.extend_from_slice(&part.ends);
            plan.group_keys.extend_from_slice(&part.keys);
            plan.adj_offsets.push(plan.member_perm.len() as u32);
            plan.group_index.push(plan.group_ends.len() as u32);
            let g = part.group_count();
            plan.max_groups = plan.max_groups.max(g);
            if neighbors.len() >= 2 {
                all_single &= g == 1;
                all_singleton &= g == neighbors.len();
            }
        }
        plan.degenerate = if n == 0 {
            None
        } else if all_single {
            Some(DegenerateGrouping::SingleGroup)
        } else if all_singleton {
            Some(DegenerateGrouping::Singletons)
        } else {
            None
        };
        plan
    }

    /// The strategy's label (e.g. `GNRW_By_Degree`), for walker naming.
    pub fn strategy_label(&self) -> &str {
        &self.strategy_label
    }

    /// Number of nodes the plan covers.
    pub fn node_count(&self) -> usize {
        self.alias.len()
    }

    /// Largest per-node group count — the alias path's `u64` attempted-set
    /// bitmask needs this ≤ 64 (the walker downgrades to
    /// [`PlanMode::Exact`] otherwise).
    pub fn max_groups(&self) -> usize {
        self.max_groups
    }

    /// The CNRW-equivalent degeneration this grouping exhibits, if any.
    pub fn degenerate(&self) -> Option<DegenerateGrouping> {
        self.degenerate
    }

    /// Node `v`'s flat partition.
    #[inline]
    pub fn groups(&self, v: NodeId) -> NodeGroups<'_> {
        let i = v.index();
        let (ms, me) = (
            self.adj_offsets[i] as usize,
            self.adj_offsets[i + 1] as usize,
        );
        let (gs, ge) = (
            self.group_index[i] as usize,
            self.group_index[i + 1] as usize,
        );
        NodeGroups {
            members: &self.member_perm[ms..me],
            ends: &self.group_ends[gs..ge],
            keys: &self.group_keys[gs..ge],
        }
    }

    /// Node `v`'s alias table over group sizes, built on first touch;
    /// `None` when the node has fewer than two groups (nothing to select).
    #[inline]
    pub fn alias(&self, v: NodeId) -> Option<&AliasTable> {
        let groups = self.groups(v);
        if groups.group_count() < 2 {
            return None;
        }
        Some(self.alias[v.index()].get_or_init(|| {
            let sizes: Vec<u64> = (0..groups.group_count())
                .map(|g| groups.group_len(g) as u64)
                .collect();
            AliasTable::new(&sizes)
        }))
    }

    /// Eagerly build every node's alias table (the `Scale::Full` posture:
    /// pay construction once up front instead of on first touch).
    pub fn warm_alias_tables(&self) {
        for v in 0..self.node_count() {
            let _ = self.alias(NodeId(v as u32));
        }
    }

    /// Approximate heap footprint in bytes: the `O(E)` flat arrays plus
    /// whatever alias tables have been built so far.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let flat = (self.adj_offsets.capacity()
            + self.member_perm.capacity()
            + self.group_index.capacity()
            + self.group_ends.capacity())
            * size_of::<u32>()
            + self.group_keys.capacity() * size_of::<u64>();
        let alias: usize = self
            .alias
            .iter()
            .filter_map(|cell| cell.get())
            .map(|t| t.len() * (size_of::<u64>() + size_of::<u32>()))
            .sum::<usize>()
            + self.alias.capacity() * size_of::<OnceLock<AliasTable>>();
        flat + alias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{ByAttribute, ByDegree, ByHash};
    use osn_graph::attributes::NodeAttributes;
    use osn_graph::GraphBuilder;
    use rand::{RngCore, SeedableRng, SplitMix64};

    fn reviews_network() -> AttributedGraph {
        // Two K4 cliques bridged at 3-4, with a skewed "reviews" column.
        let mut b = GraphBuilder::new();
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.push_edge(i, j);
                b.push_edge(i + 4, j + 4);
            }
        }
        b.push_edge(3, 4);
        let g = b.build().unwrap();
        let mut attrs = NodeAttributes::for_graph(&g);
        attrs
            .insert_uint("reviews", vec![0, 1, 2, 3, 10, 20, 30, 40])
            .unwrap();
        AttributedGraph::new(g, attrs).unwrap()
    }

    #[test]
    fn plan_partition_matches_scratch_derivation() {
        // For each node, the plan's (keys, members) must equal what the
        // scratch path computes per step: sorted keys, ascending member
        // indices within a group.
        let network = reviews_network();
        let strategy = ByAttribute::quantile("reviews", 2);
        let plan = GroupPlan::build(&network, &strategy);
        assert_eq!(plan.strategy_label(), "GNRW_By_reviews");
        let probe = PlanProbe { network: &network };
        for v in 0..network.graph.node_count() {
            let v = NodeId(v as u32);
            let neighbors = network.graph.neighbors(v);
            let mut keys = Vec::new();
            strategy.assign(&probe, neighbors, &mut keys);
            let groups = plan.groups(v);
            assert_eq!(groups.len(), neighbors.len());
            let mut sorted_keys: Vec<u64> = keys.clone();
            sorted_keys.sort_unstable();
            sorted_keys.dedup();
            assert_eq!(groups.keys, &sorted_keys[..], "node {v:?} keys");
            for g in 0..groups.group_count() {
                let members = groups.members_of(g);
                assert!(!members.is_empty());
                assert!(members.windows(2).all(|w| w[0] < w[1]), "ascending");
                for &m in members {
                    assert_eq!(keys[m as usize], groups.keys[g], "member in group");
                }
            }
        }
    }

    #[test]
    fn plan_members_are_permutations() {
        let network = reviews_network();
        let plan = GroupPlan::build(&network, &ByDegree::new());
        for v in 0..network.graph.node_count() {
            let v = NodeId(v as u32);
            let groups = plan.groups(v);
            let mut seen: Vec<u32> = groups.members.to_vec();
            seen.sort_unstable();
            let expect: Vec<u32> = (0..network.graph.degree(v) as u32).collect();
            assert_eq!(seen, expect, "node {v:?}");
        }
    }

    #[test]
    fn degenerate_detection() {
        let network = reviews_network();
        assert_eq!(
            GroupPlan::build(&network, &ByHash::new(1)).degenerate(),
            Some(DegenerateGrouping::SingleGroup)
        );
        // Exact bucketing of distinct per-node values: every neighbor its
        // own group on every neighborhood of this network.
        let singleton = ByAttribute::with_bucketing("reviews", crate::ValueBucketing::Exact);
        assert_eq!(
            GroupPlan::build(&network, &singleton).degenerate(),
            Some(DegenerateGrouping::Singletons)
        );
        assert_eq!(
            GroupPlan::build(&network, &ByAttribute::quantile("reviews", 2)).degenerate(),
            None
        );
    }

    #[test]
    fn alias_table_frequencies_match_weights() {
        let weights = [1u64, 2, 5, 12];
        let table = AliasTable::new(&weights);
        assert_eq!(table.len(), 4);
        let total: u64 = weights.iter().sum();
        let mut rng = SplitMix64::seed_from_u64(7);
        let n = 200_000usize;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[table.sample(rng.next_u64())] += 1;
        }
        // Chi-square with 3 dof: 16.27 is the 0.1% critical value; stay an
        // order of magnitude under it for a deterministic seed.
        let chi2: f64 = counts
            .iter()
            .zip(&weights)
            .map(|(&c, &w)| {
                let expect = n as f64 * w as f64 / total as f64;
                (c as f64 - expect).powi(2) / expect
            })
            .sum();
        assert!(chi2 < 16.27, "chi-square {chi2} too large: {counts:?}");
    }

    #[test]
    fn alias_table_single_weight_always_returns_it() {
        let table = AliasTable::new(&[42]);
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(table.sample(rng.next_u64()), 0);
        }
        assert!(!table.is_empty());
    }

    #[test]
    fn plan_alias_lazy_and_warm() {
        let network = reviews_network();
        let plan = GroupPlan::build(&network, &ByAttribute::quantile("reviews", 2));
        let before = plan.heap_bytes();
        plan.warm_alias_tables();
        assert!(plan.heap_bytes() > before, "warming builds tables");
        for v in 0..network.graph.node_count() {
            let v = NodeId(v as u32);
            let groups = plan.groups(v);
            match plan.alias(v) {
                Some(table) => {
                    assert!(groups.group_count() >= 2);
                    assert_eq!(table.len(), groups.group_count());
                }
                None => assert!(groups.group_count() < 2),
            }
        }
    }

    #[test]
    fn draw_batch_reproduces_direct_draws() {
        // The k-th ranged draw through a batch must equal the k-th direct
        // gen_range on a twin generator: same u64 stream, same reduction.
        use rand::Rng;
        let mut direct = SplitMix64::seed_from_u64(99);
        let mut batched_rng = SplitMix64::seed_from_u64(99);
        let mut batch = DrawBatch::new();
        for span in [3usize, 10, 7, 1, 100, 64, 2, 9, 31, 5, 17, 4] {
            let expect = direct.gen_range(0..span);
            let got = batch.range(span, &mut batched_rng);
            assert_eq!(got, expect, "span {span}");
        }
    }

    #[test]
    fn draw_batch_pending_roundtrip() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut batch = DrawBatch::new();
        batch.next_u64(&mut rng);
        batch.next_u64(&mut rng);
        let pending = batch.pending().to_vec();
        assert_eq!(pending.len(), DRAW_BATCH - 2);
        let mut restored = DrawBatch::restore(&pending).unwrap();
        // Both buffers must now yield the same remaining draws before
        // refilling.
        let mut rng2 = SplitMix64::seed_from_u64(3);
        for _ in 0..pending.len() {
            assert_eq!(restored.next_u64(&mut rng2), batch.next_u64(&mut rng));
        }
        assert!(DrawBatch::restore(&[0; DRAW_BATCH + 1]).is_err());
        let mut empty = DrawBatch::new();
        assert!(empty.pending().is_empty());
        empty.clear();
        assert!(empty.pending().is_empty());
    }

    #[test]
    fn edgeless_graph_plan_is_trivially_degenerate() {
        let g = GraphBuilder::new().with_nodes(3).build().unwrap();
        let network = AttributedGraph::bare(g);
        let plan = GroupPlan::build(&network, &ByDegree::new());
        assert_eq!(plan.node_count(), 3);
        // No node has ≥ 2 neighbors, so grouping cannot matter anywhere:
        // trivially the single-group degeneration.
        assert_eq!(plan.degenerate(), Some(DegenerateGrouping::SingleGroup));
        assert_eq!(plan.max_groups(), 0);
        assert!(plan.groups(NodeId(0)).is_empty());
        assert!(plan.alias(NodeId(0)).is_none());
    }
}
