//! History state for circulated (without-replacement) transitions.
//!
//! CNRW's entire memory is the map `b(u, v)` (paper Algorithm 1): for every
//! directed edge `(u, v)` the walk has traversed, the neighbors of `v`
//! already chosen as outgoing transitions since the last reset. GNRW extends
//! this with a per-edge set of *groups* already attempted, `S(u, v)`
//! (Algorithm 2). This module exposes both behind a storage choice,
//! [`HistoryBackend`]:
//!
//! * **Legacy** — the layout the paper suggests ("a HashMap with initial
//!   value ∅"): one `FnvHashSet` of used neighbors per directed edge. Draws
//!   rejection-sample against the set (bounded by
//!   [`crate::circulation::MAX_REJECTION_ITERS`], falling back to an exact
//!   rank scan) and hash-probe once per candidate.
//! * **Arena** (default) — the [`crate::circulation`] engine: every hot
//!   edge owns a slice of one shared arena holding a permutation of its
//!   candidate population plus a cursor; a draw is one partial-Fisher–Yates
//!   step (one `gen_range`, one swap) and a reset is a cursor rewind. Cold
//!   edges stage through heap-free inline then spill states (`O(draws)`
//!   memory each) and promote only once the slice would cost at most
//!   [`crate::circulation::PROMOTION_SPAN`]` ×` their recorded draws — so
//!   arena memory stays `O(K)` (within that constant) even on heavy-tailed
//!   graphs.
//!
//! Both backends implement the same circulation semantics — each cycle
//! covers the population exactly once, the first pick of each cycle is
//! uniform — so Theorems 1–4 apply to either; they differ only in cost:
//!
//! Per-draw cost, on top of the one edge-key map lookup both layouts pay:
//!
//! | Operation | Legacy (hash set) | Arena (partial Fisher–Yates) |
//! |---|---|---|
//! | draw, pre-promotion (cold edge) | `O(1)` **expected** (rejection + hash probes) | `O(1)` **expected** (bounded rejection; inline probes are hash-free) |
//! | draw, promoted (hot edge) | — (never promotes) | `O(1)` **exact**, no membership hashing |
//! | draw, `≥ ½` population used | `O(deg)` rank scan | `O(1)` **exact** (half-used always promotes) |
//! | cycle reset | `O(deg)` set clear | `O(1)` cursor rewind |
//! | GNRW membership probe | hash lookup | hash lookup pre-promotion, array compare after |
//! | per-edge memory after `k` draws | `O(k)` set entries | `O(k)` inline/spill → slice `≤ PROMOTION_SPAN·k` once promoted |
//!
//! In both cases space grows by at most one entry per walk step between
//! resets, giving the `O(K)` bound of §3.3; the walker-facing accounting
//! ([`EdgeHistory::total_entries`], [`EdgeHistory::tracked_edges`]) is
//! backend-independent.

use osn_graph::NodeId;
use osn_serde::Value;
use rand::Rng;

use crate::circulation::{CirculationEngine, GroupEngine, MAX_REJECTION_ITERS};
pub use crate::circulation::{HistoryBackend, PlanEdgeView, INLINE_CAP};
use crate::fnv::{FnvHashMap, FnvHashSet};
use crate::groupplan::DrawBatch;

/// A without-replacement "circulation" over a fixed candidate population —
/// the **legacy** per-edge state (one hash set of used items).
///
/// Holds the set of already-used items; [`CirculationSet::draw`] picks
/// uniformly among the unused ones and records the pick, resetting
/// automatically once the whole population has been used. The population is
/// supplied at each draw (it is the neighbor list, owned by the graph) and
/// must be stable between resets — true for static snapshots.
#[derive(Clone, Debug, Default)]
pub struct CirculationSet {
    used: FnvHashSet<NodeId>,
}

impl CirculationSet {
    /// Number of items used since the last reset.
    pub fn used_len(&self) -> usize {
        self.used.len()
    }

    /// Whether `w` has been used since the last reset.
    pub fn contains(&self, w: NodeId) -> bool {
        self.used.contains(&w)
    }

    /// Draw uniformly at random from `population \ used`, record the draw,
    /// and reset once the population is exhausted (the draw completing the
    /// circulation triggers the reset, so the *next* draw sees a full
    /// population again).
    ///
    /// Returns `None` only for an empty population.
    pub fn draw<R: Rng + ?Sized>(&mut self, population: &[NodeId], rng: &mut R) -> Option<NodeId> {
        if population.is_empty() {
            return None;
        }
        debug_assert!(
            self.used.len() < population.len(),
            "invariant: used set resets before filling the population"
        );
        let remaining = population.len() - self.used.len();
        // Mostly-unused population: rejection sampling, O(1) expected —
        // acceptance is > 1/2, so the iteration cap (guarding against
        // adversarial RNG streams) is hit with probability
        // <= 2^-MAX_REJECTION_ITERS. Mostly-used: straight to the exact
        // O(len) rank scan (zero rejection proposals).
        let max_rejections = if self.used.len() * 2 < population.len() {
            MAX_REJECTION_ITERS
        } else {
            0
        };
        let pick = crate::circulation::draw_excluding(
            population,
            remaining,
            max_rejections,
            |w| self.used.contains(w),
            rng,
        );
        if self.used.len() + 1 == population.len() {
            self.used.clear(); // circulation complete -> reset (paper step 2)
        } else {
            self.used.insert(pick);
        }
        Some(pick)
    }
}

#[inline]
pub(crate) fn edge_key(u: NodeId, v: NodeId) -> u64 {
    (u64::from(u.0) << 32) | u64::from(v.0)
}

/// CNRW's full history: `(u, v) -> b(u, v)`, behind a [`HistoryBackend`].
///
/// Keys are directed edges packed into a `u64`; the node-keyed ablation
/// walker reuses the same structure with `u = v`.
#[derive(Clone, Debug)]
pub struct EdgeHistory {
    backend: EdgeBackend,
}

#[derive(Clone, Debug)]
enum EdgeBackend {
    Legacy(FnvHashMap<u64, CirculationSet>),
    Arena(CirculationEngine),
}

impl Default for EdgeHistory {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgeHistory {
    /// New empty history on the default (arena) backend.
    pub fn new() -> Self {
        Self::with_backend(HistoryBackend::default())
    }

    /// New empty history on the chosen backend.
    pub fn with_backend(backend: HistoryBackend) -> Self {
        let backend = match backend {
            HistoryBackend::Legacy => EdgeBackend::Legacy(FnvHashMap::default()),
            HistoryBackend::Arena => EdgeBackend::Arena(CirculationEngine::new()),
        };
        EdgeHistory { backend }
    }

    /// Which backend this history runs on.
    pub fn backend(&self) -> HistoryBackend {
        match &self.backend {
            EdgeBackend::Legacy(_) => HistoryBackend::Legacy,
            EdgeBackend::Arena(_) => HistoryBackend::Arena,
        }
    }

    /// Draw the next transition for directed edge `(u, v)` uniformly from
    /// the unused part of `population`, creating the edge's circulation
    /// state on first touch. Returns `None` only for an empty population.
    ///
    /// `population` must be identical across draws of the same edge (true
    /// for static snapshots).
    pub fn draw<R: Rng + ?Sized>(
        &mut self,
        u: NodeId,
        v: NodeId,
        population: &[NodeId],
        rng: &mut R,
    ) -> Option<NodeId> {
        if population.is_empty() {
            return None; // never create state for a dead-end probe
        }
        let key = edge_key(u, v);
        match &mut self.backend {
            EdgeBackend::Legacy(map) => map.entry(key).or_default().draw(population, rng),
            EdgeBackend::Arena(engine) => engine.draw(key, population, rng),
        }
    }

    /// Used-item count of edge `(u, v)`'s current cycle, or `None` if the
    /// edge has no live state. Never creates state (read-only probe).
    pub fn get_used_len(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let key = edge_key(u, v);
        match &self.backend {
            EdgeBackend::Legacy(map) => map.get(&key).map(CirculationSet::used_len),
            EdgeBackend::Arena(engine) => engine.used_len(key),
        }
    }

    /// Number of directed edges with live history.
    pub fn tracked_edges(&self) -> usize {
        match &self.backend {
            EdgeBackend::Legacy(map) => map.len(),
            EdgeBackend::Arena(engine) => engine.tracked(),
        }
    }

    /// Total number of recorded used-entries across all edges (the `O(K)`
    /// quantity of §3.3).
    pub fn total_entries(&self) -> usize {
        match &self.backend {
            EdgeBackend::Legacy(map) => map.values().map(CirculationSet::used_len).sum(),
            EdgeBackend::Arena(engine) => engine.total_entries(),
        }
    }

    /// Drop all history (the walker becomes memoryless again). Slab
    /// allocations are kept for reuse: on the arena backend the arena
    /// buffer survives at full capacity (see
    /// [`CirculationEngine::clear`](crate::circulation::CirculationEngine::clear)),
    /// so a restarted walk re-promotes without re-allocating.
    pub fn clear(&mut self) {
        match &mut self.backend {
            EdgeBackend::Legacy(map) => map.clear(),
            EdgeBackend::Arena(engine) => engine.clear(),
        }
    }

    /// Allocated arena capacity in entries (`None` on the legacy backend,
    /// which has no arena). Unchanged by [`Self::clear`] — the observable
    /// of the restart slab-reuse contract.
    pub fn arena_capacity(&self) -> Option<usize> {
        match &self.backend {
            EdgeBackend::Legacy(_) => None,
            EdgeBackend::Arena(engine) => Some(engine.arena_capacity()),
        }
    }

    /// Drop the circulation state of every directed edge `(*, target)` —
    /// every key whose population is `N(target)`. The evolving-graph
    /// invalidation rule: after a mutation at `target`, the old
    /// circulations tracked subsets of a population that no longer exists,
    /// so they are dropped and Theorem 4's exactly-once coverage restarts
    /// on the post-mutation neighborhood. Returns the number of edges
    /// dropped.
    pub fn invalidate_target(&mut self, target: NodeId) -> usize {
        match &mut self.backend {
            EdgeBackend::Legacy(map) => {
                let before = map.len();
                map.retain(|&key, _| (key & 0xFFFF_FFFF) as u32 != target.0);
                before - map.len()
            }
            EdgeBackend::Arena(engine) => engine.invalidate_target(target.0),
        }
    }

    /// Serialize the full history (backend tag + per-edge state) to a
    /// [`Value`] tree. [`import_state`](Self::import_state) restores it
    /// exactly, so a resumed walker continues **bit-identically** on the
    /// same RNG stream. Edges are sorted by key; legacy used-sets are
    /// membership-only and serialize sorted.
    pub fn export_state(&self) -> Value {
        match &self.backend {
            EdgeBackend::Legacy(map) => {
                let mut edges: Vec<(u64, &CirculationSet)> =
                    map.iter().map(|(&k, s)| (k, s)).collect();
                edges.sort_unstable_by_key(|&(k, _)| k);
                let edges: Vec<Value> = edges
                    .into_iter()
                    .map(|(key, set)| {
                        let mut used: Vec<u64> = set.used.iter().map(|n| u64::from(n.0)).collect();
                        used.sort_unstable();
                        Value::obj([
                            ("key", Value::Uint(key)),
                            (
                                "used",
                                Value::Arr(used.into_iter().map(Value::Uint).collect()),
                            ),
                        ])
                    })
                    .collect();
                Value::obj([
                    ("backend", Value::Str("legacy".into())),
                    ("edges", Value::Arr(edges)),
                ])
            }
            EdgeBackend::Arena(engine) => Value::obj([
                ("backend", Value::Str("arena".into())),
                ("engine", engine.export_state()),
            ]),
        }
    }

    /// Rebuild a history from [`export_state`](Self::export_state) output.
    ///
    /// # Errors
    /// Returns a message when the tree is malformed, names an unknown
    /// backend, or fails the engine's consistency checks.
    pub fn import_state(state: &Value) -> Result<Self, String> {
        let backend = match state.field("backend")?.as_str()? {
            "legacy" => {
                let mut map: FnvHashMap<u64, CirculationSet> = FnvHashMap::default();
                for entry in state.field("edges")?.as_array()? {
                    let key: u64 = entry.field("key")?.decode()?;
                    let used: FnvHashSet<NodeId> = entry
                        .field("used")?
                        .decode::<Vec<u32>>()?
                        .into_iter()
                        .map(NodeId)
                        .collect();
                    if map.insert(key, CirculationSet { used }).is_some() {
                        return Err(format!("duplicate edge key {key}"));
                    }
                }
                EdgeBackend::Legacy(map)
            }
            "arena" => EdgeBackend::Arena(CirculationEngine::import_state(state.field("engine")?)?),
            other => return Err(format!("unknown history backend `{other}`")),
        };
        Ok(EdgeHistory { backend })
    }
}

/// Per-edge GNRW state on the **legacy** backend (paper Algorithm 2 / §4.1
/// steps 1–4).
///
/// * `used_nodes` is the **global** `b(u, v)`: every neighbor chosen in the
///   current super-cycle; it resets when it reaches `N(v)`. This global
///   circulation is what guarantees every neighbor is chosen exactly once
///   per super-cycle and hence preserves the stationary distribution
///   (Theorem 4) for *any* group sizes.
/// * `used_groups` is `S(u, v)`: the groups attempted in the current group
///   sub-cycle; it resets whenever no un-attempted group still has unvisited
///   members (and along with `used_nodes` at super-cycle end). The group
///   circulation only shapes the *order* in which the super-cycle covers
///   `N(v)` — the stratified alternation of Figure 5.
#[derive(Clone, Debug, Default)]
pub struct GnrwEdgeState {
    /// Global without-replacement set `b(u, v)` over `N(v)`.
    pub used_nodes: FnvHashSet<NodeId>,
    /// Groups attempted in the current sub-cycle, `S(u, v)`.
    pub used_groups: FnvHashSet<u64>,
}

/// Read-only summary of one edge's GNRW state (what a non-creating probe
/// can tell without exposing backend internals).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupEdgeSnapshot {
    /// Neighbors chosen in the current super-cycle (`|b(u, v)|`).
    pub used_nodes: usize,
    /// Groups attempted in the current sub-cycle (`|S(u, v)|`).
    pub attempted_groups: usize,
}

/// GNRW's full history: `(u, v) -> (b(u, v), S(u, v))`, behind a
/// [`HistoryBackend`].
#[derive(Clone, Debug)]
pub struct GroupHistory {
    backend: GroupBackend,
}

#[derive(Clone, Debug)]
enum GroupBackend {
    Legacy(FnvHashMap<u64, GnrwEdgeState>),
    Arena(GroupEngine),
}

impl Default for GroupHistory {
    fn default() -> Self {
        Self::new()
    }
}

impl GroupHistory {
    /// New empty history on the default (arena) backend.
    pub fn new() -> Self {
        Self::with_backend(HistoryBackend::default())
    }

    /// New empty history on the chosen backend.
    pub fn with_backend(backend: HistoryBackend) -> Self {
        let backend = match backend {
            HistoryBackend::Legacy => GroupBackend::Legacy(FnvHashMap::default()),
            HistoryBackend::Arena => GroupBackend::Arena(GroupEngine::default()),
        };
        GroupHistory { backend }
    }

    /// Which backend this history runs on.
    pub fn backend(&self) -> HistoryBackend {
        match &self.backend {
            GroupBackend::Legacy(_) => HistoryBackend::Legacy,
            GroupBackend::Arena(_) => HistoryBackend::Arena,
        }
    }

    /// Mutable view of directed edge `(u, v)`'s state, created on first
    /// touch. `population_len` (`|N(v)|`) must be stable across visits.
    pub fn edge_view(&mut self, u: NodeId, v: NodeId, population_len: usize) -> GroupEdgeView<'_> {
        let key = edge_key(u, v);
        match &mut self.backend {
            GroupBackend::Legacy(map) => GroupEdgeView::Legacy {
                state: map.entry(key).or_default(),
                population_len,
            },
            GroupBackend::Arena(engine) => GroupEdgeView::Arena(engine.view(key, population_len)),
        }
    }

    /// Mutable plan-path view of directed edge `(u, v)`'s state (the GNRW
    /// fast path over a [`GroupPlan`](crate::groupplan::GroupPlan) —
    /// see [`PlanEdgeView`]). `groups` must be the plan slice of `v`,
    /// identical across visits.
    ///
    /// # Panics
    /// Panics on the legacy backend (plan slots are an arena-engine
    /// representation; the walker enforces Arena for alias mode) and if the
    /// edge already holds scratch-path state.
    pub fn plan_view(
        &mut self,
        u: NodeId,
        v: NodeId,
        groups: &crate::groupplan::NodeGroups<'_>,
    ) -> PlanEdgeView<'_> {
        let key = edge_key(u, v);
        match &mut self.backend {
            GroupBackend::Legacy(_) => {
                panic!("plan-path GNRW state requires the arena backend")
            }
            GroupBackend::Arena(engine) => engine.plan_view(key, groups),
        }
    }

    /// The state of `(u, v)` if it exists. Never creates state — use this
    /// (not [`edge_view`](Self::edge_view)) for read-only probes.
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<GroupEdgeSnapshot> {
        let key = edge_key(u, v);
        match &self.backend {
            GroupBackend::Legacy(map) => map.get(&key).map(|s| GroupEdgeSnapshot {
                used_nodes: s.used_nodes.len(),
                attempted_groups: s.used_groups.len(),
            }),
            GroupBackend::Arena(engine) => {
                engine
                    .probe(key)
                    .map(|(used_nodes, attempted_groups)| GroupEdgeSnapshot {
                        used_nodes,
                        attempted_groups,
                    })
            }
        }
    }

    /// Number of directed edges with live state.
    pub fn tracked_edges(&self) -> usize {
        match &self.backend {
            GroupBackend::Legacy(map) => map.len(),
            GroupBackend::Arena(engine) => engine.tracked(),
        }
    }

    /// Total recorded node entries across all edges (the `O(K)` quantity).
    pub fn total_entries(&self) -> usize {
        match &self.backend {
            GroupBackend::Legacy(map) => map.values().map(|s| s.used_nodes.len()).sum(),
            GroupBackend::Arena(engine) => engine.total_entries(),
        }
    }

    /// Drop all history, keeping slab allocations for reuse (see
    /// [`EdgeHistory::clear`]).
    pub fn clear(&mut self) {
        match &mut self.backend {
            GroupBackend::Legacy(map) => map.clear(),
            GroupBackend::Arena(engine) => engine.clear(),
        }
    }

    /// Allocated arena capacity in entries (`None` on the legacy backend).
    /// Unchanged by [`Self::clear`].
    pub fn arena_capacity(&self) -> Option<usize> {
        match &self.backend {
            GroupBackend::Legacy(_) => None,
            GroupBackend::Arena(engine) => Some(engine.arena_capacity()),
        }
    }

    /// Drop the state of every directed edge `(*, target)` — the
    /// evolving-graph invalidation rule, mirroring
    /// [`EdgeHistory::invalidate_target`]. Plan-backed slots for `target`
    /// are dropped here and lazily rebuilt from the plan on the next visit.
    /// Returns the number of edges dropped.
    pub fn invalidate_target(&mut self, target: NodeId) -> usize {
        match &mut self.backend {
            GroupBackend::Legacy(map) => {
                let before = map.len();
                map.retain(|&key, _| (key & 0xFFFF_FFFF) as u32 != target.0);
                before - map.len()
            }
            GroupBackend::Arena(engine) => engine.invalidate_target(target.0),
        }
    }

    /// Serialize the full history (backend tag + per-edge state) to a
    /// [`Value`] tree; the [`EdgeHistory::export_state`] contract (sorted
    /// keys, bit-identical resume) applies.
    pub fn export_state(&self) -> Value {
        match &self.backend {
            GroupBackend::Legacy(map) => {
                let mut edges: Vec<(u64, &GnrwEdgeState)> =
                    map.iter().map(|(&k, s)| (k, s)).collect();
                edges.sort_unstable_by_key(|&(k, _)| k);
                let edges: Vec<Value> = edges
                    .into_iter()
                    .map(|(key, state)| {
                        let mut nodes: Vec<u64> =
                            state.used_nodes.iter().map(|n| u64::from(n.0)).collect();
                        nodes.sort_unstable();
                        let mut groups: Vec<u64> = state.used_groups.iter().copied().collect();
                        groups.sort_unstable();
                        Value::obj([
                            ("key", Value::Uint(key)),
                            (
                                "nodes",
                                Value::Arr(nodes.into_iter().map(Value::Uint).collect()),
                            ),
                            (
                                "groups",
                                Value::Arr(groups.into_iter().map(Value::Uint).collect()),
                            ),
                        ])
                    })
                    .collect();
                Value::obj([
                    ("backend", Value::Str("legacy".into())),
                    ("edges", Value::Arr(edges)),
                ])
            }
            GroupBackend::Arena(engine) => Value::obj([
                ("backend", Value::Str("arena".into())),
                ("engine", engine.export_state()),
            ]),
        }
    }

    /// Rebuild a history from [`export_state`](Self::export_state) output.
    ///
    /// # Errors
    /// Returns a message when the tree is malformed, names an unknown
    /// backend, or fails the engine's consistency checks.
    pub fn import_state(state: &Value) -> Result<Self, String> {
        let backend = match state.field("backend")?.as_str()? {
            "legacy" => {
                let mut map: FnvHashMap<u64, GnrwEdgeState> = FnvHashMap::default();
                for entry in state.field("edges")?.as_array()? {
                    let key: u64 = entry.field("key")?.decode()?;
                    let used_nodes: FnvHashSet<NodeId> = entry
                        .field("nodes")?
                        .decode::<Vec<u32>>()?
                        .into_iter()
                        .map(NodeId)
                        .collect();
                    let used_groups: FnvHashSet<u64> = entry
                        .field("groups")?
                        .decode::<Vec<u64>>()?
                        .into_iter()
                        .collect();
                    let state = GnrwEdgeState {
                        used_nodes,
                        used_groups,
                    };
                    if map.insert(key, state).is_some() {
                        return Err(format!("duplicate edge key {key}"));
                    }
                }
                GroupBackend::Legacy(map)
            }
            "arena" => GroupBackend::Arena(GroupEngine::import_state(state.field("engine")?)?),
            other => return Err(format!("unknown history backend `{other}`")),
        };
        Ok(GroupHistory { backend })
    }
}

/// Backend-agnostic mutable view of one edge's GNRW state: the probes and
/// updates `Gnrw::step` needs, dispatched without exposing storage.
pub enum GroupEdgeView<'a> {
    /// Borrowed legacy hash-set state.
    Legacy {
        /// The per-edge `(b(u, v), S(u, v))` sets.
        state: &'a mut GnrwEdgeState,
        /// `|N(v)|`, needed to detect super-cycle completion on record.
        population_len: usize,
    },
    /// Borrowed arena slice state.
    Arena(crate::circulation::ArenaGroupView<'a>),
}

impl GroupEdgeView<'_> {
    /// Has the neighbor at population index `idx` (node `node`) been chosen
    /// in the current super-cycle?
    #[inline]
    pub fn is_used(&self, idx: usize, node: NodeId) -> bool {
        match self {
            GroupEdgeView::Legacy { state, .. } => state.used_nodes.contains(&node),
            GroupEdgeView::Arena(view) => view.is_used(idx),
        }
    }

    /// Nodes chosen so far in the current super-cycle.
    pub fn used_count(&self) -> usize {
        match self {
            GroupEdgeView::Legacy { state, .. } => state.used_nodes.len(),
            GroupEdgeView::Arena(view) => view.used_count(),
        }
    }

    /// Has `group` been attempted in the current group sub-cycle?
    pub fn group_attempted(&self, group: u64) -> bool {
        match self {
            GroupEdgeView::Legacy { state, .. } => state.used_groups.contains(&group),
            GroupEdgeView::Arena(view) => view.group_attempted(group),
        }
    }

    /// Reset the group sub-cycle (`S(u, v) <- ∅`).
    pub fn clear_attempted(&mut self) {
        match self {
            GroupEdgeView::Legacy { state, .. } => state.used_groups.clear(),
            GroupEdgeView::Arena(view) => view.clear_attempted(),
        }
    }

    /// Pick the `rank`-th unvisited member of a group, where `members` are
    /// local population indices and `nodes` the full `N(v)` slice, drawing
    /// `rank` from `batch` over `remaining` candidates. Returns
    /// `(local index, node)`.
    ///
    /// This is the member-selection step of plan-backed
    /// [`PlanMode::Exact`](crate::groupplan::PlanMode::Exact) GNRW, shared
    /// by both backends: each call consumes exactly one `u64` under the
    /// same `gen_range` reduction as the scratch path's rank draw, so both
    /// backends — and the scratch walker — see identical RNG streams.
    pub fn pick_member(
        &self,
        members: &[u32],
        nodes: &[NodeId],
        remaining: usize,
        batch: &mut DrawBatch,
        rng: &mut dyn rand::RngCore,
    ) -> (usize, NodeId) {
        debug_assert!(remaining > 0);
        let mut rank = batch.range(remaining, rng);
        members
            .iter()
            .map(|&m| (m as usize, nodes[m as usize]))
            .filter(|&(idx, node)| !self.is_used(idx, node))
            .find(|_| {
                if rank == 0 {
                    true
                } else {
                    rank -= 1;
                    false
                }
            })
            .expect("rank < remaining unvisited members")
    }

    /// Record the choice of the neighbor at population index `idx` (node
    /// `node`) from `group`, resetting the super-cycle once `N(v)` is
    /// covered.
    pub fn record(&mut self, idx: usize, node: NodeId, group: u64) {
        match self {
            GroupEdgeView::Legacy {
                state,
                population_len,
            } => {
                state.used_groups.insert(group);
                state.used_nodes.insert(node);
                if state.used_nodes.len() == *population_len {
                    state.used_nodes.clear();
                    state.used_groups.clear();
                }
            }
            GroupEdgeView::Arena(view) => view.record(idx, group),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn pop(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    const BOTH: [HistoryBackend; 2] = [HistoryBackend::Legacy, HistoryBackend::Arena];

    #[test]
    fn draw_covers_population_each_cycle() {
        for backend in BOTH {
            let mut rng = ChaCha12Rng::seed_from_u64(1);
            let population = pop(7);
            let mut h = EdgeHistory::with_backend(backend);
            for cycle in 0..5 {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..population.len() {
                    let d = h.draw(NodeId(0), NodeId(1), &population, &mut rng).unwrap();
                    assert!(seen.insert(d), "duplicate within cycle {cycle} ({backend})");
                }
                assert_eq!(seen.len(), 7);
            }
        }
    }

    #[test]
    fn reset_happens_on_completion() {
        for backend in BOTH {
            let mut rng = ChaCha12Rng::seed_from_u64(2);
            let population = pop(3);
            let mut h = EdgeHistory::with_backend(backend);
            for _ in 0..3 {
                h.draw(NodeId(0), NodeId(1), &population, &mut rng).unwrap();
            }
            // After a full cycle the state must be reset, not full.
            assert_eq!(h.total_entries(), 0, "{backend}");
            assert_eq!(h.get_used_len(NodeId(0), NodeId(1)), Some(0));
        }
    }

    #[test]
    fn empty_population_returns_none() {
        for backend in BOTH {
            let mut rng = ChaCha12Rng::seed_from_u64(3);
            let mut h = EdgeHistory::with_backend(backend);
            assert_eq!(h.draw(NodeId(0), NodeId(1), &[], &mut rng), None);
            assert_eq!(h.tracked_edges(), 0, "{backend}");
        }
    }

    #[test]
    fn singleton_population_always_draws_it() {
        for backend in BOTH {
            let mut rng = ChaCha12Rng::seed_from_u64(4);
            let population = pop(1);
            let mut h = EdgeHistory::with_backend(backend);
            for _ in 0..10 {
                assert_eq!(
                    h.draw(NodeId(0), NodeId(1), &population, &mut rng),
                    Some(NodeId(0))
                );
            }
        }
    }

    #[test]
    fn draws_are_uniform_over_first_pick() {
        // The first draw of each cycle must be uniform over the population.
        for backend in BOTH {
            let population = pop(4);
            let mut counts = [0usize; 4];
            for seed in 0..4000u64 {
                let mut rng = ChaCha12Rng::seed_from_u64(seed);
                let mut h = EdgeHistory::with_backend(backend);
                let d = h.draw(NodeId(0), NodeId(1), &population, &mut rng).unwrap();
                counts[d.index()] += 1;
            }
            for &c in &counts {
                assert!(c > 850 && c < 1150, "count {c} not uniform ({backend})");
            }
        }
    }

    #[test]
    fn edge_history_separates_directed_edges() {
        for backend in BOTH {
            let mut rng = ChaCha12Rng::seed_from_u64(5);
            let mut h = EdgeHistory::with_backend(backend);
            let population = pop(5);
            let a = h.draw(NodeId(0), NodeId(1), &population, &mut rng);
            assert!(a.is_some());
            // The reverse edge has independent, empty history; probing it
            // must not create state.
            assert_eq!(h.get_used_len(NodeId(1), NodeId(0)), None);
            assert_eq!(h.tracked_edges(), 1, "{backend}");
            assert_eq!(h.total_entries(), 1);
            h.clear();
            assert_eq!(h.tracked_edges(), 0);
        }
    }

    #[test]
    fn group_history_separates_directed_edges() {
        for backend in BOTH {
            let mut h = GroupHistory::with_backend(backend);
            {
                let mut view = h.edge_view(NodeId(0), NodeId(1), 4);
                view.record(2, NodeId(5), 42);
                assert!(view.group_attempted(42));
                assert!(view.is_used(2, NodeId(5)));
            }
            // Read-only probe of the reverse edge: no state is created.
            assert_eq!(h.get(NodeId(1), NodeId(0)), None);
            assert_eq!(h.tracked_edges(), 1, "{backend}");
            assert_eq!(h.total_entries(), 1);
            assert_eq!(
                h.get(NodeId(0), NodeId(1)),
                Some(GroupEdgeSnapshot {
                    used_nodes: 1,
                    attempted_groups: 1
                })
            );
            h.clear();
            assert_eq!(h.tracked_edges(), 0);
        }
    }

    #[test]
    fn rank_scan_path_exercised() {
        // Force the used set above half to hit the legacy rank-scan branch
        // (and the promoted fast path on the arena backend).
        for backend in BOTH {
            let mut rng = ChaCha12Rng::seed_from_u64(7);
            let population = pop(10);
            let mut h = EdgeHistory::with_backend(backend);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..10 {
                seen.insert(h.draw(NodeId(0), NodeId(1), &population, &mut rng).unwrap());
            }
            assert_eq!(seen.len(), 10, "{backend}");
        }
    }

    #[test]
    fn backends_agree_on_accounting() {
        // Identical draw schedules on both backends must report identical
        // tracked-edge and total-entry accounting at every step (the O(K)
        // bookkeeping is storage-independent).
        let populations: Vec<Vec<NodeId>> = vec![pop(1), pop(3), pop(6), pop(17)];
        let mut legacy = EdgeHistory::with_backend(HistoryBackend::Legacy);
        let mut arena = EdgeHistory::with_backend(HistoryBackend::Arena);
        let mut rng_l = ChaCha12Rng::seed_from_u64(8);
        let mut rng_a = ChaCha12Rng::seed_from_u64(8);
        let mut schedule = ChaCha12Rng::seed_from_u64(9);
        for _ in 0..400 {
            let e = schedule.gen_range(0..populations.len());
            let (u, v) = (NodeId(e as u32), NodeId(e as u32 + 1));
            legacy.draw(u, v, &populations[e], &mut rng_l).unwrap();
            arena.draw(u, v, &populations[e], &mut rng_a).unwrap();
            assert_eq!(legacy.tracked_edges(), arena.tracked_edges());
            assert_eq!(legacy.total_entries(), arena.total_entries());
            assert_eq!(legacy.get_used_len(u, v), arena.get_used_len(u, v));
        }
    }

    #[test]
    fn legacy_rejection_cap_falls_back_to_exact_scan() {
        // An adversarial RNG that always proposes the same candidate: the
        // bounded rejection loop must cap out and the rank-scan fallback
        // still produce a valid unused item.
        struct StuckRng;
        impl rand::RngCore for StuckRng {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                // Every proposal is index 0; the rejection loop must cap
                // out, and the rank scan (rank 0) then picks the first
                // *unused* item deterministically.
                0
            }
        }
        let population = pop(9);
        let mut c = CirculationSet::default();
        // Mark index 0 used so every proposal of the stuck RNG is rejected.
        c.used.insert(NodeId(0));
        let got = c.draw(&population, &mut StuckRng).unwrap();
        assert_ne!(got, NodeId(0), "fallback must skip the used item");
    }
}
