//! History state for circulated (without-replacement) transitions.
//!
//! CNRW's entire memory is the map `b(u, v)` (paper Algorithm 1): for every
//! directed edge `(u, v)` the walk has traversed, the set of neighbors of `v`
//! already chosen as outgoing transitions since the last reset. GNRW extends
//! this with a per-edge set of *groups* already attempted, `S(u, v)`, and a
//! per-edge-per-group node set `b_Si(u, v)` (Algorithm 2).
//!
//! Space grows by at most one entry per walk step, giving the `O(K)` space
//! bound of §3.3; amortized per-step cost is `O(1)` expected.

use osn_graph::NodeId;
use rand::Rng;

use crate::fnv::{FnvHashMap, FnvHashSet};

/// A without-replacement "circulation" over a fixed candidate population.
///
/// Holds the set of already-used items; [`CirculationSet::draw`] picks
/// uniformly among the unused ones and records the pick, resetting
/// automatically once the whole population has been used. The population is
/// supplied at each draw (it is the neighbor list, owned by the graph) and
/// must be stable between resets — true for static snapshots.
#[derive(Clone, Debug, Default)]
pub struct CirculationSet {
    used: FnvHashSet<NodeId>,
}

impl CirculationSet {
    /// Number of items used since the last reset.
    pub fn used_len(&self) -> usize {
        self.used.len()
    }

    /// Whether `w` has been used since the last reset.
    pub fn contains(&self, w: NodeId) -> bool {
        self.used.contains(&w)
    }

    /// Draw uniformly at random from `population \ used`, record the draw,
    /// and reset once the population is exhausted (the draw completing the
    /// circulation triggers the reset, so the *next* draw sees a full
    /// population again).
    ///
    /// Returns `None` only for an empty population.
    pub fn draw<R: Rng + ?Sized>(&mut self, population: &[NodeId], rng: &mut R) -> Option<NodeId> {
        if population.is_empty() {
            return None;
        }
        debug_assert!(
            self.used.len() < population.len(),
            "invariant: used set resets before filling the population"
        );
        let remaining = population.len() - self.used.len();
        let pick = if self.used.len() * 2 < population.len() {
            // Mostly-unused population: rejection sampling, O(1) expected.
            loop {
                let cand = population[rng.gen_range(0..population.len())];
                if !self.used.contains(&cand) {
                    break cand;
                }
            }
        } else {
            // Mostly-used population: rank scan, exact O(len) worst case.
            let mut rank = rng.gen_range(0..remaining);
            let mut found = None;
            for &cand in population {
                if self.used.contains(&cand) {
                    continue;
                }
                if rank == 0 {
                    found = Some(cand);
                    break;
                }
                rank -= 1;
            }
            found.expect("rank < remaining unused items")
        };
        if self.used.len() + 1 == population.len() {
            self.used.clear(); // circulation complete -> reset (paper step 2)
        } else {
            self.used.insert(pick);
        }
        Some(pick)
    }
}

/// CNRW's full history: `(u, v) -> b(u, v)`.
///
/// Implemented, as the paper suggests, "as a HashMap with initial value ∅";
/// keys are directed edges packed into a `u64`.
#[derive(Clone, Debug, Default)]
pub struct EdgeHistory {
    map: FnvHashMap<u64, CirculationSet>,
}

#[inline]
fn edge_key(u: NodeId, v: NodeId) -> u64 {
    (u64::from(u.0) << 32) | u64::from(v.0)
}

impl EdgeHistory {
    /// New empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// The circulation state of directed edge `(u, v)`, created on demand.
    pub fn entry(&mut self, u: NodeId, v: NodeId) -> &mut CirculationSet {
        self.map.entry(edge_key(u, v)).or_default()
    }

    /// The circulation state of `(u, v)` if it exists.
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<&CirculationSet> {
        self.map.get(&edge_key(u, v))
    }

    /// Number of directed edges with live history.
    pub fn tracked_edges(&self) -> usize {
        self.map.len()
    }

    /// Total number of recorded used-entries across all edges (the `O(K)`
    /// quantity of §3.3).
    pub fn total_entries(&self) -> usize {
        self.map.values().map(CirculationSet::used_len).sum()
    }

    /// Drop all history (the walker becomes memoryless again).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Per-edge GNRW state (paper Algorithm 2 / §4.1 steps 1–4).
///
/// * `used_nodes` is the **global** `b(u, v)`: every neighbor chosen in the
///   current super-cycle; it resets when it reaches `N(v)`. This global
///   circulation is what guarantees every neighbor is chosen exactly once
///   per super-cycle and hence preserves the stationary distribution
///   (Theorem 4) for *any* group sizes.
/// * `used_groups` is `S(u, v)`: the groups attempted in the current group
///   sub-cycle; it resets whenever no un-attempted group still has unvisited
///   members (and along with `used_nodes` at super-cycle end). The group
///   circulation only shapes the *order* in which the super-cycle covers
///   `N(v)` — the stratified alternation of Figure 5.
#[derive(Clone, Debug, Default)]
pub struct GnrwEdgeState {
    /// Global without-replacement set `b(u, v)` over `N(v)`.
    pub used_nodes: FnvHashSet<NodeId>,
    /// Groups attempted in the current sub-cycle, `S(u, v)`.
    pub used_groups: FnvHashSet<u64>,
}

/// GNRW's full history: `(u, v) -> GnrwEdgeState`.
#[derive(Clone, Debug, Default)]
pub struct GroupHistory {
    map: FnvHashMap<u64, GnrwEdgeState>,
}

impl GroupHistory {
    /// New empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// The state of directed edge `(u, v)`, created on demand.
    pub fn state(&mut self, u: NodeId, v: NodeId) -> &mut GnrwEdgeState {
        self.map.entry(edge_key(u, v)).or_default()
    }

    /// Number of directed edges with live state.
    pub fn tracked_edges(&self) -> usize {
        self.map.len()
    }

    /// Total recorded node entries across all edges (the `O(K)` quantity).
    pub fn total_entries(&self) -> usize {
        self.map.values().map(|s| s.used_nodes.len()).sum()
    }

    /// Drop all history.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn pop(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn draw_covers_population_each_cycle() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let population = pop(7);
        let mut c = CirculationSet::default();
        for cycle in 0..5 {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..population.len() {
                let d = c.draw(&population, &mut rng).unwrap();
                assert!(seen.insert(d), "duplicate within cycle {cycle}");
            }
            assert_eq!(seen.len(), 7);
        }
    }

    #[test]
    fn reset_happens_on_completion() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let population = pop(3);
        let mut c = CirculationSet::default();
        for _ in 0..3 {
            c.draw(&population, &mut rng).unwrap();
        }
        // After a full cycle the set must be reset, not full.
        assert_eq!(c.used_len(), 0);
    }

    #[test]
    fn empty_population_returns_none() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut c = CirculationSet::default();
        assert_eq!(c.draw(&[], &mut rng), None);
    }

    #[test]
    fn singleton_population_always_draws_it() {
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let population = pop(1);
        let mut c = CirculationSet::default();
        for _ in 0..10 {
            assert_eq!(c.draw(&population, &mut rng), Some(NodeId(0)));
        }
    }

    #[test]
    fn draws_are_uniform_over_first_pick() {
        // The first draw of each cycle must be uniform over the population.
        let population = pop(4);
        let mut counts = [0usize; 4];
        for seed in 0..4000u64 {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            let mut c = CirculationSet::default();
            let d = c.draw(&population, &mut rng).unwrap();
            counts[d.index()] += 1;
        }
        for &c in &counts {
            assert!(c > 850 && c < 1150, "count {c} deviates from uniform");
        }
    }

    #[test]
    fn edge_history_separates_directed_edges() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut h = EdgeHistory::new();
        let population = pop(5);
        let a = h.entry(NodeId(0), NodeId(1)).draw(&population, &mut rng);
        assert!(a.is_some());
        // The reverse edge has independent, empty history.
        assert!(h.get(NodeId(1), NodeId(0)).is_none());
        assert_eq!(h.tracked_edges(), 1);
        assert_eq!(h.total_entries(), 1);
        h.clear();
        assert_eq!(h.tracked_edges(), 0);
    }

    #[test]
    fn group_history_separates_directed_edges() {
        let mut h = GroupHistory::new();
        h.state(NodeId(0), NodeId(1)).used_groups.insert(42);
        h.state(NodeId(0), NodeId(1)).used_nodes.insert(NodeId(5));
        assert!(h.state(NodeId(0), NodeId(1)).used_groups.contains(&42));
        assert!(!h.state(NodeId(1), NodeId(0)).used_groups.contains(&42));
        assert_eq!(h.tracked_edges(), 2); // reverse edge created on probe
        assert_eq!(h.total_entries(), 1);
        h.clear();
        assert_eq!(h.tracked_edges(), 0);
    }

    #[test]
    fn rank_scan_path_exercised() {
        // Force the used set above half to hit the rank-scan branch.
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let population = pop(10);
        let mut c = CirculationSet::default();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            seen.insert(c.draw(&population, &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 10);
    }
}
