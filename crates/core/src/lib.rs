//! # osn-walks
//!
//! History-aware random walks over online social networks — a Rust
//! implementation of *"Leveraging History for Faster Sampling of Online
//! Social Networks"* (Zhou, Zhang, Das; VLDB 2015).
//!
//! ## The algorithms
//!
//! All walkers implement one object-safe trait, [`RandomWalk`], and can be
//! swapped freely — the paper's "drop-in replacement" property:
//!
//! | Walker | Order | Stationary dist. | Source |
//! |---|---|---|---|
//! | [`Srw`] — simple random walk | 1 | `k_v / 2\|E\|` | baseline |
//! | [`Mhrw`] — Metropolis–Hastings RW | 1 | uniform | baseline \[8\] |
//! | [`NbSrw`] — non-backtracking SRW | 2 | `k_v / 2\|E\|` | baseline \[11\] |
//! | [`Cnrw`] — circulated neighbors RW | high | `k_v / 2\|E\|` | **paper §3** |
//! | [`Gnrw`] — groupby neighbors RW | high | `k_v / 2\|E\|` | **paper §4** |
//! | [`NbCnrw`] — circulated NB walk | high | `k_v / 2\|E\|` | **paper §5** |
//!
//! CNRW replaces the memoryless uniform choice of the next neighbor by
//! sampling **without replacement**, keyed by the incoming directed edge
//! `(u, v)`: the walk circulates through `N(v)` before re-attempting any
//! neighbor. GNRW stratifies `N(v)` into groups (by degree, an attribute, or
//! a hash — see [`grouping`]) and circulates among groups, then within the
//! chosen group. Both provably preserve SRW's stationary distribution while
//! never increasing — and usually decreasing — asymptotic variance.
//!
//! The circulation state lives behind a [`HistoryBackend`] knob: the default
//! arena-backed partial-Fisher–Yates engine ([`circulation`]) makes every
//! draw exactly `O(1)` and hash-free, while the paper's hash-set layout is
//! retained as [`HistoryBackend::Legacy`] for ablation (see the
//! `walker_throughput` and `history_backends` benches).
//!
//! GNRW additionally accepts a precomputed [`GroupPlan`] ([`groupplan`]):
//! the per-node neighbor partition is built once per graph+strategy and
//! shared read-only across walkers, group selection becomes an `O(1)`
//! alias-table draw, and RNG output is consumed in batches — removing all
//! per-step hashing, allocation, and partition work from the hot loop (see
//! the `gnrw_throughput` bench).
//!
//! ## Running a walk
//!
//! ```
//! use osn_graph::generators::barbell;
//! use osn_client::SimulatedOsn;
//! use osn_walks::{Cnrw, WalkConfig, WalkSession};
//! use osn_graph::NodeId;
//!
//! let graph = barbell(10, 10).unwrap();
//! let mut client = SimulatedOsn::from_graph(graph);
//! let mut walker = Cnrw::new(NodeId(0));
//! let trace = WalkSession::new(WalkConfig::steps(500).with_seed(7))
//!     .run(&mut walker, &mut client);
//! assert_eq!(trace.len(), 500);
//! ```
//!
//! The [`markov`] module provides exact chain analysis on small graphs
//! (stationary distributions, asymptotic variance via the fundamental
//! matrix) used to validate the walkers against theory.
//!
//! ## One execution core
//!
//! Every run mode funnels through the unified [`orchestrator`]:
//! [`WalkOrchestrator`] owns the step loop, the SplitMix64 per-walker RNG
//! streams, budget cut-off, and stop bookkeeping, parameterized by an
//! execution backend (serial round-robin, one OS thread per walker over
//! `osn_client::SharedOsn`, or coalesced batches over
//! `osn_client::BatchOsnClient`) and a [`RestartPolicy`] — [`Never`] for
//! bit-exact classic runs, [`WorkStealing`] for frontier restarts of
//! stalled walkers driven by the online windowed split-R̂. The historical
//! drivers ([`WalkSession`], [`MultiWalkSession`], [`MultiWalkRunner`],
//! [`CoalescingDispatcher`]) remain as thin bit-compatible wrappers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use osn_graph::fnv;

pub mod circulation;
pub mod frontier;
pub mod grouping;
pub mod groupplan;
pub mod history;
pub mod markov;
pub mod multiwalk;
pub mod orchestrator;
pub mod reactor;
mod session;
mod walker;
pub mod walkers;

pub use circulation::HistoryBackend;
pub use frontier::{FrontierEntry, FrontierSampler, SharedFrontier};
pub use grouping::{ByAttribute, ByDegree, ByHash, ByNode, GroupingStrategy, ValueBucketing};
pub use groupplan::{AliasTable, DegenerateGrouping, DrawBatch, GroupPlan, NodeGroups, PlanMode};
pub use multiwalk::{
    BatchDispatchReport, CoalescingDispatcher, MultiWalkReport, MultiWalkRunner, MultiWalkSession,
    MultiWalkTrace,
};
pub use orchestrator::{
    CoalescedWalkRun, Never, OrchestratorReport, RestartEvent, RestartPolicy, RestartReason,
    SerialWalkRun, WalkOrchestrator, WorkStealing,
};
pub use reactor::{ReactorStats, ReactorWalkRun, WalkerFsm};
pub use session::{WalkConfig, WalkSession, WalkStop, WalkTrace};
pub use walker::RandomWalk;
pub use walkers::{Cnrw, Gnrw, Mhrw, NbCnrw, NbSrw, NodeCnrw, Srw};
