//! Dense transition kernels.

use osn_graph::CsrGraph;

/// A dense row-stochastic transition matrix over graph nodes.
///
/// Only intended for small graphs (the paper's synthetic topologies and the
/// test suite); memory is `O(n^2)`.
#[derive(Clone, Debug, PartialEq)]
pub struct TransitionKernel {
    n: usize,
    /// Row-major `n x n` matrix; `p[i*n + j] = P(i -> j)`.
    p: Vec<f64>,
}

impl TransitionKernel {
    /// Build from a row-major matrix.
    ///
    /// # Panics
    /// Panics if `p.len() != n*n` or any row fails to sum to 1 within 1e-9.
    pub fn from_rows(n: usize, p: Vec<f64>) -> Self {
        assert_eq!(p.len(), n * n, "matrix shape mismatch");
        let k = TransitionKernel { n, p };
        for i in 0..n {
            let s: f64 = k.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
        k
    }

    /// The SRW kernel of a graph: `P(i -> j) = 1/k_i` for neighbors
    /// (Definition 2). Isolated nodes self-loop.
    pub fn srw(graph: &CsrGraph) -> Self {
        let n = graph.node_count();
        let mut p = vec![0.0; n * n];
        for v in graph.nodes() {
            let k = graph.degree(v);
            if k == 0 {
                p[v.index() * n + v.index()] = 1.0;
                continue;
            }
            let w = 1.0 / k as f64;
            for &u in graph.neighbors(v) {
                p[v.index() * n + u.index()] = w;
            }
        }
        TransitionKernel { n, p }
    }

    /// The MHRW kernel of a graph targeting the uniform distribution:
    /// propose a uniform neighbor, accept with `min(1, k_v / k_w)`, stay on
    /// rejection.
    pub fn mhrw(graph: &CsrGraph) -> Self {
        let n = graph.node_count();
        let mut p = vec![0.0; n * n];
        for v in graph.nodes() {
            let kv = graph.degree(v);
            if kv == 0 {
                p[v.index() * n + v.index()] = 1.0;
                continue;
            }
            let mut stay = 0.0;
            for &u in graph.neighbors(v) {
                let ku = graph.degree(u).max(1);
                let accept = (kv as f64 / ku as f64).min(1.0);
                let prob = accept / kv as f64;
                p[v.index() * n + u.index()] = prob;
                stay += (1.0 - accept) / kv as f64;
            }
            p[v.index() * n + v.index()] += stay;
        }
        TransitionKernel { n, p }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the kernel has no states.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Row `i` (the outgoing distribution of state `i`).
    pub fn row(&self, i: usize) -> &[f64] {
        &self.p[i * self.n..(i + 1) * self.n]
    }

    /// Entry `P(i -> j)`.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.p[i * self.n + j]
    }

    /// One step of distribution evolution: returns `d P`.
    pub fn evolve(&self, d: &[f64]) -> Vec<f64> {
        assert_eq!(d.len(), self.n);
        let mut out = vec![0.0; self.n];
        for (i, &di) in d.iter().enumerate() {
            if di == 0.0 {
                continue;
            }
            let row = &self.p[i * self.n..(i + 1) * self.n];
            for (o, &pij) in out.iter_mut().zip(row) {
                *o += di * pij;
            }
        }
        out
    }

    /// Stationary distribution by power iteration (converges for irreducible
    /// aperiodic chains; a tiny lazy damping makes periodic chains converge
    /// to the same stationary vector).
    pub fn stationary(&self, tol: f64, max_iters: usize) -> Vec<f64> {
        let n = self.n;
        let mut d = vec![1.0 / n as f64; n];
        for _ in 0..max_iters {
            let evolved = self.evolve(&d);
            // Lazy step: (d + dP)/2 — same fixed point, kills periodicity.
            let next: Vec<f64> = d
                .iter()
                .zip(&evolved)
                .map(|(&a, &b)| 0.5 * (a + b))
                .collect();
            let diff: f64 = next.iter().zip(&d).map(|(&a, &b)| (a - b).abs()).sum();
            d = next;
            if diff < tol {
                break;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::generators::barbell;
    use osn_graph::GraphBuilder;

    fn path4() -> CsrGraph {
        GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .build()
            .unwrap()
    }

    #[test]
    fn srw_kernel_rows_stochastic() {
        let k = TransitionKernel::srw(&path4());
        for i in 0..4 {
            let s: f64 = k.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert_eq!(k.prob(0, 1), 1.0);
        assert_eq!(k.prob(1, 0), 0.5);
        assert_eq!(k.len(), 4);
        assert!(!k.is_empty());
    }

    #[test]
    fn srw_stationary_is_degree_proportional() {
        let g = barbell(4, 4).unwrap();
        let k = TransitionKernel::srw(&g);
        let pi = k.stationary(1e-12, 100_000);
        let expect = g.degree_stationary_distribution();
        for (a, b) in pi.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn mhrw_stationary_is_uniform() {
        let g = barbell(4, 5).unwrap();
        let k = TransitionKernel::mhrw(&g);
        let pi = k.stationary(1e-12, 100_000);
        let u = 1.0 / g.node_count() as f64;
        for &x in &pi {
            assert!((x - u).abs() < 1e-6, "{x} vs uniform {u}");
        }
    }

    #[test]
    fn mhrw_kernel_rows_stochastic() {
        let g = barbell(3, 4).unwrap();
        let k = TransitionKernel::mhrw(&g);
        for i in 0..g.node_count() {
            let s: f64 = k.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {i} sums {s}");
        }
    }

    #[test]
    fn evolve_preserves_mass() {
        let k = TransitionKernel::srw(&path4());
        let d = vec![1.0, 0.0, 0.0, 0.0];
        let d1 = k.evolve(&d);
        assert!((d1.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d1[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "row 0 sums")]
    fn from_rows_validates() {
        let _ = TransitionKernel::from_rows(2, vec![0.5, 0.4, 0.0, 1.0]);
    }

    #[test]
    fn from_rows_accepts_valid() {
        let k = TransitionKernel::from_rows(2, vec![0.5, 0.5, 1.0, 0.0]);
        assert_eq!(k.prob(1, 0), 1.0);
    }

    #[test]
    fn stationary_of_periodic_chain_converges() {
        // 2-cycle (bipartite, period 2): lazy damping must still converge
        // to [0.5, 0.5].
        let g = GraphBuilder::new().add_edge(0, 1).build().unwrap();
        let k = TransitionKernel::srw(&g);
        let pi = k.stationary(1e-12, 100_000);
        assert!((pi[0] - 0.5).abs() < 1e-6);
    }
}
