//! Minimal dense linear algebra: LU solve with partial pivoting.
//!
//! Used by the fundamental-matrix asymptotic-variance computation. `O(n^3)`,
//! intended for the paper's small synthetic graphs (n in the hundreds).

/// Solve the dense system `A x = b` in place, returning `x`.
///
/// `a` is row-major `n x n` and is consumed (factored in place).
///
/// # Panics
/// Panics on shape mismatch or a numerically singular matrix.
pub fn solve_dense(mut a: Vec<f64>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    assert_eq!(a.len(), n * n, "matrix shape mismatch");

    for col in 0..n {
        // Partial pivot: largest |entry| in this column at or below row=col.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a[r1 * n + col]
                    .abs()
                    .partial_cmp(&a[r2 * n + col].abs())
                    .expect("non-NaN matrix")
            })
            .expect("non-empty column range");
        let pivot = a[pivot_row * n + col];
        assert!(
            pivot.abs() > 1e-12,
            "matrix is singular at column {col} (pivot {pivot:.3e})"
        );
        if pivot_row != col {
            for j in 0..n {
                a.swap(col * n + j, pivot_row * n + j);
            }
            b.swap(col, pivot_row);
        }
        // Eliminate below.
        for row in (col + 1)..n {
            let factor = a[row * n + col] / a[col * n + col];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row * n + j] -= factor * a[col * n + j];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for j in (row + 1)..n {
            acc -= a[row * n + j] * x[j];
        }
        x[row] = acc / a[row * n + row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve_dense(a, vec![3.0, -2.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let x = solve_dense(vec![2.0, 1.0, 1.0, 3.0], vec![5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn needs_pivoting() {
        // Leading zero forces a row swap.
        let x = solve_dense(vec![0.0, 1.0, 1.0, 0.0], vec![7.0, 9.0]);
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn random_system_roundtrip() {
        use rand::{Rng, SeedableRng};
        let n = 20;
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
        let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // Diagonal dominance guarantees solvability.
        let mut a2 = a.clone();
        for i in 0..n {
            a2[i * n + i] += n as f64;
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) / 3.0 - 2.0).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a2[i * n + j] * x_true[j]).sum())
            .collect();
        let x = solve_dense(a2, b);
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-8, "{xs} vs {xt}");
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_matrix_panics() {
        let _ = solve_dense(vec![1.0, 2.0, 2.0, 4.0], vec![1.0, 2.0]);
    }
}
