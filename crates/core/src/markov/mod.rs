//! Exact Markov-chain analysis on small graphs.
//!
//! The paper's theorems talk about stationary distributions and asymptotic
//! variance. For small graphs these quantities are *exactly computable* from
//! the dense transition matrix, giving the test suite ground truth to hold
//! the walkers against:
//!
//! * [`TransitionKernel`] — dense row-stochastic matrix, with constructors
//!   for the SRW, MHRW and NB-SRW-as-edge-chain kernels of a graph;
//! * [`TransitionKernel::stationary`] — power-iteration stationary
//!   distribution;
//! * [`asymptotic_variance`] — Definition 3's `V∞` via the fundamental
//!   matrix `Z = (I - P + 1π)^{-1}` (order-1 chains);
//! * [`mixing_time_upper`] — smallest `t` with worst-case TV distance below
//!   a threshold.
//!
//! CNRW/GNRW are *not* order-1 chains, so their variance cannot be read off
//! a matrix — that is exactly why the experiments estimate it empirically —
//! but Theorem 1 says their stationary distribution equals SRW's, which
//! these tools verify against long-run visit frequencies.

mod kernel;
mod linalg;
mod variance;

pub use kernel::TransitionKernel;
pub use linalg::solve_dense;
pub use variance::{asymptotic_variance, mixing_time_upper, total_variation};
