//! Exact asymptotic variance and mixing-time bounds for order-1 chains.

use super::kernel::TransitionKernel;
use super::linalg::solve_dense;

/// Total variation distance between two distributions.
pub fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    0.5 * a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum::<f64>()
}

/// Exact asymptotic variance (paper Definition 3) of the ergodic-average
/// estimator of `f` under an order-1 chain with kernel `p` and stationary
/// distribution `pi`:
///
/// `V∞ = lim n·Var(µ̂_n) = Var_π(f) + 2 Σ_{t≥1} Cov_π(f(X_0), f(X_t))`
///
/// computed via the fundamental matrix `Z = (I - P + 1π)^{-1}` as
/// `V∞ = 2 f̃ᵀ Π Z f̃ - f̃ᵀ Π f̃` with `f̃ = f - π(f)`.
///
/// # Panics
/// Panics on dimension mismatches or a singular system (reducible chain).
pub fn asymptotic_variance(p: &TransitionKernel, pi: &[f64], f: &[f64]) -> f64 {
    let n = p.len();
    assert_eq!(pi.len(), n);
    assert_eq!(f.len(), n);

    let mean: f64 = pi.iter().zip(f).map(|(&w, &x)| w * x).sum();
    let centered: Vec<f64> = f.iter().map(|&x| x - mean).collect();

    // Assemble A = I - P + 1π (row-major).
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let identity = if i == j { 1.0 } else { 0.0 };
            a[i * n + j] = identity - p.prob(i, j) + pi[j];
        }
    }
    // Solve A z = f̃  =>  z = Z f̃.
    let z = solve_dense(a, centered.clone());

    let var: f64 = pi.iter().zip(&centered).map(|(&w, &x)| w * x * x).sum();
    let cross: f64 = pi
        .iter()
        .zip(&centered)
        .zip(&z)
        .map(|((&w, &x), &zx)| w * x * zx)
        .sum();
    2.0 * cross - var
}

/// Smallest `t` such that the worst-case (over deterministic starts) total
/// variation distance to `pi` drops below `eps`; returns `None` if not
/// reached within `max_t` steps.
///
/// This is the "burn-in period" quantity the paper's introduction talks
/// about, computed exactly for small graphs.
pub fn mixing_time_upper(
    p: &TransitionKernel,
    pi: &[f64],
    eps: f64,
    max_t: usize,
) -> Option<usize> {
    let n = p.len();
    // Evolve all n point-mass rows together: dist[i] is the t-step
    // distribution starting from i.
    let mut dists: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut d = vec![0.0; n];
            d[i] = 1.0;
            d
        })
        .collect();
    for t in 0..=max_t {
        let worst = dists
            .iter()
            .map(|d| total_variation(d, pi))
            .fold(0.0f64, f64::max);
        if worst < eps {
            return Some(t);
        }
        for d in &mut dists {
            *d = p.evolve(d);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::generators::{barbell, erdos_renyi};
    use osn_graph::GraphBuilder;

    #[test]
    fn tv_distance_basics() {
        assert_eq!(total_variation(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((total_variation(&[0.5, 0.5], &[0.25, 0.75]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn iid_chain_variance_equals_population_variance() {
        // A kernel whose every row is pi produces i.i.d. samples, so the
        // asymptotic variance equals Var_pi(f).
        let pi = vec![0.25, 0.25, 0.5];
        let p =
            TransitionKernel::from_rows(3, vec![0.25, 0.25, 0.5, 0.25, 0.25, 0.5, 0.25, 0.25, 0.5]);
        let f = vec![1.0, 2.0, 4.0];
        let mean = 0.25 + 0.5 + 2.0;
        let var: f64 = pi
            .iter()
            .zip(&f)
            .map(|(&w, &x)| w * (x - mean) * (x - mean))
            .sum();
        let v = asymptotic_variance(&p, &pi, &f);
        assert!((v - var).abs() < 1e-9, "{v} vs {var}");
    }

    #[test]
    fn barbell_srw_variance_is_huge() {
        // The bottleneck makes the indicator of "left bell" mix terribly:
        // asymptotic variance far above the i.i.d. value (~0.25).
        let g = barbell(6, 6).unwrap();
        let k = TransitionKernel::srw(&g);
        let pi = g.degree_stationary_distribution();
        let f: Vec<f64> = (0..12).map(|i| if i < 6 { 1.0 } else { 0.0 }).collect();
        let v = asymptotic_variance(&k, &pi, &f);
        assert!(v > 5.0, "barbell variance {v} unexpectedly small");
    }

    #[test]
    fn well_connected_graph_has_modest_variance() {
        let g = erdos_renyi(30, 0.4, 1).unwrap();
        let k = TransitionKernel::srw(&g);
        let pi = g.degree_stationary_distribution();
        let f: Vec<f64> = (0..30).map(|i| (i % 2) as f64).collect();
        let v = asymptotic_variance(&k, &pi, &f);
        assert!(v < 2.0, "variance {v}");
        assert!(v > 0.0);
    }

    #[test]
    fn constant_function_has_zero_variance() {
        let g = barbell(4, 4).unwrap();
        let k = TransitionKernel::srw(&g);
        let pi = g.degree_stationary_distribution();
        let f = vec![3.0; 8];
        let v = asymptotic_variance(&k, &pi, &f);
        assert!(v.abs() < 1e-9, "constant f should give 0, got {v}");
    }

    #[test]
    fn mixing_time_monotone_in_conductance() {
        // A clique mixes almost immediately; a barbell of the same size does
        // not.
        let clique = {
            let mut b = GraphBuilder::new();
            for i in 0..12u32 {
                for j in (i + 1)..12 {
                    b.push_edge(i, j);
                }
            }
            b.build().unwrap()
        };
        let bar = barbell(6, 6).unwrap();
        let kc = TransitionKernel::srw(&clique);
        let kb = TransitionKernel::srw(&bar);
        let tc =
            mixing_time_upper(&kc, &clique.degree_stationary_distribution(), 0.01, 10_000).unwrap();
        let tb =
            mixing_time_upper(&kb, &bar.degree_stationary_distribution(), 0.01, 10_000).unwrap();
        assert!(tb > 5 * tc, "barbell {tb} vs clique {tc}");
    }

    #[test]
    fn mixing_time_none_when_budget_too_small() {
        let bar = barbell(10, 10).unwrap();
        let k = TransitionKernel::srw(&bar);
        let pi = bar.degree_stationary_distribution();
        assert_eq!(mixing_time_upper(&k, &pi, 1e-6, 1), None);
    }
}
