//! Multiple cooperating walkers over one shared interface.
//!
//! The paper's related work cites Alon et al., *"Many random walks are
//! faster than one"* \[3\]. In the restricted-access setting the idea has a
//! twist that makes it even more attractive: walkers sharing one crawler
//! share its **cache**, so a node queried by any walker is free for all
//! others — `k` walkers cover ground faster *without* multiplying the
//! unique-query bill.
//!
//! Two drivers implement the pattern:
//!
//! * [`MultiWalkSession`] steps `k` walkers **round-robin on one thread**
//!   against one client until the shared budget runs out, interleaving their
//!   traces — fully deterministic, ideal for experiments that must replay
//!   bit-identically.
//! * [`MultiWalkRunner`] runs `k` walkers on **`k` scoped OS threads**
//!   against cloned handles of a thread-safe client (one
//!   [`osn_client::SharedOsn`] handle per walker). Each walker owns a
//!   deterministic RNG stream derived from the run seed by SplitMix64, so
//!   per-walker traces are independent of thread scheduling; per-walker
//!   [`osn_estimate::RatioEstimator`]s are merged in walker-index order, so
//!   the pooled estimate is bit-stable too (absent a shared budget, which
//!   makes cut-off timing scheduling-dependent by nature).
//!
//! Because the walkers are independent chains with the same stationary
//! distribution, the pooled samples feed the usual estimators unchanged, and
//! multi-chain diagnostics (`osn_estimate::diagnostics::split_rhat`) become
//! applicable.

use osn_client::OsnClient;
use osn_estimate::RatioEstimator;
use osn_graph::NodeId;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::circulation::HistoryBackend;
use crate::walker::RandomWalk;

/// Outcome of a multi-walker run.
#[derive(Clone, Debug)]
pub struct MultiWalkTrace {
    /// Per-walker visit sequences (one entry per performed step).
    pub per_walker: Vec<Vec<NodeId>>,
    /// Final client statistics (shared across walkers).
    pub stats: osn_client::QueryStats,
}

impl MultiWalkTrace {
    /// Total steps across all walkers.
    pub fn total_steps(&self) -> usize {
        self.per_walker.iter().map(Vec::len).sum()
    }

    /// Iterator over all samples, pooled across walkers.
    pub fn pooled(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.per_walker.iter().flatten().copied()
    }

    /// Per-walker traces as `f64` sequences of `f(node)` — the shape the
    /// multi-chain diagnostics expect.
    pub fn chains<F: Fn(NodeId) -> f64>(&self, f: F) -> Vec<Vec<f64>> {
        self.per_walker
            .iter()
            .map(|c| c.iter().map(|&v| f(v)).collect())
            .collect()
    }
}

/// Drives several walkers round-robin against one shared client.
pub struct MultiWalkSession {
    max_steps_per_walker: usize,
    seed: u64,
}

impl MultiWalkSession {
    /// Each walker performs at most `max_steps_per_walker` transitions.
    pub fn new(max_steps_per_walker: usize, seed: u64) -> Self {
        MultiWalkSession {
            max_steps_per_walker,
            seed,
        }
    }

    /// Run all walkers until each hits its step cap or the shared budget
    /// refuses further queries. Round-robin interleaving keeps the cache
    /// shared fairly; a walker that hits the budget stops while others may
    /// continue on cached territory.
    pub fn run<C: OsnClient>(
        &self,
        walkers: &mut [Box<dyn RandomWalk + Send>],
        client: &mut C,
    ) -> MultiWalkTrace {
        let mut rngs: Vec<ChaCha12Rng> = (0..walkers.len())
            .map(|i| ChaCha12Rng::seed_from_u64(self.seed.wrapping_add(i as u64 * 0x9e37)))
            .collect();
        let mut traces: Vec<Vec<NodeId>> = vec![Vec::new(); walkers.len()];
        let mut live: Vec<bool> = vec![true; walkers.len()];
        for _ in 0..self.max_steps_per_walker {
            let mut any = false;
            for (i, walker) in walkers.iter_mut().enumerate() {
                if !live[i] {
                    continue;
                }
                match walker.step(&mut *client, &mut rngs[i]) {
                    Ok(v) => {
                        traces[i].push(v);
                        any = true;
                    }
                    Err(_) => live[i] = false,
                }
            }
            if !any {
                break;
            }
        }
        MultiWalkTrace {
            per_walker: traces,
            stats: client.stats(),
        }
    }
}

/// SplitMix64-derived RNG seed for stream `walker` of run `seed` —
/// well-spread and stable across platforms and thread schedules. The single
/// source of seed mixing for the workspace: walker streams here, trial
/// seeds in `osn-experiments` (its `trial_seed` delegates to this).
pub fn stream_seed(seed: u64, walker: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(walker + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Outcome of a [`MultiWalkRunner`] run: the per-walker traces plus the
/// merged estimate.
#[derive(Clone, Debug)]
pub struct MultiWalkReport {
    /// Per-walker visit sequences and final shared-client statistics.
    pub trace: MultiWalkTrace,
    /// The per-walker ratio estimators merged in walker-index order.
    pub estimate: RatioEstimator,
}

/// Schedules `k` seeded walkers over `k` scoped OS threads against cloned
/// handles of one thread-safe client.
///
/// Built for [`osn_client::SharedOsn`]: every clone shares the snapshot,
/// the lock-striped cache, the global accounting, and (optionally) an atomic
/// unique-query budget, so `k` walkers cover ground concurrently without
/// multiplying the unique-query bill. Any `OsnClient + Clone + Send` works;
/// for clients whose clones do *not* share state, the report's `stats` field
/// only reflects the calling handle.
///
/// ## Determinism
///
/// Walker `i` draws from its own SplitMix64-derived RNG stream, and neighbor
/// lists come from an immutable snapshot, so without a shared budget each
/// per-walker trace is **bit-identical** to running that walker alone with
/// the same derived seed — thread scheduling cannot perturb results. With a
/// shared budget, *which* walker gets the last queries depends on
/// scheduling; totals remain exact.
#[derive(Clone, Copy, Debug)]
pub struct MultiWalkRunner {
    walkers: usize,
    max_steps_per_walker: usize,
    seed: u64,
    backend: HistoryBackend,
}

impl MultiWalkRunner {
    /// Run `walkers` concurrent walkers, each performing at most
    /// `max_steps_per_walker` transitions, with RNG streams derived from
    /// `seed`. History-aware walkers use the default (arena) backend; see
    /// [`with_backend`](Self::with_backend).
    pub fn new(walkers: usize, max_steps_per_walker: usize, seed: u64) -> Self {
        MultiWalkRunner {
            walkers: walkers.max(1),
            max_steps_per_walker,
            seed,
            backend: HistoryBackend::default(),
        }
    }

    /// Choose the history backend handed to the walker factory (the
    /// ablation knob of the backend benches).
    #[must_use]
    pub fn with_backend(mut self, backend: HistoryBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The history backend handed to the walker factory.
    pub fn backend(&self) -> HistoryBackend {
        self.backend
    }

    /// Number of walker threads this runner will spawn.
    pub fn walker_count(&self) -> usize {
        self.walkers
    }

    /// The deterministic RNG seed for walker `i`'s private stream.
    pub fn walker_seed(&self, i: usize) -> u64 {
        stream_seed(self.seed, i as u64)
    }

    /// Run all walkers to their step cap (or until a shared budget refuses
    /// further queries), then merge the per-walker estimates.
    ///
    /// `make_walker(i, backend)` builds walker `i` (choose spread-out start
    /// nodes for disconnected or clustered graphs), instantiating
    /// history-aware walkers on `backend` — the runner's configured
    /// [`HistoryBackend`], threaded through so a single knob ablates the
    /// whole fleet; `value(v)` is the quantity being estimated at node `v`.
    /// Each walker thread pushes `(value(v), degree(v))` into its own
    /// [`RatioEstimator`] — degrees come free via
    /// [`OsnClient::peek_degree`] — and the estimators are merged with
    /// [`RatioEstimator::merge`] in walker-index order after the join.
    ///
    /// # Panics
    /// Propagates a panic from any walker thread after all threads joined.
    pub fn run<C, W, F>(&self, client: &C, make_walker: W, value: F) -> MultiWalkReport
    where
        C: OsnClient + Clone + Send,
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send> + Sync,
        F: Fn(NodeId) -> f64 + Sync,
    {
        let max_steps = self.max_steps_per_walker;
        let backend = self.backend;
        let (per_walker, estimate) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.walkers)
                .map(|i| {
                    let mut client = client.clone();
                    let make_walker = &make_walker;
                    let value = &value;
                    let rng_seed = self.walker_seed(i);
                    scope.spawn(move || {
                        let mut walker = make_walker(i, backend);
                        let mut rng = ChaCha12Rng::seed_from_u64(rng_seed);
                        let mut trace = Vec::new();
                        let mut est = RatioEstimator::new();
                        for _ in 0..max_steps {
                            match walker.step(&mut client, &mut rng) {
                                Ok(v) => {
                                    est.push(value(v), client.peek_degree(v));
                                    trace.push(v);
                                }
                                Err(_) => break,
                            }
                        }
                        (trace, est)
                    })
                })
                .collect();
            // Join in walker-index order: the merge order (and therefore the
            // merged floating-point sums) never depends on which thread
            // finished first.
            let mut per_walker = Vec::with_capacity(self.walkers);
            let mut merged = RatioEstimator::new();
            for handle in handles {
                let (trace, est) = handle.join().expect("walker thread panicked");
                merged.merge(&est);
                per_walker.push(trace);
            }
            (per_walker, merged)
        });
        MultiWalkReport {
            trace: MultiWalkTrace {
                per_walker,
                stats: client.stats(),
            },
            estimate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walkers::{Cnrw, Srw};
    use osn_client::{BudgetedClient, SimulatedOsn};
    use osn_graph::generators::barbell;

    fn walkers(k: usize) -> Vec<Box<dyn RandomWalk + Send>> {
        (0..k)
            .map(|i| {
                if i % 2 == 0 {
                    Box::new(Srw::new(NodeId(i as u32))) as Box<dyn RandomWalk + Send>
                } else {
                    Box::new(Cnrw::new(NodeId(i as u32))) as Box<dyn RandomWalk + Send>
                }
            })
            .collect()
    }

    #[test]
    fn walkers_share_cache_and_budget() {
        let g = barbell(8, 8).unwrap();
        let n = g.node_count();
        let client = SimulatedOsn::from_graph(g);
        let mut client = BudgetedClient::new(client, 10, n);
        let mut ws = walkers(4);
        let trace = MultiWalkSession::new(500, 1).run(&mut ws, &mut client);
        assert!(trace.stats.unique <= 10);
        assert_eq!(trace.per_walker.len(), 4);
        // Pooling works.
        assert_eq!(trace.pooled().count(), trace.total_steps());
    }

    #[test]
    fn chains_feed_diagnostics_shape() {
        let g = barbell(6, 6).unwrap();
        let mut client = SimulatedOsn::from_graph(g);
        let mut ws = walkers(3);
        let trace = MultiWalkSession::new(200, 2).run(&mut ws, &mut client);
        let chains = trace.chains(|v| v.index() as f64);
        assert_eq!(chains.len(), 3);
        assert!(chains.iter().all(|c| c.len() == 200));
    }

    #[test]
    fn more_walkers_cover_more_nodes_per_budget() {
        let g = barbell(30, 30).unwrap();
        let n = g.node_count();
        let coverage = |k: usize| {
            let client = SimulatedOsn::from_graph(g.clone());
            let mut client = BudgetedClient::new(client, 25, n);
            let mut ws: Vec<Box<dyn RandomWalk + Send>> = (0..k)
                .map(|i| {
                    // Spread starts across both bells.
                    let start = NodeId(((i * 17) % n) as u32);
                    Box::new(Cnrw::new(start)) as Box<dyn RandomWalk + Send>
                })
                .collect();
            let trace = MultiWalkSession::new(5_000, 3).run(&mut ws, &mut client);
            let mut seen: std::collections::HashSet<NodeId> = trace.pooled().collect();
            for w in &trace.per_walker {
                seen.extend(w.iter().copied());
            }
            seen.len()
        };
        // With starts in both bells, several walkers reach nodes a single
        // trapped walker cannot within the same unique-query budget.
        assert!(coverage(4) >= coverage(1));
    }

    use osn_client::SharedOsn;

    fn shared_client(stripes: usize) -> SharedOsn {
        let g = barbell(10, 10).unwrap();
        SharedOsn::with_stripes(SimulatedOsn::from_graph(g), stripes)
    }

    #[test]
    fn runner_traces_are_deterministic_across_runs() {
        let run = || {
            let client = shared_client(8);
            MultiWalkRunner::new(4, 300, 42)
                .run(
                    &client,
                    |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 5), backend)),
                    |v| v.index() as f64,
                )
                .trace
                .per_walker
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn runner_matches_serial_replay_bit_identically() {
        // Each walker thread must produce exactly the trace a serial run
        // with the same derived RNG stream produces — thread scheduling and
        // cache sharing cannot perturb trajectories (only accounting).
        let runner = MultiWalkRunner::new(3, 250, 7);
        let client = shared_client(16);
        let report = runner.run(
            &client,
            |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 3), backend)),
            |v| v.index() as f64,
        );
        for i in 0..3 {
            let mut serial_client = shared_client(1);
            let mut walker = Cnrw::new(NodeId(i as u32 * 3));
            let mut rng = ChaCha12Rng::seed_from_u64(runner.walker_seed(i));
            let mut serial = Vec::new();
            for _ in 0..250 {
                serial.push(walker.step(&mut serial_client, &mut rng).unwrap());
            }
            assert_eq!(report.trace.per_walker[i], serial, "walker {i}");
        }
    }

    #[test]
    fn runner_merges_estimates_in_index_order() {
        // The merged estimator must equal merging per-walker estimators by
        // hand in walker order (bit-identical f64 accumulation).
        let client = shared_client(8);
        let runner = MultiWalkRunner::new(4, 200, 9);
        let degree_of = {
            let g = client.network().graph.clone();
            move |v: NodeId| g.degree(v)
        };
        let report = runner.run(
            &client,
            |i, _| Box::new(Srw::new(NodeId(i as u32))),
            |v| v.index() as f64,
        );
        let mut by_hand = RatioEstimator::new();
        for trace in &report.trace.per_walker {
            let mut one = RatioEstimator::new();
            for &v in trace {
                one.push(v.index() as f64, degree_of(v));
            }
            by_hand.merge(&one);
        }
        assert_eq!(report.estimate.count(), by_hand.count());
        assert_eq!(report.estimate.mean(), by_hand.mean());
    }

    #[test]
    fn runner_respects_shared_budget() {
        let g = barbell(12, 12).unwrap();
        let client = SharedOsn::configured(SimulatedOsn::from_graph(g), 8, Some(15));
        let report = MultiWalkRunner::new(4, 10_000, 1).run(
            &client,
            |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 7), backend)),
            |v| v.index() as f64,
        );
        assert!(report.trace.stats.unique <= 15);
        assert_eq!(client.remaining_budget(), Some(0));
    }

    #[test]
    fn single_walker_runner_equals_shared_budgeted_serial_run() {
        // K = 1 closes the loop: the parallel runner on a 64-stripe cache is
        // bit-identical to the same walk driven serially against the old
        // single-lock configuration, budget cut-off included.
        let g = barbell(9, 9).unwrap();
        let budget = 12;
        let runner = MultiWalkRunner::new(1, 5_000, 33);

        let striped = SharedOsn::configured(SimulatedOsn::from_graph(g.clone()), 64, Some(budget));
        let parallel = runner.run(
            &striped,
            |_, b| Box::new(Cnrw::with_backend(NodeId(0), b)),
            |_| 1.0,
        );

        let single = SharedOsn::configured(SimulatedOsn::from_graph(g), 1, Some(budget));
        let mut client = single.clone();
        let mut walker = Cnrw::new(NodeId(0));
        let mut rng = ChaCha12Rng::seed_from_u64(runner.walker_seed(0));
        let mut serial = Vec::new();
        for _ in 0..5_000 {
            match walker.step(&mut client, &mut rng) {
                Ok(v) => serial.push(v),
                Err(_) => break,
            }
        }
        assert_eq!(parallel.trace.per_walker[0], serial);
        assert_eq!(parallel.trace.stats, single.global_stats());
    }
}
