//! Multiple cooperating walkers over one shared interface.
//!
//! The paper's related work cites Alon et al., *"Many random walks are
//! faster than one"* \[3\]. In the restricted-access setting the idea has a
//! twist that makes it even more attractive: walkers sharing one crawler
//! share its **cache**, so a node queried by any walker is free for all
//! others — `k` walkers cover ground faster *without* multiplying the
//! unique-query bill.
//!
//! Three drivers implement the pattern:
//!
//! * [`MultiWalkSession`] steps `k` walkers **round-robin on one thread**
//!   against one client until the shared budget runs out, interleaving their
//!   traces — fully deterministic, ideal for experiments that must replay
//!   bit-identically.
//! * [`MultiWalkRunner`] runs `k` walkers on **`k` scoped OS threads**
//!   against cloned handles of a thread-safe client (one
//!   [`osn_client::SharedOsn`] handle per walker). Each walker owns a
//!   deterministic RNG stream derived from the run seed by SplitMix64, so
//!   per-walker traces are independent of thread scheduling; per-walker
//!   [`osn_estimate::RatioEstimator`]s are merged in walker-index order, so
//!   the pooled estimate is bit-stable too (absent a shared budget, which
//!   makes cut-off timing scheduling-dependent by nature).
//! * [`CoalescingDispatcher`] (also reachable as
//!   [`MultiWalkRunner::run_batched`]) drives `k` walkers against a
//!   **batch endpoint** ([`osn_client::BatchOsnClient`]): each round it
//!   parks every walker's pending neighbor request in a queue, **dedups**
//!   the node ids across walkers, fans the unique ids out in batches of at
//!   most `B` within the endpoint's in-flight window, and only then lets
//!   each walker step — from its own RNG stream, so per-walker traces are
//!   bit-identical to the serial replay while the interface sees each node
//!   at most once. This is the paper's unique-query cost model pushed down
//!   into the I/O layer: `k` walkers share one request stream the way they
//!   already share one cache.
//!
//! Because the walkers are independent chains with the same stationary
//! distribution, the pooled samples feed the usual estimators unchanged, and
//! multi-chain diagnostics (`osn_estimate::diagnostics::split_rhat`) become
//! applicable.

use std::collections::VecDeque;

use osn_client::batch::{BatchNodeError, BatchOsnClient};
use osn_client::{BudgetExhausted, OsnClient, QueryStats};
use osn_estimate::RatioEstimator;
use osn_graph::NodeId;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

use crate::circulation::HistoryBackend;
use crate::fnv::{FnvHashMap, FnvHashSet};
use crate::walker::RandomWalk;

/// Outcome of a multi-walker run.
#[derive(Clone, Debug)]
pub struct MultiWalkTrace {
    /// Per-walker visit sequences (one entry per performed step).
    pub per_walker: Vec<Vec<NodeId>>,
    /// Final client statistics (shared across walkers).
    pub stats: osn_client::QueryStats,
}

impl MultiWalkTrace {
    /// Total steps across all walkers.
    pub fn total_steps(&self) -> usize {
        self.per_walker.iter().map(Vec::len).sum()
    }

    /// Iterator over all samples, pooled across walkers.
    pub fn pooled(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.per_walker.iter().flatten().copied()
    }

    /// Per-walker traces as `f64` sequences of `f(node)` — the shape the
    /// multi-chain diagnostics expect.
    pub fn chains<F: Fn(NodeId) -> f64>(&self, f: F) -> Vec<Vec<f64>> {
        self.per_walker
            .iter()
            .map(|c| c.iter().map(|&v| f(v)).collect())
            .collect()
    }
}

/// Drives several walkers round-robin against one shared client.
pub struct MultiWalkSession {
    max_steps_per_walker: usize,
    seed: u64,
}

impl MultiWalkSession {
    /// Each walker performs at most `max_steps_per_walker` transitions.
    pub fn new(max_steps_per_walker: usize, seed: u64) -> Self {
        MultiWalkSession {
            max_steps_per_walker,
            seed,
        }
    }

    /// Run all walkers until each hits its step cap or the shared budget
    /// refuses further queries. Round-robin interleaving keeps the cache
    /// shared fairly; a walker that hits the budget stops while others may
    /// continue on cached territory.
    pub fn run<C: OsnClient>(
        &self,
        walkers: &mut [Box<dyn RandomWalk + Send>],
        client: &mut C,
    ) -> MultiWalkTrace {
        let mut rngs: Vec<ChaCha12Rng> = (0..walkers.len())
            .map(|i| ChaCha12Rng::seed_from_u64(self.seed.wrapping_add(i as u64 * 0x9e37)))
            .collect();
        let mut traces: Vec<Vec<NodeId>> = vec![Vec::new(); walkers.len()];
        let mut live: Vec<bool> = vec![true; walkers.len()];
        for _ in 0..self.max_steps_per_walker {
            let mut any = false;
            for (i, walker) in walkers.iter_mut().enumerate() {
                if !live[i] {
                    continue;
                }
                match walker.step(&mut *client, &mut rngs[i]) {
                    Ok(v) => {
                        traces[i].push(v);
                        any = true;
                    }
                    Err(_) => live[i] = false,
                }
            }
            if !any {
                break;
            }
        }
        MultiWalkTrace {
            per_walker: traces,
            stats: client.stats(),
        }
    }
}

/// SplitMix64-derived RNG seed for stream `walker` of run `seed` —
/// well-spread and stable across platforms and thread schedules. Delegates
/// to [`osn_graph::mix::splitmix64_stream`], the workspace's single seed
/// mixer: walker streams here, trial seeds in `osn-experiments`, jitter
/// streams in `osn-client`.
pub fn stream_seed(seed: u64, walker: u64) -> u64 {
    osn_graph::mix::splitmix64_stream(seed, walker)
}

/// Outcome of a [`MultiWalkRunner`] run: the per-walker traces plus the
/// merged estimate.
#[derive(Clone, Debug)]
pub struct MultiWalkReport {
    /// Per-walker visit sequences and final shared-client statistics.
    pub trace: MultiWalkTrace,
    /// The per-walker ratio estimators merged in walker-index order.
    pub estimate: RatioEstimator,
}

/// Schedules `k` seeded walkers over `k` scoped OS threads against cloned
/// handles of one thread-safe client.
///
/// Built for [`osn_client::SharedOsn`]: every clone shares the snapshot,
/// the lock-striped cache, the global accounting, and (optionally) an atomic
/// unique-query budget, so `k` walkers cover ground concurrently without
/// multiplying the unique-query bill. Any `OsnClient + Clone + Send` works;
/// for clients whose clones do *not* share state, the report's `stats` field
/// only reflects the calling handle.
///
/// ## Determinism
///
/// Walker `i` draws from its own SplitMix64-derived RNG stream, and neighbor
/// lists come from an immutable snapshot, so without a shared budget each
/// per-walker trace is **bit-identical** to running that walker alone with
/// the same derived seed — thread scheduling cannot perturb results. With a
/// shared budget, *which* walker gets the last queries depends on
/// scheduling; totals remain exact.
#[derive(Clone, Copy, Debug)]
pub struct MultiWalkRunner {
    walkers: usize,
    max_steps_per_walker: usize,
    seed: u64,
    backend: HistoryBackend,
}

impl MultiWalkRunner {
    /// Run `walkers` concurrent walkers, each performing at most
    /// `max_steps_per_walker` transitions, with RNG streams derived from
    /// `seed`. History-aware walkers use the default (arena) backend; see
    /// [`with_backend`](Self::with_backend).
    pub fn new(walkers: usize, max_steps_per_walker: usize, seed: u64) -> Self {
        MultiWalkRunner {
            walkers: walkers.max(1),
            max_steps_per_walker,
            seed,
            backend: HistoryBackend::default(),
        }
    }

    /// Choose the history backend handed to the walker factory (the
    /// ablation knob of the backend benches).
    #[must_use]
    pub fn with_backend(mut self, backend: HistoryBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The history backend handed to the walker factory.
    pub fn backend(&self) -> HistoryBackend {
        self.backend
    }

    /// Number of walker threads this runner will spawn.
    pub fn walker_count(&self) -> usize {
        self.walkers
    }

    /// The deterministic RNG seed for walker `i`'s private stream.
    pub fn walker_seed(&self, i: usize) -> u64 {
        stream_seed(self.seed, i as u64)
    }

    /// Run all walkers to their step cap (or until a shared budget refuses
    /// further queries), then merge the per-walker estimates.
    ///
    /// `make_walker(i, backend)` builds walker `i` (choose spread-out start
    /// nodes for disconnected or clustered graphs), instantiating
    /// history-aware walkers on `backend` — the runner's configured
    /// [`HistoryBackend`], threaded through so a single knob ablates the
    /// whole fleet; `value(v)` is the quantity being estimated at node `v`.
    /// Each walker thread pushes `(value(v), degree(v))` into its own
    /// [`RatioEstimator`] — degrees come free via
    /// [`OsnClient::peek_degree`] — and the estimators are merged with
    /// [`RatioEstimator::merge`] in walker-index order after the join.
    ///
    /// # Panics
    /// Propagates a panic from any walker thread after all threads joined.
    pub fn run<C, W, F>(&self, client: &C, make_walker: W, value: F) -> MultiWalkReport
    where
        C: OsnClient + Clone + Send,
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send> + Sync,
        F: Fn(NodeId) -> f64 + Sync,
    {
        let max_steps = self.max_steps_per_walker;
        let backend = self.backend;
        let (per_walker, estimate) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.walkers)
                .map(|i| {
                    let mut client = client.clone();
                    let make_walker = &make_walker;
                    let value = &value;
                    let rng_seed = self.walker_seed(i);
                    scope.spawn(move || {
                        let mut walker = make_walker(i, backend);
                        let mut rng = ChaCha12Rng::seed_from_u64(rng_seed);
                        let mut trace = Vec::new();
                        let mut est = RatioEstimator::new();
                        for _ in 0..max_steps {
                            match walker.step(&mut client, &mut rng) {
                                Ok(v) => {
                                    est.push(value(v), client.peek_degree(v));
                                    trace.push(v);
                                }
                                Err(_) => break,
                            }
                        }
                        (trace, est)
                    })
                })
                .collect();
            // Join in walker-index order: the merge order (and therefore the
            // merged floating-point sums) never depends on which thread
            // finished first.
            let mut per_walker = Vec::with_capacity(self.walkers);
            let mut merged = RatioEstimator::new();
            for handle in handles {
                let (trace, est) = handle.join().expect("walker thread panicked");
                merged.merge(&est);
                per_walker.push(trace);
            }
            (per_walker, merged)
        });
        MultiWalkReport {
            trace: MultiWalkTrace {
                per_walker,
                stats: client.stats(),
            },
            estimate,
        }
    }
}

/// Dispatcher-level cap on resubmissions of a node whose requests keep
/// coming back permanently dropped. Past it the node is abandoned and the
/// walkers waiting on it terminate (with a budget-style error) instead of
/// spinning forever against a dead interface.
pub const DEFAULT_NODE_ATTEMPT_CAP: u32 = 32;

/// Outcome of a batched ([`CoalescingDispatcher`]) run.
#[derive(Clone, Debug)]
pub struct BatchDispatchReport {
    /// Per-walker visit sequences plus **walker-side** accounting: `issued`
    /// counts every neighbor query a walker made, `unique`/`cache_hits`
    /// split them by first-vs-repeat across all walkers — the same shape a
    /// serial run's client reports, so cross-mode comparisons are direct.
    pub trace: MultiWalkTrace,
    /// Per-walker ratio estimators merged in walker-index order.
    pub estimate: RatioEstimator,
    /// Why each walker stopped, in walker order ([`crate::WalkStop`]).
    pub stops: Vec<crate::WalkStop>,
    /// Dispatch rounds executed (each round: gather → dedup → fetch → step).
    pub rounds: usize,
    /// **Interface-side** accounting from the batch client: one entry per
    /// id delivered by the endpoint. `interface.unique` is the charged cost
    /// and always equals `trace.stats.unique` when the client started
    /// fresh; `interface.issued` is smaller than `trace.stats.issued`
    /// because walker revisits are absorbed by the dispatcher cache.
    pub interface: QueryStats,
    /// Nodes the budget refused (each terminated the walkers parked on it).
    pub refused_nodes: usize,
    /// Nodes abandoned after [`CoalescingDispatcher::node_attempt_cap`]
    /// permanently dropped requests.
    pub abandoned_nodes: usize,
}

/// Drives `k` walkers against a batch endpoint through a coalescing queue
/// (see the module docs).
///
/// Each **round**:
///
/// 1. *gather* — every live walker parks the node it needs next (its
///    current position: each walker in this crate issues exactly one
///    `neighbors(current)` query per step);
/// 2. *dedup* — parked ids are deduplicated, in walker order, against each
///    other and against the dispatcher's cache of already-fetched lists;
/// 3. *charge* — the unique ids are chunked into batches of at most `B`
///    and submitted within the endpoint's in-flight window; drops are
///    resubmitted (bounded by [`Self::node_attempt_cap`]), budget refusals
///    are recorded per node;
/// 4. *fan-out* — each walker steps against a cache-backed client view,
///    consuming **its own RNG stream**, so trajectories are bit-identical
///    to serial replay no matter how requests were batched.
///
/// The dispatcher is single-threaded and fully deterministic (batch
/// composition included), which is what lets the golden-trace and
/// cross-mode equivalence suites pin its behavior.
#[derive(Clone, Copy, Debug)]
pub struct CoalescingDispatcher {
    max_steps_per_walker: usize,
    node_attempt_cap: u32,
}

impl CoalescingDispatcher {
    /// Each walker performs at most `max_steps_per_walker` transitions.
    pub fn new(max_steps_per_walker: usize) -> Self {
        CoalescingDispatcher {
            max_steps_per_walker,
            node_attempt_cap: DEFAULT_NODE_ATTEMPT_CAP,
        }
    }

    /// Override the resubmission cap for permanently dropped nodes
    /// (clamped to at least 1).
    #[must_use]
    pub fn with_node_attempt_cap(mut self, cap: u32) -> Self {
        self.node_attempt_cap = cap.max(1);
        self
    }

    /// Resubmissions allowed per node before it is abandoned.
    pub fn node_attempt_cap(&self) -> u32 {
        self.node_attempt_cap
    }

    /// Fetch every id in `pending` through the batch endpoint: fan out in
    /// window-respecting batches, resubmit drops (bounded per node), and
    /// record deliveries into the state's cache / refusals into its
    /// refused-set.
    fn fetch_all<B: BatchOsnClient>(
        &self,
        client: &mut B,
        mut pending: VecDeque<NodeId>,
        state: &mut DispatchState,
    ) {
        let limits = client.limits();
        let mut batch: Vec<NodeId> = Vec::with_capacity(limits.max_batch_size);
        while !pending.is_empty() || client.in_flight() > 0 {
            // Fill the in-flight window with max-size batches.
            while client.in_flight() < limits.max_in_flight && !pending.is_empty() {
                batch.clear();
                while batch.len() < limits.max_batch_size {
                    let Some(u) = pending.pop_front() else { break };
                    batch.push(u);
                }
                client.submit(&batch).expect("window and size checked");
            }
            let Some(outcome) = client.poll() else { break };
            for (u, result) in outcome.per_node {
                match result {
                    Ok(neighbors) => {
                        state.cache.insert(u.0, neighbors);
                    }
                    Err(BatchNodeError::Budget(e)) => {
                        // Remember the budget in force so walker-facing
                        // errors report the same value a serial
                        // `BudgetedClient` would.
                        state.budget_in_force = Some(e.budget);
                        if state.refused.insert(u.0) {
                            state.refused_nodes += 1;
                        }
                    }
                    Err(BatchNodeError::Dropped) => {
                        let attempts = state.node_attempts.entry(u.0).or_insert(0);
                        *attempts += 1;
                        if *attempts >= self.node_attempt_cap {
                            // Dead interface for this node: give up so the
                            // walkers parked on it terminate cleanly.
                            if state.refused.insert(u.0) {
                                state.abandoned_nodes += 1;
                            }
                        } else {
                            pending.push_back(u);
                        }
                    }
                }
            }
        }
    }

    /// Run all walkers to their step cap (or until the budget/interface
    /// refuses the node they are parked on), merging per-walker estimates
    /// in walker-index order. `rngs[i]` is walker `i`'s private stream;
    /// `value(v)` is the quantity being estimated at node `v`.
    ///
    /// # Panics
    /// If `walkers` and `rngs` lengths differ.
    pub fn run<B, R, F>(
        &self,
        client: &mut B,
        walkers: &mut [Box<dyn RandomWalk + Send>],
        rngs: &mut [R],
        value: F,
    ) -> BatchDispatchReport
    where
        B: BatchOsnClient,
        R: RngCore,
        F: Fn(NodeId) -> f64,
    {
        assert_eq!(walkers.len(), rngs.len(), "one RNG stream per walker");
        let k = walkers.len();
        let interface_before = client.stats();
        let mut state = DispatchState::default();
        let mut traces: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        let mut estimators: Vec<RatioEstimator> = (0..k).map(|_| RatioEstimator::new()).collect();
        let mut stops: Vec<crate::WalkStop> = vec![crate::WalkStop::MaxSteps; k];
        let mut live: Vec<bool> = vec![true; k];
        let mut rounds = 0usize;

        loop {
            let active: Vec<usize> = (0..k)
                .filter(|&i| live[i] && traces[i].len() < self.max_steps_per_walker)
                .collect();
            if active.is_empty() {
                break;
            }
            rounds += 1;
            // Gather + dedup: the node each active walker is parked on, in
            // walker order, minus ids already cached or refused.
            let mut pending: VecDeque<NodeId> = VecDeque::new();
            let mut queued: FnvHashSet<u32> = FnvHashSet::default();
            for &i in &active {
                let u = walkers[i].current();
                if !state.cache.contains_key(&u.0)
                    && !state.refused.contains(&u.0)
                    && queued.insert(u.0)
                {
                    pending.push_back(u);
                }
            }
            // Charge: fan the deduped ids out through the batch endpoint.
            self.fetch_all(client, pending, &mut state);
            // Fan-out: step every active walker from its own RNG stream.
            for &i in &active {
                if state.refused.contains(&walkers[i].current().0) {
                    // The node this walker needs was refused (budget) or
                    // abandoned (dead interface): terminate it, exactly as
                    // a serial walk ends on its first refused query.
                    stops[i] = crate::WalkStop::BudgetExhausted;
                    live[i] = false;
                    continue;
                }
                let mut view = PrefetchedClient {
                    client: &mut *client,
                    dispatcher: self,
                    state: &mut state,
                };
                match walkers[i].step(&mut view, &mut rngs[i]) {
                    Ok(v) => {
                        estimators[i].push(value(v), client.peek_degree(v));
                        traces[i].push(v);
                    }
                    Err(_) => {
                        stops[i] = crate::WalkStop::BudgetExhausted;
                        live[i] = false;
                    }
                }
            }
        }

        let mut merged = RatioEstimator::new();
        for est in &estimators {
            merged.merge(est);
        }
        let mut interface = client.stats();
        interface.issued -= interface_before.issued;
        interface.unique -= interface_before.unique;
        interface.cache_hits -= interface_before.cache_hits;
        BatchDispatchReport {
            trace: MultiWalkTrace {
                per_walker: traces,
                stats: state.stats,
            },
            estimate: merged,
            stops,
            rounds,
            interface,
            refused_nodes: state.refused_nodes,
            abandoned_nodes: state.abandoned_nodes,
        }
    }
}

/// Mutable bookkeeping shared by the dispatcher loop and the per-walker
/// [`PrefetchedClient`] views of one run.
#[derive(Default)]
struct DispatchState {
    /// Neighbor lists fetched so far (the dispatcher's shared cache).
    cache: FnvHashMap<u32, Vec<NodeId>>,
    /// Nodes the run will never deliver: budget-refused or abandoned.
    refused: FnvHashSet<u32>,
    /// Dispatcher-level resubmission counts for dropped nodes.
    node_attempts: FnvHashMap<u32, u32>,
    /// Nodes ever queried by any walker (walker-side unique/hit split).
    seen: FnvHashSet<u32>,
    /// Walker-side accounting (serial-shaped `issued`/`unique`/`hits`).
    stats: QueryStats,
    /// Distinct budget-refused nodes.
    refused_nodes: usize,
    /// Distinct nodes abandoned after the resubmission cap.
    abandoned_nodes: usize,
    /// The budget limit observed in refusals, so walker-facing errors
    /// report the same value a serial `BudgetedClient` would.
    budget_in_force: Option<u64>,
}

/// The per-step client view the dispatcher hands each walker: neighbor
/// lists come from the dispatcher cache (walker-side accounting recorded),
/// metadata peeks pass through to the endpoint for free. A query for a node
/// that was *not* prefetched (no walker in this crate issues one, but the
/// [`RandomWalk`] trait allows it) falls back to an on-demand synchronous
/// batch of one, with the same refusal/abandon bookkeeping.
struct PrefetchedClient<'a, B: BatchOsnClient> {
    client: &'a mut B,
    dispatcher: &'a CoalescingDispatcher,
    state: &'a mut DispatchState,
}

impl<B: BatchOsnClient> OsnClient for PrefetchedClient<'_, B> {
    fn neighbors(&mut self, u: NodeId) -> Result<&[NodeId], BudgetExhausted> {
        if !self.state.cache.contains_key(&u.0) && !self.state.refused.contains(&u.0) {
            // Off-protocol query: fetch on demand through the endpoint.
            self.dispatcher
                .fetch_all(self.client, VecDeque::from([u]), self.state);
        }
        match self.state.cache.get(&u.0) {
            Some(neighbors) => {
                self.state.stats.record(self.state.seen.insert(u.0));
                Ok(neighbors)
            }
            // Refused: report the budget a serial `BudgetedClient` would
            // name. Abandoned nodes on an unbudgeted client have no honest
            // value for the trait's error type; fall back to the remaining
            // budget (0 for "the interface gave this up").
            None => Err(BudgetExhausted {
                budget: self
                    .state
                    .budget_in_force
                    .or(self.client.remaining_budget())
                    .unwrap_or(0),
            }),
        }
    }

    fn peek_degree(&self, u: NodeId) -> usize {
        self.client.peek_degree(u)
    }

    fn peek_attribute(&self, u: NodeId, name: &str) -> Option<f64> {
        self.client.peek_attribute(u, name)
    }

    fn stats(&self) -> QueryStats {
        self.state.stats
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.client.remaining_budget()
    }
}

impl MultiWalkRunner {
    /// Run the same fleet through the batched path: one
    /// [`CoalescingDispatcher`] round-trip per step wave instead of one OS
    /// thread per walker. Walker `i` consumes the identical SplitMix64 RNG
    /// stream [`Self::walker_seed`] uses in the threaded mode, so per-walker
    /// traces are **bit-identical across the two modes** (absent a budget);
    /// what changes is the interface traffic — deduplicated, batched,
    /// rate-limit-aware.
    pub fn run_batched<B, W, F>(
        &self,
        client: &mut B,
        make_walker: W,
        value: F,
    ) -> BatchDispatchReport
    where
        B: BatchOsnClient,
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
        F: Fn(NodeId) -> f64,
    {
        let mut walkers: Vec<Box<dyn RandomWalk + Send>> = (0..self.walkers)
            .map(|i| make_walker(i, self.backend))
            .collect();
        let mut rngs: Vec<ChaCha12Rng> = (0..self.walkers)
            .map(|i| ChaCha12Rng::seed_from_u64(self.walker_seed(i)))
            .collect();
        CoalescingDispatcher::new(self.max_steps_per_walker).run(
            client,
            &mut walkers,
            &mut rngs,
            value,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walkers::{Cnrw, Srw};
    use osn_client::{BudgetedClient, SimulatedOsn};
    use osn_graph::generators::barbell;

    fn walkers(k: usize) -> Vec<Box<dyn RandomWalk + Send>> {
        (0..k)
            .map(|i| {
                if i % 2 == 0 {
                    Box::new(Srw::new(NodeId(i as u32))) as Box<dyn RandomWalk + Send>
                } else {
                    Box::new(Cnrw::new(NodeId(i as u32))) as Box<dyn RandomWalk + Send>
                }
            })
            .collect()
    }

    #[test]
    fn walkers_share_cache_and_budget() {
        let g = barbell(8, 8).unwrap();
        let n = g.node_count();
        let client = SimulatedOsn::from_graph(g);
        let mut client = BudgetedClient::new(client, 10, n);
        let mut ws = walkers(4);
        let trace = MultiWalkSession::new(500, 1).run(&mut ws, &mut client);
        assert!(trace.stats.unique <= 10);
        assert_eq!(trace.per_walker.len(), 4);
        // Pooling works.
        assert_eq!(trace.pooled().count(), trace.total_steps());
    }

    #[test]
    fn chains_feed_diagnostics_shape() {
        let g = barbell(6, 6).unwrap();
        let mut client = SimulatedOsn::from_graph(g);
        let mut ws = walkers(3);
        let trace = MultiWalkSession::new(200, 2).run(&mut ws, &mut client);
        let chains = trace.chains(|v| v.index() as f64);
        assert_eq!(chains.len(), 3);
        assert!(chains.iter().all(|c| c.len() == 200));
    }

    #[test]
    fn more_walkers_cover_more_nodes_per_budget() {
        let g = barbell(30, 30).unwrap();
        let n = g.node_count();
        let coverage = |k: usize| {
            let client = SimulatedOsn::from_graph(g.clone());
            let mut client = BudgetedClient::new(client, 25, n);
            let mut ws: Vec<Box<dyn RandomWalk + Send>> = (0..k)
                .map(|i| {
                    // Spread starts across both bells.
                    let start = NodeId(((i * 17) % n) as u32);
                    Box::new(Cnrw::new(start)) as Box<dyn RandomWalk + Send>
                })
                .collect();
            let trace = MultiWalkSession::new(5_000, 3).run(&mut ws, &mut client);
            let mut seen: std::collections::HashSet<NodeId> = trace.pooled().collect();
            for w in &trace.per_walker {
                seen.extend(w.iter().copied());
            }
            seen.len()
        };
        // With starts in both bells, several walkers reach nodes a single
        // trapped walker cannot within the same unique-query budget.
        assert!(coverage(4) >= coverage(1));
    }

    use osn_client::SharedOsn;

    fn shared_client(stripes: usize) -> SharedOsn {
        let g = barbell(10, 10).unwrap();
        SharedOsn::with_stripes(SimulatedOsn::from_graph(g), stripes)
    }

    #[test]
    fn runner_traces_are_deterministic_across_runs() {
        let run = || {
            let client = shared_client(8);
            MultiWalkRunner::new(4, 300, 42)
                .run(
                    &client,
                    |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 5), backend)),
                    |v| v.index() as f64,
                )
                .trace
                .per_walker
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn runner_matches_serial_replay_bit_identically() {
        // Each walker thread must produce exactly the trace a serial run
        // with the same derived RNG stream produces — thread scheduling and
        // cache sharing cannot perturb trajectories (only accounting).
        let runner = MultiWalkRunner::new(3, 250, 7);
        let client = shared_client(16);
        let report = runner.run(
            &client,
            |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 3), backend)),
            |v| v.index() as f64,
        );
        for i in 0..3 {
            let mut serial_client = shared_client(1);
            let mut walker = Cnrw::new(NodeId(i as u32 * 3));
            let mut rng = ChaCha12Rng::seed_from_u64(runner.walker_seed(i));
            let mut serial = Vec::new();
            for _ in 0..250 {
                serial.push(walker.step(&mut serial_client, &mut rng).unwrap());
            }
            assert_eq!(report.trace.per_walker[i], serial, "walker {i}");
        }
    }

    #[test]
    fn runner_merges_estimates_in_index_order() {
        // The merged estimator must equal merging per-walker estimators by
        // hand in walker order (bit-identical f64 accumulation).
        let client = shared_client(8);
        let runner = MultiWalkRunner::new(4, 200, 9);
        let degree_of = {
            let g = client.network().graph.clone();
            move |v: NodeId| g.degree(v)
        };
        let report = runner.run(
            &client,
            |i, _| Box::new(Srw::new(NodeId(i as u32))),
            |v| v.index() as f64,
        );
        let mut by_hand = RatioEstimator::new();
        for trace in &report.trace.per_walker {
            let mut one = RatioEstimator::new();
            for &v in trace {
                one.push(v.index() as f64, degree_of(v));
            }
            by_hand.merge(&one);
        }
        assert_eq!(report.estimate.count(), by_hand.count());
        assert_eq!(report.estimate.mean(), by_hand.mean());
    }

    #[test]
    fn runner_respects_shared_budget() {
        let g = barbell(12, 12).unwrap();
        let client = SharedOsn::configured(SimulatedOsn::from_graph(g), 8, Some(15));
        let report = MultiWalkRunner::new(4, 10_000, 1).run(
            &client,
            |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 7), backend)),
            |v| v.index() as f64,
        );
        assert!(report.trace.stats.unique <= 15);
        assert_eq!(client.remaining_budget(), Some(0));
    }

    use osn_client::batch::{BatchConfig, SimulatedBatchOsn};

    fn batch_client(config: BatchConfig) -> SimulatedBatchOsn {
        let g = barbell(10, 10).unwrap();
        SimulatedBatchOsn::new(SimulatedOsn::from_graph(g), config)
    }

    #[test]
    fn batched_traces_match_threaded_runner_bit_identically() {
        // The headline cross-mode property: for every batch size the
        // dispatcher replays exactly the trajectories the threaded runner
        // produces — batching only reshapes interface traffic.
        let runner = MultiWalkRunner::new(4, 250, 42);
        let threaded = runner.run(
            &shared_client(8),
            |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 5), backend)),
            |v| v.index() as f64,
        );
        for batch_size in [1usize, 4, 16] {
            let mut client = batch_client(BatchConfig::new(batch_size).with_in_flight(2));
            let report = runner.run_batched(
                &mut client,
                |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 5), backend)),
                |v| v.index() as f64,
            );
            assert_eq!(
                report.trace.per_walker, threaded.trace.per_walker,
                "batch_size={batch_size}"
            );
            assert_eq!(report.estimate.count(), threaded.estimate.count());
            assert_eq!(report.estimate.mean(), threaded.estimate.mean());
            assert!(report.stops.iter().all(|s| *s == crate::WalkStop::MaxSteps));
        }
    }

    #[test]
    fn batched_interface_charges_each_unique_node_once() {
        let mut client = batch_client(BatchConfig::new(4));
        let report = MultiWalkRunner::new(4, 200, 3).run_batched(
            &mut client,
            |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 3), backend)),
            |v| v.index() as f64,
        );
        // Interface-side unique == distinct nodes fetched: every start
        // (fetched for the first step) plus every node a walker departed
        // from (a walker's final position is never fetched).
        let mut distinct: std::collections::HashSet<u32> = (0..4u32).map(|i| i * 3).collect();
        for trace in &report.trace.per_walker {
            distinct.extend(trace[..trace.len() - 1].iter().map(|v| v.0));
        }
        assert_eq!(report.interface.unique, distinct.len() as u64);
        assert_eq!(report.interface.unique, report.trace.stats.unique);
        // Walker-side accounting has serial shape: one issued query per
        // step, revisits as cache hits.
        assert_eq!(report.trace.stats.issued, 4 * 200);
        assert_eq!(
            report.trace.stats.cache_hits,
            report.trace.stats.issued - report.trace.stats.unique
        );
    }

    #[test]
    fn batched_budget_terminates_walkers_cleanly() {
        let g = barbell(12, 12).unwrap();
        let mut client = SimulatedBatchOsn::configured(
            SimulatedOsn::from_graph(g),
            BatchConfig::new(4),
            Some(9),
        );
        let report = MultiWalkRunner::new(4, 10_000, 1).run_batched(
            &mut client,
            |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 7), backend)),
            |v| v.index() as f64,
        );
        assert_eq!(report.interface.unique, 9, "exactly the budget");
        assert_eq!(client.remaining_budget(), Some(0));
        assert!(report.refused_nodes > 0);
        // Every walker terminated (no walker is lost in limbo) and each
        // cut-off is reported as a budget stop.
        assert!(report
            .stops
            .iter()
            .all(|s| *s == crate::WalkStop::BudgetExhausted));
    }

    #[test]
    fn single_walker_runner_equals_shared_budgeted_serial_run() {
        // K = 1 closes the loop: the parallel runner on a 64-stripe cache is
        // bit-identical to the same walk driven serially against the old
        // single-lock configuration, budget cut-off included.
        let g = barbell(9, 9).unwrap();
        let budget = 12;
        let runner = MultiWalkRunner::new(1, 5_000, 33);

        let striped = SharedOsn::configured(SimulatedOsn::from_graph(g.clone()), 64, Some(budget));
        let parallel = runner.run(
            &striped,
            |_, b| Box::new(Cnrw::with_backend(NodeId(0), b)),
            |_| 1.0,
        );

        let single = SharedOsn::configured(SimulatedOsn::from_graph(g), 1, Some(budget));
        let mut client = single.clone();
        let mut walker = Cnrw::new(NodeId(0));
        let mut rng = ChaCha12Rng::seed_from_u64(runner.walker_seed(0));
        let mut serial = Vec::new();
        for _ in 0..5_000 {
            match walker.step(&mut client, &mut rng) {
                Ok(v) => serial.push(v),
                Err(_) => break,
            }
        }
        assert_eq!(parallel.trace.per_walker[0], serial);
        assert_eq!(parallel.trace.stats, single.global_stats());
    }
}
