//! Multiple cooperating walkers over one shared interface.
//!
//! The paper's related work cites Alon et al., *"Many random walks are
//! faster than one"* \[3\]. In the restricted-access setting the idea has a
//! twist that makes it even more attractive: walkers sharing one crawler
//! share its **cache**, so a node queried by any walker is free for all
//! others — `k` walkers cover ground faster *without* multiplying the
//! unique-query bill.
//!
//! Since PR 5 the actual step loops live in **one place**, the unified
//! [`crate::orchestrator`] ([`WalkOrchestrator`]) — this module keeps the
//! established driver entry points as thin, bit-compatible wrappers over
//! it, all running under [`crate::orchestrator::Never`]:
//!
//! * [`MultiWalkSession`] steps `k` walkers **round-robin on one thread**
//!   against one client until the shared budget runs out, interleaving
//!   their traces — the orchestrator's serial driver with this type's
//!   historical per-walker seeds.
//! * [`MultiWalkRunner`] runs `k` walkers on **`k` scoped OS threads**
//!   against cloned handles of a thread-safe client (one
//!   [`osn_client::SharedOsn`] handle per walker) — the orchestrator's
//!   threaded driver. Per-walker traces are independent of thread
//!   scheduling; per-walker [`osn_estimate::RatioEstimator`]s are merged in
//!   walker-index order, so the pooled estimate is bit-stable too (absent a
//!   shared budget, which makes cut-off timing scheduling-dependent by
//!   nature).
//! * [`CoalescingDispatcher`] (also reachable as
//!   [`MultiWalkRunner::run_batched`]) drives `k` walkers against a
//!   **batch endpoint** ([`osn_client::BatchOsnClient`]) — the
//!   orchestrator's coalesced driver: rounds of queue → dedup → charge →
//!   fan-out, per-walker traces bit-identical to the serial replay while
//!   the interface sees each node at most once.
//!
//! New code should prefer [`WalkOrchestrator`] directly: it exposes the
//! same three backends *plus* the [`crate::orchestrator::RestartPolicy`]
//! parameter (work-stealing frontier restarts) these compatibility wrappers
//! pin to `Never`. See `ARCHITECTURE.md` for the migration table.
//!
//! Because the walkers are independent chains with the same stationary
//! distribution, the pooled samples feed the usual estimators unchanged, and
//! multi-chain diagnostics (`osn_estimate::diagnostics::split_rhat`) become
//! applicable.

use osn_client::batch::BatchOsnClient;
use osn_client::{OsnClient, QueryStats};
use osn_estimate::RatioEstimator;
use osn_graph::NodeId;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

use crate::circulation::HistoryBackend;
use crate::orchestrator::{drive_coalesced, drive_round_robin, Never, WalkOrchestrator};
use crate::walker::RandomWalk;

pub use crate::orchestrator::DEFAULT_NODE_ATTEMPT_CAP;

/// Outcome of a multi-walker run.
#[derive(Clone, Debug)]
pub struct MultiWalkTrace {
    /// Per-walker visit sequences (one entry per performed step).
    pub per_walker: Vec<Vec<NodeId>>,
    /// Final client statistics (shared across walkers).
    pub stats: osn_client::QueryStats,
}

impl MultiWalkTrace {
    /// Total steps across all walkers.
    pub fn total_steps(&self) -> usize {
        self.per_walker.iter().map(Vec::len).sum()
    }

    /// Iterator over all samples, pooled across walkers.
    pub fn pooled(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.per_walker.iter().flatten().copied()
    }

    /// Per-walker traces as `f64` sequences of `f(node)` — the shape the
    /// multi-chain diagnostics expect. Note `osn_estimate::split_rhat`
    /// requires equal-length chains; truncate explicitly when some walkers
    /// stopped early.
    pub fn chains<F: Fn(NodeId) -> f64>(&self, f: F) -> Vec<Vec<f64>> {
        self.per_walker
            .iter()
            .map(|c| c.iter().map(|&v| f(v)).collect())
            .collect()
    }
}

/// Drives several walkers round-robin against one shared client.
pub struct MultiWalkSession {
    max_steps_per_walker: usize,
    seed: u64,
}

impl MultiWalkSession {
    /// Each walker performs at most `max_steps_per_walker` transitions.
    pub fn new(max_steps_per_walker: usize, seed: u64) -> Self {
        MultiWalkSession {
            max_steps_per_walker,
            seed,
        }
    }

    /// Run all walkers until each hits its step cap or the shared budget
    /// refuses further queries. Round-robin interleaving keeps the cache
    /// shared fairly; a walker that hits the budget stops while others may
    /// continue on cached territory.
    pub fn run<C: OsnClient>(
        &self,
        walkers: &mut [Box<dyn RandomWalk + Send>],
        client: &mut C,
    ) -> MultiWalkTrace {
        // Historical seeding of this driver, preserved for replayability
        // (predates the SplitMix64 streams of `WalkOrchestrator`).
        let mut rngs: Vec<ChaCha12Rng> = (0..walkers.len())
            .map(|i| ChaCha12Rng::seed_from_u64(self.seed.wrapping_add(i as u64 * 0x9e37)))
            .collect();
        let mut refs: Vec<&mut dyn RandomWalk> = walkers
            .iter_mut()
            .map(|w| w.as_mut() as &mut dyn RandomWalk)
            .collect();
        let outcome = drive_round_robin(
            client,
            &mut refs,
            &mut rngs,
            self.max_steps_per_walker,
            None::<&fn(NodeId) -> f64>,
            &Never,
        );
        MultiWalkTrace {
            per_walker: outcome.cells.into_iter().map(|c| c.trace).collect(),
            stats: client.stats(),
        }
    }
}

/// SplitMix64-derived RNG seed for stream `walker` of run `seed` —
/// well-spread and stable across platforms and thread schedules. Delegates
/// to [`osn_graph::mix::splitmix64_stream`], the workspace's single seed
/// mixer: walker streams here, trial seeds in `osn-experiments`, jitter
/// streams in `osn-client`.
pub fn stream_seed(seed: u64, walker: u64) -> u64 {
    osn_graph::mix::splitmix64_stream(seed, walker)
}

/// Outcome of a [`MultiWalkRunner`] run: the per-walker traces plus the
/// merged estimate.
#[derive(Clone, Debug)]
pub struct MultiWalkReport {
    /// Per-walker visit sequences and final shared-client statistics.
    pub trace: MultiWalkTrace,
    /// The per-walker ratio estimators merged in walker-index order.
    pub estimate: RatioEstimator,
}

/// Schedules `k` seeded walkers over `k` scoped OS threads against cloned
/// handles of one thread-safe client — the compatibility wrapper over
/// [`WalkOrchestrator::run_threaded`] with the
/// [`Never`] restart policy.
///
/// Built for [`osn_client::SharedOsn`]: every clone shares the snapshot,
/// the lock-striped cache, the global accounting, and (optionally) an atomic
/// unique-query budget, so `k` walkers cover ground concurrently without
/// multiplying the unique-query bill. Any `OsnClient + Clone + Send` works;
/// for clients whose clones do *not* share state, the report's `stats` field
/// only reflects the calling handle.
///
/// ## Determinism
///
/// Walker `i` draws from its own SplitMix64-derived RNG stream, and neighbor
/// lists come from an immutable snapshot, so without a shared budget each
/// per-walker trace is **bit-identical** to running that walker alone with
/// the same derived seed — thread scheduling cannot perturb results. With a
/// shared budget, *which* walker gets the last queries depends on
/// scheduling; totals remain exact.
#[derive(Clone, Copy, Debug)]
pub struct MultiWalkRunner {
    walkers: usize,
    max_steps_per_walker: usize,
    seed: u64,
    backend: HistoryBackend,
}

impl MultiWalkRunner {
    /// Run `walkers` concurrent walkers, each performing at most
    /// `max_steps_per_walker` transitions, with RNG streams derived from
    /// `seed`. History-aware walkers use the default (arena) backend; see
    /// [`with_backend`](Self::with_backend).
    pub fn new(walkers: usize, max_steps_per_walker: usize, seed: u64) -> Self {
        MultiWalkRunner {
            walkers: walkers.max(1),
            max_steps_per_walker,
            seed,
            backend: HistoryBackend::default(),
        }
    }

    /// Choose the history backend handed to the walker factory (the
    /// ablation knob of the backend benches).
    #[must_use]
    pub fn with_backend(mut self, backend: HistoryBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The history backend handed to the walker factory.
    pub fn backend(&self) -> HistoryBackend {
        self.backend
    }

    /// Number of walker threads this runner will spawn.
    pub fn walker_count(&self) -> usize {
        self.walkers
    }

    /// The deterministic RNG seed for walker `i`'s private stream.
    pub fn walker_seed(&self, i: usize) -> u64 {
        stream_seed(self.seed, i as u64)
    }

    /// The equivalent unified-API handle: same fleet, step cap, seed
    /// derivation, and history backend. `runner.run(c, w, f)` is
    /// `runner.orchestrator().run_threaded(c, w, f, &Never)` minus the
    /// restart/stop reporting.
    pub fn orchestrator(&self) -> WalkOrchestrator {
        WalkOrchestrator::new(self.walkers, self.max_steps_per_walker, self.seed)
            .with_backend(self.backend)
    }

    /// Run all walkers to their step cap (or until a shared budget refuses
    /// further queries), then merge the per-walker estimates.
    ///
    /// `make_walker(i, backend)` builds walker `i` (choose spread-out start
    /// nodes for disconnected or clustered graphs), instantiating
    /// history-aware walkers on `backend` — the runner's configured
    /// [`HistoryBackend`], threaded through so a single knob ablates the
    /// whole fleet; `value(v)` is the quantity being estimated at node `v`.
    /// Each walker thread pushes `(value(v), degree(v))` into its own
    /// [`RatioEstimator`] — degrees come free via
    /// [`OsnClient::peek_degree`] — and the estimators are merged with
    /// [`RatioEstimator::merge`] in walker-index order after the join.
    ///
    /// # Panics
    /// Propagates a panic from any walker thread after all threads joined.
    pub fn run<C, W, F>(&self, client: &C, make_walker: W, value: F) -> MultiWalkReport
    where
        C: OsnClient + Clone + Send,
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send> + Sync,
        F: Fn(NodeId) -> f64 + Sync,
    {
        let report = self
            .orchestrator()
            .run_threaded(client, make_walker, value, &Never);
        MultiWalkReport {
            trace: report.trace,
            estimate: report.estimate,
        }
    }
}

/// Outcome of a batched ([`CoalescingDispatcher`]) run.
#[derive(Clone, Debug)]
pub struct BatchDispatchReport {
    /// Per-walker visit sequences plus **walker-side** accounting: `issued`
    /// counts every neighbor query a walker made, `unique`/`cache_hits`
    /// split them by first-vs-repeat across all walkers — the same shape a
    /// serial run's client reports, so cross-mode comparisons are direct.
    pub trace: MultiWalkTrace,
    /// Per-walker ratio estimators merged in walker-index order.
    pub estimate: RatioEstimator,
    /// Why each walker stopped, in walker order ([`crate::WalkStop`]).
    pub stops: Vec<crate::WalkStop>,
    /// Dispatch rounds executed (each round: gather → dedup → fetch → step).
    pub rounds: usize,
    /// **Interface-side** accounting from the batch client: one entry per
    /// id delivered by the endpoint. `interface.unique` is the charged cost
    /// and always equals `trace.stats.unique` when the client started
    /// fresh; `interface.issued` is smaller than `trace.stats.issued`
    /// because walker revisits are absorbed by the dispatcher cache.
    pub interface: QueryStats,
    /// Nodes the budget refused (each terminated the walkers parked on it).
    pub refused_nodes: usize,
    /// Nodes abandoned after [`CoalescingDispatcher::node_attempt_cap`]
    /// permanently dropped requests.
    pub abandoned_nodes: usize,
}

/// Drives `k` walkers against a batch endpoint through a coalescing queue —
/// the compatibility wrapper over the orchestrator's coalesced driver with
/// the [`Never`] restart policy.
///
/// Each **round**:
///
/// 1. *gather* — every live walker parks the node it needs next (its
///    current position: each walker in this crate issues exactly one
///    `neighbors(current)` query per step);
/// 2. *dedup* — parked ids are deduplicated, in walker order, against each
///    other and against the dispatcher's cache of already-fetched lists;
/// 3. *charge* — the unique ids are chunked into batches of at most `B`
///    and submitted within the endpoint's in-flight window; drops are
///    resubmitted (bounded by [`Self::node_attempt_cap`]), budget refusals
///    are recorded per node;
/// 4. *fan-out* — each walker steps against a cache-backed client view,
///    consuming **its own RNG stream**, so trajectories are bit-identical
///    to serial replay no matter how requests were batched.
///
/// The dispatcher is single-threaded and fully deterministic (batch
/// composition included), which is what lets the golden-trace and
/// cross-mode equivalence suites pin its behavior.
#[derive(Clone, Copy, Debug)]
pub struct CoalescingDispatcher {
    max_steps_per_walker: usize,
    node_attempt_cap: u32,
}

impl CoalescingDispatcher {
    /// Each walker performs at most `max_steps_per_walker` transitions.
    pub fn new(max_steps_per_walker: usize) -> Self {
        CoalescingDispatcher {
            max_steps_per_walker,
            node_attempt_cap: DEFAULT_NODE_ATTEMPT_CAP,
        }
    }

    /// Override the resubmission cap for permanently dropped nodes
    /// (clamped to at least 1).
    #[must_use]
    pub fn with_node_attempt_cap(mut self, cap: u32) -> Self {
        self.node_attempt_cap = cap.max(1);
        self
    }

    /// Resubmissions allowed per node before it is abandoned.
    pub fn node_attempt_cap(&self) -> u32 {
        self.node_attempt_cap
    }

    /// Run all walkers to their step cap (or until the budget/interface
    /// refuses the node they are parked on), merging per-walker estimates
    /// in walker-index order. `rngs[i]` is walker `i`'s private stream;
    /// `value(v)` is the quantity being estimated at node `v`.
    ///
    /// # Panics
    /// If `walkers` and `rngs` lengths differ.
    pub fn run<B, R, F>(
        &self,
        client: &mut B,
        walkers: &mut [Box<dyn RandomWalk + Send>],
        rngs: &mut [R],
        value: F,
    ) -> BatchDispatchReport
    where
        B: BatchOsnClient,
        R: RngCore,
        F: Fn(NodeId) -> f64,
    {
        let mut refs: Vec<&mut dyn RandomWalk> = walkers
            .iter_mut()
            .map(|w| w.as_mut() as &mut dyn RandomWalk)
            .collect();
        let outcome = drive_coalesced(
            client,
            &mut refs,
            rngs,
            self.max_steps_per_walker,
            self.node_attempt_cap,
            Some(&value),
            &Never,
        );
        // One fold for cells -> (traces, merged estimate, stops) across the
        // whole workspace: reuse the orchestrator's, then reshape.
        let report = crate::orchestrator::OrchestratorReport::from_cells(
            outcome.cells,
            outcome.restarts,
            outcome.rounds,
            outcome.state.stats,
        );
        BatchDispatchReport {
            trace: report.trace,
            estimate: report.estimate,
            stops: report.stops,
            rounds: report.rounds,
            interface: outcome.interface,
            refused_nodes: outcome.state.refused_nodes,
            abandoned_nodes: outcome.state.abandoned_nodes,
        }
    }
}

impl MultiWalkRunner {
    /// Run the same fleet through the batched path: one
    /// [`CoalescingDispatcher`] round-trip per step wave instead of one OS
    /// thread per walker. Walker `i` consumes the identical SplitMix64 RNG
    /// stream [`Self::walker_seed`] uses in the threaded mode, so per-walker
    /// traces are **bit-identical across the two modes** (absent a budget);
    /// what changes is the interface traffic — deduplicated, batched,
    /// rate-limit-aware.
    pub fn run_batched<B, W, F>(
        &self,
        client: &mut B,
        make_walker: W,
        value: F,
    ) -> BatchDispatchReport
    where
        B: BatchOsnClient,
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
        F: Fn(NodeId) -> f64,
    {
        let mut walkers: Vec<Box<dyn RandomWalk + Send>> = (0..self.walkers)
            .map(|i| make_walker(i, self.backend))
            .collect();
        let mut rngs: Vec<ChaCha12Rng> = (0..self.walkers)
            .map(|i| ChaCha12Rng::seed_from_u64(self.walker_seed(i)))
            .collect();
        CoalescingDispatcher::new(self.max_steps_per_walker).run(
            client,
            &mut walkers,
            &mut rngs,
            value,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walkers::{Cnrw, Srw};
    use osn_client::{BudgetedClient, SimulatedOsn};
    use osn_graph::generators::barbell;

    fn walkers(k: usize) -> Vec<Box<dyn RandomWalk + Send>> {
        (0..k)
            .map(|i| {
                if i % 2 == 0 {
                    Box::new(Srw::new(NodeId(i as u32))) as Box<dyn RandomWalk + Send>
                } else {
                    Box::new(Cnrw::new(NodeId(i as u32))) as Box<dyn RandomWalk + Send>
                }
            })
            .collect()
    }

    #[test]
    fn walkers_share_cache_and_budget() {
        let g = barbell(8, 8).unwrap();
        let n = g.node_count();
        let client = SimulatedOsn::from_graph(g);
        let mut client = BudgetedClient::new(client, 10, n);
        let mut ws = walkers(4);
        let trace = MultiWalkSession::new(500, 1).run(&mut ws, &mut client);
        assert!(trace.stats.unique <= 10);
        assert_eq!(trace.per_walker.len(), 4);
        // Pooling works.
        assert_eq!(trace.pooled().count(), trace.total_steps());
    }

    #[test]
    fn chains_feed_diagnostics_shape() {
        let g = barbell(6, 6).unwrap();
        let mut client = SimulatedOsn::from_graph(g);
        let mut ws = walkers(3);
        let trace = MultiWalkSession::new(200, 2).run(&mut ws, &mut client);
        let chains = trace.chains(|v| v.index() as f64);
        assert_eq!(chains.len(), 3);
        assert!(chains.iter().all(|c| c.len() == 200));
    }

    #[test]
    fn more_walkers_cover_more_nodes_per_budget() {
        let g = barbell(30, 30).unwrap();
        let n = g.node_count();
        let coverage = |k: usize| {
            let client = SimulatedOsn::from_graph(g.clone());
            let mut client = BudgetedClient::new(client, 25, n);
            let mut ws: Vec<Box<dyn RandomWalk + Send>> = (0..k)
                .map(|i| {
                    // Spread starts across both bells.
                    let start = NodeId(((i * 17) % n) as u32);
                    Box::new(Cnrw::new(start)) as Box<dyn RandomWalk + Send>
                })
                .collect();
            let trace = MultiWalkSession::new(5_000, 3).run(&mut ws, &mut client);
            let mut seen: std::collections::HashSet<NodeId> = trace.pooled().collect();
            for w in &trace.per_walker {
                seen.extend(w.iter().copied());
            }
            seen.len()
        };
        // With starts in both bells, several walkers reach nodes a single
        // trapped walker cannot within the same unique-query budget.
        assert!(coverage(4) >= coverage(1));
    }

    use osn_client::SharedOsn;

    fn shared_client(stripes: usize) -> SharedOsn {
        let g = barbell(10, 10).unwrap();
        SharedOsn::with_stripes(SimulatedOsn::from_graph(g), stripes)
    }

    #[test]
    fn runner_traces_are_deterministic_across_runs() {
        let run = || {
            let client = shared_client(8);
            MultiWalkRunner::new(4, 300, 42)
                .run(
                    &client,
                    |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 5), backend)),
                    |v| v.index() as f64,
                )
                .trace
                .per_walker
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn runner_matches_serial_replay_bit_identically() {
        // Each walker thread must produce exactly the trace a serial run
        // with the same derived RNG stream produces — thread scheduling and
        // cache sharing cannot perturb trajectories (only accounting).
        let runner = MultiWalkRunner::new(3, 250, 7);
        let client = shared_client(16);
        let report = runner.run(
            &client,
            |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 3), backend)),
            |v| v.index() as f64,
        );
        for i in 0..3 {
            let mut serial_client = shared_client(1);
            let mut walker = Cnrw::new(NodeId(i as u32 * 3));
            let mut rng = ChaCha12Rng::seed_from_u64(runner.walker_seed(i));
            let mut serial = Vec::new();
            for _ in 0..250 {
                serial.push(walker.step(&mut serial_client, &mut rng).unwrap());
            }
            assert_eq!(report.trace.per_walker[i], serial, "walker {i}");
        }
    }

    #[test]
    fn runner_merges_estimates_in_index_order() {
        // The merged estimator must equal merging per-walker estimators by
        // hand in walker order (bit-identical f64 accumulation).
        let client = shared_client(8);
        let runner = MultiWalkRunner::new(4, 200, 9);
        let degree_of = {
            let g = client.network().graph.clone();
            move |v: NodeId| g.degree(v)
        };
        let report = runner.run(
            &client,
            |i, _| Box::new(Srw::new(NodeId(i as u32))),
            |v| v.index() as f64,
        );
        let mut by_hand = RatioEstimator::new();
        for trace in &report.trace.per_walker {
            let mut one = RatioEstimator::new();
            for &v in trace {
                one.push(v.index() as f64, degree_of(v));
            }
            by_hand.merge(&one);
        }
        assert_eq!(report.estimate.count(), by_hand.count());
        assert_eq!(report.estimate.mean(), by_hand.mean());
    }

    #[test]
    fn runner_respects_shared_budget() {
        let g = barbell(12, 12).unwrap();
        let client = SharedOsn::configured(SimulatedOsn::from_graph(g), 8, Some(15));
        let report = MultiWalkRunner::new(4, 10_000, 1).run(
            &client,
            |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 7), backend)),
            |v| v.index() as f64,
        );
        assert!(report.trace.stats.unique <= 15);
        assert_eq!(client.remaining_budget(), Some(0));
    }

    use osn_client::batch::{BatchConfig, SimulatedBatchOsn};

    fn batch_client(config: BatchConfig) -> SimulatedBatchOsn {
        let g = barbell(10, 10).unwrap();
        SimulatedBatchOsn::new(SimulatedOsn::from_graph(g), config)
    }

    #[test]
    fn batched_traces_match_threaded_runner_bit_identically() {
        // The headline cross-mode property: for every batch size the
        // dispatcher replays exactly the trajectories the threaded runner
        // produces — batching only reshapes interface traffic.
        let runner = MultiWalkRunner::new(4, 250, 42);
        let threaded = runner.run(
            &shared_client(8),
            |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 5), backend)),
            |v| v.index() as f64,
        );
        for batch_size in [1usize, 4, 16] {
            let mut client = batch_client(BatchConfig::new(batch_size).with_in_flight(2));
            let report = runner.run_batched(
                &mut client,
                |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 5), backend)),
                |v| v.index() as f64,
            );
            assert_eq!(
                report.trace.per_walker, threaded.trace.per_walker,
                "batch_size={batch_size}"
            );
            assert_eq!(report.estimate.count(), threaded.estimate.count());
            assert_eq!(report.estimate.mean(), threaded.estimate.mean());
            assert!(report.stops.iter().all(|s| *s == crate::WalkStop::MaxSteps));
        }
    }

    #[test]
    fn batched_interface_charges_each_unique_node_once() {
        let mut client = batch_client(BatchConfig::new(4));
        let report = MultiWalkRunner::new(4, 200, 3).run_batched(
            &mut client,
            |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 3), backend)),
            |v| v.index() as f64,
        );
        // Interface-side unique == distinct nodes fetched: every start
        // (fetched for the first step) plus every node a walker departed
        // from (a walker's final position is never fetched).
        let mut distinct: std::collections::HashSet<u32> = (0..4u32).map(|i| i * 3).collect();
        for trace in &report.trace.per_walker {
            distinct.extend(trace[..trace.len() - 1].iter().map(|v| v.0));
        }
        assert_eq!(report.interface.unique, distinct.len() as u64);
        assert_eq!(report.interface.unique, report.trace.stats.unique);
        // Walker-side accounting has serial shape: one issued query per
        // step, revisits as cache hits.
        assert_eq!(report.trace.stats.issued, 4 * 200);
        assert_eq!(
            report.trace.stats.cache_hits,
            report.trace.stats.issued - report.trace.stats.unique
        );
    }

    #[test]
    fn batched_budget_terminates_walkers_cleanly() {
        let g = barbell(12, 12).unwrap();
        let mut client = SimulatedBatchOsn::configured(
            SimulatedOsn::from_graph(g),
            BatchConfig::new(4),
            Some(9),
        );
        let report = MultiWalkRunner::new(4, 10_000, 1).run_batched(
            &mut client,
            |i, backend| Box::new(Cnrw::with_backend(NodeId(i as u32 * 7), backend)),
            |v| v.index() as f64,
        );
        assert_eq!(report.interface.unique, 9, "exactly the budget");
        assert_eq!(client.remaining_budget(), Some(0));
        assert!(report.refused_nodes > 0);
        // Every walker terminated (no walker is lost in limbo) and each
        // cut-off is reported as a budget stop.
        assert!(report
            .stops
            .iter()
            .all(|s| *s == crate::WalkStop::BudgetExhausted));
    }

    #[test]
    fn single_walker_runner_equals_shared_budgeted_serial_run() {
        // K = 1 closes the loop: the parallel runner on a 64-stripe cache is
        // bit-identical to the same walk driven serially against the old
        // single-lock configuration, budget cut-off included.
        let g = barbell(9, 9).unwrap();
        let budget = 12;
        let runner = MultiWalkRunner::new(1, 5_000, 33);

        let striped = SharedOsn::configured(SimulatedOsn::from_graph(g.clone()), 64, Some(budget));
        let parallel = runner.run(
            &striped,
            |_, b| Box::new(Cnrw::with_backend(NodeId(0), b)),
            |_| 1.0,
        );

        let single = SharedOsn::configured(SimulatedOsn::from_graph(g), 1, Some(budget));
        let mut client = single.clone();
        let mut walker = Cnrw::new(NodeId(0));
        let mut rng = ChaCha12Rng::seed_from_u64(runner.walker_seed(0));
        let mut serial = Vec::new();
        for _ in 0..5_000 {
            match walker.step(&mut client, &mut rng) {
                Ok(v) => serial.push(v),
                Err(_) => break,
            }
        }
        assert_eq!(parallel.trace.per_walker[0], serial);
        assert_eq!(parallel.trace.stats, single.global_stats());
    }
}
