//! Multiple cooperating walkers over one shared interface.
//!
//! The paper's related work cites Alon et al., *"Many random walks are
//! faster than one"* \[3\]. In the restricted-access setting the idea has a
//! twist that makes it even more attractive: walkers sharing one crawler
//! share its **cache**, so a node queried by any walker is free for all
//! others — `k` walkers cover ground faster *without* multiplying the
//! unique-query bill.
//!
//! [`MultiWalkSession`] steps `k` walkers round-robin against one client
//! until the shared budget runs out, interleaving their traces. Because the
//! walkers are independent chains with the same stationary distribution,
//! the pooled samples feed the usual estimators unchanged, and multi-chain
//! diagnostics (`osn_estimate::diagnostics::split_rhat`) become applicable.

use osn_client::OsnClient;
use osn_graph::NodeId;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::walker::RandomWalk;

/// Outcome of a multi-walker run.
#[derive(Clone, Debug)]
pub struct MultiWalkTrace {
    /// Per-walker visit sequences (one entry per performed step).
    pub per_walker: Vec<Vec<NodeId>>,
    /// Final client statistics (shared across walkers).
    pub stats: osn_client::QueryStats,
}

impl MultiWalkTrace {
    /// Total steps across all walkers.
    pub fn total_steps(&self) -> usize {
        self.per_walker.iter().map(Vec::len).sum()
    }

    /// Iterator over all samples, pooled across walkers.
    pub fn pooled(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.per_walker.iter().flatten().copied()
    }

    /// Per-walker traces as `f64` sequences of `f(node)` — the shape the
    /// multi-chain diagnostics expect.
    pub fn chains<F: Fn(NodeId) -> f64>(&self, f: F) -> Vec<Vec<f64>> {
        self.per_walker
            .iter()
            .map(|c| c.iter().map(|&v| f(v)).collect())
            .collect()
    }
}

/// Drives several walkers round-robin against one shared client.
pub struct MultiWalkSession {
    max_steps_per_walker: usize,
    seed: u64,
}

impl MultiWalkSession {
    /// Each walker performs at most `max_steps_per_walker` transitions.
    pub fn new(max_steps_per_walker: usize, seed: u64) -> Self {
        MultiWalkSession {
            max_steps_per_walker,
            seed,
        }
    }

    /// Run all walkers until each hits its step cap or the shared budget
    /// refuses further queries. Round-robin interleaving keeps the cache
    /// shared fairly; a walker that hits the budget stops while others may
    /// continue on cached territory.
    pub fn run<C: OsnClient>(
        &self,
        walkers: &mut [Box<dyn RandomWalk + Send>],
        client: &mut C,
    ) -> MultiWalkTrace {
        let mut rngs: Vec<ChaCha12Rng> = (0..walkers.len())
            .map(|i| ChaCha12Rng::seed_from_u64(self.seed.wrapping_add(i as u64 * 0x9e37)))
            .collect();
        let mut traces: Vec<Vec<NodeId>> = vec![Vec::new(); walkers.len()];
        let mut live: Vec<bool> = vec![true; walkers.len()];
        for _ in 0..self.max_steps_per_walker {
            let mut any = false;
            for (i, walker) in walkers.iter_mut().enumerate() {
                if !live[i] {
                    continue;
                }
                match walker.step(&mut *client, &mut rngs[i]) {
                    Ok(v) => {
                        traces[i].push(v);
                        any = true;
                    }
                    Err(_) => live[i] = false,
                }
            }
            if !any {
                break;
            }
        }
        MultiWalkTrace {
            per_walker: traces,
            stats: client.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walkers::{Cnrw, Srw};
    use osn_client::{BudgetedClient, SimulatedOsn};
    use osn_graph::generators::barbell;

    fn walkers(k: usize) -> Vec<Box<dyn RandomWalk + Send>> {
        (0..k)
            .map(|i| {
                if i % 2 == 0 {
                    Box::new(Srw::new(NodeId(i as u32))) as Box<dyn RandomWalk + Send>
                } else {
                    Box::new(Cnrw::new(NodeId(i as u32))) as Box<dyn RandomWalk + Send>
                }
            })
            .collect()
    }

    #[test]
    fn walkers_share_cache_and_budget() {
        let g = barbell(8, 8).unwrap();
        let n = g.node_count();
        let client = SimulatedOsn::from_graph(g);
        let mut client = BudgetedClient::new(client, 10, n);
        let mut ws = walkers(4);
        let trace = MultiWalkSession::new(500, 1).run(&mut ws, &mut client);
        assert!(trace.stats.unique <= 10);
        assert_eq!(trace.per_walker.len(), 4);
        // Pooling works.
        assert_eq!(trace.pooled().count(), trace.total_steps());
    }

    #[test]
    fn chains_feed_diagnostics_shape() {
        let g = barbell(6, 6).unwrap();
        let mut client = SimulatedOsn::from_graph(g);
        let mut ws = walkers(3);
        let trace = MultiWalkSession::new(200, 2).run(&mut ws, &mut client);
        let chains = trace.chains(|v| v.index() as f64);
        assert_eq!(chains.len(), 3);
        assert!(chains.iter().all(|c| c.len() == 200));
    }

    #[test]
    fn more_walkers_cover_more_nodes_per_budget() {
        let g = barbell(30, 30).unwrap();
        let n = g.node_count();
        let coverage = |k: usize| {
            let client = SimulatedOsn::from_graph(g.clone());
            let mut client = BudgetedClient::new(client, 25, n);
            let mut ws: Vec<Box<dyn RandomWalk + Send>> = (0..k)
                .map(|i| {
                    // Spread starts across both bells.
                    let start = NodeId(((i * 17) % n) as u32);
                    Box::new(Cnrw::new(start)) as Box<dyn RandomWalk + Send>
                })
                .collect();
            let trace = MultiWalkSession::new(5_000, 3).run(&mut ws, &mut client);
            let mut seen: std::collections::HashSet<NodeId> = trace.pooled().collect();
            for w in &trace.per_walker {
                seen.extend(w.iter().copied());
            }
            seen.len()
        };
        // With starts in both bells, several walkers reach nodes a single
        // trapped walker cannot within the same unique-query budget.
        assert!(coverage(4) >= coverage(1));
    }
}
