//! The unified walk orchestrator: **one execution core** behind every run
//! mode in this workspace.
//!
//! Before this module existed the repo had drifted into three hand-rolled
//! step loops — the serial [`crate::WalkSession`], the threaded
//! [`crate::MultiWalkRunner`], and the batched
//! [`crate::CoalescingDispatcher`] — with no shared place to put restart or
//! termination policy. [`WalkOrchestrator`] deduplicates them: the per-step
//! bookkeeping (trace recording, estimator pushes, stop accounting, policy
//! observation) lives once in this module's walker-cell core, and the three
//! *execution backends* only differ in how steps are scheduled:
//!
//! | Backend | Entry point | Scheduling |
//! |---|---|---|
//! | **Serial** | [`WalkOrchestrator::run_serial`] | round-robin waves on the calling thread against any [`OsnClient`] |
//! | **Threaded** | [`WalkOrchestrator::run_threaded`] | one scoped OS thread per walker over clones of a thread-safe client (built for [`osn_client::SharedOsn`]) |
//! | **Coalesced** | [`WalkOrchestrator::run_coalesced`] | round-based queue → dedup → charge → fan-out against a [`BatchOsnClient`] |
//! | **Reactor** | [`WalkOrchestrator::run_reactor`] | poll-driven event loop: walkers park as [`crate::reactor::WalkerFsm`] state machines on in-flight batches, one completion event at a time (see [`crate::reactor`]) |
//!
//! Every backend takes a [`RestartPolicy`]:
//!
//! * [`Never`] — the identity policy. Traces are **bit-identical** to the
//!   pre-orchestrator loops (pinned by the golden fixtures and cross-mode
//!   equivalence suites); observation hooks are skipped entirely, so the
//!   unified loop costs nothing it did not already pay.
//! * [`WorkStealing`] — walkers publish the nodes they walk through into a
//!   lock-striped [`SharedFrontier`]; every `check_every` steps a walker
//!   whose recent window discovered nothing new (component exhausted) or
//!   whose chain the online windowed split-R̂
//!   ([`osn_estimate::WindowedSplitRhat`]) flags as the non-mixing outlier
//!   is **restarted** — via the slab-reusing [`RandomWalk::restart`] — from
//!   a frontier node discovered by another walker, instead of burning
//!   budget where coverage is saturated.
//!
//! ## Determinism
//!
//! The serial and coalesced backends consult the policy at **round
//! boundaries** (all active walkers have stepped equally often), so given a
//! seed the whole run — restart schedule included — is deterministic, and
//! the two backends produce the *same* schedule. In the coalesced backend
//! the boundary sits **before** the gather phase, so a restarted walker's
//! first fetch rides the next coalesced batch like any other request (the
//! dispatcher hook; see [`BatchOsnClient::is_cached`]). The threaded
//! backend checks after each step on each walker's own thread: per-walker
//! traces stay scheduling-independent under [`Never`], but under
//! [`WorkStealing`] the interleaving of frontier publishes — and therefore
//! the steal outcomes — depends on thread timing.

use std::collections::VecDeque;
use std::sync::Mutex;

use osn_client::batch::{BatchNodeError, BatchOsnClient};
use osn_client::{BudgetExhausted, OsnClient, QueryStats};
use osn_estimate::{RatioEstimator, WindowedSplitRhat};
use osn_graph::NodeId;
use osn_serde::Value;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

use crate::circulation::HistoryBackend;
use crate::fnv::{FnvHashMap, FnvHashSet};
use crate::frontier::SharedFrontier;
use crate::multiwalk::MultiWalkTrace;
use crate::walker::RandomWalk;
use crate::WalkStop;

/// Why a [`RestartPolicy`] relocated a walker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartReason {
    /// The walker's recent check window arrived at no node it had not
    /// already visited: its component (or reachable neighborhood) is
    /// exhausted and further steps only resample known territory.
    Exhausted,
    /// The online windowed split-R̂ across the fleet exceeded the threshold
    /// and flagged this walker's chain as the most deviant — it has not
    /// mixed into the territory the others agree on.
    NonMixing,
    /// The walker's next step was refused (budget exhausted / dead
    /// interface): instead of terminating, it was rescued into cached
    /// territory another walker discovered — the fleet keeps extracting
    /// samples from already-paid-for nodes.
    Refused,
}

/// One restart performed during an orchestrated run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartEvent {
    /// The relocated walker.
    pub walker: usize,
    /// Steps the walker had performed when it was relocated.
    pub step: usize,
    /// The position it abandoned.
    pub from: NodeId,
    /// The stolen frontier node it restarted from.
    pub to: NodeId,
    /// What triggered the restart.
    pub reason: RestartReason,
}

/// Decides when a walker should abandon its position and where it should
/// restart. Shared by reference across walker threads in the threaded
/// backend, hence `Sync` and `&self` methods (implementations use interior
/// mutability).
pub trait RestartPolicy: Sync {
    /// Whether this policy can ever request a restart. `false` (only
    /// [`Never`] returns it) lets the drivers skip per-step observation
    /// entirely, keeping the policy-free hot loop identical to the
    /// pre-orchestrator loops.
    fn enabled(&self) -> bool {
        true
    }

    /// Called once before any step with the fleet size.
    fn begin_run(&self, _walkers: usize) {}

    /// Observe one performed step of `walker`: it departed `from` (degree
    /// `from_degree`; `from`'s neighbor list has just been fetched, so it
    /// is cached for everyone) and arrived at `to`, contributing `value` to
    /// the estimate.
    fn observe_step(
        &self,
        _walker: usize,
        _from: NodeId,
        _from_degree: usize,
        _to: NodeId,
        _value: f64,
    ) {
    }

    /// Decide whether `walker` — currently at `current` (degree
    /// `current_degree`) with `steps_done` performed steps — should restart
    /// now, and from which node. `cached(u)` reports whether `u`'s neighbor
    /// list is free to re-fetch (see [`OsnClient::is_cached`] /
    /// [`BatchOsnClient::is_cached`]); policies use it as a preference, not
    /// a filter — an uncached target simply rides the next fetch like any
    /// other request.
    fn restart_target(
        &self,
        _walker: usize,
        _steps_done: usize,
        _current: NodeId,
        _current_degree: usize,
        _cached: &dyn Fn(NodeId) -> bool,
    ) -> Option<(NodeId, RestartReason)> {
        None
    }

    /// Called when `walker`'s step was just refused (budget exhausted or
    /// dead interface; the walker is unchanged at `current`). Returning a
    /// node **rescues** the walker — it relocates and keeps sampling
    /// (necessarily cached territory, since nothing new can be charged) —
    /// instead of terminating with [`crate::WalkStop::BudgetExhausted`].
    /// `None` (the default) keeps the classic ending.
    fn rescue_target(
        &self,
        _walker: usize,
        _steps_done: usize,
        _current: NodeId,
        _cached: &dyn Fn(NodeId) -> bool,
    ) -> Option<NodeId> {
        None
    }

    /// Notification that the driver performed the restart it was told to.
    fn after_restart(&self, _walker: usize) {}
}

/// The identity policy: never restarts, never observes. All golden-trace
/// and cross-mode equivalence suites run under it — orchestrated runs with
/// `Never` are bit-identical to the pre-orchestrator loops.
#[derive(Clone, Copy, Debug, Default)]
pub struct Never;

impl RestartPolicy for Never {
    fn enabled(&self) -> bool {
        false
    }
}

/// Per-walker bookkeeping of the [`WorkStealing`] policy.
#[derive(Default)]
struct WalkerDiag {
    /// Every node this walker has occupied (starts, arrivals, restart
    /// targets) — the filter that stops it from stealing its own territory.
    visited: FnvHashSet<u32>,
    /// Nodes first visited since the walker's last cadence check.
    fresh_since_check: usize,
    /// `steps_done` of the walker's last cadence check. A refused/rescued
    /// walker re-enters the next round with its step count unchanged; this
    /// keeps a pinned cadence multiple from re-firing every round.
    last_check: Option<usize>,
    /// Budget rescues performed — rotates repeated rescues across the pool.
    rescues: u64,
    /// Cadence steals performed — rotates revisit-steals across the pool.
    steals: u64,
}

/// Shared interior state of [`WorkStealing`], sized by
/// [`RestartPolicy::begin_run`].
struct StealDiag {
    window: WindowedSplitRhat,
    walkers: Vec<WalkerDiag>,
}

/// Work-stealing frontier restarts (the ROADMAP's named next step, built on
/// the paper's \[17\] — see [`crate::frontier`]).
///
/// Walkers publish every node they depart from into the shared
/// [`frontier`](Self::frontier) pool (each lock stripe retains its
/// highest-degree candidates). Every [`check_every`](Self::check_every)
/// steps, a walker is relocated to a frontier node discovered by *another*
/// walker when either trigger fires:
///
/// * **exhausted** — its last `check_every` steps visited no new node;
/// * **non-mixing** — the online windowed split-R̂ over the fleet's recent
///   value windows exceeds [`rhat_threshold`](Self::rhat_threshold) *and*
///   this walker's window is the most deviant chain.
///
/// Cadence steals are **degree-ascending**: the stolen node must be
/// strictly better connected than where the walker stands (the frontier
/// sampler's degree-proportional steering, hardened into a filter), so a
/// walker that already sits in well-connected territory is never dragged
/// into a worse-connected pocket another walker happened to publish.
///
/// A third trigger needs no cadence: when a walker's step is **refused**
/// (unique-query budget exhausted), the policy *rescues* it into any
/// unvisited frontier territory instead of letting it terminate — once the
/// budget is spent, every published node is cached, so the rescued walker
/// keeps converting already-paid-for queries into samples at zero cost.
///
/// Relocation goes through the slab-reusing [`RandomWalk::restart`], so a
/// restarted CNRW/GNRW walker keeps its arena capacity. If no other walker
/// has published territory the candidate has not already visited, the
/// walker keeps walking (or, for a refused step, terminates classically) —
/// stealing never falls back to random teleports, which would break the
/// "restart only into discovered, cached territory" cost argument.
///
/// One policy value drives one run at a time ([`begin_run`] resizes the
/// interior state); construct a fresh [`SharedFrontier`] per run unless you
/// *want* runs to share discovered territory.
///
/// [`begin_run`]: RestartPolicy::begin_run
pub struct WorkStealing {
    /// Windowed split-R̂ above this flags non-mixing (1.05–1.2 is typical;
    /// see [`osn_estimate::diagnostics::split_rhat`]).
    pub rhat_threshold: f64,
    /// Steps between policy checks per walker; also the diagnostic window
    /// length (clamped to at least 8, rounded down to even).
    pub check_every: usize,
    /// The shared candidate pool walkers publish into and steal from.
    pub frontier: SharedFrontier,
    diag: Mutex<StealDiag>,
}

impl WorkStealing {
    /// Policy with the given trigger threshold and cadence over a frontier
    /// pool.
    pub fn new(rhat_threshold: f64, check_every: usize, frontier: SharedFrontier) -> Self {
        let check_every = check_every.max(8) & !1;
        WorkStealing {
            rhat_threshold,
            check_every,
            frontier,
            diag: Mutex::new(StealDiag {
                window: WindowedSplitRhat::new(0, check_every),
                walkers: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StealDiag> {
        self.diag
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl RestartPolicy for WorkStealing {
    fn begin_run(&self, walkers: usize) {
        let mut d = self.lock();
        d.window = WindowedSplitRhat::new(walkers, self.check_every);
        d.walkers = (0..walkers).map(|_| WalkerDiag::default()).collect();
    }

    fn observe_step(
        &self,
        walker: usize,
        from: NodeId,
        from_degree: usize,
        to: NodeId,
        value: f64,
    ) {
        {
            let mut d = self.lock();
            d.window.push(walker, value);
            let w = &mut d.walkers[walker];
            w.visited.insert(from.0);
            if w.visited.insert(to.0) {
                w.fresh_since_check += 1;
            }
        }
        // Publish outside the diagnostic lock (the frontier has its own
        // stripes): `from`'s neighbor list was fetched by this very step,
        // so restarting there re-queries nothing.
        self.frontier.publish(from, from_degree, walker);
    }

    fn restart_target(
        &self,
        walker: usize,
        steps_done: usize,
        current: NodeId,
        current_degree: usize,
        cached: &dyn Fn(NodeId) -> bool,
    ) -> Option<(NodeId, RestartReason)> {
        if steps_done == 0 || !steps_done.is_multiple_of(self.check_every) {
            return None;
        }
        let mut d = self.lock();
        if d.walkers[walker].last_check == Some(steps_done) {
            // Already checked at this step count (the walker's step was
            // refused and it was rescued without advancing): one check per
            // cadence window, not one per scheduling round.
            return None;
        }
        d.walkers[walker].last_check = Some(steps_done);
        let fresh = std::mem::take(&mut d.walkers[walker].fresh_since_check);
        let reason = if fresh == 0 {
            RestartReason::Exhausted
        } else {
            let verdict = d.window.evaluate()?;
            if verdict.rhat > self.rhat_threshold && verdict.most_deviant == walker {
                RestartReason::NonMixing
            } else {
                return None;
            }
        };
        // Degree-ascending: only move into strictly better-connected
        // territory than the walker currently stands in. Prefer unvisited
        // territory (taken destructively, so two stalled walkers fan out);
        // fall back to revisiting another walker's published nodes
        // non-destructively — without this, a fully-cached low-degree
        // pocket becomes an absorbing sink once everything is visited.
        let rotation = d.walkers[walker].steals;
        d.walkers[walker].steals += 1;
        let visited = &d.walkers[walker].visited;
        if let Some(entry) = self.frontier.steal(
            walker,
            current_degree + 1,
            |u| visited.contains(&u.0),
            cached,
        ) {
            return Some((entry.node, reason));
        }
        let entry = self.frontier.borrow_target(
            walker,
            current_degree + 1,
            rotation,
            |u| u == current,
            cached,
        )?;
        Some((entry.node, reason))
    }

    fn rescue_target(
        &self,
        walker: usize,
        _steps_done: usize,
        current: NodeId,
        cached: &dyn Fn(NodeId) -> bool,
    ) -> Option<NodeId> {
        // The walker is dead where it stands: any territory another walker
        // published beats terminating (no degree bar). Prefer *unvisited*
        // territory — taken destructively, so two dying walkers fan out —
        // and fall back to revisiting published nodes non-destructively:
        // post-budget every published node is cached, so the rescued walker
        // keeps converting already-paid-for queries into samples for free.
        // The rotation spreads repeated rescues across the pool instead of
        // piling every dying walker onto one hub.
        let mut d = self.lock();
        let rotation = d.walkers[walker].rescues;
        d.walkers[walker].rescues += 1;
        let visited = &d.walkers[walker].visited;
        if let Some(entry) = self
            .frontier
            .steal(walker, 0, |u| visited.contains(&u.0), cached)
        {
            return Some(entry.node);
        }
        let entry = self
            .frontier
            .borrow_target(walker, 0, rotation, |u| u == current, cached)?;
        Some(entry.node)
    }

    fn after_restart(&self, walker: usize) {
        // The abandoned position's samples say nothing about the new
        // neighborhood: restart the walker's diagnostic window.
        self.lock().window.clear_chain(walker);
    }
}

/// Per-walker bookkeeping shared by every execution backend: the trace, the
/// running estimator, and why (if) the walker stopped. This — plus
/// [`advance_walker`] and [`maybe_restart`] below — *is* the unified
/// execution core; the drivers only schedule calls into it.
pub(crate) struct Cell {
    pub(crate) trace: Vec<NodeId>,
    pub(crate) est: RatioEstimator,
    pub(crate) stop: Option<WalkStop>,
}

impl Cell {
    /// `capacity_hint = 0` starts the trace empty (the historical behavior
    /// of the multi-walker loops — a budgeted fleet may stop after a few
    /// steps, so preallocating `max_steps` per walker would waste memory);
    /// the single-walker session path passes its step cap, as `WalkSession`
    /// always did.
    pub(crate) fn new(capacity_hint: usize) -> Self {
        Cell {
            trace: Vec::with_capacity(capacity_hint.min(1 << 20)),
            est: RatioEstimator::new(),
            stop: None,
        }
    }

    pub(crate) fn live(&self, max_steps: usize) -> bool {
        self.stop.is_none() && self.trace.len() < max_steps
    }
}

/// One transition of walker `i`: step, record, observe. The single place
/// where a walker meets a client — every backend funnels through here.
/// `value: None` skips estimator maintenance entirely (the trace-only
/// drivers `WalkSession`/`MultiWalkSession` — SRW steps in a handful of
/// nanoseconds, so even one spurious degree peek per step is measurable).
pub(crate) fn advance_walker<C, R, F, P>(
    i: usize,
    walker: &mut dyn RandomWalk,
    rng: &mut R,
    client: &mut C,
    value: Option<&F>,
    policy: &P,
    cell: &mut Cell,
) where
    C: OsnClient,
    R: RngCore,
    F: Fn(NodeId) -> f64 + ?Sized,
    P: RestartPolicy + ?Sized,
{
    let from = walker.current();
    match walker.step(client, rng) {
        Ok(v) => {
            if let Some(value) = value {
                let fv = value(v);
                cell.est.push(fv, client.peek_degree(v));
                if policy.enabled() {
                    policy.observe_step(i, from, client.peek_degree(from), v, fv);
                }
            } else if policy.enabled() {
                policy.observe_step(i, from, client.peek_degree(from), v, 0.0);
            }
            cell.trace.push(v);
        }
        Err(_) => cell.stop = Some(WalkStop::BudgetExhausted),
    }
}

/// Consult the policy for walker `i` and perform the restart it requests,
/// recording the event. `degree_of` supplies the walker's current degree
/// (free listing metadata) for the policy's degree-ascending steal filter.
pub(crate) fn maybe_restart<P>(
    i: usize,
    walker: &mut dyn RandomWalk,
    cell: &Cell,
    policy: &P,
    degree_of: &dyn Fn(NodeId) -> usize,
    cached: &dyn Fn(NodeId) -> bool,
    restarts: &mut Vec<RestartEvent>,
) where
    P: RestartPolicy + ?Sized,
{
    let current = walker.current();
    if let Some((to, reason)) =
        policy.restart_target(i, cell.trace.len(), current, degree_of(current), cached)
    {
        walker.restart(to);
        policy.after_restart(i);
        restarts.push(RestartEvent {
            walker: i,
            step: cell.trace.len(),
            from: current,
            to,
            reason,
        });
    }
}

/// Offer a just-refused walker to the policy for rescue: on success its
/// stop is cleared, the relocation performed and recorded, and the walker
/// steps again from the **next** scheduling wave (every backend charges a
/// refusal one lost step, keeping the round-based schedules aligned).
pub(crate) fn maybe_rescue<P>(
    i: usize,
    walker: &mut dyn RandomWalk,
    cell: &mut Cell,
    policy: &P,
    cached: &dyn Fn(NodeId) -> bool,
    restarts: &mut Vec<RestartEvent>,
) where
    P: RestartPolicy + ?Sized,
{
    if cell.stop != Some(WalkStop::BudgetExhausted) {
        return;
    }
    let current = walker.current();
    if let Some(to) = policy.rescue_target(i, cell.trace.len(), current, cached) {
        walker.restart(to);
        policy.after_restart(i);
        cell.stop = None;
        restarts.push(RestartEvent {
            walker: i,
            step: cell.trace.len(),
            from: current,
            to,
            reason: RestartReason::Refused,
        });
    }
}

/// Outcome of a round-based driver ([`drive_round_robin`]).
pub(crate) struct RoundOutcome {
    pub(crate) cells: Vec<Cell>,
    pub(crate) restarts: Vec<RestartEvent>,
    pub(crate) rounds: usize,
}

/// The serial driver: step every live walker once per round (walker-index
/// order), consulting the policy at round boundaries. With one walker and
/// [`Never`] this degenerates to exactly the classic tight walk loop.
pub(crate) fn drive_round_robin<C, R, F, P>(
    client: &mut C,
    walkers: &mut [&mut dyn RandomWalk],
    rngs: &mut [R],
    max_steps: usize,
    value: Option<&F>,
    policy: &P,
) -> RoundOutcome
where
    C: OsnClient,
    R: RngCore,
    F: Fn(NodeId) -> f64 + ?Sized,
    P: RestartPolicy + ?Sized,
{
    let k = walkers.len();
    assert_eq!(k, rngs.len(), "one RNG stream per walker");
    policy.begin_run(k);
    let hint = if k == 1 { max_steps } else { 0 };
    let mut cells: Vec<Cell> = (0..k).map(|_| Cell::new(hint)).collect();
    let mut restarts = Vec::new();
    let mut rounds = 0usize;
    if k == 1 && !policy.enabled() {
        // Single walker, inert policy — the `WalkSession` shape. Skip the
        // active-set machinery: at SRW speeds (a handful of nanoseconds
        // per step) even one retained-index scan per round is measurable.
        let cell = &mut cells[0];
        while cell.live(max_steps) {
            rounds += 1;
            advance_walker(
                0,
                &mut *walkers[0],
                &mut rngs[0],
                client,
                value,
                policy,
                cell,
            );
        }
        return RoundOutcome {
            cells,
            restarts,
            rounds,
        };
    }
    let mut active: Vec<usize> = (0..k).collect();
    while serial_round(
        client,
        walkers,
        rngs,
        max_steps,
        value,
        policy,
        &mut cells,
        &mut restarts,
        &mut active,
    ) {
        rounds += 1;
    }
    RoundOutcome {
        cells,
        restarts,
        rounds,
    }
}

/// One scheduling wave of the serial driver: retain the live walkers,
/// consult the policy, step each live walker once. Returns `false` (doing
/// nothing) once every walker is done. Shared by [`drive_round_robin`] and
/// the resumable [`SerialWalkRun`], so the sliced execution path cannot
/// drift from the one-shot driver.
#[allow(clippy::too_many_arguments)]
fn serial_round<C, R, F, P>(
    client: &mut C,
    walkers: &mut [&mut dyn RandomWalk],
    rngs: &mut [R],
    max_steps: usize,
    value: Option<&F>,
    policy: &P,
    cells: &mut [Cell],
    restarts: &mut Vec<RestartEvent>,
    active: &mut Vec<usize>,
) -> bool
where
    C: OsnClient,
    R: RngCore,
    F: Fn(NodeId) -> f64 + ?Sized,
    P: RestartPolicy + ?Sized,
{
    active.retain(|&i| cells[i].live(max_steps));
    if active.is_empty() {
        return false;
    }
    if policy.enabled() {
        for &i in &*active {
            let cached = |u: NodeId| client.is_cached(u);
            let degree_of = |u: NodeId| client.peek_degree(u);
            maybe_restart(
                i,
                &mut *walkers[i],
                &cells[i],
                policy,
                &degree_of,
                &cached,
                restarts,
            );
        }
    }
    for &i in &*active {
        advance_walker(
            i,
            &mut *walkers[i],
            &mut rngs[i],
            client,
            value,
            policy,
            &mut cells[i],
        );
        if policy.enabled() && cells[i].stop.is_some() {
            // Refused step (no transition performed): offer a rescue —
            // the walker resumes from the next round if relocated.
            let cached = |u: NodeId| client.is_cached(u);
            maybe_rescue(
                i,
                &mut *walkers[i],
                &mut cells[i],
                policy,
                &cached,
                restarts,
            );
        }
    }
    true
}

/// Dispatcher-level cap on resubmissions of a node whose requests keep
/// coming back permanently dropped. Past it the node is abandoned and the
/// walkers waiting on it terminate (with a budget-style error) instead of
/// spinning forever against a dead interface.
pub const DEFAULT_NODE_ATTEMPT_CAP: u32 = 32;

/// Mutable bookkeeping shared by the coalesced driver loop and the
/// per-walker [`PrefetchedClient`] views of one run.
#[derive(Default)]
pub(crate) struct DispatchState {
    /// Neighbor lists fetched so far (the dispatcher's shared cache).
    pub(crate) cache: FnvHashMap<u32, Vec<NodeId>>,
    /// Nodes the run will never deliver: budget-refused or abandoned.
    pub(crate) refused: FnvHashSet<u32>,
    /// Dispatcher-level resubmission counts for dropped nodes.
    pub(crate) node_attempts: FnvHashMap<u32, u32>,
    /// Nodes ever queried by any walker (walker-side unique/hit split).
    pub(crate) seen: FnvHashSet<u32>,
    /// Walker-side accounting (serial-shaped `issued`/`unique`/`hits`).
    pub(crate) stats: QueryStats,
    /// Distinct budget-refused nodes.
    pub(crate) refused_nodes: usize,
    /// Distinct nodes abandoned after the resubmission cap.
    pub(crate) abandoned_nodes: usize,
    /// The budget limit observed in refusals, so walker-facing errors
    /// report the same value a serial `BudgetedClient` would.
    pub(crate) budget_in_force: Option<u64>,
}

/// Fetch every id in `pending` through the batch endpoint: fan out in
/// window-respecting batches, resubmit drops (bounded per node by
/// `node_attempt_cap`), and record deliveries into the state's cache /
/// refusals into its refused-set.
pub(crate) fn fetch_all<B: BatchOsnClient>(
    client: &mut B,
    mut pending: VecDeque<NodeId>,
    state: &mut DispatchState,
    node_attempt_cap: u32,
) {
    let limits = client.limits();
    let mut batch: Vec<NodeId> = Vec::with_capacity(limits.max_batch_size);
    while !pending.is_empty() || client.in_flight() > 0 {
        // Fill the in-flight window with max-size batches.
        while client.in_flight() < limits.max_in_flight && !pending.is_empty() {
            batch.clear();
            while batch.len() < limits.max_batch_size {
                let Some(u) = pending.pop_front() else { break };
                batch.push(u);
            }
            client.submit(&batch).expect("window and size checked");
        }
        let Some(outcome) = client.poll() else { break };
        for (u, result) in outcome.per_node {
            match result {
                Ok(neighbors) => {
                    state.cache.insert(u.0, neighbors);
                }
                Err(BatchNodeError::Budget(e)) => {
                    // Remember the budget in force so walker-facing errors
                    // report the same value a serial `BudgetedClient` would.
                    state.budget_in_force = Some(e.budget);
                    if state.refused.insert(u.0) {
                        state.refused_nodes += 1;
                    }
                }
                Err(BatchNodeError::Dropped) => {
                    let attempts = state.node_attempts.entry(u.0).or_insert(0);
                    *attempts += 1;
                    if *attempts >= node_attempt_cap {
                        // Dead interface for this node: give up so the
                        // walkers parked on it terminate cleanly.
                        if state.refused.insert(u.0) {
                            state.abandoned_nodes += 1;
                        }
                    } else {
                        pending.push_back(u);
                    }
                }
            }
        }
    }
}

/// The per-step client view the coalesced driver hands each walker:
/// neighbor lists come from the dispatcher cache (walker-side accounting
/// recorded), metadata peeks pass through to the endpoint for free. A query
/// for a node that was *not* prefetched (no walker in this crate issues
/// one, but the [`RandomWalk`] trait allows it) falls back to an on-demand
/// synchronous batch of one, with the same refusal/abandon bookkeeping.
pub(crate) struct PrefetchedClient<'a, B: BatchOsnClient> {
    pub(crate) client: &'a mut B,
    pub(crate) state: &'a mut DispatchState,
    pub(crate) node_attempt_cap: u32,
}

impl<B: BatchOsnClient> OsnClient for PrefetchedClient<'_, B> {
    fn neighbors(&mut self, u: NodeId) -> Result<&[NodeId], BudgetExhausted> {
        if !self.state.cache.contains_key(&u.0) && !self.state.refused.contains(&u.0) {
            // Off-protocol query: fetch on demand through the endpoint.
            fetch_all(
                self.client,
                VecDeque::from([u]),
                self.state,
                self.node_attempt_cap,
            );
        }
        match self.state.cache.get(&u.0) {
            Some(neighbors) => {
                self.state.stats.record(self.state.seen.insert(u.0));
                Ok(neighbors)
            }
            // Refused: report the budget a serial `BudgetedClient` would
            // name. Abandoned nodes on an unbudgeted client have no honest
            // value for the trait's error type; fall back to the remaining
            // budget (0 for "the interface gave this up").
            None => Err(BudgetExhausted {
                budget: self
                    .state
                    .budget_in_force
                    .or(self.client.remaining_budget())
                    .unwrap_or(0),
            }),
        }
    }

    fn peek_degree(&self, u: NodeId) -> usize {
        self.client.peek_degree(u)
    }

    fn peek_attribute(&self, u: NodeId, name: &str) -> Option<f64> {
        self.client.peek_attribute(u, name)
    }

    fn stats(&self) -> QueryStats {
        self.state.stats
    }

    fn remaining_budget(&self) -> Option<u64> {
        self.client.remaining_budget()
    }

    fn is_cached(&self, u: NodeId) -> bool {
        self.state.cache.contains_key(&u.0) || self.client.is_cached(u)
    }
}

/// Outcome of the coalesced driver ([`drive_coalesced`]).
pub(crate) struct CoalescedOutcome {
    pub(crate) cells: Vec<Cell>,
    pub(crate) restarts: Vec<RestartEvent>,
    pub(crate) rounds: usize,
    pub(crate) state: DispatchState,
    /// Interface-side accounting delta for this run.
    pub(crate) interface: QueryStats,
}

/// The coalesced driver: deterministic rounds of **policy → gather → dedup
/// → charge → fan-out** against a batch endpoint. Identical to the serial
/// driver's round structure, with the unique parked ids fanned out in
/// window-respecting batches before the walkers step; the policy runs
/// before the gather so a restarted walker's first fetch rides the same
/// coalesced batch as everyone else's requests.
pub(crate) fn drive_coalesced<B, R, F, P>(
    client: &mut B,
    walkers: &mut [&mut dyn RandomWalk],
    rngs: &mut [R],
    max_steps: usize,
    node_attempt_cap: u32,
    value: Option<&F>,
    policy: &P,
) -> CoalescedOutcome
where
    B: BatchOsnClient,
    R: RngCore,
    F: Fn(NodeId) -> f64 + ?Sized,
    P: RestartPolicy + ?Sized,
{
    let k = walkers.len();
    assert_eq!(k, rngs.len(), "one RNG stream per walker");
    policy.begin_run(k);
    let interface_before = client.stats();
    let mut state = DispatchState::default();
    let mut cells: Vec<Cell> = (0..k).map(|_| Cell::new(0)).collect();
    let mut restarts = Vec::new();
    let mut rounds = 0usize;
    let mut active: Vec<usize> = (0..k).collect();

    while coalesced_round(
        client,
        walkers,
        rngs,
        max_steps,
        node_attempt_cap,
        value,
        policy,
        &mut state,
        &mut cells,
        &mut restarts,
        &mut active,
    ) {
        rounds += 1;
    }

    let mut interface = client.stats();
    interface.issued -= interface_before.issued;
    interface.unique -= interface_before.unique;
    interface.cache_hits -= interface_before.cache_hits;
    CoalescedOutcome {
        cells,
        restarts,
        rounds,
        state,
        interface,
    }
}

/// One deterministic round of the coalesced driver: **policy → gather →
/// dedup → charge → fan-out**. Returns `false` (doing nothing) once every
/// walker is done. Shared by [`drive_coalesced`] and the resumable
/// [`CoalescedWalkRun`], so the sliced execution path cannot drift from
/// the one-shot driver.
#[allow(clippy::too_many_arguments)]
fn coalesced_round<B, R, F, P>(
    client: &mut B,
    walkers: &mut [&mut dyn RandomWalk],
    rngs: &mut [R],
    max_steps: usize,
    node_attempt_cap: u32,
    value: Option<&F>,
    policy: &P,
    state: &mut DispatchState,
    cells: &mut [Cell],
    restarts: &mut Vec<RestartEvent>,
    active: &mut Vec<usize>,
) -> bool
where
    B: BatchOsnClient,
    R: RngCore,
    F: Fn(NodeId) -> f64 + ?Sized,
    P: RestartPolicy + ?Sized,
{
    active.retain(|&i| cells[i].live(max_steps));
    if active.is_empty() {
        return false;
    }
    // Policy: restart decisions happen *before* the gather, so a
    // relocated walker's new position joins this round's batch.
    if policy.enabled() {
        for &i in &*active {
            let cached = |u: NodeId| state.cache.contains_key(&u.0) || client.is_cached(u);
            let degree_of = |u: NodeId| client.peek_degree(u);
            maybe_restart(
                i,
                &mut *walkers[i],
                &cells[i],
                policy,
                &degree_of,
                &cached,
                restarts,
            );
        }
    }
    // Gather + dedup: the node each active walker is parked on, in
    // walker order, minus ids already cached or refused.
    let mut pending: VecDeque<NodeId> = VecDeque::new();
    let mut queued: FnvHashSet<u32> = FnvHashSet::default();
    for &i in &*active {
        let u = walkers[i].current();
        if !state.cache.contains_key(&u.0) && !state.refused.contains(&u.0) && queued.insert(u.0) {
            pending.push_back(u);
        }
    }
    // Charge: fan the deduped ids out through the batch endpoint.
    fetch_all(client, pending, state, node_attempt_cap);
    // Fan-out: step every active walker from its own RNG stream.
    for &i in &*active {
        if state.refused.contains(&walkers[i].current().0) {
            // The node this walker needs was refused (budget) or
            // abandoned (dead interface): terminate it, exactly as a
            // serial walk ends on its first refused query — unless the
            // policy rescues it, in which case it resumes from the
            // next round (the serial driver also charges a refusal one
            // lost step, keeping the two schedules aligned) and its
            // new position rides the next round's batch.
            cells[i].stop = Some(WalkStop::BudgetExhausted);
            if policy.enabled() {
                let cached = |u: NodeId| state.cache.contains_key(&u.0) || client.is_cached(u);
                maybe_rescue(
                    i,
                    &mut *walkers[i],
                    &mut cells[i],
                    policy,
                    &cached,
                    restarts,
                );
            }
            continue;
        }
        let mut view = PrefetchedClient {
            client: &mut *client,
            state: &mut *state,
            node_attempt_cap,
        };
        advance_walker(
            i,
            &mut *walkers[i],
            &mut rngs[i],
            &mut view,
            value,
            policy,
            &mut cells[i],
        );
        if policy.enabled() && cells[i].stop.is_some() {
            // Off-protocol refusal surfaced mid-step: same rescue offer.
            let cached = |u: NodeId| state.cache.contains_key(&u.0) || client.is_cached(u);
            maybe_rescue(
                i,
                &mut *walkers[i],
                &mut cells[i],
                policy,
                &cached,
                restarts,
            );
        }
    }
    true
}

/// Outcome of an orchestrated run, uniform across backends.
#[derive(Clone, Debug)]
pub struct OrchestratorReport {
    /// Per-walker visit sequences plus walker-side accounting (for the
    /// coalesced backend this is the serial-shaped view; see
    /// [`Self::interface`]).
    pub trace: MultiWalkTrace,
    /// Per-walker ratio estimators merged in walker-index order.
    pub estimate: RatioEstimator,
    /// Why each walker stopped, in walker order.
    pub stops: Vec<WalkStop>,
    /// Every restart the policy performed, in schedule order (round-based
    /// backends) or walker-then-step order (threaded backend).
    pub restarts: Vec<RestartEvent>,
    /// Scheduling waves executed by the round-based backends (`0` for the
    /// threaded backend, which has no rounds).
    pub rounds: usize,
    /// Interface-side accounting of the coalesced backend (`None` for the
    /// serial and threaded backends, whose walker-side stats *are* the
    /// interface stats).
    pub interface: Option<QueryStats>,
    /// Nodes the budget refused (coalesced backend; each terminated the
    /// walkers parked on it).
    pub refused_nodes: usize,
    /// Nodes abandoned after repeated permanent drops (coalesced backend).
    pub abandoned_nodes: usize,
}

impl OrchestratorReport {
    /// Fold per-walker cells into the uniform report shape: estimators
    /// merged and stops defaulted in walker-index order. The compatibility
    /// wrappers in `multiwalk` reuse this fold so they cannot drift from
    /// the unified API.
    pub(crate) fn from_cells(
        cells: Vec<Cell>,
        restarts: Vec<RestartEvent>,
        rounds: usize,
        stats: QueryStats,
    ) -> Self {
        let mut per_walker = Vec::with_capacity(cells.len());
        let mut estimate = RatioEstimator::new();
        let mut stops = Vec::with_capacity(cells.len());
        for cell in cells {
            estimate.merge(&cell.est);
            stops.push(cell.stop.unwrap_or(WalkStop::MaxSteps));
            per_walker.push(cell.trace);
        }
        OrchestratorReport {
            trace: MultiWalkTrace { per_walker, stats },
            estimate,
            stops,
            restarts,
            rounds,
            interface: None,
            refused_nodes: 0,
            abandoned_nodes: 0,
        }
    }
}

/// The unified entry point: owns the fleet size, the per-walker step cap,
/// the SplitMix64-derived per-walker RNG streams, and the history-backend
/// knob — then runs the fleet on the execution backend of your choice under
/// a [`RestartPolicy`]. See the module docs for the backend × policy
/// matrix.
///
/// ```
/// use osn_client::SimulatedOsn;
/// use osn_graph::{generators::barbell, NodeId};
/// use osn_walks::orchestrator::{Never, WalkOrchestrator};
/// use osn_walks::{Cnrw, RandomWalk};
///
/// let mut client = SimulatedOsn::from_graph(barbell(8, 8).unwrap());
/// let report = WalkOrchestrator::new(4, 200, 7).run_serial(
///     &mut client,
///     |i, backend| {
///         Box::new(Cnrw::with_backend(NodeId(i as u32 * 3), backend)) as Box<dyn RandomWalk + Send>
///     },
///     |v| v.index() as f64,
///     &Never,
/// );
/// assert_eq!(report.trace.per_walker.len(), 4);
/// assert!(report.restarts.is_empty());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WalkOrchestrator {
    walkers: usize,
    max_steps_per_walker: usize,
    seed: u64,
    backend: HistoryBackend,
}

impl WalkOrchestrator {
    /// Orchestrate `walkers` walkers (at least 1), each performing at most
    /// `max_steps_per_walker` transitions, with RNG streams derived from
    /// `seed`.
    pub fn new(walkers: usize, max_steps_per_walker: usize, seed: u64) -> Self {
        WalkOrchestrator {
            walkers: walkers.max(1),
            max_steps_per_walker,
            seed,
            backend: HistoryBackend::default(),
        }
    }

    /// Choose the history backend handed to the walker factory (the
    /// ablation knob of the backend benches).
    #[must_use]
    pub fn with_backend(mut self, backend: HistoryBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The history backend handed to the walker factory.
    pub fn backend(&self) -> HistoryBackend {
        self.backend
    }

    /// Fleet size.
    pub fn walker_count(&self) -> usize {
        self.walkers
    }

    /// Per-walker step cap.
    pub fn max_steps_per_walker(&self) -> usize {
        self.max_steps_per_walker
    }

    /// The deterministic RNG seed for walker `i`'s private stream — the
    /// same SplitMix64 derivation every run mode in the workspace uses.
    pub fn walker_seed(&self, i: usize) -> u64 {
        osn_graph::mix::splitmix64_stream(self.seed, i as u64)
    }

    pub(crate) fn build_fleet<W>(
        &self,
        make_walker: W,
    ) -> (Vec<Box<dyn RandomWalk + Send>>, Vec<ChaCha12Rng>)
    where
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
    {
        let walkers = (0..self.walkers)
            .map(|i| make_walker(i, self.backend))
            .collect();
        let rngs = (0..self.walkers)
            .map(|i| ChaCha12Rng::seed_from_u64(self.walker_seed(i)))
            .collect();
        (walkers, rngs)
    }

    /// Run the fleet round-robin on the calling thread against one client.
    ///
    /// `make_walker(i, backend)` builds walker `i` on the orchestrator's
    /// [`HistoryBackend`]; `value(v)` is the quantity being estimated at
    /// node `v`. Fully deterministic — including the restart schedule —
    /// given the seed.
    pub fn run_serial<C, W, F, P>(
        &self,
        client: &mut C,
        make_walker: W,
        value: F,
        policy: &P,
    ) -> OrchestratorReport
    where
        C: OsnClient,
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
        F: Fn(NodeId) -> f64,
        P: RestartPolicy + ?Sized,
    {
        let (mut fleet, mut rngs) = self.build_fleet(make_walker);
        let mut refs: Vec<&mut dyn RandomWalk> =
            fleet.iter_mut().map(|w| w.as_mut() as _).collect();
        let outcome = drive_round_robin(
            client,
            &mut refs,
            &mut rngs,
            self.max_steps_per_walker,
            Some(&value),
            policy,
        );
        OrchestratorReport::from_cells(
            outcome.cells,
            outcome.restarts,
            outcome.rounds,
            client.stats(),
        )
    }

    /// Run the fleet on one scoped OS thread per walker against cloned
    /// handles of a thread-safe client (built for
    /// [`osn_client::SharedOsn`]: clones share the cache, accounting, and
    /// optional atomic budget).
    ///
    /// Per-walker traces are bit-identical to serial replay under [`Never`]
    /// (absent a shared budget); under [`WorkStealing`] the restart
    /// schedule depends on thread interleaving — see the module docs.
    ///
    /// # Panics
    /// Propagates a panic from any walker thread after all threads joined.
    pub fn run_threaded<C, W, F, P>(
        &self,
        client: &C,
        make_walker: W,
        value: F,
        policy: &P,
    ) -> OrchestratorReport
    where
        C: OsnClient + Clone + Send,
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send> + Sync,
        F: Fn(NodeId) -> f64 + Sync,
        P: RestartPolicy + ?Sized,
    {
        let max_steps = self.max_steps_per_walker;
        let backend = self.backend;
        policy.begin_run(self.walkers);
        let (cells, restarts) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.walkers)
                .map(|i| {
                    let mut client = client.clone();
                    let make_walker = &make_walker;
                    let value = &value;
                    let rng_seed = self.walker_seed(i);
                    scope.spawn(move || {
                        let mut walker = make_walker(i, backend);
                        let mut rng = ChaCha12Rng::seed_from_u64(rng_seed);
                        let mut cell = Cell::new(0);
                        let mut restarts = Vec::new();
                        while cell.live(max_steps) {
                            advance_walker(
                                i,
                                walker.as_mut(),
                                &mut rng,
                                &mut client,
                                Some(value),
                                policy,
                                &mut cell,
                            );
                            if policy.enabled() {
                                let cached = |u: NodeId| client.is_cached(u);
                                if cell.stop.is_some() {
                                    maybe_rescue(
                                        i,
                                        walker.as_mut(),
                                        &mut cell,
                                        policy,
                                        &cached,
                                        &mut restarts,
                                    );
                                } else {
                                    let degree_of = |u: NodeId| client.peek_degree(u);
                                    maybe_restart(
                                        i,
                                        walker.as_mut(),
                                        &cell,
                                        policy,
                                        &degree_of,
                                        &cached,
                                        &mut restarts,
                                    );
                                }
                            }
                        }
                        (cell, restarts)
                    })
                })
                .collect();
            // Join in walker-index order: the merge order (and therefore
            // the merged floating-point sums) never depends on which thread
            // finished first.
            let mut cells = Vec::with_capacity(self.walkers);
            let mut all_restarts = Vec::new();
            for handle in handles {
                let (cell, restarts) = handle.join().expect("walker thread panicked");
                all_restarts.extend(restarts);
                cells.push(cell);
            }
            (cells, all_restarts)
        });
        OrchestratorReport::from_cells(cells, restarts, 0, client.stats())
    }

    /// Run the fleet against a batch endpoint through the coalescing
    /// queue: deterministic rounds of policy → gather → dedup → charge →
    /// fan-out, walker `i` consuming the identical RNG stream the other
    /// backends use, so per-walker traces under [`Never`] are bit-identical
    /// across all three modes (absent a budget).
    pub fn run_coalesced<B, W, F, P>(
        &self,
        client: &mut B,
        make_walker: W,
        value: F,
        policy: &P,
    ) -> OrchestratorReport
    where
        B: BatchOsnClient,
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
        F: Fn(NodeId) -> f64,
        P: RestartPolicy + ?Sized,
    {
        let (mut fleet, mut rngs) = self.build_fleet(make_walker);
        let mut refs: Vec<&mut dyn RandomWalk> =
            fleet.iter_mut().map(|w| w.as_mut() as _).collect();
        let outcome = drive_coalesced(
            client,
            &mut refs,
            &mut rngs,
            self.max_steps_per_walker,
            DEFAULT_NODE_ATTEMPT_CAP,
            Some(&value),
            policy,
        );
        let mut report = OrchestratorReport::from_cells(
            outcome.cells,
            outcome.restarts,
            outcome.rounds,
            outcome.state.stats,
        );
        report.interface = Some(outcome.interface);
        report.refused_nodes = outcome.state.refused_nodes;
        report.abandoned_nodes = outcome.state.abandoned_nodes;
        report
    }

    /// The snapshot-embedded description of this orchestrator's
    /// construction-time spec, checked (not restored) at resume time:
    /// resuming requires reconstructing the *same* run.
    pub(crate) fn spec_value(&self) -> Value {
        Value::obj([
            ("walkers", Value::Uint(self.walkers as u64)),
            ("max_steps", Value::Uint(self.max_steps_per_walker as u64)),
            ("seed", Value::Uint(self.seed)),
            ("backend", Value::Str(self.backend.label().into())),
        ])
    }

    pub(crate) fn check_spec(&self, spec: &Value) -> Result<(), String> {
        let walkers: usize = spec.field("walkers")?.decode()?;
        let max_steps: usize = spec.field("max_steps")?.decode()?;
        let seed: u64 = spec.field("seed")?.decode()?;
        let backend = spec.field("backend")?.as_str()?;
        if walkers != self.walkers {
            return Err(format!(
                "orchestrator spec mismatch: snapshot has {walkers} walkers, this orchestrator {}",
                self.walkers
            ));
        }
        if max_steps != self.max_steps_per_walker {
            return Err(format!(
                "orchestrator spec mismatch: snapshot caps walkers at {max_steps} steps, this orchestrator at {}",
                self.max_steps_per_walker
            ));
        }
        if seed != self.seed {
            return Err(format!(
                "orchestrator spec mismatch: snapshot seed {seed}, this orchestrator {}",
                self.seed
            ));
        }
        if backend != self.backend.label() {
            return Err(format!(
                "orchestrator spec mismatch: snapshot backend `{backend}`, this orchestrator `{}`",
                self.backend.label()
            ));
        }
        Ok(())
    }

    /// Begin a pausable serial run (see [`SerialWalkRun`]). Driving it to
    /// completion is bit-identical to [`Self::run_serial`] under [`Never`].
    pub fn start_serial<W>(&self, make_walker: W) -> SerialWalkRun
    where
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
    {
        let (fleet, rngs) = self.build_fleet(make_walker);
        SerialWalkRun {
            spec: *self,
            fleet,
            rngs,
            cells: (0..self.walkers).map(|_| Cell::new(0)).collect(),
            rounds: 0,
            active: (0..self.walkers).collect(),
        }
    }

    /// Restore a [`SerialWalkRun`] from a [`SerialWalkRun::snapshot`]
    /// value. The orchestrator spec (fleet size, step cap, seed, history
    /// backend) must match the one that produced the snapshot, and
    /// `make_walker` must rebuild walkers of the same algorithm/strategy —
    /// walker state import fails loudly on backend mismatches, but the
    /// algorithm itself is the caller's contract, exactly as for
    /// [`RandomWalk::import_state`].
    pub fn resume_serial<W>(&self, state: &Value, make_walker: W) -> Result<SerialWalkRun, String>
    where
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
    {
        let (fleet, rngs, cells, rounds) =
            self.resume_fleet(state, "serial", "rounds", make_walker)?;
        Ok(SerialWalkRun {
            spec: *self,
            fleet,
            rngs,
            cells,
            rounds,
            active: (0..self.walkers).collect(),
        })
    }

    /// Begin a pausable coalesced run against a batch endpoint (see
    /// [`CoalescedWalkRun`]). Driving it to completion is bit-identical to
    /// [`Self::run_coalesced`] under [`Never`].
    pub fn start_coalesced<W>(&self, make_walker: W) -> CoalescedWalkRun
    where
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
    {
        let (fleet, rngs) = self.build_fleet(make_walker);
        CoalescedWalkRun {
            spec: *self,
            fleet,
            rngs,
            cells: (0..self.walkers).map(|_| Cell::new(0)).collect(),
            rounds: 0,
            active: (0..self.walkers).collect(),
            state: DispatchState::default(),
            node_attempt_cap: DEFAULT_NODE_ATTEMPT_CAP,
            interface_base: None,
        }
    }

    /// Restore a [`CoalescedWalkRun`] from a [`CoalescedWalkRun::snapshot`]
    /// value — including the dispatcher cache, so already-fetched neighbor
    /// lists are not re-charged after resume. Spec and walker contracts are
    /// as for [`Self::resume_serial`].
    pub fn resume_coalesced<W>(
        &self,
        state: &Value,
        make_walker: W,
    ) -> Result<CoalescedWalkRun, String>
    where
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
    {
        let (fleet, rngs, cells, rounds) =
            self.resume_fleet(state, "coalesced", "rounds", make_walker)?;
        let dispatch = dispatch_from_value(state.field("dispatch")?)?;
        let node_attempt_cap: u32 = state.field("attempt_cap")?.decode()?;
        Ok(CoalescedWalkRun {
            spec: *self,
            fleet,
            rngs,
            cells,
            rounds,
            active: (0..self.walkers).collect(),
            state: dispatch,
            node_attempt_cap,
            interface_base: None,
        })
    }

    /// The fleet-restoration core shared by both resume entry points.
    #[allow(clippy::type_complexity)]
    pub(crate) fn resume_fleet<W>(
        &self,
        state: &Value,
        kind: &str,
        counter: &str,
        make_walker: W,
    ) -> Result<
        (
            Vec<Box<dyn RandomWalk + Send>>,
            Vec<ChaCha12Rng>,
            Vec<Cell>,
            usize,
        ),
        String,
    >
    where
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
    {
        let found = state.field("kind")?.as_str()?;
        if found != kind {
            return Err(format!(
                "snapshot kind mismatch: `{found}`, expected `{kind}`"
            ));
        }
        self.check_spec(state.field("spec")?)?;
        let rounds: usize = state.field(counter)?.decode()?;
        let walker_states = state.field("walkers")?.as_array()?;
        let rng_states = state.field("rngs")?.as_array()?;
        let cell_states = state.field("cells")?.as_array()?;
        if walker_states.len() != self.walkers
            || rng_states.len() != self.walkers
            || cell_states.len() != self.walkers
        {
            return Err(format!(
                "snapshot fleet size mismatch: {} walker / {} rng / {} cell states for a {}-walker run",
                walker_states.len(),
                rng_states.len(),
                cell_states.len(),
                self.walkers
            ));
        }
        let mut fleet = Vec::with_capacity(self.walkers);
        for (i, ws) in walker_states.iter().enumerate() {
            let mut walker = make_walker(i, self.backend);
            walker
                .import_state(ws)
                .map_err(|e| format!("walker {i}: {e}"))?;
            fleet.push(walker);
        }
        let rngs = rng_states
            .iter()
            .map(rng_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let cells = cell_states
            .iter()
            .map(cell_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok((fleet, rngs, cells, rounds))
    }
}

// ---------------------------------------------------------------------------
// Resumable runs: pause between rounds, snapshot the whole run to an
// `osn-serde` [`Value`], resume bit-identically — the execution substrate
// of the `osn-service` job server.
// ---------------------------------------------------------------------------

pub(crate) fn nodes_to_value(nodes: &[NodeId]) -> Value {
    Value::Arr(nodes.iter().map(|n| Value::Uint(u64::from(n.0))).collect())
}

pub(crate) fn nodes_from_value(value: &Value) -> Result<Vec<NodeId>, String> {
    value
        .as_array()?
        .iter()
        .map(|v| Ok(NodeId(v.decode::<u32>()?)))
        .collect()
}

/// Hash sets hold membership only — serialize sorted so snapshots are
/// byte-deterministic.
fn sorted_set_value(set: &FnvHashSet<u32>) -> Value {
    let mut ids: Vec<u32> = set.iter().copied().collect();
    ids.sort_unstable();
    Value::Arr(ids.into_iter().map(|u| Value::Uint(u64::from(u))).collect())
}

fn set_from_value(value: &Value) -> Result<FnvHashSet<u32>, String> {
    let mut set = FnvHashSet::default();
    for v in value.as_array()? {
        if !set.insert(v.decode::<u32>()?) {
            return Err("duplicate id in serialized set".into());
        }
    }
    Ok(set)
}

pub(crate) fn rng_to_value(rng: &ChaCha12Rng) -> Value {
    Value::Arr(rng.get_state().iter().map(|&w| Value::Uint(w)).collect())
}

pub(crate) fn rng_from_value(value: &Value) -> Result<ChaCha12Rng, String> {
    let words = value.as_array()?;
    if words.len() != 4 {
        return Err(format!("RNG state must hold 4 words, got {}", words.len()));
    }
    let mut state = [0u64; 4];
    for (slot, word) in state.iter_mut().zip(words) {
        *slot = word.decode()?;
    }
    Ok(ChaCha12Rng::from_state(state))
}

fn stop_to_value(stop: Option<WalkStop>) -> Value {
    match stop {
        None => Value::Null,
        Some(WalkStop::MaxSteps) => Value::Str("max-steps".into()),
        Some(WalkStop::BudgetExhausted) => Value::Str("budget-exhausted".into()),
    }
}

fn stop_from_value(value: &Value) -> Result<Option<WalkStop>, String> {
    match value {
        Value::Null => Ok(None),
        other => match other.as_str()? {
            "max-steps" => Ok(Some(WalkStop::MaxSteps)),
            "budget-exhausted" => Ok(Some(WalkStop::BudgetExhausted)),
            unknown => Err(format!("unknown walk stop `{unknown}`")),
        },
    }
}

pub(crate) fn cell_to_value(cell: &Cell) -> Value {
    let (weighted_sum, weight_total, count) = cell.est.parts();
    Value::obj([
        ("trace", nodes_to_value(&cell.trace)),
        (
            "est",
            Value::obj([
                ("weighted_sum", Value::Num(weighted_sum)),
                ("weight_total", Value::Num(weight_total)),
                ("count", Value::Uint(count as u64)),
            ]),
        ),
        ("stop", stop_to_value(cell.stop)),
    ])
}

pub(crate) fn cell_from_value(value: &Value) -> Result<Cell, String> {
    let est = value.field("est")?;
    Ok(Cell {
        trace: nodes_from_value(value.field("trace")?)?,
        est: RatioEstimator::from_parts(
            est.field("weighted_sum")?.decode()?,
            est.field("weight_total")?.decode()?,
            est.field("count")?.decode()?,
        ),
        stop: stop_from_value(value.field("stop")?)?,
    })
}

fn stats_to_value(stats: QueryStats) -> Value {
    Value::obj([
        ("issued", Value::Uint(stats.issued)),
        ("unique", Value::Uint(stats.unique)),
        ("cache_hits", Value::Uint(stats.cache_hits)),
    ])
}

fn stats_from_value(value: &Value) -> Result<QueryStats, String> {
    Ok(QueryStats {
        issued: value.field("issued")?.decode()?,
        unique: value.field("unique")?.decode()?,
        cache_hits: value.field("cache_hits")?.decode()?,
    })
}

pub(crate) fn dispatch_to_value(state: &DispatchState) -> Value {
    let mut cache: Vec<(&u32, &Vec<NodeId>)> = state.cache.iter().collect();
    cache.sort_unstable_by_key(|(u, _)| **u);
    let mut attempts: Vec<(&u32, &u32)> = state.node_attempts.iter().collect();
    attempts.sort_unstable_by_key(|(u, _)| **u);
    Value::obj([
        (
            "cache",
            Value::Arr(
                cache
                    .into_iter()
                    .map(|(u, neighbors)| {
                        Value::obj([
                            ("node", Value::Uint(u64::from(*u))),
                            ("neighbors", nodes_to_value(neighbors)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("refused", sorted_set_value(&state.refused)),
        (
            "attempts",
            Value::Arr(
                attempts
                    .into_iter()
                    .map(|(u, n)| {
                        Value::obj([
                            ("node", Value::Uint(u64::from(*u))),
                            ("count", Value::Uint(u64::from(*n))),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("seen", sorted_set_value(&state.seen)),
        ("stats", stats_to_value(state.stats)),
        ("refused_nodes", Value::Uint(state.refused_nodes as u64)),
        ("abandoned_nodes", Value::Uint(state.abandoned_nodes as u64)),
        (
            "budget",
            match state.budget_in_force {
                Some(b) => Value::Uint(b),
                None => Value::Null,
            },
        ),
    ])
}

pub(crate) fn dispatch_from_value(value: &Value) -> Result<DispatchState, String> {
    let mut cache = FnvHashMap::default();
    for entry in value.field("cache")?.as_array()? {
        let node: u32 = entry.field("node")?.decode()?;
        let neighbors = nodes_from_value(entry.field("neighbors")?)?;
        if cache.insert(node, neighbors).is_some() {
            return Err(format!("duplicate cache entry for node {node}"));
        }
    }
    let mut node_attempts = FnvHashMap::default();
    for entry in value.field("attempts")?.as_array()? {
        let node: u32 = entry.field("node")?.decode()?;
        let count: u32 = entry.field("count")?.decode()?;
        if node_attempts.insert(node, count).is_some() {
            return Err(format!("duplicate attempt entry for node {node}"));
        }
    }
    Ok(DispatchState {
        cache,
        refused: set_from_value(value.field("refused")?)?,
        node_attempts,
        seen: set_from_value(value.field("seen")?)?,
        stats: stats_from_value(value.field("stats")?)?,
        refused_nodes: value.field("refused_nodes")?.decode()?,
        abandoned_nodes: value.field("abandoned_nodes")?.decode()?,
        budget_in_force: match value.field("budget")? {
            Value::Null => None,
            other => Some(other.decode()?),
        },
    })
}

/// A serial orchestrated run that pauses between scheduling rounds,
/// snapshots to an `osn-serde` [`Value`], and resumes **bit-identically** —
/// the execution substrate of the `osn-service` job server, where many
/// concurrent jobs advance in interleaved round slices and a killed server
/// must restore every job mid-walk.
///
/// Semantically this is [`WalkOrchestrator::run_serial`] under the
/// [`Never`] policy, sliced: driving a run to completion produces the
/// identical traces, estimate, and stops (pinned by the facade-level
/// resume suite). Restart policies are intentionally **not** supported on
/// the resumable path — [`WorkStealing`] keeps non-serializable interior
/// diagnostics (the windowed split-R̂ accumulators, per-walker visit
/// filters, the lock-striped frontier), so a mid-run snapshot could not
/// restore the restart schedule. Use [`WalkOrchestrator::run_serial`] for
/// policy-driven runs.
pub struct SerialWalkRun {
    spec: WalkOrchestrator,
    fleet: Vec<Box<dyn RandomWalk + Send>>,
    rngs: Vec<ChaCha12Rng>,
    cells: Vec<Cell>,
    rounds: usize,
    active: Vec<usize>,
}

impl SerialWalkRun {
    /// Whether every walker has finished (step cap reached or budget
    /// refused). Further [`Self::run_rounds`] calls are no-ops.
    pub fn done(&self) -> bool {
        let max = self.spec.max_steps_per_walker;
        self.cells.iter().all(|c| !c.live(max))
    }

    /// Scheduling rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total transitions performed across the fleet so far.
    pub fn steps_taken(&self) -> usize {
        self.cells.iter().map(|c| c.trace.len()).sum()
    }

    /// Advance up to `rounds` scheduling waves against `client`, returning
    /// the number actually executed (fewer once the fleet finishes).
    /// `value` must be the same function across slices for the estimate to
    /// mean anything; pass `usize::MAX` to drive the run to completion.
    pub fn run_rounds<C, F>(&mut self, client: &mut C, value: &F, rounds: usize) -> usize
    where
        C: OsnClient,
        F: Fn(NodeId) -> f64 + ?Sized,
    {
        let mut refs: Vec<&mut dyn RandomWalk> =
            self.fleet.iter_mut().map(|w| w.as_mut() as _).collect();
        let mut no_restarts = Vec::new();
        let mut executed = 0;
        while executed < rounds
            && serial_round(
                client,
                &mut refs,
                &mut self.rngs,
                self.spec.max_steps_per_walker,
                Some(value),
                &Never,
                &mut self.cells,
                &mut no_restarts,
                &mut self.active,
            )
        {
            executed += 1;
            self.rounds += 1;
        }
        executed
    }

    /// Notify the fleet that each node in `nodes` had an incident edge
    /// inserted or deleted (through an [`osn_graph::DeltaOverlay`] applied
    /// to the client): every walker drops the circulation state keyed by
    /// that node, so coverage restarts on the post-mutation neighborhood.
    /// The serial backend holds no dispatcher cache — the client itself is
    /// the source of truth for neighbor lists. Returns the total number of
    /// per-edge histories dropped across the fleet.
    pub fn invalidate_nodes(&mut self, nodes: &[NodeId]) -> usize {
        let mut dropped = 0;
        for w in &mut self.fleet {
            for &v in nodes {
                dropped += w.invalidate_node(v);
            }
        }
        dropped
    }

    /// Serialize the complete run state — walker positions and circulation
    /// histories, RNG stream words, per-walker traces, estimator
    /// accumulators, stop flags, round counter — as a byte-deterministic
    /// [`Value`]. Restore with [`WalkOrchestrator::resume_serial`].
    pub fn snapshot(&self) -> Value {
        Value::obj([
            ("kind", Value::Str("serial".into())),
            ("spec", self.spec.spec_value()),
            ("rounds", Value::Uint(self.rounds as u64)),
            (
                "walkers",
                Value::Arr(self.fleet.iter().map(|w| w.export_state()).collect()),
            ),
            (
                "rngs",
                Value::Arr(self.rngs.iter().map(rng_to_value).collect()),
            ),
            (
                "cells",
                Value::Arr(self.cells.iter().map(cell_to_value).collect()),
            ),
        ])
    }

    /// Fold the run into the uniform report shape. `stats` is the client's
    /// accounting (the serial backend's walker-side stats *are* the
    /// interface stats, exactly as in [`WalkOrchestrator::run_serial`]).
    pub fn into_report(self, stats: QueryStats) -> OrchestratorReport {
        OrchestratorReport::from_cells(self.cells, Vec::new(), self.rounds, stats)
    }
}

/// A coalesced orchestrated run that pauses between rounds and snapshots —
/// the batched sibling of [`SerialWalkRun`], carrying the dispatcher state
/// (shared cache, refusals, resubmission counts, walker-side accounting)
/// through the snapshot so a resumed run re-charges nothing it already
/// paid for. Driving it to completion is bit-identical to
/// [`WalkOrchestrator::run_coalesced`] under [`Never`].
pub struct CoalescedWalkRun {
    spec: WalkOrchestrator,
    fleet: Vec<Box<dyn RandomWalk + Send>>,
    rngs: Vec<ChaCha12Rng>,
    cells: Vec<Cell>,
    rounds: usize,
    active: Vec<usize>,
    state: DispatchState,
    node_attempt_cap: u32,
    /// Endpoint accounting at the first `run_rounds` call of this process
    /// lifetime, so [`Self::into_report`] reports the interface delta this
    /// run (segment) caused. Not serialized: endpoint counters do not
    /// survive the process, so a resumed segment's delta starts fresh.
    interface_base: Option<QueryStats>,
}

impl CoalescedWalkRun {
    /// Whether every walker has finished.
    pub fn done(&self) -> bool {
        let max = self.spec.max_steps_per_walker;
        self.cells.iter().all(|c| !c.live(max))
    }

    /// Scheduling rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total transitions performed across the fleet so far.
    pub fn steps_taken(&self) -> usize {
        self.cells.iter().map(|c| c.trace.len()).sum()
    }

    /// Walker-side accounting so far (the serial-shaped `issued` /
    /// `unique` / `cache_hits` view over the dispatcher cache).
    pub fn walker_stats(&self) -> QueryStats {
        self.state.stats
    }

    /// Cap on dispatcher-level resubmissions of a permanently-dropped node
    /// (default [`DEFAULT_NODE_ATTEMPT_CAP`]).
    #[must_use]
    pub fn with_node_attempt_cap(mut self, cap: u32) -> Self {
        self.node_attempt_cap = cap.max(1);
        self
    }

    /// Advance up to `rounds` deterministic **policy-free** rounds of
    /// gather → dedup → charge → fan-out against `client`, returning the
    /// number actually executed. Pass `usize::MAX` to drive to completion.
    pub fn run_rounds<B, F>(&mut self, client: &mut B, value: &F, rounds: usize) -> usize
    where
        B: BatchOsnClient,
        F: Fn(NodeId) -> f64 + ?Sized,
    {
        if self.interface_base.is_none() {
            self.interface_base = Some(client.stats());
        }
        let mut refs: Vec<&mut dyn RandomWalk> =
            self.fleet.iter_mut().map(|w| w.as_mut() as _).collect();
        let mut no_restarts = Vec::new();
        let mut executed = 0;
        while executed < rounds
            && coalesced_round(
                client,
                &mut refs,
                &mut self.rngs,
                self.spec.max_steps_per_walker,
                self.node_attempt_cap,
                Some(value),
                &Never,
                &mut self.state,
                &mut self.cells,
                &mut no_restarts,
                &mut self.active,
            )
        {
            executed += 1;
            self.rounds += 1;
        }
        executed
    }

    /// Notify the fleet that each node in `nodes` had an incident edge
    /// inserted or deleted (through an [`osn_graph::DeltaOverlay`] applied
    /// to the endpoint): every walker drops the circulation state keyed by
    /// that node, and the dispatcher cache evicts the node's neighbor list
    /// (plus its `seen` mark) so the next visit re-fetches — and re-charges
    /// — the post-mutation list honestly. Returns the total number of
    /// per-edge histories dropped across the fleet.
    pub fn invalidate_nodes(&mut self, nodes: &[NodeId]) -> usize {
        let mut dropped = 0;
        for &v in nodes {
            self.state.cache.remove(&v.0);
            self.state.seen.remove(&v.0);
            for w in &mut self.fleet {
                dropped += w.invalidate_node(v);
            }
        }
        dropped
    }

    /// Serialize the complete run state — fleet as in
    /// [`SerialWalkRun::snapshot`], plus the dispatcher cache/refusals/
    /// attempt counts/accounting. Restore with
    /// [`WalkOrchestrator::resume_coalesced`].
    pub fn snapshot(&self) -> Value {
        Value::obj([
            ("kind", Value::Str("coalesced".into())),
            ("spec", self.spec.spec_value()),
            ("rounds", Value::Uint(self.rounds as u64)),
            (
                "walkers",
                Value::Arr(self.fleet.iter().map(|w| w.export_state()).collect()),
            ),
            (
                "rngs",
                Value::Arr(self.rngs.iter().map(rng_to_value).collect()),
            ),
            (
                "cells",
                Value::Arr(self.cells.iter().map(cell_to_value).collect()),
            ),
            ("dispatch", dispatch_to_value(&self.state)),
            ("attempt_cap", Value::Uint(u64::from(self.node_attempt_cap))),
        ])
    }

    /// Fold the run into the uniform report shape, reading the endpoint's
    /// interface-side accounting delta for this process lifetime from
    /// `client` (deltas are measured from the first `run_rounds` call
    /// after construction or resume; endpoint counters do not survive the
    /// process).
    pub fn into_report<B: BatchOsnClient>(self, client: &B) -> OrchestratorReport {
        let refused_nodes = self.state.refused_nodes;
        let abandoned_nodes = self.state.abandoned_nodes;
        let mut report =
            OrchestratorReport::from_cells(self.cells, Vec::new(), self.rounds, self.state.stats);
        let mut interface = client.stats();
        if let Some(base) = self.interface_base {
            interface.issued -= base.issued;
            interface.unique -= base.unique;
            interface.cache_hits -= base.cache_hits;
        }
        report.interface = Some(interface);
        report.refused_nodes = refused_nodes;
        report.abandoned_nodes = abandoned_nodes;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walkers::{Cnrw, Srw};
    use osn_client::batch::{BatchConfig, SimulatedBatchOsn};
    use osn_client::{BudgetedClient, SharedOsn, SimulatedOsn};
    use osn_graph::generators::{barbell, clustered_cliques, ClusteredCliquesConfig};

    fn clustered_client() -> SimulatedOsn {
        SimulatedOsn::from_graph(
            clustered_cliques(&ClusteredCliquesConfig::default()).expect("static config"),
        )
    }

    #[test]
    fn serial_never_equals_threaded_never_bit_identically() {
        let orch = WalkOrchestrator::new(3, 200, 11);
        let make = |i: usize, b: HistoryBackend| {
            Box::new(Cnrw::with_backend(NodeId(i as u32 * 5), b)) as Box<dyn RandomWalk + Send>
        };
        let mut serial_client = SimulatedOsn::from_graph(barbell(9, 9).unwrap());
        let serial = orch.run_serial(&mut serial_client, make, |v| v.index() as f64, &Never);
        let shared = SharedOsn::new(SimulatedOsn::from_graph(barbell(9, 9).unwrap()));
        let threaded = orch.run_threaded(&shared, make, |v| v.index() as f64, &Never);
        assert_eq!(serial.trace.per_walker, threaded.trace.per_walker);
        assert_eq!(serial.estimate.count(), threaded.estimate.count());
        assert_eq!(serial.estimate.mean(), threaded.estimate.mean());
        assert!(serial.restarts.is_empty() && threaded.restarts.is_empty());
        assert_eq!(serial.rounds, 200);
        assert!(serial.stops.iter().all(|s| *s == WalkStop::MaxSteps));
    }

    #[test]
    fn work_stealing_restarts_trapped_walkers_deterministically() {
        // All walkers clumped in the 10-clique of the clustered graph: the
        // small clique is exhausted within a few dozen steps, and the only
        // way out (short of the sparse bridges) is stealing territory a
        // luckier walker published.
        let run = || {
            let policy = WorkStealing::new(1.1, 16, SharedFrontier::with_stripes(8, 16));
            let mut client = clustered_client();
            let report = WalkOrchestrator::new(4, 400, 5).run_serial(
                &mut client,
                |i, b| Box::new(Cnrw::with_backend(NodeId(i as u32 % 10), b)) as _,
                |v| v.index() as f64,
                &policy,
            );
            (report.restarts.clone(), report.trace.per_walker.clone())
        };
        let (restarts_a, traces_a) = run();
        let (restarts_b, traces_b) = run();
        assert_eq!(restarts_a, restarts_b, "restart schedule must be seeded");
        assert_eq!(traces_a, traces_b);
        assert!(
            !restarts_a.is_empty(),
            "clumped starts on the clustered graph must trigger stealing"
        );
        // Restart targets were published territory: visited by some walker.
        let visited: std::collections::HashSet<u32> = traces_a
            .iter()
            .flatten()
            .map(|v| v.0)
            .chain((0..4u32).map(|i| i % 10))
            .collect();
        for e in &restarts_a {
            assert!(
                visited.contains(&e.to.0),
                "stolen node {:?} never visited",
                e.to
            );
        }
    }

    #[test]
    fn serial_and_coalesced_work_stealing_schedules_match() {
        // Both round-based backends consult the policy at the same
        // boundaries over the same RNG streams: identical traces AND
        // identical restart schedules, batching notwithstanding.
        let make = |i: usize, b: HistoryBackend| {
            Box::new(Cnrw::with_backend(NodeId(i as u32 % 10), b)) as Box<dyn RandomWalk + Send>
        };
        let orch = WalkOrchestrator::new(4, 300, 9);
        let serial_policy = WorkStealing::new(1.1, 16, SharedFrontier::with_stripes(8, 16));
        let mut serial_client = clustered_client();
        let serial = orch.run_serial(
            &mut serial_client,
            make,
            |v| v.index() as f64,
            &serial_policy,
        );

        let coalesced_policy = WorkStealing::new(1.1, 16, SharedFrontier::with_stripes(8, 16));
        let mut batch_client =
            SimulatedBatchOsn::new(clustered_client(), BatchConfig::new(4).with_in_flight(2));
        let coalesced = orch.run_coalesced(
            &mut batch_client,
            make,
            |v| v.index() as f64,
            &coalesced_policy,
        );
        assert_eq!(serial.restarts, coalesced.restarts);
        assert_eq!(serial.trace.per_walker, coalesced.trace.per_walker);
        assert!(
            !serial.restarts.is_empty(),
            "scenario must exercise stealing"
        );
    }

    #[test]
    fn stealing_beats_never_on_coverage_with_clumped_starts() {
        let coverage = |steal: bool| {
            let policy: Box<dyn RestartPolicy> = if steal {
                Box::new(WorkStealing::new(
                    1.1,
                    16,
                    SharedFrontier::with_stripes(8, 16),
                ))
            } else {
                Box::new(Never)
            };
            let mut client = clustered_client();
            let report = WalkOrchestrator::new(4, 500, 3).run_serial(
                &mut client,
                |i, b| Box::new(Cnrw::with_backend(NodeId(i as u32 % 10), b)) as _,
                |v| v.index() as f64,
                policy.as_ref(),
            );
            report
                .trace
                .pooled()
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert!(
            coverage(true) >= coverage(false),
            "stealing must not reduce pooled coverage"
        );
    }

    #[test]
    fn budget_stops_are_reported_per_walker() {
        let g = barbell(10, 10).unwrap();
        let n = g.node_count();
        let mut client = BudgetedClient::new(SimulatedOsn::from_graph(g), 6, n);
        let report = WalkOrchestrator::new(2, 10_000, 1).run_serial(
            &mut client,
            |i, _| Box::new(Srw::new(NodeId(i as u32))) as _,
            |_| 1.0,
            &Never,
        );
        assert!(report.stops.iter().all(|s| *s == WalkStop::BudgetExhausted));
        assert!(report.trace.stats.unique <= 6);
    }

    #[test]
    fn never_policy_is_inert_and_object_safe() {
        let policy: &dyn RestartPolicy = &Never;
        assert!(!policy.enabled());
        assert_eq!(policy.restart_target(0, 64, NodeId(0), 3, &|_| true), None);
        assert_eq!(policy.rescue_target(0, 64, NodeId(0), &|_| true), None);
    }
}
