//! The poll-driven reactor backend: **10k+ walkers as state machines on
//! one loop, no threads, O(active batches) memory**.
//!
//! The threaded backend spends an OS thread (and a stack) per walker; the
//! coalesced backend proved walkers can park on I/O but still marches the
//! whole fleet through lock-step rounds. This module refactors the
//! per-walker step into an explicit state machine ([`WalkerFsm`]) whose
//! completion source is the [`BatchOsnClient`] `submit`/`poll` pair: one
//! reactor loop parks tens of thousands of walkers on in-flight batches and
//! advances exactly the walkers each completed batch unblocks. Memory
//! beyond the fleet itself is bounded by the endpoint's in-flight window
//! (tracked tickets × batch size) plus the queued-id backlog — there is no
//! per-walker stack, thread, or round-robin wave slot
//! ([`ReactorStats`] reports the observed peaks so soak tests can pin the
//! bound).
//!
//! ## The event loop
//!
//! One **turn** of the reactor core processes one completion event in five
//! phases, each deterministic:
//!
//! 1. **pump** — drain the retry/pending id queues into the endpoint's
//!    in-flight window as max-size batches (retries first, FIFO otherwise).
//! 2. **acquire** — `poll` the endpoint: the earliest-finishing in-flight
//!    request completes (*completion-time-ordered event delivery on the
//!    [`VirtualClock`]*, ties broken by ticket — see
//!    [`BatchOsnClient::next_ready_at`]). When nothing is in flight the
//!    turn is a *synthetic tick* driving walkers whose next neighbor list
//!    was already cached.
//! 3. **act** — the walkers unblocked by this event plus those left ready
//!    by the previous one step **in walker-index order** (the tiebreak that
//!    makes the schedule canonical). At most one step per walker per event,
//!    so policy cadences stay aligned with the round-based backends.
//! 4. **policy** — [`RestartPolicy`] checks run for every live walker in
//!    walker-index order, exactly where the coalesced backend consults the
//!    policy between rounds.
//! 5. **classify** — every walker that stepped (or was relocated) is
//!    parked on its new current node: already-cached or refused nodes make
//!    it ready for the next event, anything else enqueues (deduplicated)
//!    for the next pump.
//!
//! ## Determinism and equivalence
//!
//! Given a seed the whole schedule — traces, estimator pushes, charge
//! order, restart schedule — is a pure function of the endpoint's
//! completion times. When every wave fits one batch (`max_batch_size ≥`
//! fleet size) the reactor's events coincide 1:1 with the coalesced
//! backend's rounds and the two are **bit-identical** end to end: traces,
//! estimates, stops, charges, and restart schedules (pinned by the
//! `reactor_equivalence` suite). With smaller batches the reactor
//! pipelines waves through the in-flight window; under [`Never`] with no
//! budget the traces remain bit-identical (they are schedule-independent),
//! while budget charge order may legitimately diverge — the documented
//! boundary of the equivalence claim.
//!
//! [`VirtualClock`]: osn_client::VirtualClock

use std::collections::VecDeque;

use osn_client::batch::{BatchNodeError, BatchOsnClient, BatchOutcome, TicketId};
use osn_client::QueryStats;
use osn_graph::NodeId;
use osn_serde::Value;
use rand::RngCore;
use rand_chacha::ChaCha12Rng;

use crate::circulation::HistoryBackend;
use crate::fnv::{FnvHashMap, FnvHashSet};
use crate::orchestrator::{
    advance_walker, cell_to_value, dispatch_from_value, dispatch_to_value, maybe_rescue,
    maybe_restart, nodes_from_value, nodes_to_value, rng_to_value, Cell, DispatchState, Never,
    OrchestratorReport, PrefetchedClient, RestartEvent, RestartPolicy, WalkOrchestrator,
    DEFAULT_NODE_ATTEMPT_CAP,
};
use crate::walker::RandomWalk;
use crate::WalkStop;

/// The lifecycle of one walker inside the reactor loop.
///
/// ```text
///             ┌────────────────┐  node uncached: enqueue + park
///   start ──► │ NeedNeighbors  ├──────────────────┐
///             └──────┬─────────┘                  ▼
///                    │ node cached        ┌───────────────┐
///                    │ (or refused)       │ AwaitingBatch │
///                    ▼                    └──────┬────────┘
///             ┌────────────┐    batch resolved   │
///             │  Stepping  │ ◄───────────────────┘
///             └──────┬─────┘
///        step (act   │ phase, walker-index order)
///            ┌───────┴────────┬──────────────────┐
///            ▼                ▼                  ▼
///     NeedNeighbors         Done             Refused
///     (live: next wave)  (step cap)   (budget / dead interface;
///                                      a policy rescue returns it
///                                      to NeedNeighbors)
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkerFsm {
    /// Just stepped (or just started / just relocated): its current node
    /// has not yet been classified against the dispatcher cache. Transient
    /// — the classify phase immediately moves it on.
    NeedNeighbors,
    /// Parked: its current node's neighbor list is queued or in flight.
    AwaitingBatch,
    /// Its current node's neighbor list is resolved (delivered or refused);
    /// the walker acts at the next event.
    Stepping,
    /// Terminated: the node it needed was budget-refused or abandoned.
    Refused,
    /// Finished its step cap.
    Done,
}

/// Diagnostics of one reactor run — the memory-bound witnesses the soak
/// suite asserts against (everything beyond the fleet itself is bounded by
/// `peak_in_flight × max_batch_size + peak_queued + peak_parked` slots).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Completion events processed (synthetic ticks included). With
    /// single-batch waves this equals the coalesced backend's round count.
    pub events: usize,
    /// Events with nothing in flight (walkers stepping through
    /// already-cached territory).
    pub synthetic_ticks: usize,
    /// Most batches simultaneously in flight.
    pub peak_in_flight: usize,
    /// Most node ids simultaneously queued for fetch (pending + retry +
    /// in flight).
    pub peak_queued: usize,
    /// Most walkers simultaneously parked on in-flight or queued batches.
    pub peak_parked: usize,
}

/// The reactor's scheduling state: per-walker FSMs plus the queues that
/// connect them to the batch endpoint. Owns no walkers, cells, or
/// dispatcher cache — those stay in the same structures every other
/// backend uses, which is what makes the backends bit-comparable.
struct ReactorCore {
    max_steps: usize,
    node_attempt_cap: u32,
    fsm: Vec<WalkerFsm>,
    /// Walkers whose current node resolved, acting at the next event.
    ready: Vec<usize>,
    /// Walkers parked per node id they need.
    waiters: FnvHashMap<u32, Vec<usize>>,
    /// Ids awaiting first submission, FIFO.
    pending: VecDeque<NodeId>,
    /// Ids to resubmit after a per-id drop — drained before `pending`.
    retry: VecDeque<NodeId>,
    /// Every id currently in `pending`, `retry`, or in flight (dedup).
    queued: FnvHashSet<u32>,
    /// Tickets this reactor submitted, with their id lists — the repair
    /// map for off-protocol synchronous fetches (see [`Self::repair`]).
    inflight: Vec<(TicketId, Vec<NodeId>)>,
    /// Currently parked walkers (incremental mirror of `waiters` totals).
    parked: usize,
    stats: ReactorStats,
}

impl ReactorCore {
    fn new(walkers: usize, max_steps: usize, node_attempt_cap: u32) -> Self {
        ReactorCore {
            max_steps,
            node_attempt_cap,
            fsm: vec![WalkerFsm::NeedNeighbors; walkers],
            ready: Vec::new(),
            waiters: FnvHashMap::default(),
            pending: VecDeque::new(),
            retry: VecDeque::new(),
            queued: FnvHashSet::default(),
            inflight: Vec::new(),
            parked: 0,
            stats: ReactorStats::default(),
        }
    }

    /// Nothing ready, parked, queued, or in flight: every walker is
    /// terminal and the loop may stop.
    fn idle(&self) -> bool {
        self.ready.is_empty()
            && self.waiters.is_empty()
            && self.pending.is_empty()
            && self.retry.is_empty()
            && self.inflight.is_empty()
    }

    /// Park walker `i` on its current node `u`: ready now if `u` is
    /// already resolved (cached or refused — the act phase turns refusals
    /// into stops), otherwise a waiter, with `u` enqueued once.
    fn classify(&mut self, i: usize, u: NodeId, state: &DispatchState) {
        if state.cache.contains_key(&u.0) || state.refused.contains(&u.0) {
            self.fsm[i] = WalkerFsm::Stepping;
            self.ready.push(i);
        } else {
            self.fsm[i] = WalkerFsm::AwaitingBatch;
            self.waiters.entry(u.0).or_default().push(i);
            self.parked += 1;
            self.stats.peak_parked = self.stats.peak_parked.max(self.parked);
            if self.queued.insert(u.0) {
                self.pending.push_back(u);
                self.stats.peak_queued = self.stats.peak_queued.max(self.queued.len());
            }
        }
    }

    /// Seed the FSMs from the fleet's current state, walker-index order.
    fn init(
        &mut self,
        current_of: &mut dyn FnMut(usize) -> NodeId,
        cells: &[Cell],
        state: &DispatchState,
    ) {
        for (i, cell) in cells.iter().enumerate() {
            if cell.live(self.max_steps) {
                self.classify(i, current_of(i), state);
            } else {
                self.fsm[i] = match cell.stop {
                    Some(WalkStop::BudgetExhausted) => WalkerFsm::Refused,
                    _ => WalkerFsm::Done,
                };
            }
        }
    }

    /// Phase 1: fill the endpoint's in-flight window with max-size batches,
    /// retries before first submissions, FIFO within each queue.
    fn pump<B: BatchOsnClient>(&mut self, client: &mut B) {
        let limits = client.limits();
        while client.in_flight() < limits.max_in_flight
            && (!self.retry.is_empty() || !self.pending.is_empty())
        {
            let mut batch: Vec<NodeId> = Vec::with_capacity(limits.max_batch_size);
            while batch.len() < limits.max_batch_size {
                let Some(u) = self.retry.pop_front().or_else(|| self.pending.pop_front()) else {
                    break;
                };
                batch.push(u);
            }
            let ticket = client.submit(&batch).expect("window and size checked");
            self.inflight.push((ticket, batch));
            self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.inflight.len());
        }
    }

    /// Move every walker parked on `u` to the act set of this event.
    fn wake(&mut self, u: u32, acted: &mut Vec<usize>) {
        if let Some(walkers) = self.waiters.remove(&u) {
            self.parked -= walkers.len();
            for i in walkers {
                self.fsm[i] = WalkerFsm::Stepping;
                acted.push(i);
            }
        }
    }

    /// Remove walker `i` from the waiters of node `u` (it was relocated by
    /// the policy while parked). The id itself stays queued — the fetch may
    /// already be in flight — and resolves into the cache with no waiters.
    fn unpark(&mut self, i: usize, u: u32) {
        if let Some(walkers) = self.waiters.get_mut(&u) {
            if let Some(pos) = walkers.iter().position(|&w| w == i) {
                walkers.swap_remove(pos);
                self.parked -= 1;
                if walkers.is_empty() {
                    self.waiters.remove(&u);
                }
            }
        }
    }

    /// Phase 2 bookkeeping: absorb one completed batch into the dispatcher
    /// state — deliveries cache and wake, budget refusals refuse and wake,
    /// per-id drops resubmit (bounded per node by the attempt cap, then
    /// abandon and wake into the refusal path). The same accounting
    /// `fetch_all` performs for the coalesced backend, event-at-a-time.
    fn absorb(&mut self, outcome: BatchOutcome, state: &mut DispatchState, acted: &mut Vec<usize>) {
        self.inflight
            .retain(|(ticket, _)| *ticket != outcome.ticket);
        for (u, result) in outcome.per_node {
            match result {
                Ok(neighbors) => {
                    state.cache.insert(u.0, neighbors);
                    self.queued.remove(&u.0);
                    self.wake(u.0, acted);
                }
                Err(BatchNodeError::Budget(e)) => {
                    state.budget_in_force = Some(e.budget);
                    if state.refused.insert(u.0) {
                        state.refused_nodes += 1;
                    }
                    self.queued.remove(&u.0);
                    self.wake(u.0, acted);
                }
                Err(BatchNodeError::Dropped) => {
                    let attempts = state.node_attempts.entry(u.0).or_insert(0);
                    *attempts += 1;
                    if *attempts >= self.node_attempt_cap {
                        // Dead interface for this node: abandon it so the
                        // walkers parked on it terminate cleanly.
                        if state.refused.insert(u.0) {
                            state.abandoned_nodes += 1;
                        }
                        self.queued.remove(&u.0);
                        self.wake(u.0, acted);
                    } else {
                        self.retry.push_back(u);
                    }
                }
            }
        }
    }

    /// Repair after an off-protocol query: a walker asked the
    /// [`PrefetchedClient`] for a node nobody prefetched (no walker in this
    /// crate does, but the [`RandomWalk`] trait allows it), and its
    /// synchronous fallback drained *every* in-flight ticket into the
    /// dispatcher state. Resolve our stranded tickets from that state so
    /// their waiters wake (ready for the next event) instead of parking
    /// forever on a poll that will never deliver.
    fn repair(&mut self, client_in_flight: usize, state: &DispatchState) {
        if client_in_flight == self.inflight.len() {
            return;
        }
        let drained = std::mem::take(&mut self.inflight);
        let mut woken = Vec::new();
        for (_, ids) in drained {
            for u in ids {
                if state.cache.contains_key(&u.0) || state.refused.contains(&u.0) {
                    self.queued.remove(&u.0);
                    self.wake(u.0, &mut woken);
                } else {
                    // The side fetch ran to quiescence, so an unresolved id
                    // should be impossible — requeue defensively.
                    self.retry.push_back(u);
                }
            }
        }
        self.ready.append(&mut woken);
    }

    /// One turn of the loop — one completion event through the five phases
    /// (pump → acquire → act → policy → classify). Returns `false` (doing
    /// nothing) once the reactor is idle. `pump` disables phase 1 for the
    /// drain turns that quiesce the endpoint before a snapshot.
    #[allow(clippy::too_many_arguments)]
    fn turn<B, R, F, P>(
        &mut self,
        client: &mut B,
        walkers: &mut [&mut dyn RandomWalk],
        rngs: &mut [R],
        value: Option<&F>,
        policy: &P,
        state: &mut DispatchState,
        cells: &mut [Cell],
        restarts: &mut Vec<RestartEvent>,
        pump: bool,
    ) -> bool
    where
        B: BatchOsnClient,
        R: RngCore,
        F: Fn(NodeId) -> f64 + ?Sized,
        P: RestartPolicy + ?Sized,
    {
        if self.idle() {
            return false;
        }
        // Phase 1: pump submissions into the in-flight window.
        if pump {
            self.pump(client);
        }
        // Phase 2: acquire one completion event (or a synthetic tick when
        // nothing is in flight and walkers are stepping through cache).
        let mut acted = std::mem::take(&mut self.ready);
        if self.inflight.is_empty() {
            self.stats.synthetic_ticks += 1;
        } else {
            match client.poll() {
                Some(outcome) => self.absorb(outcome, state, &mut acted),
                None => self.stats.synthetic_ticks += 1,
            }
        }
        // Phase 3: act — unblocked walkers step once each, in walker-index
        // order (the canonical tiebreak). Walkers needing classification
        // collect into `post` for phase 5: a stepped walker's new node
        // joins the *next* wave only after the policy has had its say.
        acted.sort_unstable();
        acted.dedup();
        let mut post: Vec<usize> = Vec::with_capacity(acted.len());
        for &i in &acted {
            if !cells[i].live(self.max_steps) {
                self.fsm[i] = match cells[i].stop {
                    Some(WalkStop::BudgetExhausted) => WalkerFsm::Refused,
                    _ => WalkerFsm::Done,
                };
                continue;
            }
            let u = walkers[i].current();
            if state.refused.contains(&u.0) {
                // The node this walker needs was refused (budget) or
                // abandoned (dead interface): terminate it — unless the
                // policy rescues it, in which case it re-enters the next
                // wave (a refusal costs one lost event, exactly as the
                // round-based backends charge it one lost round).
                cells[i].stop = Some(WalkStop::BudgetExhausted);
                self.fsm[i] = WalkerFsm::Refused;
                if policy.enabled() {
                    let cached = |n: NodeId| state.cache.contains_key(&n.0) || client.is_cached(n);
                    maybe_rescue(
                        i,
                        &mut *walkers[i],
                        &mut cells[i],
                        policy,
                        &cached,
                        restarts,
                    );
                    if cells[i].stop.is_none() {
                        self.fsm[i] = WalkerFsm::NeedNeighbors;
                        post.push(i);
                    }
                }
                continue;
            }
            let mut view = PrefetchedClient {
                client: &mut *client,
                state: &mut *state,
                node_attempt_cap: self.node_attempt_cap,
            };
            advance_walker(
                i,
                &mut *walkers[i],
                &mut rngs[i],
                &mut view,
                value,
                policy,
                &mut cells[i],
            );
            if cells[i].stop.is_some() {
                // Off-protocol refusal surfaced mid-step: same rescue offer.
                self.fsm[i] = WalkerFsm::Refused;
                if policy.enabled() {
                    let cached = |n: NodeId| state.cache.contains_key(&n.0) || client.is_cached(n);
                    maybe_rescue(
                        i,
                        &mut *walkers[i],
                        &mut cells[i],
                        policy,
                        &cached,
                        restarts,
                    );
                    if cells[i].stop.is_none() {
                        self.fsm[i] = WalkerFsm::NeedNeighbors;
                        post.push(i);
                    }
                }
            } else if !cells[i].live(self.max_steps) {
                self.fsm[i] = WalkerFsm::Done;
            } else {
                self.fsm[i] = WalkerFsm::NeedNeighbors;
                post.push(i);
            }
        }
        // Off-protocol side fetches drain the shared in-flight window;
        // reconcile stranded tickets (a no-op for every walker this crate
        // ships).
        let now_in_flight = client.in_flight();
        self.repair(now_in_flight, state);
        // Phase 4: policy checks for every live walker, walker-index order
        // — the coalesced backend's between-rounds boundary. A relocated
        // walker abandons any stale wait and reclassifies in phase 5, so
        // its new position rides the next wave's batch.
        if policy.enabled() {
            for i in 0..walkers.len() {
                if !cells[i].live(self.max_steps) {
                    continue;
                }
                let before = walkers[i].current();
                let restarts_before = restarts.len();
                {
                    let cached = |n: NodeId| state.cache.contains_key(&n.0) || client.is_cached(n);
                    let degree_of = |n: NodeId| client.peek_degree(n);
                    maybe_restart(
                        i,
                        &mut *walkers[i],
                        &cells[i],
                        policy,
                        &degree_of,
                        &cached,
                        restarts,
                    );
                }
                if restarts.len() > restarts_before {
                    match self.fsm[i] {
                        WalkerFsm::AwaitingBatch => {
                            self.unpark(i, before.0);
                            self.fsm[i] = WalkerFsm::NeedNeighbors;
                            post.push(i);
                        }
                        WalkerFsm::Stepping => {
                            self.ready.retain(|&w| w != i);
                            self.fsm[i] = WalkerFsm::NeedNeighbors;
                            post.push(i);
                        }
                        // NeedNeighbors is already in `post`; phase 5 reads
                        // the relocated position.
                        _ => {}
                    }
                }
            }
        }
        // Phase 5: classify — park every walker that stepped or relocated
        // on its (new) current node, walker-index order.
        post.sort_unstable();
        post.dedup();
        for &i in &post {
            if self.fsm[i] == WalkerFsm::NeedNeighbors {
                self.classify(i, walkers[i].current(), state);
            }
        }
        self.stats.events += 1;
        true
    }
}

/// Outcome of the reactor driver ([`drive_reactor`]).
struct ReactorOutcome {
    cells: Vec<Cell>,
    restarts: Vec<RestartEvent>,
    state: DispatchState,
    interface: QueryStats,
    stats: ReactorStats,
}

/// The one-shot reactor driver: init, then turns until idle.
fn drive_reactor<B, R, F, P>(
    client: &mut B,
    walkers: &mut [&mut dyn RandomWalk],
    rngs: &mut [R],
    max_steps: usize,
    node_attempt_cap: u32,
    value: Option<&F>,
    policy: &P,
) -> ReactorOutcome
where
    B: BatchOsnClient,
    R: RngCore,
    F: Fn(NodeId) -> f64 + ?Sized,
    P: RestartPolicy + ?Sized,
{
    let k = walkers.len();
    assert_eq!(k, rngs.len(), "one RNG stream per walker");
    policy.begin_run(k);
    let interface_before = client.stats();
    let mut state = DispatchState::default();
    let mut cells: Vec<Cell> = (0..k).map(|_| Cell::new(0)).collect();
    let mut restarts = Vec::new();
    let mut core = ReactorCore::new(k, max_steps, node_attempt_cap);
    core.init(&mut |i| walkers[i].current(), &cells, &state);
    while core.turn(
        client,
        walkers,
        rngs,
        value,
        policy,
        &mut state,
        &mut cells,
        &mut restarts,
        true,
    ) {}
    let mut interface = client.stats();
    interface.issued -= interface_before.issued;
    interface.unique -= interface_before.unique;
    interface.cache_hits -= interface_before.cache_hits;
    ReactorOutcome {
        cells,
        restarts,
        state,
        interface,
        stats: core.stats,
    }
}

impl WalkOrchestrator {
    /// Run the fleet on the poll-driven reactor backend: one event loop
    /// drives every walker as a [`WalkerFsm`] parked on in-flight batches
    /// of `client` — no threads, no per-walker stack, memory bounded by
    /// the in-flight window (see the [`crate::reactor`] module docs).
    ///
    /// Deterministic given the seed: events are delivered in completion-
    /// time order with walker-index tiebreaks. With `max_batch_size ≥`
    /// fleet size the result is bit-identical to [`Self::run_coalesced`] —
    /// traces, estimate, stops, charges, and the restart schedule under
    /// any [`RestartPolicy`]; with smaller batches waves pipeline and the
    /// trace equivalence holds under [`Never`] absent a budget.
    pub fn run_reactor<B, W, F, P>(
        &self,
        client: &mut B,
        make_walker: W,
        value: F,
        policy: &P,
    ) -> OrchestratorReport
    where
        B: BatchOsnClient,
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
        F: Fn(NodeId) -> f64,
        P: RestartPolicy + ?Sized,
    {
        self.run_reactor_with_stats(client, make_walker, value, policy)
            .0
    }

    /// [`Self::run_reactor`], also returning the loop's [`ReactorStats`]
    /// (event counts and the peak in-flight / queued / parked witnesses
    /// the soak suite asserts the memory bound against).
    pub fn run_reactor_with_stats<B, W, F, P>(
        &self,
        client: &mut B,
        make_walker: W,
        value: F,
        policy: &P,
    ) -> (OrchestratorReport, ReactorStats)
    where
        B: BatchOsnClient,
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
        F: Fn(NodeId) -> f64,
        P: RestartPolicy + ?Sized,
    {
        let (mut fleet, mut rngs) = self.build_fleet(make_walker);
        let mut refs: Vec<&mut dyn RandomWalk> =
            fleet.iter_mut().map(|w| w.as_mut() as _).collect();
        let outcome = drive_reactor(
            client,
            &mut refs,
            &mut rngs,
            self.max_steps_per_walker(),
            DEFAULT_NODE_ATTEMPT_CAP,
            Some(&value),
            policy,
        );
        let mut report = OrchestratorReport::from_cells(
            outcome.cells,
            outcome.restarts,
            outcome.stats.events,
            outcome.state.stats,
        );
        report.interface = Some(outcome.interface);
        report.refused_nodes = outcome.state.refused_nodes;
        report.abandoned_nodes = outcome.state.abandoned_nodes;
        (report, outcome.stats)
    }

    /// Begin a pausable reactor run (see [`ReactorWalkRun`]). Driving it to
    /// completion is bit-identical to [`Self::run_reactor`] under [`Never`]
    /// absent a budget (slicing defers submissions across the pause, which
    /// can reorder charges — traces are schedule-independent either way).
    pub fn start_reactor<W>(&self, make_walker: W) -> ReactorWalkRun
    where
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
    {
        let (fleet, rngs) = self.build_fleet(make_walker);
        let cells: Vec<Cell> = (0..self.walker_count()).map(|_| Cell::new(0)).collect();
        let state = DispatchState::default();
        let mut core = ReactorCore::new(
            self.walker_count(),
            self.max_steps_per_walker(),
            DEFAULT_NODE_ATTEMPT_CAP,
        );
        {
            let mut current_of = |i: usize| fleet[i].current();
            core.init(&mut current_of, &cells, &state);
        }
        ReactorWalkRun {
            spec: *self,
            fleet,
            rngs,
            cells,
            state,
            core,
            interface_base: None,
        }
    }

    /// Restore a [`ReactorWalkRun`] from a [`ReactorWalkRun::snapshot`]
    /// value — dispatcher cache and fetch queues included, so a resumed
    /// run re-charges nothing and resubmits in the snapshot's queue order.
    /// Spec and walker contracts are as for [`Self::resume_serial`].
    pub fn resume_reactor<W>(&self, state: &Value, make_walker: W) -> Result<ReactorWalkRun, String>
    where
        W: Fn(usize, HistoryBackend) -> Box<dyn RandomWalk + Send>,
    {
        let (fleet, rngs, cells, events) =
            self.resume_fleet(state, "reactor", "events", make_walker)?;
        let dispatch = dispatch_from_value(state.field("dispatch")?)?;
        let node_attempt_cap: u32 = state.field("attempt_cap")?.decode()?;
        let retry = nodes_from_value(state.field("retry")?)?;
        let pending = nodes_from_value(state.field("pending")?)?;
        let mut core = ReactorCore::new(
            self.walker_count(),
            self.max_steps_per_walker(),
            node_attempt_cap,
        );
        core.stats.events = events;
        // Seed the queues *before* classifying the fleet: classify dedups
        // against `queued`, so the snapshot's submission order survives the
        // index-order re-parking below.
        for &u in retry.iter().chain(pending.iter()) {
            if !core.queued.insert(u.0) {
                return Err(format!("node {} queued twice in reactor snapshot", u.0));
            }
        }
        core.retry.extend(retry);
        core.pending.extend(pending);
        {
            let mut current_of = |i: usize| fleet[i].current();
            core.init(&mut current_of, &cells, &dispatch);
        }
        Ok(ReactorWalkRun {
            spec: *self,
            fleet,
            rngs,
            cells,
            state: dispatch,
            core,
            interface_base: None,
        })
    }
}

/// A reactor run that pauses between completion events and snapshots — the
/// event-driven sibling of [`crate::CoalescedWalkRun`] and the job-slice
/// engine of the `osn-service` session server: one slice advances a
/// bounded number of events instead of whole fleet-wide rounds, so a
/// 10k-walker job interleaves with its tenants at event granularity.
///
/// Policy-free ([`Never`]) like every resumable run: [`WorkStealing`]
/// keeps non-serializable interior diagnostics, so a mid-run snapshot
/// could not restore the restart schedule. Use
/// [`WalkOrchestrator::run_reactor`] for policy-driven runs.
///
/// Every [`Self::run_events`] call leaves the endpoint **quiescent**
/// (nothing in flight): trailing drain turns deliver outstanding batches
/// without submitting new ones, so a snapshot never has to serialize
/// half-completed requests — and endpoints like
/// [`osn_client::batch::SimulatedBatchOsn`] that refuse to export in-flight
/// state can snapshot right alongside the run.
///
/// [`WorkStealing`]: crate::WorkStealing
pub struct ReactorWalkRun {
    spec: WalkOrchestrator,
    fleet: Vec<Box<dyn RandomWalk + Send>>,
    rngs: Vec<ChaCha12Rng>,
    cells: Vec<Cell>,
    state: DispatchState,
    core: ReactorCore,
    /// Endpoint accounting at the first `run_events` call of this process
    /// lifetime (see [`crate::CoalescedWalkRun`] for the delta contract).
    interface_base: Option<QueryStats>,
}

impl ReactorWalkRun {
    /// Whether every walker has finished (step cap reached or refused).
    pub fn done(&self) -> bool {
        let max = self.spec.max_steps_per_walker();
        self.cells.iter().all(|c| !c.live(max))
    }

    /// Completion events processed so far (drain turns included).
    pub fn events(&self) -> usize {
        self.core.stats.events
    }

    /// Total transitions performed across the fleet so far.
    pub fn steps_taken(&self) -> usize {
        self.cells.iter().map(|c| c.trace.len()).sum()
    }

    /// Walker `i`'s trajectory so far — grows as completion events land,
    /// so callers can feed event-granularity probes (e.g.
    /// `osn_estimate::WindowedSplitRhat`) between [`Self::run_events`]
    /// slices.
    pub fn trace(&self, walker: usize) -> &[NodeId] {
        &self.cells[walker].trace
    }

    /// Walker-side accounting so far (the serial-shaped `issued` /
    /// `unique` / `cache_hits` view over the dispatcher cache).
    pub fn walker_stats(&self) -> QueryStats {
        self.state.stats
    }

    /// The loop's diagnostics (peaks are process-local: they restart from
    /// zero after a resume).
    pub fn reactor_stats(&self) -> ReactorStats {
        self.core.stats
    }

    /// Cap on dispatcher-level resubmissions of a permanently-dropped node
    /// (default [`DEFAULT_NODE_ATTEMPT_CAP`]).
    #[must_use]
    pub fn with_node_attempt_cap(mut self, cap: u32) -> Self {
        self.core.node_attempt_cap = cap.max(1);
        self
    }

    /// Advance up to `events` completion events with submissions enabled,
    /// then drain (submissions off) until nothing is in flight, so the run
    /// is snapshot-safe. Returns the events actually processed, drain
    /// turns included. Pass `usize::MAX` to drive to completion.
    pub fn run_events<B, F>(&mut self, client: &mut B, value: &F, events: usize) -> usize
    where
        B: BatchOsnClient,
        F: Fn(NodeId) -> f64 + ?Sized,
    {
        if self.interface_base.is_none() {
            self.interface_base = Some(client.stats());
        }
        let mut refs: Vec<&mut dyn RandomWalk> =
            self.fleet.iter_mut().map(|w| w.as_mut() as _).collect();
        let mut no_restarts = Vec::new();
        let mut executed = 0;
        while executed < events
            && self.core.turn(
                client,
                &mut refs,
                &mut self.rngs,
                Some(value),
                &Never,
                &mut self.state,
                &mut self.cells,
                &mut no_restarts,
                true,
            )
        {
            executed += 1;
        }
        // Quiesce: each drain turn polls one outstanding batch and submits
        // nothing, so the in-flight count strictly decreases.
        while client.in_flight() > 0
            && self.core.turn(
                client,
                &mut refs,
                &mut self.rngs,
                Some(value),
                &Never,
                &mut self.state,
                &mut self.cells,
                &mut no_restarts,
                false,
            )
        {
            executed += 1;
        }
        executed
    }

    /// Notify the fleet that each node in `nodes` had an incident edge
    /// inserted or deleted (through an [`osn_graph::DeltaOverlay`] applied
    /// to the endpoint): every walker drops the circulation state keyed by
    /// that node, and the dispatcher cache evicts the node's neighbor list
    /// (plus its `seen` mark) so the next visit re-fetches — and re-charges
    /// — the post-mutation list honestly. Call between [`Self::run_events`]
    /// slices (the endpoint is quiescent there); a ready walker whose node
    /// was evicted re-fetches it on demand through the endpoint's
    /// synchronous fallback at its next act. Returns the total number of
    /// per-edge histories dropped across the fleet.
    pub fn invalidate_nodes(&mut self, nodes: &[NodeId]) -> usize {
        let mut dropped = 0;
        for &v in nodes {
            self.state.cache.remove(&v.0);
            self.state.seen.remove(&v.0);
            for w in &mut self.fleet {
                dropped += w.invalidate_node(v);
            }
        }
        dropped
    }

    /// Serialize the complete run state — fleet, RNG streams, cells,
    /// dispatcher state, and the reactor's fetch queues (in order) — as a
    /// byte-deterministic [`Value`]. Restore with
    /// [`WalkOrchestrator::resume_reactor`]. Only valid between
    /// [`Self::run_events`] calls, where nothing is in flight.
    pub fn snapshot(&self) -> Value {
        debug_assert!(
            self.core.inflight.is_empty(),
            "snapshot with batches in flight"
        );
        let pending: Vec<NodeId> = self.core.pending.iter().copied().collect();
        let retry: Vec<NodeId> = self.core.retry.iter().copied().collect();
        Value::obj([
            ("kind", Value::Str("reactor".into())),
            ("spec", self.spec.spec_value()),
            ("events", Value::Uint(self.core.stats.events as u64)),
            (
                "walkers",
                Value::Arr(self.fleet.iter().map(|w| w.export_state()).collect()),
            ),
            (
                "rngs",
                Value::Arr(self.rngs.iter().map(rng_to_value).collect()),
            ),
            (
                "cells",
                Value::Arr(self.cells.iter().map(cell_to_value).collect()),
            ),
            ("dispatch", dispatch_to_value(&self.state)),
            (
                "attempt_cap",
                Value::Uint(u64::from(self.core.node_attempt_cap)),
            ),
            ("pending", nodes_to_value(&pending)),
            ("retry", nodes_to_value(&retry)),
        ])
    }

    /// Fold the run into the uniform report shape (the `rounds` field
    /// carries the event count), reading the endpoint's interface-side
    /// accounting delta from `client` as [`crate::CoalescedWalkRun`] does.
    pub fn into_report<B: BatchOsnClient>(self, client: &B) -> OrchestratorReport {
        let refused_nodes = self.state.refused_nodes;
        let abandoned_nodes = self.state.abandoned_nodes;
        let mut report = OrchestratorReport::from_cells(
            self.cells,
            Vec::new(),
            self.core.stats.events,
            self.state.stats,
        );
        let mut interface = client.stats();
        if let Some(base) = self.interface_base {
            interface.issued -= base.issued;
            interface.unique -= base.unique;
            interface.cache_hits -= base.cache_hits;
        }
        report.interface = Some(interface);
        report.refused_nodes = refused_nodes;
        report.abandoned_nodes = abandoned_nodes;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::SharedFrontier;
    use crate::walkers::Cnrw;
    use crate::WorkStealing;
    use osn_client::batch::{BatchConfig, SimulatedBatchOsn};
    use osn_client::SimulatedOsn;
    use osn_graph::generators::{clustered_cliques, ClusteredCliquesConfig};

    fn clustered() -> SimulatedOsn {
        SimulatedOsn::from_graph(
            clustered_cliques(&ClusteredCliquesConfig::default()).expect("static config"),
        )
    }

    fn make_cnrw(i: usize, backend: crate::HistoryBackend) -> Box<dyn RandomWalk + Send> {
        Box::new(Cnrw::with_backend(
            osn_graph::NodeId((i as u32 * 7) % 90),
            backend,
        )) as Box<dyn RandomWalk + Send>
    }

    #[test]
    fn reactor_matches_coalesced_bit_identically_with_single_batch_waves() {
        let orch = WalkOrchestrator::new(8, 120, 42);
        let mut batch = SimulatedBatchOsn::new(
            clustered(),
            BatchConfig::new(16).with_latency(0.01, 0.002).with_seed(5),
        );
        let coalesced = orch.run_coalesced(&mut batch, make_cnrw, |v| v.index() as f64, &Never);
        let mut batch2 = SimulatedBatchOsn::new(
            clustered(),
            BatchConfig::new(16).with_latency(0.01, 0.002).with_seed(5),
        );
        let (reactor, stats) =
            orch.run_reactor_with_stats(&mut batch2, make_cnrw, |v| v.index() as f64, &Never);
        assert_eq!(coalesced.trace.per_walker, reactor.trace.per_walker);
        assert_eq!(coalesced.stops, reactor.stops);
        assert_eq!(coalesced.trace.stats, reactor.trace.stats);
        assert_eq!(coalesced.interface, reactor.interface);
        assert_eq!(coalesced.estimate.mean(), reactor.estimate.mean());
        assert_eq!(coalesced.rounds, stats.events);
    }

    #[test]
    fn reactor_work_stealing_schedule_matches_coalesced() {
        let orch = WalkOrchestrator::new(6, 200, 9);
        let make = |i: usize, backend: crate::HistoryBackend| {
            // Clumped starts inside one clique force restarts.
            Box::new(Cnrw::with_backend(osn_graph::NodeId(i as u32), backend))
                as Box<dyn RandomWalk + Send>
        };
        let mut batch = SimulatedBatchOsn::new(clustered(), BatchConfig::new(16));
        let policy = WorkStealing::new(1.05, 16, SharedFrontier::with_stripes(8, 16));
        let coalesced = orch.run_coalesced(&mut batch, make, |v| v.index() as f64, &policy);
        let mut batch2 = SimulatedBatchOsn::new(clustered(), BatchConfig::new(16));
        let policy2 = WorkStealing::new(1.05, 16, SharedFrontier::with_stripes(8, 16));
        let reactor = orch.run_reactor(&mut batch2, make, |v| v.index() as f64, &policy2);
        assert_eq!(coalesced.restarts, reactor.restarts);
        assert_eq!(coalesced.trace.per_walker, reactor.trace.per_walker);
        assert!(!coalesced.restarts.is_empty(), "fixture should restart");
    }

    #[test]
    fn reactor_pipelines_small_batches_without_changing_traces() {
        let orch = WalkOrchestrator::new(8, 100, 3);
        let mut wide = SimulatedBatchOsn::new(clustered(), BatchConfig::new(64));
        let baseline = orch.run_reactor(&mut wide, make_cnrw, |v| v.index() as f64, &Never);
        let mut narrow = SimulatedBatchOsn::new(
            clustered(),
            BatchConfig::new(2)
                .with_in_flight(3)
                .with_latency(0.05, 0.01)
                .with_per_id_latency(0.01),
        );
        let (piped, stats) =
            orch.run_reactor_with_stats(&mut narrow, make_cnrw, |v| v.index() as f64, &Never);
        assert_eq!(baseline.trace.per_walker, piped.trace.per_walker);
        assert_eq!(baseline.stops, piped.stops);
        assert!(stats.peak_in_flight > 1, "narrow window should pipeline");
    }

    #[test]
    fn reactor_run_resumes_bit_identically_across_snapshot() {
        let orch = WalkOrchestrator::new(5, 80, 17);
        let value = |v: osn_graph::NodeId| v.index() as f64;

        let mut solid = SimulatedBatchOsn::new(
            clustered(),
            BatchConfig::new(3).with_latency(0.02, 0.004).with_seed(2),
        );
        let mut whole = orch.start_reactor(make_cnrw);
        while !whole.done() {
            whole.run_events(&mut solid, &value, usize::MAX);
        }
        let whole_report = whole.into_report(&solid);

        let mut endpoint = SimulatedBatchOsn::new(
            clustered(),
            BatchConfig::new(3).with_latency(0.02, 0.004).with_seed(2),
        );
        let mut run = orch.start_reactor(make_cnrw);
        run.run_events(&mut endpoint, &value, 7);
        let snap = run.snapshot();
        let mut resumed = orch.resume_reactor(&snap, make_cnrw).unwrap();
        assert_eq!(snap.to_compact(), resumed.snapshot().to_compact());
        while !resumed.done() {
            resumed.run_events(&mut endpoint, &value, 9);
        }
        let resumed_report = resumed.into_report(&endpoint);
        assert_eq!(
            whole_report.trace.per_walker,
            resumed_report.trace.per_walker
        );
        assert_eq!(whole_report.stops, resumed_report.stops);
        assert_eq!(whole_report.estimate.mean(), resumed_report.estimate.mean());
    }
}
