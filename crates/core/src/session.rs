//! The walk driver: runs any walker against any client, recording the trace.
//!
//! Since PR 5 the step loop itself lives in the unified
//! [`crate::orchestrator`] core — [`WalkSession`] is its single-walker
//! serial entry point with the classic raw-seed RNG construction, so every
//! historical trace replays bit-identically.

use osn_client::{OsnClient, QueryStats};
use osn_graph::NodeId;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::orchestrator::{drive_round_robin, Never};
use crate::walker::RandomWalk;

/// Configuration of a single walk run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkConfig {
    /// Maximum number of transitions to perform. A hard cap: budget-limited
    /// walks also stop early when the client refuses further queries.
    pub max_steps: usize,
    /// RNG seed; every run is fully deterministic given the seed.
    pub seed: u64,
    /// Steps discarded from the front when extracting samples (the classical
    /// burn-in; the paper's estimators use `h`-step warm starts, §2.3).
    pub burn_in: usize,
    /// Keep every `thinning`-th step of the post-burn-in trace (1 = all).
    pub thinning: usize,
}

impl WalkConfig {
    /// Run for exactly `max_steps` transitions (unless the budget stops the
    /// walk sooner), no burn-in, no thinning, seed 0.
    pub fn steps(max_steps: usize) -> Self {
        WalkConfig {
            max_steps,
            seed: 0,
            burn_in: 0,
            thinning: 1,
        }
    }

    /// Set the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the burn-in length.
    #[must_use]
    pub fn with_burn_in(mut self, burn_in: usize) -> Self {
        self.burn_in = burn_in;
        self
    }

    /// Set the thinning interval (values below 1 are clamped to 1).
    #[must_use]
    pub fn with_thinning(mut self, thinning: usize) -> Self {
        self.thinning = thinning.max(1);
        self
    }
}

/// Why a walk ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkStop {
    /// The configured step cap was reached.
    MaxSteps,
    /// The client's unique-query budget ran out (the normal ending for the
    /// paper's budget-sweep experiments).
    BudgetExhausted,
}

/// The recorded outcome of one walk.
#[derive(Clone, Debug)]
pub struct WalkTrace {
    /// The start node (not included in [`nodes`](Self::nodes)).
    pub start: NodeId,
    /// One entry per performed transition: the node arrived at.
    nodes: Vec<NodeId>,
    /// Why the walk stopped.
    pub stop: WalkStop,
    /// Client accounting at the end of the walk.
    pub stats: QueryStats,
    burn_in: usize,
    thinning: usize,
}

impl WalkTrace {
    /// Assemble a trace from an external driver's parts (no burn-in, no
    /// thinning) — used by the batched dispatch path of
    /// `osn-experiments::TrialPlan`, whose walks are driven by
    /// [`crate::CoalescingDispatcher`] rather than a [`WalkSession`].
    pub fn from_parts(
        start: NodeId,
        nodes: Vec<NodeId>,
        stop: WalkStop,
        stats: QueryStats,
    ) -> Self {
        WalkTrace {
            start,
            nodes,
            stop,
            stats,
            burn_in: 0,
            thinning: 1,
        }
    }

    /// Number of transitions performed.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the walk performed no transitions.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The full step sequence (no burn-in/thinning applied).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The sample sequence after burn-in and thinning.
    pub fn samples(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .skip(self.burn_in)
            .step_by(self.thinning)
            .copied()
    }

    /// Number of samples [`samples`](Self::samples) will yield.
    pub fn sample_count(&self) -> usize {
        self.nodes
            .len()
            .saturating_sub(self.burn_in)
            .div_ceil(self.thinning)
    }
}

/// Runs walks according to a [`WalkConfig`].
///
/// The session owns the RNG construction so that *identical configurations
/// replay identical walks* — the reproducibility contract every experiment
/// in `osn-experiments` relies on.
#[derive(Clone, Debug)]
pub struct WalkSession {
    config: WalkConfig,
}

impl WalkSession {
    /// New session with the given configuration.
    pub fn new(config: WalkConfig) -> Self {
        WalkSession { config }
    }

    /// The configuration.
    pub fn config(&self) -> &WalkConfig {
        &self.config
    }

    /// Run `walker` against `client` until the step cap or the query budget
    /// is hit, whichever comes first.
    pub fn run<C: OsnClient>(&self, walker: &mut dyn RandomWalk, client: &mut C) -> WalkTrace {
        let start = walker.current();
        // The session's historical contract: the RNG is seeded directly
        // from the config (not a derived stream).
        let mut rngs = [ChaCha12Rng::seed_from_u64(self.config.seed)];
        let mut walkers: [&mut dyn RandomWalk; 1] = [walker];
        let outcome = drive_round_robin(
            client,
            &mut walkers,
            &mut rngs,
            self.config.max_steps,
            None::<&fn(NodeId) -> f64>,
            &Never,
        );
        let cell = outcome.cells.into_iter().next().expect("one walker");
        WalkTrace {
            start,
            nodes: cell.trace,
            stop: cell.stop.unwrap_or(WalkStop::MaxSteps),
            stats: client.stats(),
            burn_in: self.config.burn_in,
            thinning: self.config.thinning.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walkers::Srw;
    use osn_client::{BudgetedClient, SimulatedOsn};
    use osn_graph::generators::barbell;

    fn client() -> SimulatedOsn {
        SimulatedOsn::from_graph(barbell(6, 6).unwrap())
    }

    #[test]
    fn runs_exact_step_count() {
        let mut c = client();
        let mut w = Srw::new(NodeId(0));
        let trace = WalkSession::new(WalkConfig::steps(100)).run(&mut w, &mut c);
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.stop, WalkStop::MaxSteps);
        assert_eq!(trace.start, NodeId(0));
        assert!(!trace.is_empty());
    }

    #[test]
    fn budget_stops_walk() {
        let inner = client();
        let n = inner.graph().node_count();
        let mut c = BudgetedClient::new(inner, 5, n);
        let mut w = Srw::new(NodeId(0));
        let trace = WalkSession::new(WalkConfig::steps(10_000).with_seed(1)).run(&mut w, &mut c);
        assert_eq!(trace.stop, WalkStop::BudgetExhausted);
        // With budget 5, at most a handful of distinct nodes were visited,
        // but revisits are free so the trace can be longer than 5.
        assert!(trace.len() < 10_000);
        assert!(trace.stats.unique <= 5);
    }

    #[test]
    fn identical_seeds_replay_identical_walks() {
        let run = |seed| {
            let mut c = client();
            let mut w = Srw::new(NodeId(3));
            WalkSession::new(WalkConfig::steps(200).with_seed(seed))
                .run(&mut w, &mut c)
                .nodes()
                .to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn burn_in_and_thinning_shape_samples() {
        let mut c = client();
        let mut w = Srw::new(NodeId(0));
        let cfg = WalkConfig::steps(20).with_burn_in(10).with_thinning(5);
        let trace = WalkSession::new(cfg).run(&mut w, &mut c);
        let samples: Vec<_> = trace.samples().collect();
        assert_eq!(samples.len(), 2); // steps 10 and 15 (0-indexed post-burn)
        assert_eq!(trace.sample_count(), 2);
        assert_eq!(samples[0], trace.nodes()[10]);
        assert_eq!(samples[1], trace.nodes()[15]);
    }

    #[test]
    fn thinning_clamped_to_one() {
        let cfg = WalkConfig::steps(5).with_thinning(0);
        assert_eq!(cfg.thinning, 1);
    }
}
