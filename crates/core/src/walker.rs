//! The object-safe walker trait.

use osn_client::{BudgetExhausted, OsnClient};
use osn_graph::NodeId;
use osn_serde::Value;
use rand::RngCore;

/// A random walk over an online social network accessed through the
/// restricted interface.
///
/// The trait is object-safe on purpose: experiment harnesses hold a
/// `Vec<Box<dyn RandomWalk>>` and treat every algorithm identically — the
/// concrete embodiment of the paper's claim that CNRW/GNRW are *drop-in
/// replacements* for SRW.
///
/// A step may issue any number of interface queries (one for all walkers in
/// this crate; MHRW additionally peeks the proposal's metadata). When a
/// budget wrapper cuts the walk off, [`step`](Self::step) returns
/// [`BudgetExhausted`] and the walker is left at its pre-step position, so
/// the collected trace stays valid.
pub trait RandomWalk {
    /// Short algorithm name for reports and plots (e.g. `"CNRW"`).
    fn name(&self) -> &str;

    /// The node the walk currently occupies.
    fn current(&self) -> NodeId;

    /// Perform one transition, returning the node arrived at.
    ///
    /// # Errors
    /// [`BudgetExhausted`] if the underlying client refuses the neighbor
    /// query; the walker state is unchanged in that case.
    fn step(
        &mut self,
        client: &mut dyn OsnClient,
        rng: &mut dyn RngCore,
    ) -> Result<NodeId, BudgetExhausted>;

    /// Restart the walk at `start`, clearing **all** history (for CNRW/GNRW
    /// this resets every `b(u,v)` / `S(u,v)` map — a fresh walk).
    fn restart(&mut self, start: NodeId);

    /// Serialize the walker's resumable state (position, predecessor,
    /// circulation history) to a [`Value`] tree.
    ///
    /// Construction-time configuration — the algorithm, grouping strategy,
    /// history backend choice — is **not** part of the state: the
    /// [`import_state`](Self::import_state) contract is that the receiver
    /// was constructed from the same spec. Given that, a snapshot taken
    /// after `k` steps and restored into a fresh walker continues
    /// **bit-identically** with the original on the same RNG stream.
    fn export_state(&self) -> Value;

    /// Restore state captured by [`export_state`](Self::export_state) into
    /// this walker (which must have been constructed from the same spec —
    /// same algorithm, same history backend).
    ///
    /// # Errors
    /// Returns a message when the tree is malformed or does not match this
    /// walker's configuration (e.g. a history-backend mismatch). The walker
    /// is left unchanged on error.
    fn import_state(&mut self, state: &Value) -> Result<(), String>;

    /// Notify the walker that `node`'s neighbor list changed (an edge
    /// incident to it was inserted or deleted through a
    /// [`osn_graph::DeltaOverlay`]). History-keeping walkers drop the
    /// circulation state of every edge that draws from `N(node)`, so
    /// Theorem 4's exactly-once coverage restarts on the post-mutation
    /// neighborhood; memoryless walkers (SRW, MHRW, NB-SRW) need no action
    /// — the default is a no-op. Returns the number of per-edge histories
    /// dropped.
    fn invalidate_node(&mut self, _node: NodeId) -> usize {
        0
    }
}

/// Shared helper: uniform choice from a non-empty slice.
#[inline]
pub(crate) fn uniform_pick<R: rand::Rng + ?Sized>(items: &[NodeId], rng: &mut R) -> NodeId {
    debug_assert!(!items.is_empty());
    items[rng.gen_range(0..items.len())]
}

/// Encode an optional predecessor node (`prev` of order-2 walkers): the
/// node id, or [`Value::Null`] before the first step.
pub(crate) fn prev_to_value(prev: Option<NodeId>) -> Value {
    match prev {
        Some(n) => Value::Uint(u64::from(n.0)),
        None => Value::Null,
    }
}

/// Decode [`prev_to_value`] output.
pub(crate) fn prev_from_value(value: &Value) -> Result<Option<NodeId>, String> {
    match value {
        Value::Null => Ok(None),
        other => Ok(Some(NodeId(other.decode::<u32>()?))),
    }
}

/// Check that an imported history tree names the backend the walker was
/// constructed with — the mismatch guard every historied walker applies
/// before touching its own state.
pub(crate) fn check_backend(
    state: &Value,
    expected: crate::history::HistoryBackend,
) -> Result<(), String> {
    let named = state.field("backend")?.as_str()?;
    if named != expected.label() {
        return Err(format!(
            "history backend mismatch: snapshot is `{named}`, walker runs `{}`",
            expected.label()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_pick_is_uniform() {
        let items: Vec<NodeId> = (0..5).map(NodeId).collect();
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(0);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[uniform_pick(&items, &mut rng).index()] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "count {c}");
        }
    }
}
