//! Circulated Neighbors Random Walk (CNRW) — paper §3.

use osn_client::{BudgetExhausted, OsnClient};
use osn_graph::NodeId;
use osn_serde::Value;
use rand::RngCore;

use crate::history::{EdgeHistory, HistoryBackend};
use crate::walker::{check_backend, prev_from_value, prev_to_value, uniform_pick, RandomWalk};

/// Circulated Neighbors Random Walk (paper §3, Algorithm 1).
///
/// Identical to SRW except that, given the incoming transition `u → v`, the
/// next node is sampled from `N(v)` **without replacement**: per directed
/// edge `(u, v)` the walker remembers the set `b(u, v)` of neighbors already
/// chosen and excludes them until every neighbor of `v` has been attempted
/// once, at which point the memory resets and the circulation starts over.
///
/// Properties proved in the paper:
///
/// * **Theorem 1** — same stationary distribution as SRW, `k_v / 2|E|`,
///   regardless of topology (so CNRW is a drop-in replacement);
/// * **Theorem 2** — asymptotic variance never larger than SRW's, for any
///   measurement function `f` and any topology;
/// * **Theorem 3** — on a barbell graph the probability of escaping a bell
///   improves over SRW by a factor exceeding `(|G1|/(|G1|-1)) ln |G1|`.
///
/// The first step of a walk has no incoming edge; it is performed as a plain
/// SRW step (the paper assumes `x0 = u, x1 = v` are given).
///
/// Space: `O(K)` after `K` steps. Per-step cost depends on the
/// [`HistoryBackend`]: exactly `O(1)` on the default arena backend, `O(1)`
/// amortized expected (degrading to an `O(deg)` rank scan on half-used
/// circulations) on the legacy hash-set backend the paper describes in §3.3.
#[derive(Clone, Debug)]
pub struct Cnrw {
    prev: Option<NodeId>,
    current: NodeId,
    history: EdgeHistory,
}

impl Cnrw {
    /// Start a walk at `start` on the default (arena) history backend.
    pub fn new(start: NodeId) -> Self {
        Self::with_backend(start, HistoryBackend::default())
    }

    /// Start a walk at `start` with an explicit history backend (the
    /// ablation knob of the `walker_throughput`/`history_backends` benches).
    pub fn with_backend(start: NodeId, backend: HistoryBackend) -> Self {
        Cnrw {
            prev: None,
            current: start,
            history: EdgeHistory::with_backend(backend),
        }
    }

    /// Which history backend this walker runs on.
    pub fn backend(&self) -> HistoryBackend {
        self.history.backend()
    }

    /// The live history size (number of recorded outgoing choices) — the
    /// `O(K)` quantity of §3.3, exposed for the memory-profile experiments.
    pub fn history_entries(&self) -> usize {
        self.history.total_entries()
    }

    /// Number of directed edges with live circulation state.
    pub fn tracked_edges(&self) -> usize {
        self.history.tracked_edges()
    }

    /// Allocated history-arena capacity in entries (`None` on the legacy
    /// backend). [`RandomWalk::restart`] keeps this unchanged — the slab is
    /// reused, not re-allocated.
    pub fn arena_capacity(&self) -> Option<usize> {
        self.history.arena_capacity()
    }
}

impl RandomWalk for Cnrw {
    fn name(&self) -> &str {
        "CNRW"
    }

    fn current(&self) -> NodeId {
        self.current
    }

    fn step(
        &mut self,
        client: &mut dyn OsnClient,
        rng: &mut dyn RngCore,
    ) -> Result<NodeId, BudgetExhausted> {
        let v = self.current;
        let neighbors = client.neighbors(v)?;
        if neighbors.is_empty() {
            return Ok(v);
        }
        let next = match self.prev {
            // No incoming edge yet: plain SRW choice.
            None => uniform_pick(neighbors, rng),
            Some(u) => self
                .history
                .draw(u, v, neighbors, rng)
                .expect("non-empty neighbor list"),
        };
        self.prev = Some(v);
        self.current = next;
        Ok(next)
    }

    fn restart(&mut self, start: NodeId) {
        self.prev = None;
        self.current = start;
        self.history.clear();
    }

    fn export_state(&self) -> Value {
        Value::obj([
            ("prev", prev_to_value(self.prev)),
            ("current", Value::Uint(u64::from(self.current.0))),
            ("history", self.history.export_state()),
        ])
    }

    fn import_state(&mut self, state: &Value) -> Result<(), String> {
        let history_state = state.field("history")?;
        check_backend(history_state, self.backend())?;
        let prev = prev_from_value(state.field("prev")?)?;
        let current = NodeId(state.field("current")?.decode()?);
        let history = EdgeHistory::import_state(history_state)?;
        self.prev = prev;
        self.current = current;
        self.history = history;
        Ok(())
    }

    fn invalidate_node(&mut self, node: NodeId) -> usize {
        self.history.invalidate_target(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_client::SimulatedOsn;
    use osn_graph::generators::barbell;
    use osn_graph::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn star_plus_ring() -> SimulatedOsn {
        // Hub 0 connected to 1..=5, plus ring closing 1-2-3-4-5-1.
        let mut b = GraphBuilder::new();
        for i in 1..=5 {
            b.push_edge(0, i);
            b.push_edge(i, if i == 5 { 1 } else { i + 1 });
        }
        SimulatedOsn::from_graph(b.build().unwrap())
    }

    #[test]
    fn circulation_covers_all_neighbors_before_repeat() {
        // Force repeated transits of the same directed edge and check the
        // outgoing choices circulate — on both history backends.
        for backend in [HistoryBackend::Legacy, HistoryBackend::Arena] {
            let g = GraphBuilder::new()
                .add_edge(0, 1) // edge to circulate: 0 -> 1
                .add_edge(1, 2)
                .add_edge(1, 3)
                .add_edge(1, 4)
                .add_edge(2, 0)
                .add_edge(3, 0)
                .add_edge(4, 0)
                .build()
                .unwrap();
            let mut client = SimulatedOsn::from_graph(g);
            let mut rng = ChaCha12Rng::seed_from_u64(1);
            let mut w = Cnrw::with_backend(NodeId(0), backend);
            assert_eq!(w.backend(), backend);

            // Walk long enough to transit 0->1 many times; collect the node
            // chosen immediately after each 0->1 transit.
            let mut after: Vec<NodeId> = Vec::new();
            let mut prev = w.current();
            for _ in 0..4000 {
                let curr = w.step(&mut client, &mut rng).unwrap();
                if prev == NodeId(0) && curr == NodeId(1) {
                    let nxt = w.step(&mut client, &mut rng).unwrap();
                    after.push(nxt);
                    prev = nxt;
                    continue;
                }
                prev = curr;
            }
            assert!(after.len() >= 12, "too few transits: {}", after.len());
            // Every consecutive window of 4 choices must cover all of N(1) =
            // {0, 2, 3, 4} exactly once (alternating path blocks, Fig. 3).
            for chunk in after.chunks_exact(4) {
                let mut set: Vec<u32> = chunk.iter().map(|n| n.0).collect();
                set.sort_unstable();
                assert_eq!(
                    set,
                    vec![0, 2, 3, 4],
                    "window not a permutation ({backend}): {chunk:?}"
                );
            }
        }
    }

    #[test]
    fn backend_traces_are_seed_stable() {
        // Same seed + same backend -> same trace; the two backends consume
        // RNG differently, so cross-backend traces may (and generally do)
        // diverge while staying distributionally equivalent.
        let run = |backend: HistoryBackend| {
            let mut client = star_plus_ring();
            let mut rng = ChaCha12Rng::seed_from_u64(17);
            let mut w = Cnrw::with_backend(NodeId(0), backend);
            (0..500)
                .map(|_| w.step(&mut client, &mut rng).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(HistoryBackend::Arena), run(HistoryBackend::Arena));
        assert_eq!(run(HistoryBackend::Legacy), run(HistoryBackend::Legacy));
    }

    #[test]
    fn stationary_matches_srw_target() {
        let mut client = star_plus_ring();
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut w = Cnrw::new(NodeId(0));
        let steps = 120_000;
        let mut visits = vec![0usize; client.graph().node_count()];
        for _ in 0..steps {
            visits[w.step(&mut client, &mut rng).unwrap().index()] += 1;
        }
        let pi = client.graph().degree_stationary_distribution();
        for (i, &c) in visits.iter().enumerate() {
            let freq = c as f64 / steps as f64;
            assert!(
                (freq - pi[i]).abs() < 0.015,
                "node {i}: freq {freq} vs pi {}",
                pi[i]
            );
        }
    }

    #[test]
    fn escapes_barbell_faster_than_srw() {
        // Theorem 3's phenomenon: starting inside one bell, CNRW reaches the
        // other bell sooner than SRW (the long-run bridge-crossing *rate* is
        // identical by stationarity — the gain is in the hitting time).
        let g = barbell(12, 12).unwrap();
        let trials = 1200;
        let cap = 20_000;

        let mean_escape = |make: &dyn Fn() -> Box<dyn RandomWalk>| -> f64 {
            let mut total = 0usize;
            for t in 0..trials {
                let mut walker = make();
                let mut client = SimulatedOsn::from_graph(g.clone());
                let mut rng = ChaCha12Rng::seed_from_u64(1000 + t as u64);
                let mut steps = cap;
                for s in 1..=cap {
                    let v = walker.step(&mut client, &mut rng).unwrap();
                    if v.index() >= 12 {
                        steps = s;
                        break;
                    }
                }
                total += steps;
            }
            total as f64 / trials as f64
        };

        let srw_t = mean_escape(&|| Box::new(crate::walkers::Srw::new(NodeId(0))));
        let cnrw_t = mean_escape(&|| Box::new(Cnrw::new(NodeId(0))));
        // The hitting-time gain at this scale is modest (the circulated
        // exclusion only bites on repeat transits of the same directed
        // edge); what must hold is a statistically clear improvement.
        assert!(
            cnrw_t < srw_t * 0.95,
            "CNRW mean escape {cnrw_t:.1} not clearly below SRW {srw_t:.1}"
        );
    }

    #[test]
    fn history_grows_linearly_with_steps() {
        let mut client = star_plus_ring();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut w = Cnrw::new(NodeId(0));
        for _ in 0..100 {
            w.step(&mut client, &mut rng).unwrap();
        }
        // Each step records at most one entry (minus resets and the first).
        assert!(w.history_entries() <= 100);
        assert!(w.tracked_edges() > 0);
    }

    #[test]
    fn restart_clears_history() {
        let mut client = star_plus_ring();
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut w = Cnrw::new(NodeId(0));
        for _ in 0..50 {
            w.step(&mut client, &mut rng).unwrap();
        }
        w.restart(NodeId(2));
        assert_eq!(w.history_entries(), 0);
        assert_eq!(w.tracked_edges(), 0);
        assert_eq!(w.current(), NodeId(2));
    }

    #[test]
    fn budget_error_leaves_walker_unchanged() {
        let g = star_plus_ring();
        let mut client = osn_client::BudgetedClient::new(g, 1, 6);
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut w = Cnrw::new(NodeId(0));
        w.step(&mut client, &mut rng).unwrap(); // consumes the only budget
        let at = w.current();
        // Next step needs a new node's neighbors -> budget error.
        let r = w.step(&mut client, &mut rng);
        if r.is_err() {
            assert_eq!(w.current(), at);
        }
    }
}
