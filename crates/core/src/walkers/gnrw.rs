//! GroupBy Neighbors Random Walk (GNRW) — paper §4.

use std::sync::Arc;

use osn_client::{BudgetExhausted, OsnClient};
use osn_graph::NodeId;
use osn_serde::Value;
use rand::{Rng, RngCore};

use crate::fnv::FnvHashMap;
use crate::grouping::GroupingStrategy;
use crate::groupplan::{DrawBatch, GroupPlan, PlanMode};
use crate::history::{EdgeHistory, GroupEdgeView, GroupHistory, HistoryBackend};
use crate::walker::{check_backend, prev_from_value, prev_to_value, uniform_pick, RandomWalk};

/// GroupBy Neighbors Random Walk (paper §4, Algorithm 2).
///
/// Given the incoming transition `u → v`, the neighbors of `v` are first
/// partitioned into groups by a [`GroupingStrategy`] `g(·)`; the walk then
///
/// 1. maintains a **global** without-replacement set `b(u, v)` over `N(v)`
///    (reset once it reaches `N(v)`, as in CNRW — Algorithm 2's step 4):
///    every super-cycle of `deg(v)` transits through `(u, v)` covers each
///    neighbor exactly once, which is what preserves the stationary
///    distribution for arbitrary group sizes (Theorem 4);
/// 2. within the super-cycle, circulates **among groups**: the set
///    `S(u, v)` of groups attempted in the current sub-cycle is excluded
///    (resetting when no un-attempted group still has unvisited members),
///    and each candidate group is chosen with probability proportional to
///    its number of not-yet-attempted transitions (Figure 4's weighting);
/// 3. chooses uniformly among the chosen group's unvisited members.
///
/// The group circulation therefore only shapes the *order* in which the
/// super-cycle covers `N(v)`: the walk alternates between strata as fast as
/// possible — the stratified-sampling effect of Figure 5 — without touching
/// the per-neighbor marginal.
///
/// Theorem 4: same stationary distribution as SRW (`k_v / 2|E|`) for *any*
/// grouping strategy, and asymptotic variance never above SRW's. When the
/// grouping is aligned with the aggregate of interest (group by the measure
/// attribute), GNRW beats CNRW because it alternates between attribute
/// strata faster.
///
/// With per-node groups or a single group GNRW degenerates to CNRW. The
/// interesting regime is a handful of value-homogeneous groups.
///
/// ## Execution paths
///
/// The walker runs in one of two configurations:
///
/// * **Scratch** ([`Gnrw::new`] / [`Gnrw::with_backend`]) — the partition
///   of `N(v)` is re-derived on every historied step by calling the
///   strategy and re-bucketing into a reused hash map. Always available;
///   the reference implementation.
/// * **Plan-backed** ([`Gnrw::with_plan`]) — the partition comes from a
///   shared precomputed [`GroupPlan`], RNG is consumed in batches, and the
///   step does zero hashing and zero allocation. [`PlanMode::Exact`]
///   preserves the scratch path's RNG order (bit-identical traces);
///   [`PlanMode::Alias`] adds `O(1)` alias-table group selection and
///   within-group partial-Fisher–Yates member picks (equivalent in
///   distribution by Theorem 4, not in trace). Degenerate groupings
///   (single group / all singletons) are detected by the plan and the
///   walker then delegates wholesale to the CNRW circulation —
///   bit-identical to [`Cnrw`](crate::walkers::Cnrw) by construction.
pub struct Gnrw {
    prev: Option<NodeId>,
    current: NodeId,
    /// `None` for plan-backed walkers: the plan already materializes every
    /// assignment the strategy would make.
    strategy: Option<Box<dyn GroupingStrategy + Send>>,
    strategy_label: String,
    history: GroupHistory,
    label: String,
    plan: Option<PlanState>,
    // Reused scratch state (one allocation amortized over the walk).
    // Groups hold neighbor *indices* into `scratch_neighbors`, which is what
    // the arena backend's membership probes are keyed by.
    scratch_neighbors: Vec<NodeId>,
    scratch_assignments: Vec<u64>,
    scratch_groups: FnvHashMap<u64, Vec<u32>>,
    scratch_keys: Vec<u64>,
    scratch_candidates: Vec<(u64, usize)>,
    /// Cleared member vectors recycled across `scratch_groups` evictions,
    /// so steady-state steps never allocate (see
    /// [`Self::fresh_group_allocs`]).
    scratch_freelist: Vec<Vec<u32>>,
    fresh_group_allocs: usize,
}

/// The plan-backed execution state: shared plan, effective mode, batched
/// RNG buffer, and (for degenerate groupings) the CNRW delegate history.
struct PlanState {
    plan: Arc<GroupPlan>,
    mode: PlanMode,
    batch: DrawBatch,
    /// `Some` when the plan detected a CNRW-degenerate grouping: the step
    /// replicates `Cnrw::step` against this history verbatim.
    cnrw: Option<EdgeHistory>,
    /// Per-group remaining counts, reused across steps.
    rem_scratch: Vec<u32>,
}

impl Gnrw {
    /// Start a walk at `start` with the given grouping strategy, on the
    /// default (arena) history backend.
    pub fn new(start: NodeId, strategy: Box<dyn GroupingStrategy + Send>) -> Self {
        Self::with_backend(start, strategy, HistoryBackend::default())
    }

    /// Start a walk at `start` with the given grouping strategy and an
    /// explicit history backend.
    pub fn with_backend(
        start: NodeId,
        strategy: Box<dyn GroupingStrategy + Send>,
        backend: HistoryBackend,
    ) -> Self {
        let strategy_label = strategy.label();
        Self::build(start, Some(strategy), strategy_label, backend, None)
    }

    /// Start a plan-backed walk at `start` on the default (arena) history
    /// backend — the fast path. The plan is shared read-only; per-edge
    /// circulation state stays in this walker.
    ///
    /// [`PlanMode::Alias`] silently downgrades to [`PlanMode::Exact`] when
    /// the plan has a node with more than 64 groups (the attempted-set
    /// bitmask bound); degenerate groupings delegate to CNRW regardless of
    /// `mode`.
    pub fn with_plan(start: NodeId, plan: Arc<GroupPlan>, mode: PlanMode) -> Self {
        Self::with_plan_backend(start, plan, mode, HistoryBackend::default())
    }

    /// Plan-backed walk with an explicit history backend. Exists so
    /// equivalence tests can pin `Exact` mode against the legacy backend
    /// too; alias mode's per-edge state is an arena-engine representation.
    ///
    /// # Panics
    /// Panics on `Alias` + [`HistoryBackend::Legacy`] (after the ≤ 64-group
    /// downgrade and degenerate delegation are applied).
    pub fn with_plan_backend(
        start: NodeId,
        plan: Arc<GroupPlan>,
        mode: PlanMode,
        backend: HistoryBackend,
    ) -> Self {
        let mode = match mode {
            PlanMode::Alias if plan.max_groups() > 64 => PlanMode::Exact,
            m => m,
        };
        let cnrw = plan
            .degenerate()
            .map(|_| EdgeHistory::with_backend(backend));
        assert!(
            !(mode == PlanMode::Alias && cnrw.is_none() && backend == HistoryBackend::Legacy),
            "alias plan mode requires the arena history backend"
        );
        let strategy_label = plan.strategy_label().to_string();
        Self::build(
            start,
            None,
            strategy_label,
            backend,
            Some(PlanState {
                plan,
                mode,
                batch: DrawBatch::new(),
                cnrw,
                rem_scratch: Vec::new(),
            }),
        )
    }

    fn build(
        start: NodeId,
        strategy: Option<Box<dyn GroupingStrategy + Send>>,
        strategy_label: String,
        backend: HistoryBackend,
        plan: Option<PlanState>,
    ) -> Self {
        let label = format!("GNRW[{strategy_label}]");
        Gnrw {
            prev: None,
            current: start,
            strategy,
            strategy_label,
            history: GroupHistory::with_backend(backend),
            label,
            plan,
            scratch_neighbors: Vec::new(),
            scratch_assignments: Vec::new(),
            scratch_groups: FnvHashMap::default(),
            scratch_keys: Vec::new(),
            scratch_candidates: Vec::new(),
            scratch_freelist: Vec::new(),
            fresh_group_allocs: 0,
        }
    }

    /// Which history backend this walker runs on.
    pub fn backend(&self) -> HistoryBackend {
        self.history.backend()
    }

    /// The plan mode this walker effectively runs in (`None` on the scratch
    /// path) — after the ≤ 64-group alias downgrade; degenerate plans
    /// report their nominal mode while delegating to CNRW.
    pub fn plan_mode(&self) -> Option<PlanMode> {
        self.plan.as_ref().map(|p| p.mode)
    }

    /// Whether this walker delegates to the CNRW circulation because its
    /// plan detected a degenerate grouping.
    pub fn is_cnrw_degenerate(&self) -> bool {
        self.plan.as_ref().is_some_and(|p| p.cnrw.is_some())
    }

    /// The strategy's own label (e.g. `GNRW_By_Degree`), used by the
    /// Figure 9 experiment to distinguish variants.
    pub fn strategy_label(&self) -> String {
        self.strategy_label.clone()
    }

    /// Number of directed edges with live circulation state.
    pub fn tracked_edges(&self) -> usize {
        match self.plan.as_ref().and_then(|p| p.cnrw.as_ref()) {
            Some(cnrw) => cnrw.tracked_edges(),
            None => self.history.tracked_edges(),
        }
    }

    /// Total recorded history entries (memory-profile metric).
    pub fn history_entries(&self) -> usize {
        match self.plan.as_ref().and_then(|p| p.cnrw.as_ref()) {
            Some(cnrw) => cnrw.total_entries(),
            None => self.history.total_entries(),
        }
    }

    /// Allocated history-arena capacity in entries (`None` on the legacy
    /// backend). [`RandomWalk::restart`] keeps this unchanged — the slab is
    /// reused, not re-allocated.
    pub fn arena_capacity(&self) -> Option<usize> {
        self.history.arena_capacity()
    }

    /// How many group-member vectors the scratch path has allocated fresh
    /// (rather than recycled from the eviction freelist). Plateaus once the
    /// walk reaches steady state — the observable behind the
    /// zero-allocation claim of the scratch hot loop. Always 0 on
    /// plan-backed walkers.
    pub fn fresh_group_allocs(&self) -> usize {
        self.fresh_group_allocs
    }

    /// One plan-backed step (`self.plan` is `Some`). Split out of
    /// [`RandomWalk::step`] to keep field borrows tractable.
    fn plan_step(
        &mut self,
        client: &mut dyn OsnClient,
        rng: &mut dyn RngCore,
    ) -> Result<NodeId, BudgetExhausted> {
        let v = self.current;
        let PlanState {
            plan,
            mode,
            batch,
            cnrw,
            rem_scratch,
        } = self.plan.as_mut().expect("plan_step requires a plan");
        let neighbors = client.neighbors(v)?;
        if neighbors.is_empty() {
            return Ok(v);
        }
        let next = if let Some(cnrw) = cnrw {
            // Degenerate grouping: replicate `Cnrw::step` verbatim (same
            // draws straight off `rng`), so traces are bit-identical to a
            // CNRW walker on the same seed/backend.
            match self.prev {
                None => uniform_pick(neighbors, rng),
                Some(u) => cnrw
                    .draw(u, v, neighbors, rng)
                    .expect("non-empty neighbor list"),
            }
        } else {
            let groups = plan.groups(v);
            debug_assert_eq!(
                groups.len(),
                neighbors.len(),
                "plan built over a different snapshot"
            );
            match self.prev {
                // No incoming edge yet: plain SRW step. Drawn through the
                // batch — the k-th ranged draw consumes the k-th u64 of the
                // stream exactly as `uniform_pick` would, keeping Exact
                // mode bit-identical to the scratch walker.
                None => neighbors[batch.range(neighbors.len(), rng)],
                Some(u) => match mode {
                    PlanMode::Alias => {
                        let mut view = self.history.plan_view(u, v, &groups);
                        let idx = view.draw(&groups, plan.alias(v), batch, rng, rem_scratch);
                        neighbors[idx]
                    }
                    PlanMode::Exact => {
                        // The scratch algorithm verbatim, with the partition
                        // read from the plan (groups ascending by key,
                        // members ascending by index — the same ordering the
                        // scratch path derives) and draws through the batch.
                        let mut view = self.history.edge_view(u, v, neighbors.len());
                        rem_scratch.clear();
                        rem_scratch.extend((0..groups.group_count()).map(|g| {
                            groups
                                .members_of(g)
                                .iter()
                                .filter(|&&i| !view.is_used(i as usize, neighbors[i as usize]))
                                .count() as u32
                        }));
                        // Candidate groups: un-attempted with unvisited
                        // members; if none, reset the group sub-cycle.
                        let candidate = |view: &GroupEdgeView<'_>, g: usize| {
                            rem_scratch[g] > 0 && !view.group_attempted(groups.keys[g])
                        };
                        let mut total: usize = (0..groups.group_count())
                            .filter(|&g| candidate(&view, g))
                            .map(|g| rem_scratch[g] as usize)
                            .sum();
                        if total == 0 {
                            view.clear_attempted();
                            total = rem_scratch.iter().map(|&r| r as usize).sum();
                        }
                        debug_assert!(total > 0, "global b(u,v) resets before covering N(v)");
                        // Group chosen with probability proportional to its
                        // not-yet-attempted transitions (Figure 4).
                        let mut pick = batch.range(total, rng);
                        let chosen = (0..groups.group_count())
                            .filter(|&g| candidate(&view, g))
                            .find(|&g| {
                                if pick < rem_scratch[g] as usize {
                                    true
                                } else {
                                    pick -= rem_scratch[g] as usize;
                                    false
                                }
                            })
                            .expect("pick < total remaining");
                        // Uniform among the chosen group's unvisited members.
                        let (idx, node) = view.pick_member(
                            groups.members_of(chosen),
                            neighbors,
                            rem_scratch[chosen] as usize,
                            batch,
                            rng,
                        );
                        view.record(idx, node, groups.keys[chosen]);
                        node
                    }
                },
            }
        };
        self.prev = Some(v);
        self.current = next;
        Ok(next)
    }
}

impl RandomWalk for Gnrw {
    fn name(&self) -> &str {
        &self.label
    }

    fn current(&self) -> NodeId {
        self.current
    }

    fn step(
        &mut self,
        client: &mut dyn OsnClient,
        rng: &mut dyn RngCore,
    ) -> Result<NodeId, BudgetExhausted> {
        if self.plan.is_some() {
            return self.plan_step(client, rng);
        }
        let v = self.current;
        {
            let neighbors = client.neighbors(v)?;
            if neighbors.is_empty() {
                return Ok(v);
            }
            self.scratch_neighbors.clear();
            self.scratch_neighbors.extend_from_slice(neighbors);
        }

        let next = match self.prev {
            // No incoming edge yet: plain SRW step.
            None => uniform_pick(&self.scratch_neighbors, rng),
            Some(u) => {
                // Partition N(v) into groups (metadata peeks are free).
                self.strategy
                    .as_ref()
                    .expect("scratch walker keeps its strategy")
                    .assign(
                        &*client,
                        &self.scratch_neighbors,
                        &mut self.scratch_assignments,
                    );
                // The scratch map is reused across steps; under `Exact`
                // bucketing distinct value keys could otherwise accumulate
                // without bound, so shed stale *entries* when the map
                // balloons — parking the cleared member vectors on a
                // freelist so their buffers are recycled, not re-allocated.
                if self.scratch_groups.len() > 64 {
                    self.scratch_freelist
                        .extend(self.scratch_groups.drain().map(|(_, mut members)| {
                            members.clear();
                            members
                        }));
                } else {
                    self.scratch_groups.values_mut().for_each(Vec::clear);
                }
                let freelist = &mut self.scratch_freelist;
                let fresh = &mut self.fresh_group_allocs;
                for (i, &key) in self.scratch_assignments.iter().enumerate() {
                    self.scratch_groups
                        .entry(key)
                        .or_insert_with(|| {
                            freelist.pop().unwrap_or_else(|| {
                                *fresh += 1;
                                Vec::new()
                            })
                        })
                        .push(i as u32);
                }
                // Deterministic group ordering (sorted keys) so RNG
                // consumption does not depend on hash-map iteration order.
                self.scratch_keys.clear();
                self.scratch_keys.extend(
                    self.scratch_groups
                        .iter()
                        .filter(|(_, m)| !m.is_empty())
                        .map(|(&k, _)| k),
                );
                self.scratch_keys.sort_unstable();

                let neighbors = &self.scratch_neighbors;
                let mut view = self.history.edge_view(u, v, neighbors.len());
                // Unvisited members of group `k` in the current super-cycle.
                let remaining =
                    |groups: &FnvHashMap<u64, Vec<u32>>, view: &GroupEdgeView<'_>, k: u64| {
                        groups[&k]
                            .iter()
                            .filter(|&&i| !view.is_used(i as usize, neighbors[i as usize]))
                            .count()
                    };
                // Candidate groups: un-attempted (not in S(u,v)) with
                // unvisited members; if none, reset the group sub-cycle.
                self.scratch_candidates.clear();
                self.scratch_candidates.extend(
                    self.scratch_keys
                        .iter()
                        .filter(|&&k| !view.group_attempted(k))
                        .map(|&k| (k, remaining(&self.scratch_groups, &view, k)))
                        .filter(|&(_, r)| r > 0),
                );
                if self.scratch_candidates.is_empty() {
                    view.clear_attempted();
                    self.scratch_candidates.extend(
                        self.scratch_keys
                            .iter()
                            .map(|&k| (k, remaining(&self.scratch_groups, &view, k)))
                            .filter(|&(_, r)| r > 0),
                    );
                }
                let candidates = &self.scratch_candidates;
                debug_assert!(
                    !candidates.is_empty(),
                    "global b(u,v) resets before covering N(v)"
                );

                // Group chosen with probability proportional to its
                // not-yet-attempted transitions (Figure 4).
                let total: usize = candidates.iter().map(|&(_, r)| r).sum();
                let mut pick = (*rng).gen_range(0..total);
                let mut chosen = candidates[0].0;
                let mut chosen_remaining = candidates[0].1;
                for &(k, r) in candidates {
                    if pick < r {
                        chosen = k;
                        chosen_remaining = r;
                        break;
                    }
                    pick -= r;
                }

                // Uniform among the chosen group's unvisited members.
                let rank = (*rng).gen_range(0..chosen_remaining);
                let idx = self.scratch_groups[&chosen]
                    .iter()
                    .filter(|&&i| !view.is_used(i as usize, neighbors[i as usize]))
                    .nth(rank)
                    .copied()
                    .expect("rank < remaining") as usize;
                let node = neighbors[idx];

                // Record; the view resets the super-cycle once N(v) is
                // covered (Algorithm 2 step 4).
                view.record(idx, node, chosen);
                node
            }
        };

        self.prev = Some(v);
        self.current = next;
        Ok(next)
    }

    fn restart(&mut self, start: NodeId) {
        self.prev = None;
        self.current = start;
        self.history.clear();
        if let Some(ps) = &mut self.plan {
            // Discarding buffered draws is part of the restart contract (a
            // documented equivalence boundary: the fresh walk re-fills from
            // the live RNG position, as an unbatched walker would).
            ps.batch.clear();
            if let Some(cnrw) = &mut ps.cnrw {
                cnrw.clear();
            }
        }
    }

    fn export_state(&self) -> Value {
        // The grouping strategy/plan and label are construction-time spec,
        // and all `scratch_*` fields are per-step transients — the walk
        // position, the circulation history, and (plan path) the buffered
        // RNG draws are the resumable state.
        let history = match self.plan.as_ref().and_then(|p| p.cnrw.as_ref()) {
            Some(cnrw) => cnrw.export_state(),
            None => self.history.export_state(),
        };
        let mut fields = vec![
            ("prev", prev_to_value(self.prev)),
            ("current", Value::Uint(u64::from(self.current.0))),
            ("history", history),
        ];
        if let Some(ps) = &self.plan {
            fields.push(("draws", Value::arr(ps.batch.pending())));
        }
        Value::obj(fields)
    }

    fn import_state(&mut self, state: &Value) -> Result<(), String> {
        let history_state = state.field("history")?;
        check_backend(history_state, self.backend())?;
        let prev = prev_from_value(state.field("prev")?)?;
        let current = NodeId(state.field("current")?.decode()?);
        // Restore the pending draw buffer first (absent in scratch-walker
        // exports: resume with an empty buffer).
        let draws: Vec<u64> = match state.field("draws") {
            Ok(v) => v.decode()?,
            Err(_) => Vec::new(),
        };
        match &mut self.plan {
            Some(ps) => {
                ps.batch = DrawBatch::restore(&draws)?;
                match &mut ps.cnrw {
                    Some(cnrw) => *cnrw = EdgeHistory::import_state(history_state)?,
                    None => self.history = GroupHistory::import_state(history_state)?,
                }
            }
            None => {
                if !draws.is_empty() {
                    return Err("scratch GNRW cannot resume buffered draws".into());
                }
                self.history = GroupHistory::import_state(history_state)?;
            }
        }
        self.prev = prev;
        self.current = current;
        Ok(())
    }

    fn invalidate_node(&mut self, node: NodeId) -> usize {
        // Both the group circulation `S(u, node)` and the global set
        // `b(u, node)` are populations derived from `N(node)`; on the
        // degenerate plan path the state lives in the CNRW delegate instead.
        let mut dropped = self.history.invalidate_target(node);
        if let Some(ps) = &mut self.plan {
            if let Some(cnrw) = &mut ps.cnrw {
                dropped += cnrw.invalidate_target(node);
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{ByAttribute, ByDegree, ByHash, ByNode, ValueBucketing};
    use crate::walkers::Cnrw;
    use osn_client::SimulatedOsn;
    use osn_graph::attributes::{AttributedGraph, NodeAttributes};
    use osn_graph::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn two_community_network() -> AttributedGraph {
        // Two K4 cliques bridged; attribute = community id.
        let mut b = GraphBuilder::new();
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.push_edge(i, j);
                b.push_edge(i + 4, j + 4);
            }
        }
        b.push_edge(3, 4);
        let g = b.build().unwrap();
        let mut attrs = NodeAttributes::for_graph(&g);
        attrs
            .insert_uint("community", vec![0, 0, 0, 0, 1, 1, 1, 1])
            .unwrap();
        AttributedGraph::new(g, attrs).unwrap()
    }

    fn two_community_client() -> SimulatedOsn {
        SimulatedOsn::new(two_community_network())
    }

    #[test]
    fn stationary_matches_srw_target() {
        let mut client = two_community_client();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut w = Gnrw::new(NodeId(0), Box::new(ByAttribute::new("community")));
        let steps = 150_000;
        let mut visits = vec![0usize; client.graph().node_count()];
        for _ in 0..steps {
            visits[w.step(&mut client, &mut rng).unwrap().index()] += 1;
        }
        let pi = client.graph().degree_stationary_distribution();
        for (i, &c) in visits.iter().enumerate() {
            let freq = c as f64 / steps as f64;
            assert!(
                (freq - pi[i]).abs() < 0.015,
                "node {i}: freq {freq} vs pi {}",
                pi[i]
            );
        }
    }

    #[test]
    fn by_hash_stationary_also_unbiased() {
        let mut client = two_community_client();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut w = Gnrw::new(NodeId(0), Box::new(ByHash::new(3)));
        let steps = 150_000;
        let mut visits = vec![0usize; client.graph().node_count()];
        for _ in 0..steps {
            visits[w.step(&mut client, &mut rng).unwrap().index()] += 1;
        }
        let pi = client.graph().degree_stationary_distribution();
        for (i, &c) in visits.iter().enumerate() {
            let freq = c as f64 / steps as f64;
            assert!((freq - pi[i]).abs() < 0.015, "node {i}");
        }
    }

    #[test]
    fn plan_alias_stationary_matches_srw_target() {
        // The alias path reorders draws; its per-node visit frequencies must
        // still converge to the SRW target (Theorem 4 — the super-cycle
        // coverage is untouched). Exact value bucketing keeps the plan
        // non-degenerate (the default quantile bucketing splits these small
        // neighborhoods into singletons, which would delegate to CNRW).
        let network = two_community_network();
        let plan = Arc::new(GroupPlan::build(
            &network,
            &ByAttribute::with_bucketing("community", ValueBucketing::Exact),
        ));
        assert_eq!(plan.degenerate(), None);
        let mut client = SimulatedOsn::new(network);
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut w = Gnrw::with_plan(NodeId(0), plan, PlanMode::Alias);
        assert_eq!(w.plan_mode(), Some(PlanMode::Alias));
        let steps = 150_000;
        let mut visits = vec![0usize; client.graph().node_count()];
        for _ in 0..steps {
            visits[w.step(&mut client, &mut rng).unwrap().index()] += 1;
        }
        let pi = client.graph().degree_stationary_distribution();
        for (i, &c) in visits.iter().enumerate() {
            let freq = c as f64 / steps as f64;
            assert!(
                (freq - pi[i]).abs() < 0.015,
                "node {i}: freq {freq} vs pi {}",
                pi[i]
            );
        }
    }

    #[test]
    fn group_circulation_alternates_groups() {
        // Node 1's neighbors from node 0 split into two degree groups; the
        // walk from 0->1 must alternate between groups rather than repeat.
        // Graph: 0-1; 1-{2,3} (low degree), 1-4 where 4 is a hub.
        let mut b = GraphBuilder::new();
        b.push_edge(0, 1);
        b.push_edge(1, 2);
        b.push_edge(1, 3);
        b.push_edge(1, 4);
        // make 4 a hub
        for i in 5..12 {
            b.push_edge(4, i);
        }
        // return edges so walk can come back
        b.push_edge(2, 0);
        b.push_edge(3, 0);
        b.push_edge(4, 0);
        let g = b.build().unwrap();
        let mut client = SimulatedOsn::from_graph(g);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        // Log2 value buckets give the specific partition this test pins
        // down: {0} (deg 4), {2,3} (deg 2), {4} (deg 9).
        let mut w = Gnrw::new(NodeId(0), Box::new(ByDegree::log2()));

        // Gather the first node after each 0->1 transit.
        let mut after = Vec::new();
        let mut prev = w.current();
        for _ in 0..6000 {
            let curr = w.step(&mut client, &mut rng).unwrap();
            if prev == NodeId(0) && curr == NodeId(1) {
                let nxt = w.step(&mut client, &mut rng).unwrap();
                after.push(nxt);
                prev = nxt;
                continue;
            }
            prev = curr;
        }
        assert!(after.len() > 20);
        // N(1) = {0, 2, 3, 4}: log2 degree buckets give groups {0}, {2,3},
        // {4} (deg 4 -> 2, deg 2 -> 1, deg 9 -> 3). Each super-cycle of 4
        // choices covers N(1) exactly once, and its first 3 choices touch 3
        // distinct groups (the stratified alternation).
        let group = |n: NodeId| match n.0 {
            0 => 0,
            2 | 3 => 1,
            4 => 2,
            _ => unreachable!(),
        };
        for win in after.chunks_exact(4) {
            let mut ids: Vec<u32> = win.iter().map(|n| n.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 2, 3, 4], "super-cycle {win:?} not a cover");
            let mut gs: Vec<u32> = win[..3].iter().map(|&n| group(n)).collect();
            gs.sort_unstable();
            gs.dedup();
            assert_eq!(gs.len(), 3, "first 3 of {win:?} repeat a group");
        }
    }

    #[test]
    fn alias_path_preserves_super_cycle_coverage() {
        // Same pinned topology as `group_circulation_alternates_groups`,
        // driven through the alias plan path: windows of |N(1)| choices
        // after each 0->1 transit must still cover N(1) exactly once
        // (Theorem 4's invariant — what the alias path must NOT change),
        // and the sub-cycle alternation must still touch all three groups.
        let mut b = GraphBuilder::new();
        b.push_edge(0, 1);
        b.push_edge(1, 2);
        b.push_edge(1, 3);
        b.push_edge(1, 4);
        for i in 5..12 {
            b.push_edge(4, i);
        }
        b.push_edge(2, 0);
        b.push_edge(3, 0);
        b.push_edge(4, 0);
        let network = AttributedGraph::bare(b.build().unwrap());
        let plan = Arc::new(GroupPlan::build(&network, &ByDegree::log2()));
        assert_eq!(plan.degenerate(), None);
        let mut client = SimulatedOsn::new(network);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut w = Gnrw::with_plan(NodeId(0), plan, PlanMode::Alias);
        let mut after = Vec::new();
        let mut prev = w.current();
        for _ in 0..6000 {
            let curr = w.step(&mut client, &mut rng).unwrap();
            if prev == NodeId(0) && curr == NodeId(1) {
                let nxt = w.step(&mut client, &mut rng).unwrap();
                after.push(nxt);
                prev = nxt;
                continue;
            }
            prev = curr;
        }
        assert!(after.len() > 20);
        let group = |n: NodeId| match n.0 {
            0 => 0,
            2 | 3 => 1,
            4 => 2,
            _ => unreachable!(),
        };
        for win in after.chunks_exact(4) {
            let mut ids: Vec<u32> = win.iter().map(|n| n.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 2, 3, 4], "super-cycle {win:?} not a cover");
            let mut gs: Vec<u32> = win[..3].iter().map(|&n| group(n)).collect();
            gs.sort_unstable();
            gs.dedup();
            assert_eq!(gs.len(), 3, "first 3 of {win:?} repeat a group");
        }
    }

    #[test]
    fn restart_clears_group_history() {
        let mut client = two_community_client();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut w = Gnrw::new(NodeId(0), Box::new(ByDegree::new()));
        for _ in 0..100 {
            w.step(&mut client, &mut rng).unwrap();
        }
        assert!(w.tracked_edges() > 0);
        w.restart(NodeId(1));
        assert_eq!(w.tracked_edges(), 0);
        assert_eq!(w.history_entries(), 0);
        assert_eq!(w.current(), NodeId(1));
    }

    #[test]
    fn backends_produce_identical_traces() {
        // GNRW's draw consumes exactly two `gen_range` calls per historied
        // step on either backend, and both backends track the same used
        // sets — so unlike CNRW the traces must be bit-identical, not just
        // distributionally equivalent.
        let run = |backend: HistoryBackend| {
            let mut client = two_community_client();
            let mut rng = ChaCha12Rng::seed_from_u64(21);
            let mut w =
                Gnrw::with_backend(NodeId(0), Box::new(ByAttribute::new("community")), backend);
            let trace: Vec<NodeId> = (0..3000)
                .map(|_| w.step(&mut client, &mut rng).unwrap())
                .collect();
            (trace, w.tracked_edges(), w.history_entries())
        };
        assert_eq!(run(HistoryBackend::Legacy), run(HistoryBackend::Arena));
    }

    #[test]
    fn plan_exact_is_bit_identical_to_scratch() {
        // The keystone of the Exact mode: plan-provided groups + batched
        // draws consume the same u64 stream in the same order as the
        // per-step scratch derivation, on both backends. Exact value
        // bucketing keeps the plan non-degenerate so the comparison
        // exercises the real group circulation, not the CNRW delegate.
        let network = two_community_network();
        let plan = Arc::new(GroupPlan::build(
            &network,
            &ByAttribute::with_bucketing("community", ValueBucketing::Exact),
        ));
        assert_eq!(plan.degenerate(), None);
        for backend in HistoryBackend::ALL {
            let scratch = {
                let mut client = two_community_client();
                let mut rng = ChaCha12Rng::seed_from_u64(21);
                let mut w = Gnrw::with_backend(
                    NodeId(0),
                    Box::new(ByAttribute::with_bucketing(
                        "community",
                        ValueBucketing::Exact,
                    )),
                    backend,
                );
                (0..3000)
                    .map(|_| w.step(&mut client, &mut rng).unwrap())
                    .collect::<Vec<_>>()
            };
            let planned = {
                let mut client = two_community_client();
                let mut rng = ChaCha12Rng::seed_from_u64(21);
                let mut w =
                    Gnrw::with_plan_backend(NodeId(0), Arc::clone(&plan), PlanMode::Exact, backend);
                (0..3000)
                    .map(|_| w.step(&mut client, &mut rng).unwrap())
                    .collect::<Vec<_>>()
            };
            assert_eq!(scratch, planned, "trace diverged on {backend}");
        }
    }

    #[test]
    fn degenerate_plans_are_bit_identical_to_cnrw() {
        // Singleton groups (ByNode) and a single group (ByHash(1)) both
        // collapse GNRW to CNRW; the plan detects it and the walker must
        // delegate, making traces bit-identical to a CNRW walker — the
        // scratch path is NOT (it burns two draws per step to CNRW's one),
        // so delegation is what delivers the paper's §4.1 equivalence.
        let network = two_community_network();
        let cnrw_trace = {
            let mut client = SimulatedOsn::new(two_community_network());
            let mut rng = ChaCha12Rng::seed_from_u64(33);
            let mut w = Cnrw::new(NodeId(0));
            (0..3000)
                .map(|_| w.step(&mut client, &mut rng).unwrap())
                .collect::<Vec<_>>()
        };
        for strategy in [
            Box::new(ByNode::new()) as Box<dyn GroupingStrategy>,
            Box::new(ByHash::new(1)),
        ] {
            let plan = Arc::new(GroupPlan::build(&network, strategy.as_ref()));
            assert!(plan.degenerate().is_some(), "{}", strategy.label());
            let mut client = SimulatedOsn::new(two_community_network());
            let mut rng = ChaCha12Rng::seed_from_u64(33);
            let mut w = Gnrw::with_plan(NodeId(0), plan, PlanMode::Alias);
            assert!(w.is_cnrw_degenerate());
            let trace: Vec<NodeId> = (0..3000)
                .map(|_| w.step(&mut client, &mut rng).unwrap())
                .collect();
            assert_eq!(trace, cnrw_trace, "{} diverged from CNRW", strategy.label());
        }
    }

    #[test]
    fn alias_downgrades_when_groups_exceed_bitmask() {
        // A grouping with more than 64 groups on some node cannot use the
        // u64 attempted-set; the walker must fall back to Exact silently.
        let mut b = GraphBuilder::new();
        for i in 1..=80u32 {
            b.push_edge(0, i);
            // Give every spoke a second edge so degrees differ from 1 and
            // the walk can leave.
            b.push_edge(i, if i == 80 { 1 } else { i + 1 });
        }
        let network = AttributedGraph::bare(b.build().unwrap());
        let plan = Arc::new(GroupPlan::build(&network, &ByNode::new()));
        // ByNode is degenerate — use a quantile strategy with many strata
        // to exceed 64 groups without degenerating.
        let plan_many = Arc::new(GroupPlan::build(&network, &ByDegree::quantile(80)));
        if plan_many.max_groups() > 64 {
            let w = Gnrw::with_plan(NodeId(0), plan_many, PlanMode::Alias);
            assert_eq!(w.plan_mode(), Some(PlanMode::Exact));
        }
        // The degenerate singleton plan stays whatever mode it was given
        // but delegates to CNRW.
        let w = Gnrw::with_plan(NodeId(0), plan, PlanMode::Alias);
        assert!(w.is_cnrw_degenerate());
    }

    #[test]
    fn scratch_freelist_recycles_group_vectors() {
        // Exact bucketing over a high-cardinality attribute churns >64
        // distinct group keys through the scratch map, forcing evictions;
        // the freelist must recycle the member vectors so fresh allocations
        // plateau instead of growing with the walk.
        let mut b = GraphBuilder::new();
        let n = 120u32;
        for i in 0..n {
            b.push_edge(i, (i + 1) % n);
            b.push_edge(i, (i + 7) % n);
        }
        let g = b.build().unwrap();
        let mut attrs = NodeAttributes::for_graph(&g);
        attrs
            .insert_uint("id", (0..u64::from(n)).collect())
            .unwrap();
        let mut client = SimulatedOsn::new(AttributedGraph::new(g, attrs).unwrap());
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let mut w = Gnrw::new(
            NodeId(0),
            Box::new(ByAttribute::with_bucketing("id", ValueBucketing::Exact)),
        );
        for _ in 0..2000 {
            w.step(&mut client, &mut rng).unwrap();
        }
        let warm = w.fresh_group_allocs();
        assert!(warm > 0, "churn must have allocated something to recycle");
        for _ in 0..4000 {
            w.step(&mut client, &mut rng).unwrap();
        }
        assert_eq!(
            w.fresh_group_allocs(),
            warm,
            "steady-state steps allocated fresh group vectors"
        );
    }

    #[test]
    fn plan_walker_state_roundtrips_mid_batch() {
        // Export after an odd number of steps (draw buffer partially
        // consumed), import into a fresh walker, and check the two continue
        // bit-identically on the same RNG stream.
        let network = two_community_network();
        let plan = Arc::new(GroupPlan::build(
            &network,
            &ByAttribute::with_bucketing("community", ValueBucketing::Exact),
        ));
        assert_eq!(plan.degenerate(), None);
        for mode in [PlanMode::Exact, PlanMode::Alias] {
            let mut client = two_community_client();
            let mut rng = ChaCha12Rng::seed_from_u64(77);
            let mut w = Gnrw::with_plan(NodeId(0), Arc::clone(&plan), mode);
            for _ in 0..501 {
                w.step(&mut client, &mut rng).unwrap();
            }
            let state = w.export_state();
            let mut w2 = Gnrw::with_plan(NodeId(3), Arc::clone(&plan), mode);
            w2.import_state(&state).unwrap();
            let mut rng2 = rng.clone();
            for i in 0..500 {
                let a = w.step(&mut client, &mut rng).unwrap();
                let b = w2.step(&mut client, &mut rng2).unwrap();
                assert_eq!(a, b, "diverged at step {i} ({mode:?})");
            }
        }
    }

    #[test]
    fn labels() {
        let w = Gnrw::new(NodeId(0), Box::new(ByDegree::new()));
        assert_eq!(w.name(), "GNRW[GNRW_By_Degree]");
        assert_eq!(w.strategy_label(), "GNRW_By_Degree");
        let network = two_community_network();
        let plan = Arc::new(GroupPlan::build(&network, &ByDegree::new()));
        let w = Gnrw::with_plan(NodeId(0), plan, PlanMode::Alias);
        assert_eq!(w.name(), "GNRW[GNRW_By_Degree]");
        assert_eq!(w.strategy_label(), "GNRW_By_Degree");
        assert_eq!(w.fresh_group_allocs(), 0);
    }

    #[test]
    fn single_group_behaves_like_cnrw() {
        // ByHash with 1 group: all neighbors in one group -> pure CNRW
        // circulation. Windows of |N| after-transit choices must be
        // permutations, as in the CNRW test.
        let mut b = GraphBuilder::new();
        b.push_edge(0, 1);
        b.push_edge(1, 2);
        b.push_edge(1, 3);
        b.push_edge(2, 0);
        b.push_edge(3, 0);
        let g = b.build().unwrap();
        let mut client = SimulatedOsn::from_graph(g);
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut w = Gnrw::new(NodeId(0), Box::new(ByHash::new(1)));
        let mut after = Vec::new();
        let mut prev = w.current();
        for _ in 0..4000 {
            let curr = w.step(&mut client, &mut rng).unwrap();
            if prev == NodeId(0) && curr == NodeId(1) {
                let nxt = w.step(&mut client, &mut rng).unwrap();
                after.push(nxt);
                prev = nxt;
                continue;
            }
            prev = curr;
        }
        // N(1) = {0, 2, 3}; windows of 3 must be permutations.
        for win in after.chunks_exact(3) {
            let mut ids: Vec<u32> = win.iter().map(|n| n.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 2, 3], "window {win:?}");
        }
    }
}
