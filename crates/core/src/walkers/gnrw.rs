//! GroupBy Neighbors Random Walk (GNRW) — paper §4.

use osn_client::{BudgetExhausted, OsnClient};
use osn_graph::NodeId;
use osn_serde::Value;
use rand::{Rng, RngCore};

use crate::fnv::FnvHashMap;
use crate::grouping::GroupingStrategy;
use crate::history::{GroupEdgeView, GroupHistory, HistoryBackend};
use crate::walker::{check_backend, prev_from_value, prev_to_value, uniform_pick, RandomWalk};

/// GroupBy Neighbors Random Walk (paper §4, Algorithm 2).
///
/// Given the incoming transition `u → v`, the neighbors of `v` are first
/// partitioned into groups by a [`GroupingStrategy`] `g(·)`; the walk then
///
/// 1. maintains a **global** without-replacement set `b(u, v)` over `N(v)`
///    (reset once it reaches `N(v)`, as in CNRW — Algorithm 2's step 4):
///    every super-cycle of `deg(v)` transits through `(u, v)` covers each
///    neighbor exactly once, which is what preserves the stationary
///    distribution for arbitrary group sizes (Theorem 4);
/// 2. within the super-cycle, circulates **among groups**: the set
///    `S(u, v)` of groups attempted in the current sub-cycle is excluded
///    (resetting when no un-attempted group still has unvisited members),
///    and each candidate group is chosen with probability proportional to
///    its number of not-yet-attempted transitions (Figure 4's weighting);
/// 3. chooses uniformly among the chosen group's unvisited members.
///
/// The group circulation therefore only shapes the *order* in which the
/// super-cycle covers `N(v)`: the walk alternates between strata as fast as
/// possible — the stratified-sampling effect of Figure 5 — without touching
/// the per-neighbor marginal.
///
/// Theorem 4: same stationary distribution as SRW (`k_v / 2|E|`) for *any*
/// grouping strategy, and asymptotic variance never above SRW's. When the
/// grouping is aligned with the aggregate of interest (group by the measure
/// attribute), GNRW beats CNRW because it alternates between attribute
/// strata faster.
///
/// With per-node groups or a single group GNRW degenerates to CNRW. The
/// interesting regime is a handful of value-homogeneous groups.
pub struct Gnrw {
    prev: Option<NodeId>,
    current: NodeId,
    strategy: Box<dyn GroupingStrategy + Send>,
    history: GroupHistory,
    label: String,
    // Reused scratch state (one allocation amortized over the walk).
    // Groups hold neighbor *indices* into `scratch_neighbors`, which is what
    // the arena backend's membership probes are keyed by.
    scratch_neighbors: Vec<NodeId>,
    scratch_assignments: Vec<u64>,
    scratch_groups: FnvHashMap<u64, Vec<u32>>,
    scratch_keys: Vec<u64>,
    scratch_candidates: Vec<(u64, usize)>,
}

impl Gnrw {
    /// Start a walk at `start` with the given grouping strategy, on the
    /// default (arena) history backend.
    pub fn new(start: NodeId, strategy: Box<dyn GroupingStrategy + Send>) -> Self {
        Self::with_backend(start, strategy, HistoryBackend::default())
    }

    /// Start a walk at `start` with the given grouping strategy and an
    /// explicit history backend.
    pub fn with_backend(
        start: NodeId,
        strategy: Box<dyn GroupingStrategy + Send>,
        backend: HistoryBackend,
    ) -> Self {
        let label = format!("GNRW[{}]", strategy.label());
        Gnrw {
            prev: None,
            current: start,
            strategy,
            history: GroupHistory::with_backend(backend),
            label,
            scratch_neighbors: Vec::new(),
            scratch_assignments: Vec::new(),
            scratch_groups: FnvHashMap::default(),
            scratch_keys: Vec::new(),
            scratch_candidates: Vec::new(),
        }
    }

    /// Which history backend this walker runs on.
    pub fn backend(&self) -> HistoryBackend {
        self.history.backend()
    }

    /// The strategy's own label (e.g. `GNRW_By_Degree`), used by the
    /// Figure 9 experiment to distinguish variants.
    pub fn strategy_label(&self) -> String {
        self.strategy.label()
    }

    /// Number of directed edges with live circulation state.
    pub fn tracked_edges(&self) -> usize {
        self.history.tracked_edges()
    }

    /// Total recorded history entries (memory-profile metric).
    pub fn history_entries(&self) -> usize {
        self.history.total_entries()
    }

    /// Allocated history-arena capacity in entries (`None` on the legacy
    /// backend). [`RandomWalk::restart`] keeps this unchanged — the slab is
    /// reused, not re-allocated.
    pub fn arena_capacity(&self) -> Option<usize> {
        self.history.arena_capacity()
    }
}

impl RandomWalk for Gnrw {
    fn name(&self) -> &str {
        &self.label
    }

    fn current(&self) -> NodeId {
        self.current
    }

    fn step(
        &mut self,
        client: &mut dyn OsnClient,
        rng: &mut dyn RngCore,
    ) -> Result<NodeId, BudgetExhausted> {
        let v = self.current;
        {
            let neighbors = client.neighbors(v)?;
            if neighbors.is_empty() {
                return Ok(v);
            }
            self.scratch_neighbors.clear();
            self.scratch_neighbors.extend_from_slice(neighbors);
        }

        let next = match self.prev {
            // No incoming edge yet: plain SRW step.
            None => uniform_pick(&self.scratch_neighbors, rng),
            Some(u) => {
                // Partition N(v) into groups (metadata peeks are free).
                self.strategy.assign(
                    &*client,
                    &self.scratch_neighbors,
                    &mut self.scratch_assignments,
                );
                // The scratch map is reused across steps; under `Exact`
                // bucketing distinct value keys could otherwise accumulate
                // without bound, so shed stale capacity when it balloons.
                if self.scratch_groups.len() > 64 {
                    self.scratch_groups.clear();
                } else {
                    self.scratch_groups.values_mut().for_each(Vec::clear);
                }
                for (i, &key) in self.scratch_assignments.iter().enumerate() {
                    self.scratch_groups.entry(key).or_default().push(i as u32);
                }
                // Deterministic group ordering (sorted keys) so RNG
                // consumption does not depend on hash-map iteration order.
                self.scratch_keys.clear();
                self.scratch_keys.extend(
                    self.scratch_groups
                        .iter()
                        .filter(|(_, m)| !m.is_empty())
                        .map(|(&k, _)| k),
                );
                self.scratch_keys.sort_unstable();

                let neighbors = &self.scratch_neighbors;
                let mut view = self.history.edge_view(u, v, neighbors.len());
                // Unvisited members of group `k` in the current super-cycle.
                let remaining =
                    |groups: &FnvHashMap<u64, Vec<u32>>, view: &GroupEdgeView<'_>, k: u64| {
                        groups[&k]
                            .iter()
                            .filter(|&&i| !view.is_used(i as usize, neighbors[i as usize]))
                            .count()
                    };
                // Candidate groups: un-attempted (not in S(u,v)) with
                // unvisited members; if none, reset the group sub-cycle.
                self.scratch_candidates.clear();
                self.scratch_candidates.extend(
                    self.scratch_keys
                        .iter()
                        .filter(|&&k| !view.group_attempted(k))
                        .map(|&k| (k, remaining(&self.scratch_groups, &view, k)))
                        .filter(|&(_, r)| r > 0),
                );
                if self.scratch_candidates.is_empty() {
                    view.clear_attempted();
                    self.scratch_candidates.extend(
                        self.scratch_keys
                            .iter()
                            .map(|&k| (k, remaining(&self.scratch_groups, &view, k)))
                            .filter(|&(_, r)| r > 0),
                    );
                }
                let candidates = &self.scratch_candidates;
                debug_assert!(
                    !candidates.is_empty(),
                    "global b(u,v) resets before covering N(v)"
                );

                // Group chosen with probability proportional to its
                // not-yet-attempted transitions (Figure 4).
                let total: usize = candidates.iter().map(|&(_, r)| r).sum();
                let mut pick = (*rng).gen_range(0..total);
                let mut chosen = candidates[0].0;
                let mut chosen_remaining = candidates[0].1;
                for &(k, r) in candidates {
                    if pick < r {
                        chosen = k;
                        chosen_remaining = r;
                        break;
                    }
                    pick -= r;
                }

                // Uniform among the chosen group's unvisited members.
                let rank = (*rng).gen_range(0..chosen_remaining);
                let idx = self.scratch_groups[&chosen]
                    .iter()
                    .filter(|&&i| !view.is_used(i as usize, neighbors[i as usize]))
                    .nth(rank)
                    .copied()
                    .expect("rank < remaining") as usize;
                let node = neighbors[idx];

                // Record; the view resets the super-cycle once N(v) is
                // covered (Algorithm 2 step 4).
                view.record(idx, node, chosen);
                node
            }
        };

        self.prev = Some(v);
        self.current = next;
        Ok(next)
    }

    fn restart(&mut self, start: NodeId) {
        self.prev = None;
        self.current = start;
        self.history.clear();
    }

    fn export_state(&self) -> Value {
        // The grouping strategy and label are construction-time spec, and
        // all `scratch_*` fields are per-step transients — only the walk
        // position and the circulation history are resumable state.
        Value::obj([
            ("prev", prev_to_value(self.prev)),
            ("current", Value::Uint(u64::from(self.current.0))),
            ("history", self.history.export_state()),
        ])
    }

    fn import_state(&mut self, state: &Value) -> Result<(), String> {
        let history_state = state.field("history")?;
        check_backend(history_state, self.backend())?;
        let prev = prev_from_value(state.field("prev")?)?;
        let current = NodeId(state.field("current")?.decode()?);
        let history = GroupHistory::import_state(history_state)?;
        self.prev = prev;
        self.current = current;
        self.history = history;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::{ByAttribute, ByDegree, ByHash};
    use osn_client::SimulatedOsn;
    use osn_graph::attributes::{AttributedGraph, NodeAttributes};
    use osn_graph::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn two_community_client() -> SimulatedOsn {
        // Two K4 cliques bridged; attribute = community id.
        let mut b = GraphBuilder::new();
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.push_edge(i, j);
                b.push_edge(i + 4, j + 4);
            }
        }
        b.push_edge(3, 4);
        let g = b.build().unwrap();
        let mut attrs = NodeAttributes::for_graph(&g);
        attrs
            .insert_uint("community", vec![0, 0, 0, 0, 1, 1, 1, 1])
            .unwrap();
        SimulatedOsn::new(AttributedGraph::new(g, attrs).unwrap())
    }

    #[test]
    fn stationary_matches_srw_target() {
        let mut client = two_community_client();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut w = Gnrw::new(NodeId(0), Box::new(ByAttribute::new("community")));
        let steps = 150_000;
        let mut visits = vec![0usize; client.graph().node_count()];
        for _ in 0..steps {
            visits[w.step(&mut client, &mut rng).unwrap().index()] += 1;
        }
        let pi = client.graph().degree_stationary_distribution();
        for (i, &c) in visits.iter().enumerate() {
            let freq = c as f64 / steps as f64;
            assert!(
                (freq - pi[i]).abs() < 0.015,
                "node {i}: freq {freq} vs pi {}",
                pi[i]
            );
        }
    }

    #[test]
    fn by_hash_stationary_also_unbiased() {
        let mut client = two_community_client();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut w = Gnrw::new(NodeId(0), Box::new(ByHash::new(3)));
        let steps = 150_000;
        let mut visits = vec![0usize; client.graph().node_count()];
        for _ in 0..steps {
            visits[w.step(&mut client, &mut rng).unwrap().index()] += 1;
        }
        let pi = client.graph().degree_stationary_distribution();
        for (i, &c) in visits.iter().enumerate() {
            let freq = c as f64 / steps as f64;
            assert!((freq - pi[i]).abs() < 0.015, "node {i}");
        }
    }

    #[test]
    fn group_circulation_alternates_groups() {
        // Node 1's neighbors from node 0 split into two degree groups; the
        // walk from 0->1 must alternate between groups rather than repeat.
        // Graph: 0-1; 1-{2,3} (low degree), 1-4 where 4 is a hub.
        let mut b = GraphBuilder::new();
        b.push_edge(0, 1);
        b.push_edge(1, 2);
        b.push_edge(1, 3);
        b.push_edge(1, 4);
        // make 4 a hub
        for i in 5..12 {
            b.push_edge(4, i);
        }
        // return edges so walk can come back
        b.push_edge(2, 0);
        b.push_edge(3, 0);
        b.push_edge(4, 0);
        let g = b.build().unwrap();
        let mut client = SimulatedOsn::from_graph(g);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        // Log2 value buckets give the specific partition this test pins
        // down: {0} (deg 4), {2,3} (deg 2), {4} (deg 9).
        let mut w = Gnrw::new(NodeId(0), Box::new(ByDegree::log2()));

        // Gather the first node after each 0->1 transit.
        let mut after = Vec::new();
        let mut prev = w.current();
        for _ in 0..6000 {
            let curr = w.step(&mut client, &mut rng).unwrap();
            if prev == NodeId(0) && curr == NodeId(1) {
                let nxt = w.step(&mut client, &mut rng).unwrap();
                after.push(nxt);
                prev = nxt;
                continue;
            }
            prev = curr;
        }
        assert!(after.len() > 20);
        // N(1) = {0, 2, 3, 4}: log2 degree buckets give groups {0}, {2,3},
        // {4} (deg 4 -> 2, deg 2 -> 1, deg 9 -> 3). Each super-cycle of 4
        // choices covers N(1) exactly once, and its first 3 choices touch 3
        // distinct groups (the stratified alternation).
        let group = |n: NodeId| match n.0 {
            0 => 0,
            2 | 3 => 1,
            4 => 2,
            _ => unreachable!(),
        };
        for win in after.chunks_exact(4) {
            let mut ids: Vec<u32> = win.iter().map(|n| n.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 2, 3, 4], "super-cycle {win:?} not a cover");
            let mut gs: Vec<u32> = win[..3].iter().map(|&n| group(n)).collect();
            gs.sort_unstable();
            gs.dedup();
            assert_eq!(gs.len(), 3, "first 3 of {win:?} repeat a group");
        }
    }

    #[test]
    fn restart_clears_group_history() {
        let mut client = two_community_client();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut w = Gnrw::new(NodeId(0), Box::new(ByDegree::new()));
        for _ in 0..100 {
            w.step(&mut client, &mut rng).unwrap();
        }
        assert!(w.tracked_edges() > 0);
        w.restart(NodeId(1));
        assert_eq!(w.tracked_edges(), 0);
        assert_eq!(w.history_entries(), 0);
        assert_eq!(w.current(), NodeId(1));
    }

    #[test]
    fn backends_produce_identical_traces() {
        // GNRW's draw consumes exactly two `gen_range` calls per historied
        // step on either backend, and both backends track the same used
        // sets — so unlike CNRW the traces must be bit-identical, not just
        // distributionally equivalent.
        let run = |backend: HistoryBackend| {
            let mut client = two_community_client();
            let mut rng = ChaCha12Rng::seed_from_u64(21);
            let mut w =
                Gnrw::with_backend(NodeId(0), Box::new(ByAttribute::new("community")), backend);
            let trace: Vec<NodeId> = (0..3000)
                .map(|_| w.step(&mut client, &mut rng).unwrap())
                .collect();
            (trace, w.tracked_edges(), w.history_entries())
        };
        assert_eq!(run(HistoryBackend::Legacy), run(HistoryBackend::Arena));
    }

    #[test]
    fn labels() {
        let w = Gnrw::new(NodeId(0), Box::new(ByDegree::new()));
        assert_eq!(w.name(), "GNRW[GNRW_By_Degree]");
        assert_eq!(w.strategy_label(), "GNRW_By_Degree");
    }

    #[test]
    fn single_group_behaves_like_cnrw() {
        // ByHash with 1 group: all neighbors in one group -> pure CNRW
        // circulation. Windows of |N| after-transit choices must be
        // permutations, as in the CNRW test.
        let mut b = GraphBuilder::new();
        b.push_edge(0, 1);
        b.push_edge(1, 2);
        b.push_edge(1, 3);
        b.push_edge(2, 0);
        b.push_edge(3, 0);
        let g = b.build().unwrap();
        let mut client = SimulatedOsn::from_graph(g);
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut w = Gnrw::new(NodeId(0), Box::new(ByHash::new(1)));
        let mut after = Vec::new();
        let mut prev = w.current();
        for _ in 0..4000 {
            let curr = w.step(&mut client, &mut rng).unwrap();
            if prev == NodeId(0) && curr == NodeId(1) {
                let nxt = w.step(&mut client, &mut rng).unwrap();
                after.push(nxt);
                prev = nxt;
                continue;
            }
            prev = curr;
        }
        // N(1) = {0, 2, 3}; windows of 3 must be permutations.
        for win in after.chunks_exact(3) {
            let mut ids: Vec<u32> = win.iter().map(|n| n.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 2, 3], "window {win:?}");
        }
    }
}
