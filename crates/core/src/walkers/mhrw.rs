//! Metropolis–Hastings random walk (MHRW).

use osn_client::{BudgetExhausted, OsnClient};
use osn_graph::NodeId;
use osn_serde::Value;
use rand::{Rng, RngCore};

use crate::walker::{uniform_pick, RandomWalk};

/// Metropolis–Hastings random walk targeting the **uniform** stationary
/// distribution.
///
/// Proposal: uniform neighbor `w` of the current node `v`; acceptance
/// probability `min(1, k_v / k_w)`. On rejection the walk stays at `v`
/// (the self-loop is part of the chain and *is* recorded in the trace).
///
/// Included as the classical baseline the paper evaluates (and, confirming
/// \[7\] and \[11\], finds much less efficient than the SRW family — Figure 6
/// shows MHRW never reaching the others' accuracy within 1000 queries).
/// Because its stationary distribution differs, estimators must treat MHRW
/// samples as unweighted.
#[derive(Clone, Debug)]
pub struct Mhrw {
    current: NodeId,
}

impl Mhrw {
    /// Start a walk at `start`.
    pub fn new(start: NodeId) -> Self {
        Mhrw { current: start }
    }
}

impl RandomWalk for Mhrw {
    fn name(&self) -> &str {
        "MHRW"
    }

    fn current(&self) -> NodeId {
        self.current
    }

    fn step(
        &mut self,
        client: &mut dyn OsnClient,
        rng: &mut dyn RngCore,
    ) -> Result<NodeId, BudgetExhausted> {
        let v = self.current;
        let neighbors = client.neighbors(v)?;
        if neighbors.is_empty() {
            return Ok(v);
        }
        let proposal = uniform_pick(neighbors, rng);
        let k_v = neighbors.len() as f64;
        let k_w = client.peek_degree(proposal).max(1) as f64;
        let accept = (k_v / k_w).min(1.0);
        if (*rng).gen::<f64>() < accept {
            self.current = proposal;
        }
        Ok(self.current)
    }

    fn restart(&mut self, start: NodeId) {
        self.current = start;
    }

    fn export_state(&self) -> Value {
        Value::obj([("current", Value::Uint(u64::from(self.current.0)))])
    }

    fn import_state(&mut self, state: &Value) -> Result<(), String> {
        self.current = NodeId(state.field("current")?.decode()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_client::SimulatedOsn;
    use osn_graph::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    /// Star graph: hub 0 with 8 spokes. MHRW must reject most hub->spoke...
    /// actually accept all (k_hub/k_spoke >= 1), but reject spoke->hub moves
    /// with prob 1 - 1/8, keeping the sampling uniform.
    fn star() -> SimulatedOsn {
        let mut b = GraphBuilder::new();
        for i in 1..=8 {
            b.push_edge(0, i);
        }
        SimulatedOsn::from_graph(b.build().unwrap())
    }

    #[test]
    fn uniformity_on_star() {
        let mut client = star();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut w = Mhrw::new(NodeId(0));
        let mut visits = [0usize; 9];
        let steps = 90_000;
        for _ in 0..steps {
            let v = w.step(&mut client, &mut rng).unwrap();
            visits[v.index()] += 1;
        }
        // Uniform target: each node ~ steps/9.
        let expected = steps as f64 / 9.0;
        for (i, &c) in visits.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.15, "node {i} visited {c}, expected ~{expected}");
        }
    }

    #[test]
    fn rejection_keeps_position() {
        // On a path end, moving inward has k_v/k_w = 1/2; rejections happen.
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.push_edge(i, i + 1);
        }
        let mut client = SimulatedOsn::from_graph(b.build().unwrap());
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut w = Mhrw::new(NodeId(0));
        let mut stayed = 0;
        for _ in 0..200 {
            let before = w.current();
            let after = w.step(&mut client, &mut rng).unwrap();
            if before == after {
                stayed += 1;
            }
        }
        assert!(stayed > 20, "expected rejections, got {stayed}");
    }

    #[test]
    fn name_and_restart() {
        let mut w = Mhrw::new(NodeId(1));
        assert_eq!(w.name(), "MHRW");
        w.restart(NodeId(4));
        assert_eq!(w.current(), NodeId(4));
    }
}
