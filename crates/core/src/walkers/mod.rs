//! The walker implementations.
//!
//! Baselines: [`Srw`], [`Mhrw`], [`NbSrw`]. Paper contributions: [`Cnrw`]
//! (§3), [`Gnrw`] (§4), and the §5 extension [`NbCnrw`].

mod cnrw;
mod gnrw;
mod mhrw;
mod nbcnrw;
mod nbsrw;
mod node_cnrw;
mod srw;

pub use cnrw::Cnrw;
pub use gnrw::Gnrw;
pub use mhrw::Mhrw;
pub use nbcnrw::NbCnrw;
pub use nbsrw::NbSrw;
pub use node_cnrw::NodeCnrw;
pub use srw::Srw;
