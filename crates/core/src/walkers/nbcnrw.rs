//! Non-backtracking circulated walk (NB-CNRW) — paper §5 extension.

use osn_client::{BudgetExhausted, OsnClient};
use osn_graph::NodeId;
use osn_serde::Value;
use rand::RngCore;

use crate::history::{EdgeHistory, HistoryBackend};
use crate::walker::{check_backend, prev_from_value, prev_to_value, uniform_pick, RandomWalk};

/// Non-backtracking CNRW — the §5 discussion's composition of the circulated
/// transition rule with NB-SRW \[11\]:
///
/// > "Upon visiting `u → v`, instead of sampling the next node with
/// > replacement from `N(v) \ u` (like in NB-SRW), we would sample it
/// > without replacement from `N(v) \ u`."
///
/// The circulation therefore runs over the non-backtracking candidate set;
/// at degree-1 dead ends the forced backtrack applies as in NB-SRW.
pub struct NbCnrw {
    prev: Option<NodeId>,
    current: NodeId,
    history: EdgeHistory,
    scratch: Vec<NodeId>,
}

impl NbCnrw {
    /// Start a walk at `start` on the default (arena) history backend.
    pub fn new(start: NodeId) -> Self {
        Self::with_backend(start, HistoryBackend::default())
    }

    /// Start a walk at `start` with an explicit history backend.
    pub fn with_backend(start: NodeId, backend: HistoryBackend) -> Self {
        NbCnrw {
            prev: None,
            current: start,
            history: EdgeHistory::with_backend(backend),
            scratch: Vec::new(),
        }
    }

    /// Which history backend this walker runs on.
    pub fn backend(&self) -> HistoryBackend {
        self.history.backend()
    }

    /// Total recorded history entries (memory-profile metric).
    pub fn history_entries(&self) -> usize {
        self.history.total_entries()
    }
}

impl RandomWalk for NbCnrw {
    fn name(&self) -> &str {
        "NB-CNRW"
    }

    fn current(&self) -> NodeId {
        self.current
    }

    fn step(
        &mut self,
        client: &mut dyn OsnClient,
        rng: &mut dyn RngCore,
    ) -> Result<NodeId, BudgetExhausted> {
        let v = self.current;
        {
            let neighbors = client.neighbors(v)?;
            if neighbors.is_empty() {
                return Ok(v);
            }
            self.scratch.clear();
            self.scratch.extend_from_slice(neighbors);
        }
        let next = match self.prev {
            None => uniform_pick(&self.scratch, rng),
            Some(u) => {
                if self.scratch.len() == 1 {
                    self.scratch[0] // dead end: forced backtrack
                } else {
                    // Candidate population N(v) \ {u}, circulated per (u,v).
                    self.scratch.retain(|&w| w != u);
                    self.history
                        .draw(u, v, &self.scratch, rng)
                        .expect("non-empty candidate set")
                }
            }
        };
        self.prev = Some(v);
        self.current = next;
        Ok(next)
    }

    fn restart(&mut self, start: NodeId) {
        self.prev = None;
        self.current = start;
        self.history.clear();
    }

    fn export_state(&self) -> Value {
        // `scratch` is per-step transient state, rebuilt from the neighbor
        // list at the top of every step — not part of the snapshot.
        Value::obj([
            ("prev", prev_to_value(self.prev)),
            ("current", Value::Uint(u64::from(self.current.0))),
            ("history", self.history.export_state()),
        ])
    }

    fn import_state(&mut self, state: &Value) -> Result<(), String> {
        let history_state = state.field("history")?;
        check_backend(history_state, self.backend())?;
        let prev = prev_from_value(state.field("prev")?)?;
        let current = NodeId(state.field("current")?.decode()?);
        let history = EdgeHistory::import_state(history_state)?;
        self.prev = prev;
        self.current = current;
        self.history = history;
        Ok(())
    }

    fn invalidate_node(&mut self, node: NodeId) -> usize {
        // The circulated population for `(u, node)` is `N(node) \ {u}` — a
        // function of `N(node)`, so the same target rule applies.
        self.history.invalidate_target(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_client::SimulatedOsn;
    use osn_graph::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn dense_client() -> SimulatedOsn {
        // 6-node graph, min degree 2.
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .add_edge(4, 5)
            .add_edge(5, 0)
            .add_edge(0, 3)
            .add_edge(1, 4)
            .build()
            .unwrap();
        SimulatedOsn::from_graph(g)
    }

    #[test]
    fn never_backtracks_on_min_degree_two() {
        let mut client = dense_client();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut w = NbCnrw::new(NodeId(0));
        let mut prev = w.current();
        let mut curr = w.step(&mut client, &mut rng).unwrap();
        for _ in 0..1000 {
            let next = w.step(&mut client, &mut rng).unwrap();
            assert_ne!(next, prev);
            prev = curr;
            curr = next;
        }
    }

    #[test]
    fn dead_end_backtracks() {
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build()
            .unwrap();
        let mut client = SimulatedOsn::from_graph(g);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut w = NbCnrw::new(NodeId(1));
        let end = w.step(&mut client, &mut rng).unwrap();
        let back = w.step(&mut client, &mut rng).unwrap();
        assert_eq!(back, NodeId(1));
        assert!(end == NodeId(0) || end == NodeId(2));
    }

    #[test]
    fn circulates_over_non_backtracking_set() {
        // From 0->1, candidates are N(1) \ {0} = {2,3,4}; consecutive
        // choices after repeated 0->1 transits must be permutations of
        // {2,3,4} in windows of 3 — on both history backends.
        for backend in [HistoryBackend::Legacy, HistoryBackend::Arena] {
            let mut b = GraphBuilder::new();
            b.push_edge(0, 1);
            b.push_edge(1, 2);
            b.push_edge(1, 3);
            b.push_edge(1, 4);
            b.push_edge(2, 0);
            b.push_edge(3, 0);
            b.push_edge(4, 0);
            // Extra edges so the walk can reach 0->1 without backtracking.
            b.push_edge(2, 3);
            b.push_edge(3, 4);
            let mut client = SimulatedOsn::from_graph(b.build().unwrap());
            let mut rng = ChaCha12Rng::seed_from_u64(2);
            let mut w = NbCnrw::with_backend(NodeId(0), backend);
            assert_eq!(w.backend(), backend);
            let mut after = Vec::new();
            let mut prev = w.current();
            for _ in 0..8000 {
                let curr = w.step(&mut client, &mut rng).unwrap();
                if prev == NodeId(0) && curr == NodeId(1) {
                    let nxt = w.step(&mut client, &mut rng).unwrap();
                    after.push(nxt);
                    prev = nxt;
                    continue;
                }
                prev = curr;
            }
            assert!(after.len() >= 6, "transits ({backend}): {}", after.len());
            for win in after.chunks_exact(3) {
                let mut ids: Vec<u32> = win.iter().map(|n| n.0).collect();
                ids.sort_unstable();
                assert_eq!(ids, vec![2, 3, 4], "window ({backend}) {win:?}");
            }
        }
    }

    #[test]
    fn stationary_matches_degree_distribution() {
        let mut client = dense_client();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mut w = NbCnrw::new(NodeId(0));
        let steps = 120_000;
        let mut visits = [0usize; 6];
        for _ in 0..steps {
            visits[w.step(&mut client, &mut rng).unwrap().index()] += 1;
        }
        let pi = client.graph().degree_stationary_distribution();
        for (i, &c) in visits.iter().enumerate() {
            let freq = c as f64 / steps as f64;
            assert!(
                (freq - pi[i]).abs() < 0.015,
                "node {i}: {freq} vs {}",
                pi[i]
            );
        }
    }

    #[test]
    fn restart_clears() {
        let mut w = NbCnrw::new(NodeId(0));
        w.restart(NodeId(5));
        assert_eq!(w.current(), NodeId(5));
        assert_eq!(w.history_entries(), 0);
        assert_eq!(w.name(), "NB-CNRW");
    }
}
