//! Non-backtracking simple random walk (NB-SRW).

use osn_client::{BudgetExhausted, OsnClient};
use osn_graph::NodeId;
use osn_serde::Value;
use rand::{Rng, RngCore};

use crate::walker::{prev_from_value, prev_to_value, uniform_pick, RandomWalk};

/// Non-backtracking simple random walk (Lee, Xu, Eun \[11\]): an order-2
/// Markov chain that never returns to the immediately previous node unless
/// it has no other choice (degree-1 dead ends).
///
/// Achieves the same stationary distribution as SRW (`k_v / 2|E|`) with
/// provably no larger asymptotic variance; the paper uses it as the
/// state-of-the-art baseline its higher-order walks must beat.
#[derive(Clone, Debug)]
pub struct NbSrw {
    prev: Option<NodeId>,
    current: NodeId,
}

impl NbSrw {
    /// Start a walk at `start`.
    pub fn new(start: NodeId) -> Self {
        NbSrw {
            prev: None,
            current: start,
        }
    }
}

impl RandomWalk for NbSrw {
    fn name(&self) -> &str {
        "NB-SRW"
    }

    fn current(&self) -> NodeId {
        self.current
    }

    fn step(
        &mut self,
        client: &mut dyn OsnClient,
        rng: &mut dyn RngCore,
    ) -> Result<NodeId, BudgetExhausted> {
        let v = self.current;
        let neighbors = client.neighbors(v)?;
        if neighbors.is_empty() {
            return Ok(v);
        }
        let next = match self.prev {
            // First step, or a dead end: plain SRW choice.
            None => uniform_pick(neighbors, rng),
            Some(p) => {
                if neighbors.len() == 1 {
                    neighbors[0] // forced backtrack at a dead end
                } else {
                    // Uniform over N(v) \ {prev}: draw an index among the
                    // k-1 allowed slots, skipping prev's position.
                    let k = neighbors.len();
                    let pos_prev = neighbors.iter().position(|&x| x == p);
                    match pos_prev {
                        None => uniform_pick(neighbors, rng),
                        Some(pp) => {
                            let idx = (*rng).gen_range(0..k - 1);
                            let idx = if idx >= pp { idx + 1 } else { idx };
                            neighbors[idx]
                        }
                    }
                }
            }
        };
        self.prev = Some(v);
        self.current = next;
        Ok(next)
    }

    fn restart(&mut self, start: NodeId) {
        self.prev = None;
        self.current = start;
    }

    fn export_state(&self) -> Value {
        Value::obj([
            ("prev", prev_to_value(self.prev)),
            ("current", Value::Uint(u64::from(self.current.0))),
        ])
    }

    fn import_state(&mut self, state: &Value) -> Result<(), String> {
        let prev = prev_from_value(state.field("prev")?)?;
        self.current = NodeId(state.field("current")?.decode()?);
        self.prev = prev;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_client::SimulatedOsn;
    use osn_graph::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn cycle_with_chord() -> SimulatedOsn {
        // 6-cycle plus chord 0-3: every node degree >= 2.
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .add_edge(4, 5)
            .add_edge(5, 0)
            .add_edge(0, 3)
            .build()
            .unwrap();
        SimulatedOsn::from_graph(g)
    }

    #[test]
    fn never_backtracks_when_degree_allows() {
        let mut client = cycle_with_chord();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut w = NbSrw::new(NodeId(0));
        let mut prev = w.current();
        let mut curr = w.step(&mut client, &mut rng).unwrap();
        for _ in 0..500 {
            let next = w.step(&mut client, &mut rng).unwrap();
            assert_ne!(next, prev, "backtracked through {curr}");
            prev = curr;
            curr = next;
        }
    }

    #[test]
    fn dead_end_forces_backtrack() {
        // Path 0-1-2: at node 0 or 2 the only move is back.
        let g = GraphBuilder::new()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build()
            .unwrap();
        let mut client = SimulatedOsn::from_graph(g);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut w = NbSrw::new(NodeId(1));
        // Move to an end, then it must come back to 1.
        let end = w.step(&mut client, &mut rng).unwrap();
        assert!(end == NodeId(0) || end == NodeId(2));
        let back = w.step(&mut client, &mut rng).unwrap();
        assert_eq!(back, NodeId(1));
    }

    #[test]
    fn stationary_is_degree_proportional() {
        let mut client = cycle_with_chord();
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut w = NbSrw::new(NodeId(0));
        let mut visits = [0usize; 6];
        let steps = 60_000;
        for _ in 0..steps {
            visits[w.step(&mut client, &mut rng).unwrap().index()] += 1;
        }
        // Nodes 0 and 3 have degree 3, others 2; 2|E| = 14.
        let pi = client.graph().degree_stationary_distribution();
        for (i, &c) in visits.iter().enumerate() {
            let freq = c as f64 / steps as f64;
            assert!(
                (freq - pi[i]).abs() < 0.02,
                "node {i}: freq {freq}, pi {}",
                pi[i]
            );
        }
    }

    #[test]
    fn restart_clears_prev() {
        let mut w = NbSrw::new(NodeId(0));
        w.prev = Some(NodeId(9));
        w.restart(NodeId(3));
        assert_eq!(w.prev, None);
        assert_eq!(w.current(), NodeId(3));
    }
}
