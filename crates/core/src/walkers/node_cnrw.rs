//! Node-keyed circulated walk — the §3.2 ablation.
//!
//! The paper chooses **edge-based** recurrence (`b(u, v)` keyed by the
//! incoming directed edge) over **node-based** recurrence (`b(v)` keyed by
//! the current node only) and argues the choice matters: edge-rooted path
//! blocks are longer, so their contents are closer to identically
//! distributed, and the stratification lemma then cuts more variance. The
//! supporting experiments were "not included in this paper due to space
//! limitations" — this walker exists so we can run them (see the
//! `ablation_circulation` experiment and bench).
//!
//! Node-based circulation still preserves the stationary distribution (each
//! full cycle through `b(v)` emits every neighbor of `v` exactly once, so
//! the per-visit marginal stays uniform), but mixes the circulation state of
//! *all* incoming directions, making consecutive same-context choices less
//! evenly spread.

use osn_client::{BudgetExhausted, OsnClient};
use osn_graph::NodeId;
use osn_serde::Value;
use rand::RngCore;

use crate::history::{EdgeHistory, HistoryBackend};
use crate::walker::{check_backend, RandomWalk};

/// CNRW variant with **node-keyed** history `b(v)` (ablation of §3.2's
/// edge-based design decision).
///
/// Storage reuses [`EdgeHistory`] with the degenerate key `(v, v)`, so the
/// ablation walker gets the same [`HistoryBackend`] knob as CNRW proper.
#[derive(Clone, Debug, Default)]
pub struct NodeCnrw {
    current: NodeId,
    history: EdgeHistory,
}

impl NodeCnrw {
    /// Start a walk at `start` on the default (arena) history backend.
    pub fn new(start: NodeId) -> Self {
        Self::with_backend(start, HistoryBackend::default())
    }

    /// Start a walk at `start` with an explicit history backend.
    pub fn with_backend(start: NodeId, backend: HistoryBackend) -> Self {
        NodeCnrw {
            current: start,
            history: EdgeHistory::with_backend(backend),
        }
    }

    /// Which history backend this walker runs on.
    pub fn backend(&self) -> HistoryBackend {
        self.history.backend()
    }

    /// Total recorded history entries.
    pub fn history_entries(&self) -> usize {
        self.history.total_entries()
    }
}

impl RandomWalk for NodeCnrw {
    fn name(&self) -> &str {
        "CNRW-node"
    }

    fn current(&self) -> NodeId {
        self.current
    }

    fn step(
        &mut self,
        client: &mut dyn OsnClient,
        rng: &mut dyn RngCore,
    ) -> Result<NodeId, BudgetExhausted> {
        let v = self.current;
        let neighbors = client.neighbors(v)?;
        if neighbors.is_empty() {
            return Ok(v);
        }
        let next = self
            .history
            .draw(v, v, neighbors, rng)
            .expect("non-empty neighbor list");
        self.current = next;
        Ok(next)
    }

    fn restart(&mut self, start: NodeId) {
        self.current = start;
        self.history.clear();
    }

    fn export_state(&self) -> Value {
        Value::obj([
            ("current", Value::Uint(u64::from(self.current.0))),
            ("history", self.history.export_state()),
        ])
    }

    fn import_state(&mut self, state: &Value) -> Result<(), String> {
        let history_state = state.field("history")?;
        check_backend(history_state, self.backend())?;
        let current = NodeId(state.field("current")?.decode()?);
        let history = EdgeHistory::import_state(history_state)?;
        self.current = current;
        self.history = history;
        Ok(())
    }

    fn invalidate_node(&mut self, node: NodeId) -> usize {
        // Node-keyed history packs `(v, v)`, so the low-word rule matches.
        self.history.invalidate_target(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_client::SimulatedOsn;
    use osn_graph::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn ring_with_hub() -> SimulatedOsn {
        // 5-ring plus hub 5 connected to all.
        let mut b = GraphBuilder::new();
        for i in 0..5u32 {
            b.push_edge(i, (i + 1) % 5);
            b.push_edge(i, 5);
        }
        SimulatedOsn::from_graph(b.build().unwrap())
    }

    #[test]
    fn per_node_circulation_covers_neighbors() {
        // Every visit to the hub draws without replacement from its 5
        // neighbors regardless of where the walk came from.
        let mut client = ring_with_hub();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut w = NodeCnrw::new(NodeId(5));
        let mut after_hub = Vec::new();
        for _ in 0..6000 {
            let before = w.current();
            let v = w.step(&mut client, &mut rng).unwrap();
            if before == NodeId(5) {
                after_hub.push(v);
            }
        }
        assert!(after_hub.len() > 25);
        for win in after_hub.chunks_exact(5) {
            let mut ids: Vec<u32> = win.iter().map(|n| n.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3, 4], "hub cycle {win:?}");
        }
    }

    #[test]
    fn stationary_matches_degree_distribution() {
        let mut client = ring_with_hub();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut w = NodeCnrw::new(NodeId(0));
        let steps = 120_000;
        let mut visits = [0usize; 6];
        for _ in 0..steps {
            visits[w.step(&mut client, &mut rng).unwrap().index()] += 1;
        }
        let pi = client.graph().degree_stationary_distribution();
        for (i, &c) in visits.iter().enumerate() {
            let freq = c as f64 / steps as f64;
            assert!(
                (freq - pi[i]).abs() < 0.015,
                "node {i}: {freq} vs {}",
                pi[i]
            );
        }
    }

    #[test]
    fn restart_clears() {
        let mut client = ring_with_hub();
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut w = NodeCnrw::new(NodeId(0));
        // Circulation sets reset whenever a cycle completes, so a fixed
        // step count can coincidentally land on all-empty; walk until some
        // history is live.
        let mut saw_history = false;
        for _ in 0..200 {
            w.step(&mut client, &mut rng).unwrap();
            if w.history_entries() > 0 {
                saw_history = true;
                break;
            }
        }
        assert!(saw_history);
        w.restart(NodeId(3));
        assert_eq!(w.history_entries(), 0);
        assert_eq!(w.current(), NodeId(3));
        assert_eq!(w.name(), "CNRW-node");
    }
}
