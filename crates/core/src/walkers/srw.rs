//! Simple random walk (SRW).

use osn_client::{BudgetExhausted, OsnClient};
use osn_graph::NodeId;
use osn_serde::Value;
use rand::RngCore;

use crate::walker::{uniform_pick, RandomWalk};

/// Simple random walk: an order-1 Markov chain whose next node is uniform
/// over the neighbors of the current node (paper Definition 2).
///
/// Stationary distribution: `pi(v) = k_v / 2|E|` (Eq. 3). This is the
/// baseline every history-aware walker is measured against, and the walker
/// most prior sampling systems build on.
#[derive(Clone, Debug)]
pub struct Srw {
    current: NodeId,
}

impl Srw {
    /// Start a walk at `start`.
    pub fn new(start: NodeId) -> Self {
        Srw { current: start }
    }
}

impl RandomWalk for Srw {
    fn name(&self) -> &str {
        "SRW"
    }

    fn current(&self) -> NodeId {
        self.current
    }

    fn step(
        &mut self,
        client: &mut dyn OsnClient,
        rng: &mut dyn RngCore,
    ) -> Result<NodeId, BudgetExhausted> {
        let neighbors = client.neighbors(self.current)?;
        if neighbors.is_empty() {
            // Isolated node: the walk is stuck; stay put (degenerate input).
            return Ok(self.current);
        }
        let next = uniform_pick(neighbors, rng);
        self.current = next;
        Ok(next)
    }

    fn restart(&mut self, start: NodeId) {
        self.current = start;
    }

    fn export_state(&self) -> Value {
        Value::obj([("current", Value::Uint(u64::from(self.current.0)))])
    }

    fn import_state(&mut self, state: &Value) -> Result<(), String> {
        self.current = NodeId(state.field("current")?.decode()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_client::SimulatedOsn;
    use osn_graph::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn path_graph() -> SimulatedOsn {
        let mut b = GraphBuilder::new();
        for i in 0..9 {
            b.push_edge(i, i + 1);
        }
        SimulatedOsn::from_graph(b.build().unwrap())
    }

    #[test]
    fn steps_move_to_neighbors() {
        let mut client = path_graph();
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut w = Srw::new(NodeId(5));
        for _ in 0..50 {
            let before = w.current();
            let after = w.step(&mut client, &mut rng).unwrap();
            assert!(client.graph().has_edge(before, after));
            assert_eq!(w.current(), after);
        }
    }

    #[test]
    fn isolated_node_stays_put() {
        let g = GraphBuilder::new()
            .with_nodes(2)
            .add_edge(0, 1)
            .build()
            .unwrap();
        // Build a graph with an isolated node 2.
        let g = GraphBuilder::new()
            .with_nodes(3)
            .extend_edges(g.edges().map(|(a, b)| (a.0, b.0)))
            .build()
            .unwrap();
        let mut client = SimulatedOsn::from_graph(g);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut w = Srw::new(NodeId(2));
        assert_eq!(w.step(&mut client, &mut rng).unwrap(), NodeId(2));
    }

    #[test]
    fn restart_moves_walker() {
        let mut w = Srw::new(NodeId(0));
        w.restart(NodeId(7));
        assert_eq!(w.current(), NodeId(7));
        assert_eq!(w.name(), "SRW");
    }
}
