//! Synthetic node attributes correlated with community structure.
//!
//! GNRW's value proposition (paper §4.1) rests on attribute homophily:
//! connected users tend to share attribute values. Our stand-ins plant
//! communities in the topology (see `osn_graph::generators::homophily`) and
//! derive attributes from the community label plus noise, reproducing both
//! properties the Figure 9 experiment needs: the attribute (a) clusters on
//! the graph and (b) has a heavy-tailed marginal like Yelp's
//! `reviews_count`.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Number of distinct attribute activity levels communities cycle through.
pub const ATTRIBUTE_LEVELS: u32 = 6;

/// Generate heavy-tailed (approximately log-normal, Zipf-like in the upper
/// tail) non-negative counts, one per node, whose scale depends on the
/// node's community: community `c` has median
/// `base_median * ratio^(c mod LEVELS)` with [`ATTRIBUTE_LEVELS`] distinct
/// activity levels (cycling keeps the spread bounded however many
/// communities exist).
///
/// This mirrors review-count distributions on real platforms: a few power
/// users with thousands of reviews, most users with a handful, and activity
/// levels correlated across friendships (via the community).
pub fn zipf_like_counts(
    communities: &[u32],
    base_median: f64,
    ratio: f64,
    sigma: f64,
    seed: u64,
) -> Vec<u64> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    communities
        .iter()
        .map(|&c| {
            // Approximate standard normal: sum of 12 uniforms - 6.
            let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            let median = base_median * ratio.powi((c % ATTRIBUTE_LEVELS) as i32);
            (median * (sigma * z).exp()).round().max(0.0) as u64
        })
        .collect()
}

/// Generate activity counts coupled to **both** community level and the
/// node's own connectivity: median is
/// `base * ratio^(community mod LEVELS) * (degree / mean_degree)^alpha`,
/// with log-normal noise `sigma`.
///
/// The degree coupling matters for the Figure 9 alignment effect: on real
/// platforms a user's review count tracks their general activity, so a
/// neighborhood (which mixes degrees) also mixes attribute values — and
/// stratifying neighbors by the attribute then genuinely spreads the walk
/// across attribute levels instead of across noise.
pub fn degree_scaled_counts(
    communities: &[u32],
    degrees: &[usize],
    base_median: f64,
    ratio: f64,
    alpha: f64,
    sigma: f64,
    seed: u64,
) -> Vec<u64> {
    assert_eq!(communities.len(), degrees.len());
    let mean_degree = (degrees.iter().sum::<usize>() as f64 / degrees.len().max(1) as f64).max(1.0);
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    communities
        .iter()
        .zip(degrees)
        .map(|(&c, &k)| {
            let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            let level_scale = ratio.powi((c % ATTRIBUTE_LEVELS) as i32);
            let degree_scale = ((k.max(1) as f64) / mean_degree).powf(alpha);
            let median = base_median * level_scale * degree_scale;
            (median * (sigma * z).exp()).round().max(0.0) as u64
        })
        .collect()
}

/// Attach a community-derived attribute column to an attribute set.
///
/// # Errors
/// Propagates length-mismatch errors from the attribute store.
pub fn attach_community_attribute(
    attrs: &mut osn_graph::attributes::NodeAttributes,
    name: &str,
    communities: &[u32],
    base_median: f64,
    ratio: f64,
    sigma: f64,
    seed: u64,
) -> osn_graph::Result<()> {
    let values = zipf_like_counts(communities, base_median, ratio, sigma, seed);
    attrs.insert_uint(name, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_heavy_tailed() {
        let communities = vec![0u32; 20_000];
        let counts = zipf_like_counts(&communities, 10.0, 1.0, 1.2, 1);
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        // Log-normal with sigma 1.2: max should dwarf the mean.
        assert!(max > mean * 10.0, "max {max} vs mean {mean}");
        // Median near the configured base.
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!((5.0..20.0).contains(&median), "median {median}");
    }

    #[test]
    fn communities_shift_scale() {
        let communities: Vec<u32> = (0..10_000).map(|i| (i % 2) as u32).collect();
        let counts = zipf_like_counts(&communities, 5.0, 4.0, 0.5, 2);
        let mean_c0: f64 = counts
            .iter()
            .zip(&communities)
            .filter(|(_, &c)| c == 0)
            .map(|(&x, _)| x as f64)
            .sum::<f64>()
            / 5000.0;
        let mean_c1: f64 = counts
            .iter()
            .zip(&communities)
            .filter(|(_, &c)| c == 1)
            .map(|(&x, _)| x as f64)
            .sum::<f64>()
            / 5000.0;
        assert!(
            mean_c1 > mean_c0 * 2.0,
            "community 1 ({mean_c1}) should out-review community 0 ({mean_c0})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let c = vec![0, 1, 2, 3];
        assert_eq!(
            zipf_like_counts(&c, 10.0, 2.0, 1.0, 7),
            zipf_like_counts(&c, 10.0, 2.0, 1.0, 7)
        );
        assert_ne!(
            zipf_like_counts(&c, 10.0, 2.0, 1.0, 7),
            zipf_like_counts(&c, 10.0, 2.0, 1.0, 8)
        );
    }

    #[test]
    fn attach_inserts_column() {
        let g = osn_graph::GraphBuilder::new()
            .add_edge(0, 1)
            .build()
            .unwrap();
        let mut attrs = osn_graph::attributes::NodeAttributes::for_graph(&g);
        attach_community_attribute(&mut attrs, "reviews_count", &[0, 1], 10.0, 2.0, 0.5, 3)
            .unwrap();
        assert!(attrs.contains("reviews_count"));
        assert_eq!(attrs.uint("reviews_count").unwrap().len(), 2);
    }
}
