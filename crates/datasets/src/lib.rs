//! # osn-datasets
//!
//! Synthetic stand-ins for the evaluation datasets of the paper (Table 1):
//!
//! | Paper dataset | Stand-in | Calibration targets |
//! |---|---|---|
//! | Facebook ego-net `1684.edges` (775 nodes, 14,006 edges, clustering 0.47) | [`facebook_like`] | node count, average degree, high clustering |
//! | Google Plus crawl (240k nodes, avg degree 256, clustering 0.51) | [`gplus_like`] | degree scale, high clustering; node count scaled |
//! | Yelp LCC (119,839 users, avg degree 15.9, clustering 0.12) + `reviews_count` | [`yelp_like`] | sparse, modest clustering, Zipf-like community-correlated attribute |
//! | Youtube (1.13M nodes, avg degree 5.3, clustering 0.08) | [`youtube_like`] | very sparse powerlaw, low clustering |
//! | Clustering graph (3 cliques 10/30/50) | [`clustered_graph`] | exact reproduction |
//! | Barbell graph (50+50) | [`barbell_graph`] | exact reproduction |
//!
//! The real crawls are not redistributable (and unavailable offline); the
//! experiments only exercise topology through neighbor queries and
//! degree/attribute aggregates, so generators matched on size, degree,
//! clustering and attribute homophily reproduce the behaviours the paper's
//! figures measure. Anyone holding the original snapshots can load them with
//! `osn_graph::io::read_edge_list` and run the same experiments unchanged.
//!
//! Every builder takes a [`Scale`] so experiments can trade fidelity for
//! runtime, and is deterministic per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attributes;
mod standins;

pub use attributes::{
    attach_community_attribute, degree_scaled_counts, zipf_like_counts, ATTRIBUTE_LEVELS,
};
pub use standins::{
    barbell_graph, barbell_graph_sized, clustered_graph, facebook_like, gplus_like, web_like,
    web_like_config, yelp_like, youtube_like,
};

use osn_graph::analysis::{summarize, GraphSummary};
use osn_graph::attributes::AttributedGraph;

/// Size profile for dataset construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny graphs for unit tests and doctests (seconds of CPU overall).
    Test,
    /// Default experiment scale: large enough that every figure's
    /// qualitative shape reproduces, small enough for a laptop run.
    Default,
    /// Paper-sized where feasible (Yelp full size; Google Plus/Youtube are
    /// still scaled — see DESIGN.md's substitution table).
    Full,
    /// Web scale: paper-sized Youtube (1.13M nodes) and the ~10⁸-edge
    /// [`web_like`] stand-in. Graphs this large should be built/held
    /// through `osn_graph::compact` — budget minutes of build time and
    /// gigabytes of disk, not unit-test seconds.
    Web,
}

/// A named dataset: topology + attributes + (optional) planted communities.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name as it appears in tables (e.g. `"facebook"`).
    pub name: &'static str,
    /// The attributed graph served by the simulated interface.
    pub network: AttributedGraph,
    /// Planted community labels when the generator produces them
    /// (ground-truth side only; samplers never see these).
    pub communities: Option<Vec<u32>>,
}

impl Dataset {
    /// The Table 1 summary row of this dataset.
    pub fn summary(&self) -> GraphSummary {
        summarize(&self.network.graph)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.network.graph.node_count()
    }
}

/// Build all six Table 1 datasets at the given scale with a base seed.
pub fn table1_datasets(scale: Scale, seed: u64) -> Vec<Dataset> {
    vec![
        facebook_like(scale, seed),
        gplus_like(scale, seed.wrapping_add(1)),
        yelp_like(scale, seed.wrapping_add(2)),
        youtube_like(scale, seed.wrapping_add(3)),
        clustered_graph(),
        barbell_graph(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_builds_all_six() {
        let ds = table1_datasets(Scale::Test, 1);
        assert_eq!(ds.len(), 6);
        let names: Vec<_> = ds.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec![
                "facebook",
                "gplus",
                "yelp",
                "youtube",
                "clustered",
                "barbell"
            ]
        );
        for d in &ds {
            assert!(d.node_count() > 0, "{} empty", d.name);
        }
    }

    #[test]
    fn summaries_are_consistent() {
        let d = clustered_graph();
        let s = d.summary();
        assert_eq!(s.nodes, 90);
        assert_eq!(s.edges, 1707);
        assert_eq!(s.triangles, 23780);
    }
}
