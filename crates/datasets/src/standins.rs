//! The six dataset builders.

use osn_graph::attributes::{AttributedGraph, NodeAttributes};
use osn_graph::compact::CompactCsr;
use osn_graph::generators::{
    barbell, clustered_cliques, homophily_communities, powerlaw_configuration, web_graph_compact,
    ClusteredCliquesConfig, HomophilyConfig, WebGraphConfig,
};

use crate::attributes::degree_scaled_counts;
use crate::{Dataset, Scale};

fn build_homophilous(
    name: &'static str,
    config: HomophilyConfig,
    attribute: &str,
    attribute_median: f64,
    seed: u64,
) -> Dataset {
    let (graph, communities) =
        homophily_communities(&config, seed).expect("validated generator config");
    let degrees: Vec<usize> = graph.nodes().map(|v| graph.degree(v)).collect();
    let mut attrs = NodeAttributes::for_graph(&graph);
    let values = degree_scaled_counts(
        &communities,
        &degrees,
        attribute_median,
        1.6, // activity scales up across communities (6 cycled levels)
        0.9, // activity tracks the node's own connectivity
        0.6, // idiosyncratic noise
        seed.wrapping_add(0x9e37_79b9),
    );
    attrs
        .insert_uint(attribute, values)
        .expect("attribute sized for graph");
    let network = AttributedGraph::new(graph, attrs).expect("matching sizes");
    Dataset {
        name,
        network,
        communities: Some(communities),
    }
}

/// Facebook ego-net stand-in: 775 nodes, average degree ≈ 36, clustering
/// pushed high by triadic closure (paper snapshot: 0.47).
///
/// At [`Scale::Test`] a 200-node miniature with the same shape is built;
/// [`Scale::Default`] is the paper's `1684.edges` ego-net (775 nodes);
/// [`Scale::Full`] and up step to the shape of the whole SNAP
/// `facebook_combined` union (4039 nodes, average degree ≈ 44).
pub fn facebook_like(scale: Scale, seed: u64) -> Dataset {
    let (nodes, mean_degree) = match scale {
        Scale::Test => (200, 10.0),
        Scale::Default => (775, 22.0),
        Scale::Full | Scale::Web => (4_039, 30.0),
    };
    build_homophilous(
        "facebook",
        HomophilyConfig {
            nodes,
            communities: 24,
            mean_degree,
            degree_exponent: 2.8,
            homophily: 0.96,
            closure_rounds: 6.0,
            community_degree_ratio: 1.6,
        },
        "age",
        30.0,
        seed,
    )
}

/// Google Plus crawl stand-in: dense, high-clustering powerlaw community
/// graph. The paper's crawl has 240k nodes and average degree 256; we scale
/// nodes and degree down (Default: 20k nodes / degree ≈ 50) — the relative
/// ordering of samplers is insensitive to graph size (paper §5).
pub fn gplus_like(scale: Scale, seed: u64) -> Dataset {
    let (nodes, mean_degree, communities) = match scale {
        Scale::Test => (500, 12.0, 16),
        Scale::Default => (20_000, 16.0, 600),
        Scale::Full => (60_000, 20.0, 1500),
        // Paper node count; degree still scaled (256 would dominate every
        // other dataset's build time without changing sampler ordering).
        Scale::Web => (240_000, 24.0, 4000),
    };
    build_homophilous(
        "gplus",
        HomophilyConfig {
            nodes,
            communities,
            mean_degree,
            degree_exponent: 2.3,
            homophily: 0.975,
            closure_rounds: 5.0,
            community_degree_ratio: 1.8,
        },
        "followers",
        100.0,
        seed,
    )
}

/// Yelp LCC stand-in: sparse (average degree ≈ 16), modest clustering, and
/// the `reviews_count` attribute — heavy-tailed and community-correlated —
/// that Figure 9's grouping strategies aggregate.
pub fn yelp_like(scale: Scale, seed: u64) -> Dataset {
    let (nodes, communities) = match scale {
        Scale::Test => (600, 10),
        Scale::Default => (30_000, 250),
        // Already paper-sized at Full; Web has nothing bigger to add.
        Scale::Full | Scale::Web => (119_839, 1000),
    };
    build_homophilous(
        "yelp",
        HomophilyConfig {
            nodes,
            communities,
            mean_degree: 16.0,
            degree_exponent: 2.4,
            homophily: 0.93,
            closure_rounds: 1.2,
            community_degree_ratio: 1.7,
        },
        "reviews_count",
        8.0,
        seed,
    )
}

/// Youtube stand-in: very sparse powerlaw graph (average degree ≈ 5, low
/// clustering). Built with the configuration model — Youtube's social graph
/// has weak community clustering, which matches the paper's 0.08.
pub fn youtube_like(scale: Scale, seed: u64) -> Dataset {
    let nodes = match scale {
        Scale::Test => 800,
        Scale::Default => 50_000,
        Scale::Full => 200_000,
        // The paper's actual Youtube snapshot size (1,134,890 nodes).
        Scale::Web => 1_134_890,
    };
    let graph = powerlaw_configuration(nodes, 2.2, 2, nodes / 20, seed)
        .expect("validated generator config");
    let mut attrs = NodeAttributes::for_graph(&graph);
    // Uploads count: heavy-tailed, but *uncorrelated* with topology (no
    // planted communities) — a useful contrast case for grouping studies.
    let fake_communities = vec![0u32; graph.node_count()];
    let values = crate::attributes::zipf_like_counts(
        &fake_communities,
        3.0,
        1.0,
        1.3,
        seed.wrapping_add(17),
    );
    attrs
        .insert_uint("uploads", values)
        .expect("attribute sized for graph");
    let network = AttributedGraph::new(graph, attrs).expect("matching sizes");
    Dataset {
        name: "youtube",
        network,
        communities: None,
    }
}

/// Generator configuration of the [`web_like`] stand-in at each tier.
///
/// The shape is gplus-flavored (contiguous communities, 90% intra-community
/// edges, γ ≈ 3 degree tail) but the point is *scale*:
///
/// | tier | nodes | target edges |
/// |---|---|---|
/// | `Test` | 2,000 | ~16k |
/// | `Default` | 100,000 | ~1.2M |
/// | `Full` | 2,000,000 | ~20M |
/// | `Web` | 4,000,000 | ~100M |
///
/// Realized edge counts land a few percent under target after duplicate
/// collapse. Per-tier community counts keep the expected community size
/// (and hence adjacency-gap locality) roughly constant.
pub fn web_like_config(scale: Scale, seed: u64) -> WebGraphConfig {
    let (nodes, avg_degree, communities) = match scale {
        Scale::Test => (2_000, 16.0, 16),
        Scale::Default => (100_000, 24.0, 64),
        Scale::Full => (2_000_000, 20.0, 1_024),
        Scale::Web => (4_000_000, 50.0, 2_048),
    };
    WebGraphConfig::new(nodes, avg_degree, seed)
        .with_communities(communities)
        .with_homophily(0.9)
}

/// Web-scale heavy-tailed stand-in, built straight into a [`CompactCsr`]
/// (the uncompressed form of the upper tiers would not fit comfortably in
/// memory — `Scale::Web` streams ~2×10⁸ arcs through the bounded-memory
/// builder). Deterministic per seed at every tier.
pub fn web_like(scale: Scale, seed: u64) -> CompactCsr {
    web_graph_compact(&web_like_config(scale, seed)).expect("validated generator config")
}

/// The paper's clustering graph, exactly: cliques of 10, 30 and 50 chained
/// by single bridges (90 nodes, 1707 edges, 23,780 triangles).
pub fn clustered_graph() -> Dataset {
    let graph =
        clustered_cliques(&ClusteredCliquesConfig::default()).expect("static config is valid");
    // Community = clique id; "value" attribute separates cliques, the
    // configuration Figure 10 walks are stratified on.
    let communities: Vec<u32> = (0..90u32)
        .map(|i| match i {
            0..=9 => 0,
            10..=39 => 1,
            _ => 2,
        })
        .collect();
    let mut attrs = NodeAttributes::new(graph.node_count());
    attrs
        .insert_uint(
            "value",
            communities.iter().map(|&c| (c as u64 + 1) * 10).collect(),
        )
        .expect("sized correctly");
    let network = AttributedGraph::new(graph, attrs).expect("matching sizes");
    Dataset {
        name: "clustered",
        network,
        communities: Some(communities),
    }
}

/// The paper's barbell graph, exactly: two 50-cliques and one bridge
/// (100 nodes, 2451 edges, 39,200 triangles).
pub fn barbell_graph() -> Dataset {
    barbell_graph_sized(50, 50)
}

/// A barbell with chosen bell sizes (Figure 11 sweeps total sizes 20–56).
pub fn barbell_graph_sized(left: usize, right: usize) -> Dataset {
    let graph = barbell(left, right).expect("validated sizes");
    let communities: Vec<u32> = (0..(left + right) as u32)
        .map(|i| if (i as usize) < left { 0 } else { 1 })
        .collect();
    let mut attrs = NodeAttributes::new(graph.node_count());
    attrs
        .insert_uint("side", communities.iter().map(|&c| c as u64).collect())
        .expect("sized correctly");
    let network = AttributedGraph::new(graph, attrs).expect("matching sizes");
    Dataset {
        name: "barbell",
        network,
        communities: Some(communities),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osn_graph::analysis::{average_clustering_coefficient, components::is_connected};

    #[test]
    fn facebook_default_matches_paper_shape() {
        let d = facebook_like(Scale::Default, 1);
        let g = &d.network.graph;
        assert_eq!(g.node_count(), 775);
        assert!(is_connected(g));
        let deg = g.average_degree();
        assert!((12.0..45.0).contains(&deg), "avg degree {deg}");
        let cc = average_clustering_coefficient(g);
        assert!(cc > 0.25, "clustering {cc} too low for a Facebook stand-in");
        assert!(d.network.attributes.contains("age"));
    }

    #[test]
    fn yelp_attribute_is_community_correlated() {
        let d = yelp_like(Scale::Test, 2);
        let reviews = d.network.attributes.uint("reviews_count").unwrap();
        let communities = d.communities.as_ref().unwrap();
        // Mean reviews of the highest community should exceed the lowest.
        let mean_of = |c: u32| {
            let vals: Vec<u64> = reviews
                .iter()
                .zip(communities)
                .filter(|(_, &cm)| cm == c)
                .map(|(&r, _)| r)
                .collect();
            vals.iter().sum::<u64>() as f64 / vals.len() as f64
        };
        let max_c = *communities.iter().max().unwrap();
        assert!(mean_of(max_c) > mean_of(0) * 2.0);
    }

    #[test]
    fn youtube_is_sparse_low_clustering() {
        let d = youtube_like(Scale::Test, 3);
        let g = &d.network.graph;
        assert!(is_connected(g));
        assert!(g.average_degree() < 10.0);
        let cc = average_clustering_coefficient(g);
        assert!(cc < 0.2, "youtube stand-in clustering {cc} too high");
        assert!(d.network.attributes.contains("uploads"));
    }

    #[test]
    fn barbell_rows_match_table1_exactly() {
        let d = barbell_graph();
        let s = d.summary();
        assert_eq!((s.nodes, s.edges, s.triangles), (100, 2451, 39_200));
        assert!(s.average_clustering_coefficient > 0.95);
    }

    #[test]
    fn clustered_rows_match_table1_exactly() {
        let d = clustered_graph();
        let s = d.summary();
        assert_eq!((s.nodes, s.edges, s.triangles), (90, 1707, 23_780));
        assert!(s.average_clustering_coefficient > 0.95);
        assert_eq!(d.communities.as_ref().unwrap()[9], 0);
        assert_eq!(d.communities.as_ref().unwrap()[10], 1);
        assert_eq!(d.communities.as_ref().unwrap()[89], 2);
    }

    #[test]
    fn barbell_sized_sweep() {
        for n in [20usize, 36, 56] {
            let d = barbell_graph_sized(n / 2, n - n / 2);
            assert_eq!(d.node_count(), n);
            assert!(is_connected(&d.network.graph));
            assert_eq!(d.network.attributes.uint("side").unwrap()[0], 0);
        }
    }

    #[test]
    fn gplus_test_scale_is_dense() {
        let d = gplus_like(Scale::Test, 4);
        assert!(d.network.graph.average_degree() > 10.0);
        assert!(is_connected(&d.network.graph));
    }

    #[test]
    fn facebook_full_is_no_longer_default_sized() {
        let d = facebook_like(Scale::Full, 1);
        assert_eq!(d.node_count(), 4_039);
        assert!(is_connected(&d.network.graph));
        let cc = average_clustering_coefficient(&d.network.graph);
        assert!(cc > 0.25, "clustering {cc} too low for a Facebook stand-in");
    }

    #[test]
    fn web_like_tiers_grow_and_compress() {
        let g = web_like(Scale::Test, 5);
        assert_eq!(g.node_count(), 2_000);
        assert!(g.compression_ratio() >= 2.0, "{}", g.compression_ratio());
        // Tier targets are strictly increasing.
        let mut last = 0;
        for scale in [Scale::Test, Scale::Default, Scale::Full, Scale::Web] {
            let t = web_like_config(scale, 0).target_edges();
            assert!(t > last, "{scale:?} target {t} not above {last}");
            last = t;
        }
        assert!(
            last >= 100_000_000,
            "Web tier targets ~10^8 edges, got {last}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = facebook_like(Scale::Test, 9);
        let b = facebook_like(Scale::Test, 9);
        assert_eq!(a.network.graph, b.network.graph);
        assert_eq!(
            a.network.attributes.uint("age").unwrap(),
            b.network.attributes.uint("age").unwrap()
        );
    }
}
