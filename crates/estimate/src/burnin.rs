//! Automatic burn-in selection.
//!
//! The paper's motivation is that burn-in dominates query cost, yet
//! practitioners usually pick it by folklore. This module turns the Geweke
//! diagnostic into a procedure: scan candidate burn-in lengths and return
//! the smallest prefix whose removal makes the rest of the trace look
//! stationary.

use crate::diagnostics::geweke_z;

/// Result of a burn-in scan.
#[derive(Clone, Debug, PartialEq)]
pub struct BurnInAdvice {
    /// Suggested number of leading samples to discard.
    pub burn_in: usize,
    /// Geweke z-score of the trace after discarding that prefix.
    pub z_after: f64,
    /// Whether any candidate satisfied the threshold (if `false`, the
    /// returned burn-in is the largest candidate and the trace should be
    /// considered unconverged — collect more samples instead of trusting
    /// the estimate).
    pub converged: bool,
}

/// Scan burn-in candidates (0%, 5%, …, 50% of the trace) and return the
/// smallest one whose post-burn-in Geweke |z| falls below `z_threshold`
/// (2.0 is the conventional choice).
///
/// Returns `None` when no candidate can be diagnosed: traces shorter than
/// 200 samples, or traces where every candidate's [`geweke_z`] is
/// undefined — notably **constant (zero-variance) traces**, for which the
/// z-score is 0/0 (see the degenerate-input rules in
/// [`crate::diagnostics`]). A constant trace usually means the walker
/// never left one node; there is no meaningful burn-in to suggest.
///
/// ```
/// use osn_estimate::burnin::suggest_burn_in;
/// // A trace with a decaying transient followed by stationary noise.
/// let xs: Vec<f64> = (0..5000)
///     .map(|i| (-(i as f64) / 200.0).exp() * 8.0 + ((i * 37) % 100) as f64 / 100.0)
///     .collect();
/// let advice = suggest_burn_in(&xs, 2.0).expect("long enough");
/// assert!(advice.converged);
/// assert!(advice.burn_in > 0);
/// ```
pub fn suggest_burn_in(xs: &[f64], z_threshold: f64) -> Option<BurnInAdvice> {
    if xs.len() < 200 {
        return None;
    }
    let candidates: Vec<usize> = (0..=10).map(|i| xs.len() * i / 20).collect();
    let mut last = None;
    for &b in &candidates {
        let rest = &xs[b..];
        let Some(z) = geweke_z(rest, 0.1, 0.5) else {
            continue;
        };
        last = Some((b, z));
        if z.abs() < z_threshold {
            return Some(BurnInAdvice {
                burn_in: b,
                z_after: z,
                converged: true,
            });
        }
    }
    last.map(|(b, z)| BurnInAdvice {
        burn_in: b,
        z_after: z,
        converged: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    #[test]
    fn stationary_trace_needs_no_burn_in() {
        let xs = noise(10_000, 1);
        let advice = suggest_burn_in(&xs, 2.0).unwrap();
        assert!(advice.converged);
        assert_eq!(advice.burn_in, 0);
        assert!(advice.z_after.abs() < 2.0);
    }

    #[test]
    fn transient_prefix_is_detected() {
        // First 20% of the trace drifts from 5.0 to 0.0, then stationary.
        let n = 10_000;
        let mut xs = noise(n, 2);
        for (i, x) in xs.iter_mut().take(n / 5).enumerate() {
            *x += 5.0 * (1.0 - i as f64 / (n as f64 / 5.0));
        }
        let advice = suggest_burn_in(&xs, 2.0).unwrap();
        assert!(advice.converged, "z_after = {}", advice.z_after);
        assert!(
            advice.burn_in >= n / 10,
            "burn-in {} too small for a 20% transient",
            advice.burn_in
        );
    }

    #[test]
    fn unconverged_trace_reports_honestly() {
        // Monotone trend throughout: no prefix removal fixes it.
        let xs: Vec<f64> = (0..5_000).map(|i| i as f64).collect();
        let advice = suggest_burn_in(&xs, 2.0).unwrap();
        assert!(!advice.converged);
        assert!(advice.z_after.abs() >= 2.0);
    }

    #[test]
    fn short_traces_rejected() {
        assert_eq!(suggest_burn_in(&[1.0; 50], 2.0), None);
    }

    #[test]
    fn constant_traces_rejected_not_blessed() {
        // A long zero-variance trace has an undefined z-score at every
        // candidate (see diagnostics' degenerate-input rules): the scan
        // must report "cannot diagnose", not "converged at burn-in 0".
        assert_eq!(suggest_burn_in(&[3.5; 1_000], 2.0), None);
    }

    #[test]
    fn walk_trace_integration() {
        // A real walk on a barbell starting deep in one bell: the indicator
        // "in right bell" has a transient prefix of zeros.
        use osn_graph::generators::barbell;
        let g = barbell(15, 15).unwrap();
        // Build the f-sequence from a deterministic pseudo-walk: emulate by
        // concatenating 1500 zeros (trapped) then alternating-bell noise.
        let _ = g; // topology informs the scenario; sequence suffices here
        let mut xs = vec![0.0; 1500];
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        xs.extend((0..6000).map(|_| if rng.gen::<bool>() { 1.0 } else { 0.0 }));
        let advice = suggest_burn_in(&xs, 2.0).unwrap();
        assert!(advice.burn_in >= 1125, "burn-in {}", advice.burn_in);
    }
}
