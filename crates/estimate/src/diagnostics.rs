//! Convergence diagnostics for choosing burn-in.
//!
//! The paper's whole premise is that the burn-in period dominates query
//! cost. These diagnostics quantify, from traces alone, whether a walk has
//! burned in — the practical tool a user of this library needs to decide how
//! much prefix to discard.
//!
//! Two forms are provided:
//!
//! * the **post-hoc** functions [`geweke_z`] and [`split_rhat`], applied to
//!   complete traces after a run;
//! * the **online** [`WindowedSplitRhat`], a ring-buffered incremental
//!   variant of the split-R̂ statistic over each chain's most recent window,
//!   cheap enough to consult *during* a run — the trigger the multi-walker
//!   orchestrator's work-stealing restart policy checks every few steps.
//!
//! ## Degenerate inputs
//!
//! Both post-hoc diagnostics return `None` — never a fabricated number —
//! when the input cannot support the statistic:
//!
//! * [`geweke_z`]: traces shorter than 100 samples, window fractions
//!   outside `[0, 1]` or overlapping, segments too short for batch means,
//!   or **zero-variance segments** (both standard errors zero — the z-score
//!   is undefined, not 0).
//! * [`split_rhat`]: fewer than 2 chains, any chain shorter than 8,
//!   **unequal chain lengths** (truncating silently would hide starved
//!   chains — truncate explicitly at the call site if that is intended),
//!   or **zero within-half variance** (constant chains carry no evidence
//!   of mixing; R̂ is undefined on them).

/// Geweke z-score: compares the mean of the first `first_frac` of a trace
/// against the mean of the last `last_frac`, normalized by their (batch-mean
/// estimated) standard errors. |z| ≲ 2 is consistent with convergence.
///
/// Returns `None` for degenerate inputs (see the module docs): traces too
/// short to split meaningfully, bad fractions, or zero-variance segments.
pub fn geweke_z(xs: &[f64], first_frac: f64, last_frac: f64) -> Option<f64> {
    let n = xs.len();
    if n < 100 || !(0.0..=1.0).contains(&first_frac) || !(0.0..=1.0).contains(&last_frac) {
        return None;
    }
    let n_first = ((n as f64) * first_frac) as usize;
    let n_last = ((n as f64) * last_frac) as usize;
    if n_first < 20 || n_last < 20 || n_first + n_last > n {
        return None;
    }
    let first = &xs[..n_first];
    let last = &xs[n - n_last..];
    let se = |seg: &[f64]| -> Option<f64> {
        let batches = (seg.len() as f64).sqrt() as usize;
        let v = crate::variance::batch_means_variance(seg, batches.clamp(2, 50))?;
        Some((v / seg.len() as f64).sqrt())
    };
    let m1 = first.iter().sum::<f64>() / n_first as f64;
    let m2 = last.iter().sum::<f64>() / n_last as f64;
    let se1 = se(first)?;
    let se2 = se(last)?;
    let denom = (se1 * se1 + se2 * se2).sqrt();
    if denom == 0.0 {
        // Both segments have zero batch-means variance: the z-score is
        // undefined (0/0), not evidence of convergence.
        return None;
    }
    Some((m1 - m2) / denom)
}

/// Split-chain potential scale reduction factor (R-hat, Gelman–Rubin).
///
/// Each chain is split in half (catching within-chain drift); R-hat near 1
/// indicates the chains agree. Values above ~1.05 mean more burn-in is
/// needed.
///
/// Returns `None` for degenerate inputs (see the module docs): fewer than
/// 2 chains, chains shorter than 8, **unequal chain lengths**, or zero
/// within-half variance. Chains of equal odd length drop their last sample
/// so the halves split evenly.
pub fn split_rhat(chains: &[Vec<f64>]) -> Option<f64> {
    if chains.len() < 2 || chains.iter().any(|c| c.len() < 8) {
        return None;
    }
    let len = chains[0].len();
    if chains.iter().any(|c| c.len() != len) {
        // Unequal chains: refuse rather than silently truncate — a starved
        // chain is exactly the situation the caller must handle explicitly.
        return None;
    }
    let even = len & !1;
    let halves: Vec<&[f64]> = chains
        .iter()
        .flat_map(|c| {
            let c = &c[..even];
            [&c[..even / 2], &c[even / 2..]]
        })
        .collect();
    let m = halves.len() as f64;
    let n = (even / 2) as f64;

    let means: Vec<f64> = halves.iter().map(|h| h.iter().sum::<f64>() / n).collect();
    let grand = means.iter().sum::<f64>() / m;
    let b = n / (m - 1.0)
        * means
            .iter()
            .map(|&x| (x - grand) * (x - grand))
            .sum::<f64>();
    let w = halves
        .iter()
        .zip(&means)
        .map(|(h, &mu)| h.iter().map(|&x| (x - mu) * (x - mu)).sum::<f64>() / (n - 1.0))
        .sum::<f64>()
        / m;
    if w == 0.0 {
        // Zero within-half variance: constant chains carry no mixing
        // evidence, so the statistic is undefined on them.
        return None;
    }
    let var_plus = (n - 1.0) / n * w + b / n;
    Some((var_plus / w).sqrt())
}

/// What [`WindowedSplitRhat::evaluate`] reports about the current windows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowVerdict {
    /// Split-R̂ over the full-window chains.
    pub rhat: f64,
    /// Index of the full-window chain whose window mean deviates most from
    /// the grand window mean — the chain to suspect (and, in the
    /// work-stealing restart policy, the walker to relocate) when
    /// [`rhat`](Self::rhat) flags disagreement.
    pub most_deviant: usize,
}

/// Incremental windowed split-R̂ over the most recent `window` samples of
/// each chain.
///
/// The post-hoc [`split_rhat`] needs the whole trace after the run; this
/// variant maintains one fixed-size ring buffer per chain so diagnostics can
/// run **online**, while the chains are still being extended:
///
/// * [`push`](Self::push) is `O(1)` and allocation-free after construction;
/// * [`evaluate`](Self::evaluate) is `O(chains × window)` and
///   allocation-free — cheap enough to consult every few steps of a walk.
///
/// Only chains whose window has completely filled participate (a chain that
/// has not yet produced `window` samples carries no windowed evidence);
/// `evaluate` returns `None` until at least two windows are full. On full
/// equal windows the statistic is **exactly** [`split_rhat`] applied to the
/// last `window` samples of each participating chain.
#[derive(Clone, Debug)]
pub struct WindowedSplitRhat {
    window: usize,
    rings: Vec<ChainRing>,
}

/// One chain's ring buffer: the last `capacity` pushed values in arrival
/// order (`head` is the next write slot, so the oldest retained sample
/// lives at `head` once the ring has wrapped).
#[derive(Clone, Debug)]
struct ChainRing {
    slots: Vec<f64>,
    head: usize,
    len: usize,
}

impl ChainRing {
    fn new(capacity: usize) -> Self {
        ChainRing {
            slots: vec![0.0; capacity],
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, value: f64) {
        self.slots[self.head] = value;
        self.head = (self.head + 1) % self.slots.len();
        self.len = (self.len + 1).min(self.slots.len());
    }

    fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// The retained sample `i` steps into the window (0 = oldest), assuming
    /// the ring is full.
    fn at(&self, i: usize) -> f64 {
        self.slots[(self.head + i) % self.slots.len()]
    }
}

impl WindowedSplitRhat {
    /// Diagnostic over `chains` ring buffers of `window` samples each.
    /// `window` is clamped to at least 8 and rounded down to even so each
    /// window splits into two equal halves.
    pub fn new(chains: usize, window: usize) -> Self {
        Self::exact(chains, window.max(8))
    }

    /// Like [`Self::new`] but honoring `window` exactly (rounded down to
    /// even, clamped to at least 2 so pushes stay well-defined) instead of
    /// clamping it up to 8 — for probes at finer-than-cadence granularity,
    /// e.g. the reactor's per-event mixing check, where the caller wants
    /// the window to mirror its own (possibly tiny) event budget.
    ///
    /// A window this short may be **unable to ever evaluate**: each half
    /// of a split window needs at least 2 samples for a within-half
    /// variance, so windows shorter than 4 make
    /// [`evaluate`](Self::evaluate) return `None` unconditionally — the
    /// None-not-Some convention for "no evidence", never a fabricated
    /// number.
    pub fn exact(chains: usize, window: usize) -> Self {
        let window = (window & !1).max(2);
        WindowedSplitRhat {
            window,
            rings: (0..chains).map(|_| ChainRing::new(window)).collect(),
        }
    }

    /// Number of chains tracked.
    pub fn chains(&self) -> usize {
        self.rings.len()
    }

    /// The window length (even, at least 8).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Append one sample to `chain`'s window, evicting its oldest retained
    /// sample once full. `O(1)`.
    ///
    /// # Panics
    /// If `chain` is out of range.
    pub fn push(&mut self, chain: usize, value: f64) {
        self.rings[chain].push(value);
    }

    /// Forget everything `chain` has accumulated — called after a restart
    /// relocates a walker, so samples from its abandoned position do not
    /// pollute the post-restart window.
    ///
    /// # Panics
    /// If `chain` is out of range.
    pub fn clear_chain(&mut self, chain: usize) {
        self.rings[chain].clear();
    }

    /// Whether `chain`'s window has filled (and therefore participates in
    /// [`evaluate`](Self::evaluate)).
    pub fn is_full(&self, chain: usize) -> bool {
        self.rings.get(chain).is_some_and(ChainRing::is_full)
    }

    /// Split-R̂ over the full-window chains, plus which of them deviates
    /// most (see [`WindowVerdict`]). `None` with fewer than two full
    /// windows, or when every window half is constant (the same degenerate
    /// rule as [`split_rhat`]).
    pub fn evaluate(&self) -> Option<WindowVerdict> {
        if self.window < 4 {
            // Shorter than two half-splits: each half needs >= 2 samples
            // for a within-half variance (n - 1 would be 0). No evidence,
            // so no verdict — never a fabricated number.
            return None;
        }
        let full: Vec<usize> = (0..self.rings.len())
            .filter(|&i| self.rings[i].is_full())
            .collect();
        if full.len() < 2 {
            return None;
        }
        let half = self.window / 2;
        let n = half as f64;
        let m = (full.len() * 2) as f64;

        // Per-half means and within-half variances, in the same order
        // `split_rhat` iterates: chain's first half, then its second.
        let mut half_means = Vec::new();
        let mut chain_means = Vec::new();
        let mut w_sum = 0.0;
        for &c in &full {
            let ring = &self.rings[c];
            for h in 0..2 {
                let base = h * half;
                let mut sum = 0.0;
                for i in 0..half {
                    sum += ring.at(base + i);
                }
                let mean = sum / n;
                let mut sq = 0.0;
                for i in 0..half {
                    let d = ring.at(base + i) - mean;
                    sq += d * d;
                }
                w_sum += sq / (n - 1.0);
                half_means.push(mean);
            }
            let a = half_means[half_means.len() - 2];
            let b = half_means[half_means.len() - 1];
            chain_means.push((a + b) / 2.0);
        }
        let grand = half_means.iter().sum::<f64>() / m;
        let b = n / (m - 1.0)
            * half_means
                .iter()
                .map(|&x| (x - grand) * (x - grand))
                .sum::<f64>();
        let w = w_sum / m;
        if w == 0.0 {
            return None;
        }
        let var_plus = (n - 1.0) / n * w + b / n;
        let rhat = (var_plus / w).sqrt();

        let chain_grand = chain_means.iter().sum::<f64>() / full.len() as f64;
        let most_deviant = full
            .iter()
            .zip(&chain_means)
            .max_by(|(_, a), (_, b)| {
                (*a - chain_grand)
                    .abs()
                    .total_cmp(&(*b - chain_grand).abs())
            })
            .map(|(&c, _)| c)
            .expect("at least two full chains");
        Some(WindowVerdict { rhat, most_deviant })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    fn noise(n: usize, seed: u64, offset: f64) -> Vec<f64> {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>() + offset).collect()
    }

    #[test]
    fn geweke_small_for_stationary_trace() {
        let xs = noise(10_000, 1, 0.0);
        let z = geweke_z(&xs, 0.1, 0.5).unwrap();
        assert!(z.abs() < 3.0, "z = {z}");
    }

    #[test]
    fn geweke_flags_drift() {
        // Strong upward trend: early mean far below late mean.
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let z = geweke_z(&xs, 0.1, 0.5).unwrap();
        assert!(z.abs() > 5.0, "z = {z} should flag the trend");
    }

    #[test]
    fn geweke_rejects_bad_inputs() {
        assert_eq!(geweke_z(&[1.0; 50], 0.1, 0.5), None);
        let xs = noise(1000, 2, 0.0);
        assert_eq!(geweke_z(&xs, 0.9, 0.9), None);
        assert_eq!(geweke_z(&xs, -0.1, 0.5), None);
    }

    #[test]
    fn geweke_zero_variance_trace_is_none() {
        // A constant trace has zero batch-means variance in both segments:
        // the z-score is 0/0, and the diagnostic must say so, not claim
        // convergence with a fabricated 0.
        let xs = vec![3.5; 1000];
        assert_eq!(geweke_z(&xs, 0.1, 0.5), None);
    }

    #[test]
    fn rhat_near_one_for_agreeing_chains() {
        let chains: Vec<Vec<f64>> = (0..4).map(|s| noise(5000, s, 0.0)).collect();
        let r = split_rhat(&chains).unwrap();
        assert!((r - 1.0).abs() < 0.02, "R-hat {r}");
    }

    #[test]
    fn rhat_large_for_disagreeing_chains() {
        let mut chains: Vec<Vec<f64>> = (0..3).map(|s| noise(5000, s, 0.0)).collect();
        chains.push(noise(5000, 9, 5.0)); // one chain stuck elsewhere
        let r = split_rhat(&chains).unwrap();
        assert!(r > 1.5, "R-hat {r} should flag disagreement");
    }

    #[test]
    fn rhat_rejects_degenerate_input() {
        // Fewer than 2 chains.
        assert_eq!(split_rhat(&[vec![1.0; 100]]), None);
        assert_eq!(split_rhat(&[]), None);
        // Chains shorter than 8.
        assert_eq!(split_rhat(&[vec![1.0; 4], vec![1.0; 4]]), None);
    }

    #[test]
    fn rhat_unequal_chain_lengths_is_none() {
        // A starved chain must not be silently truncated away.
        let chains = vec![noise(100, 1, 0.0), noise(60, 2, 0.0)];
        assert_eq!(split_rhat(&chains), None);
        // Truncating explicitly at the call site works.
        let truncated: Vec<Vec<f64>> = chains.iter().map(|c| c[..60].to_vec()).collect();
        assert!(split_rhat(&truncated).is_some());
    }

    #[test]
    fn rhat_zero_variance_chains_is_none() {
        // Constant chains carry no mixing evidence: undefined, not 1.0.
        let chains = vec![vec![2.0; 100], vec![2.0; 100]];
        assert_eq!(split_rhat(&chains), None);
        // Even when the constants differ between chains (b > 0, w == 0).
        let chains = vec![vec![2.0; 100], vec![5.0; 100]];
        assert_eq!(split_rhat(&chains), None);
    }

    #[test]
    fn rhat_equal_odd_lengths_drop_last_sample() {
        let a = noise(101, 3, 0.0);
        let b = noise(101, 4, 0.0);
        let odd = split_rhat(&[a.clone(), b.clone()]).unwrap();
        let even = split_rhat(&[a[..100].to_vec(), b[..100].to_vec()]).unwrap();
        assert_eq!(odd, even);
    }

    #[test]
    fn windowed_matches_posthoc_on_last_window() {
        let window = 64;
        let chains: Vec<Vec<f64>> = (0..3).map(|s| noise(300, s + 10, s as f64)).collect();
        let mut online = WindowedSplitRhat::new(3, window);
        for (c, chain) in chains.iter().enumerate() {
            for &x in chain {
                online.push(c, x);
            }
        }
        let verdict = online.evaluate().unwrap();
        let tails: Vec<Vec<f64>> = chains
            .iter()
            .map(|c| c[c.len() - window..].to_vec())
            .collect();
        let posthoc = split_rhat(&tails).unwrap();
        assert!(
            (verdict.rhat - posthoc).abs() < 1e-12,
            "online {} vs post-hoc {posthoc}",
            verdict.rhat
        );
        // Chain 2 is offset by +2: by far the most deviant window mean.
        assert_eq!(verdict.most_deviant, 2);
    }

    #[test]
    fn windowed_needs_two_full_windows() {
        let mut online = WindowedSplitRhat::new(3, 8);
        for i in 0..8 {
            online.push(0, i as f64);
        }
        // Only chain 0 is full.
        assert!(online.is_full(0));
        assert!(!online.is_full(1));
        assert_eq!(online.evaluate(), None);
        for i in 0..8 {
            online.push(1, (i * 2) as f64);
        }
        assert!(online.evaluate().is_some());
    }

    #[test]
    fn windowed_clear_chain_removes_it_from_evaluation() {
        let mut online = WindowedSplitRhat::new(2, 8);
        for i in 0..8 {
            online.push(0, i as f64);
            online.push(1, (8 - i) as f64);
        }
        assert!(online.evaluate().is_some());
        online.clear_chain(1);
        assert!(!online.is_full(1));
        assert_eq!(online.evaluate(), None);
    }

    #[test]
    fn windowed_constant_windows_are_none() {
        let mut online = WindowedSplitRhat::new(2, 8);
        for _ in 0..8 {
            online.push(0, 1.0);
            online.push(1, 4.0);
        }
        // Same degenerate rule as the post-hoc statistic: w == 0 -> None.
        assert_eq!(online.evaluate(), None);
    }

    #[test]
    fn windowed_clamps_tiny_and_odd_windows() {
        let online = WindowedSplitRhat::new(2, 3);
        assert_eq!(online.window(), 8);
        let online = WindowedSplitRhat::new(2, 11);
        assert_eq!(online.window(), 10);
        assert_eq!(online.chains(), 2);
    }

    #[test]
    fn windowed_exact_keeps_small_windows() {
        // `exact` rounds down to even but does not inflate to 8 — the
        // event-granularity constructor must honor the caller's budget.
        let online = WindowedSplitRhat::exact(2, 6);
        assert_eq!(online.window(), 6);
        let online = WindowedSplitRhat::exact(2, 5);
        assert_eq!(online.window(), 4);
        // Only the bare minimum for a well-defined ring is enforced.
        let online = WindowedSplitRhat::exact(2, 0);
        assert_eq!(online.window(), 2);
    }

    #[test]
    fn windowed_shorter_than_two_half_splits_is_none() {
        // A window of 2 splits into halves of a single sample each: the
        // within-half variance is undefined (n - 1 == 0). Even with every
        // ring full the verdict must be None, never a fabricated number.
        let mut online = WindowedSplitRhat::exact(2, 2);
        for i in 0..2 {
            online.push(0, i as f64);
            online.push(1, (i * 3) as f64);
        }
        assert!(online.is_full(0) && online.is_full(1));
        assert_eq!(online.evaluate(), None);
        // Window 4 is the shortest that can ever evaluate.
        let mut online = WindowedSplitRhat::exact(2, 4);
        for i in 0..4 {
            online.push(0, i as f64);
            online.push(1, (4 - i) as f64);
        }
        assert!(online.evaluate().is_some());
    }

    #[test]
    fn windowed_all_parked_fleet_is_none() {
        // A fleet whose walkers are all parked on in-flight batches pushes
        // nothing: zero full windows, so there is no mixing evidence yet.
        let online = WindowedSplitRhat::exact(4, 8);
        assert_eq!(online.evaluate(), None);
        // Still None after a partial trickle on a single chain.
        let mut online = WindowedSplitRhat::exact(4, 8);
        online.push(0, 1.0);
        assert_eq!(online.evaluate(), None);
    }
}
