//! Convergence diagnostics for choosing burn-in.
//!
//! The paper's whole premise is that the burn-in period dominates query
//! cost. These diagnostics quantify, from traces alone, whether a walk has
//! burned in — the practical tool a user of this library needs to decide how
//! much prefix to discard.

/// Geweke z-score: compares the mean of the first `first_frac` of a trace
/// against the mean of the last `last_frac`, normalized by their (batch-mean
/// estimated) standard errors. |z| ≲ 2 is consistent with convergence.
///
/// Returns `None` for traces too short to split meaningfully.
pub fn geweke_z(xs: &[f64], first_frac: f64, last_frac: f64) -> Option<f64> {
    let n = xs.len();
    if n < 100 || !(0.0..=1.0).contains(&first_frac) || !(0.0..=1.0).contains(&last_frac) {
        return None;
    }
    let n_first = ((n as f64) * first_frac) as usize;
    let n_last = ((n as f64) * last_frac) as usize;
    if n_first < 20 || n_last < 20 || n_first + n_last > n {
        return None;
    }
    let first = &xs[..n_first];
    let last = &xs[n - n_last..];
    let se = |seg: &[f64]| -> Option<f64> {
        let batches = (seg.len() as f64).sqrt() as usize;
        let v = crate::variance::batch_means_variance(seg, batches.clamp(2, 50))?;
        Some((v / seg.len() as f64).sqrt())
    };
    let m1 = first.iter().sum::<f64>() / n_first as f64;
    let m2 = last.iter().sum::<f64>() / n_last as f64;
    let se1 = se(first)?;
    let se2 = se(last)?;
    let denom = (se1 * se1 + se2 * se2).sqrt();
    if denom == 0.0 {
        return Some(0.0);
    }
    Some((m1 - m2) / denom)
}

/// Split-chain potential scale reduction factor (R-hat, Gelman–Rubin).
///
/// Each chain is split in half (catching within-chain drift); R-hat near 1
/// indicates the chains agree. Values above ~1.05 mean more burn-in is
/// needed.
///
/// Returns `None` with fewer than 2 chains or chains shorter than 8.
pub fn split_rhat(chains: &[Vec<f64>]) -> Option<f64> {
    if chains.len() < 2 || chains.iter().any(|c| c.len() < 8) {
        return None;
    }
    // Truncate to the shortest even length and split each chain in two.
    let min_len = chains.iter().map(Vec::len).min().unwrap() & !1;
    let halves: Vec<&[f64]> = chains
        .iter()
        .flat_map(|c| {
            let c = &c[..min_len];
            [&c[..min_len / 2], &c[min_len / 2..]]
        })
        .collect();
    let m = halves.len() as f64;
    let n = (min_len / 2) as f64;

    let means: Vec<f64> = halves.iter().map(|h| h.iter().sum::<f64>() / n).collect();
    let grand = means.iter().sum::<f64>() / m;
    let b = n / (m - 1.0)
        * means
            .iter()
            .map(|&x| (x - grand) * (x - grand))
            .sum::<f64>();
    let w = halves
        .iter()
        .zip(&means)
        .map(|(h, &mu)| h.iter().map(|&x| (x - mu) * (x - mu)).sum::<f64>() / (n - 1.0))
        .sum::<f64>()
        / m;
    if w == 0.0 {
        // All halves constant: identical chains -> perfectly converged.
        return Some(1.0);
    }
    let var_plus = (n - 1.0) / n * w + b / n;
    Some((var_plus / w).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    fn noise(n: usize, seed: u64, offset: f64) -> Vec<f64> {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>() + offset).collect()
    }

    #[test]
    fn geweke_small_for_stationary_trace() {
        let xs = noise(10_000, 1, 0.0);
        let z = geweke_z(&xs, 0.1, 0.5).unwrap();
        assert!(z.abs() < 3.0, "z = {z}");
    }

    #[test]
    fn geweke_flags_drift() {
        // Strong upward trend: early mean far below late mean.
        let xs: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let z = geweke_z(&xs, 0.1, 0.5).unwrap();
        assert!(z.abs() > 5.0, "z = {z} should flag the trend");
    }

    #[test]
    fn geweke_rejects_bad_inputs() {
        assert_eq!(geweke_z(&[1.0; 50], 0.1, 0.5), None);
        let xs = noise(1000, 2, 0.0);
        assert_eq!(geweke_z(&xs, 0.9, 0.9), None);
        assert_eq!(geweke_z(&xs, -0.1, 0.5), None);
    }

    #[test]
    fn rhat_near_one_for_agreeing_chains() {
        let chains: Vec<Vec<f64>> = (0..4).map(|s| noise(5000, s, 0.0)).collect();
        let r = split_rhat(&chains).unwrap();
        assert!((r - 1.0).abs() < 0.02, "R-hat {r}");
    }

    #[test]
    fn rhat_large_for_disagreeing_chains() {
        let mut chains: Vec<Vec<f64>> = (0..3).map(|s| noise(5000, s, 0.0)).collect();
        chains.push(noise(5000, 9, 5.0)); // one chain stuck elsewhere
        let r = split_rhat(&chains).unwrap();
        assert!(r > 1.5, "R-hat {r} should flag disagreement");
    }

    #[test]
    fn rhat_rejects_degenerate_input() {
        assert_eq!(split_rhat(&[vec![1.0; 100]]), None);
        assert_eq!(split_rhat(&[vec![1.0; 4], vec![1.0; 4]]), None);
    }

    #[test]
    fn rhat_constant_chains_is_one() {
        let chains = vec![vec![2.0; 100], vec![2.0; 100]];
        assert_eq!(split_rhat(&chains), Some(1.0));
    }
}
