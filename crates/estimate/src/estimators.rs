//! Aggregate estimators over random-walk samples.
//!
//! The population target is a mean/sum/count of `f(v)` over **all nodes**.
//! SRW-family samples arrive with probability `pi(v) = k_v / 2|E|`; the
//! standard correction is the self-normalizing importance (ratio) estimator
//!
//! `µ̂ = ( Σ f(v_i) / k_{v_i} ) / ( Σ 1 / k_{v_i} )`
//!
//! which is consistent for the population mean of `f` without knowing `|E|`
//! or `|V|` — only per-sample degrees, which the interface returns with each
//! query. For the *average degree* target (`f(v) = k_v`) this reduces to the
//! harmonic-mean estimator `n / Σ (1/k_i)` used throughout the paper's
//! Figure 6/7 experiments.

use osn_graph::NodeId;

/// Self-normalizing ratio estimator for degree-proportional samples.
///
/// Push `(f(v), k_v)` pairs as the walk visits nodes; read
/// [`mean`](Self::mean) at any time. `O(1)` memory.
///
/// ```
/// use osn_estimate::RatioEstimator;
/// let mut est = RatioEstimator::new();
/// // Node with value 10 and degree 2, visited twice (it is twice as
/// // likely to be sampled as the degree-1 node below)...
/// est.push(10.0, 2);
/// est.push(10.0, 2);
/// // ...and a node with value 40 and degree 1, visited once.
/// est.push(40.0, 1);
/// // The reweighted mean recovers the population mean (10 + 40) / 2.
/// assert_eq!(est.mean(), Some(25.0));
/// ```
#[derive(Clone, Debug, Default)]
pub struct RatioEstimator {
    weighted_sum: f64, // Σ f(v)/k_v
    weight_total: f64, // Σ 1/k_v
    count: usize,
}

impl RatioEstimator {
    /// New empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample with value `f_v` and degree `k_v`.
    ///
    /// Samples with zero degree are ignored (they cannot occur under any
    /// SRW-family stationary distribution).
    pub fn push(&mut self, f_v: f64, k_v: usize) {
        if k_v == 0 {
            return;
        }
        let w = 1.0 / k_v as f64;
        self.weighted_sum += f_v * w;
        self.weight_total += w;
        self.count += 1;
    }

    /// Record a whole trace: `nodes` with a value function and degree lookup.
    pub fn push_trace<'a, I, F, D>(&mut self, nodes: I, mut f: F, mut degree: D)
    where
        I: IntoIterator<Item = &'a NodeId>,
        F: FnMut(NodeId) -> f64,
        D: FnMut(NodeId) -> usize,
    {
        for &v in nodes {
            self.push(f(v), degree(v));
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The estimated population mean of `f`; `None` before any sample.
    pub fn mean(&self) -> Option<f64> {
        (self.weight_total > 0.0).then(|| self.weighted_sum / self.weight_total)
    }

    /// Estimated population SUM given the (known or separately estimated)
    /// population size `n`.
    pub fn sum(&self, n: usize) -> Option<f64> {
        self.mean().map(|m| m * n as f64)
    }

    /// Estimated average degree from the same samples: `count / Σ(1/k)`.
    /// (The ratio estimator with `f(v) = k_v`.)
    pub fn average_degree(&self) -> Option<f64> {
        (self.weight_total > 0.0).then(|| self.count as f64 / self.weight_total)
    }

    /// Merge another estimator's accumulations into this one (for combining
    /// independent walks).
    pub fn merge(&mut self, other: &RatioEstimator) {
        self.weighted_sum += other.weighted_sum;
        self.weight_total += other.weight_total;
        self.count += other.count;
    }

    /// Export the raw accumulators `(Σ f/k, Σ 1/k, count)` for
    /// snapshot/resume; [`from_parts`](Self::from_parts) restores them
    /// exactly, so a resumed estimator continues bit-identically.
    pub fn parts(&self) -> (f64, f64, usize) {
        (self.weighted_sum, self.weight_total, self.count)
    }

    /// Rebuild from [`parts`](Self::parts) output.
    pub fn from_parts(weighted_sum: f64, weight_total: f64, count: usize) -> Self {
        RatioEstimator {
            weighted_sum,
            weight_total,
            count,
        }
    }
}

/// Per-node bookkeeping of a [`DeltaCorrectedEstimator`]: how many visits
/// were recorded with which `(f, k)` pair, so a later degree change can
/// re-weight them in `O(1)`.
#[derive(Clone, Copy, Debug)]
struct NodeRecord {
    visits: u64,
    k: usize,
    f: f64,
}

/// Ratio estimator that survives **graph mutations** without discarding
/// samples.
///
/// The plain [`RatioEstimator`] weights every sample by `1 / k_v` with the
/// degree *at visit time*. When an edge incident to `v` is inserted or
/// deleted mid-walk (an [`osn_graph::DeltaOverlay`] mutation), those past
/// weights are wrong for the post-mutation stationary distribution
/// `π(v) ∝ k_v` — the restart-from-scratch baseline throws the whole walk
/// away and re-pays its query budget. This estimator instead keeps a
/// per-visited-node record of `(visits, k, f)` and, on
/// [`apply_degree_delta`](Self::apply_degree_delta), retracts the node's
/// accumulated contribution and re-adds it under the new degree (and new
/// value, for degree-dependent `f`) — an `O(1)` correction per mutated
/// node, touching none of the other samples.
///
/// [`push`](Self::push) also **self-heals**: if a sample arrives for a node
/// whose recorded degree disagrees (a mutation the driver forgot to
/// report), the history is re-weighted to the freshly observed degree
/// before the new sample lands.
///
/// Memory is `O(distinct visited nodes)` — strictly less than the walk's
/// query cache, which already holds every visited neighbor list.
///
/// ```
/// use osn_estimate::DeltaCorrectedEstimator;
/// use osn_graph::NodeId;
/// let mut est = DeltaCorrectedEstimator::new();
/// est.push(NodeId(0), 10.0, 2);
/// est.push(NodeId(0), 10.0, 2);
/// est.push(NodeId(1), 40.0, 1);
/// assert_eq!(est.mean(), Some(25.0));
/// // An edge lands on node 0: degree 2 -> 3 (f unchanged here). Both past
/// // visits re-weight from 1/2 to 1/3.
/// est.apply_degree_delta(NodeId(0), 10.0, 3);
/// let m = est.mean().unwrap();
/// assert!((m - (2.0 * 10.0 / 3.0 + 40.0) / (2.0 / 3.0 + 1.0)).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DeltaCorrectedEstimator {
    weighted_sum: f64, // Σ f(v)/k_v over live samples
    weight_total: f64, // Σ 1/k_v over live samples
    count: usize,
    per_node: osn_graph::fnv::FnvHashMap<u32, NodeRecord>,
}

impl DeltaCorrectedEstimator {
    /// New empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one visit of `v` with value `f_v` and degree `k_v`, healing
    /// any stale history for `v` first. Zero-degree samples are ignored
    /// (unreachable under any SRW-family stationary distribution).
    pub fn push(&mut self, v: NodeId, f_v: f64, k_v: usize) {
        if k_v == 0 {
            return;
        }
        self.reweight(v, f_v, k_v);
        let w = 1.0 / k_v as f64;
        self.weighted_sum += f_v * w;
        self.weight_total += w;
        self.count += 1;
        let rec = self.per_node.entry(v.0).or_insert(NodeRecord {
            visits: 0,
            k: k_v,
            f: f_v,
        });
        rec.visits += 1;
    }

    /// Re-weight `v`'s past samples to its post-mutation value and degree.
    /// A `new_k` of zero retires the node entirely: an isolated node has no
    /// stationary probability, so its history can no longer be corrected —
    /// the samples are dropped (the only place this estimator discards
    /// anything). No-op for nodes never visited.
    pub fn apply_degree_delta(&mut self, v: NodeId, new_f: f64, new_k: usize) {
        if new_k == 0 {
            if let Some(rec) = self.per_node.remove(&v.0) {
                let w = 1.0 / rec.k as f64;
                self.weighted_sum -= rec.visits as f64 * rec.f * w;
                self.weight_total -= rec.visits as f64 * w;
                self.count -= rec.visits as usize;
            }
            return;
        }
        self.reweight(v, new_f, new_k);
    }

    /// Move `v`'s accumulated contribution from its recorded `(f, k)` to
    /// `(new_f, new_k)`, if it has one and they differ.
    fn reweight(&mut self, v: NodeId, new_f: f64, new_k: usize) {
        let Some(rec) = self.per_node.get_mut(&v.0) else {
            return;
        };
        if rec.k == new_k && rec.f == new_f {
            return;
        }
        let n = rec.visits as f64;
        let old_w = 1.0 / rec.k as f64;
        let new_w = 1.0 / new_k as f64;
        self.weighted_sum += n * (new_f * new_w - rec.f * old_w);
        self.weight_total += n * (new_w - old_w);
        rec.k = new_k;
        rec.f = new_f;
    }

    /// Live samples (visits retired by zero-degree corrections excluded).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Distinct nodes with live history.
    pub fn tracked_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// The delta-corrected population-mean estimate; `None` before any
    /// live sample.
    pub fn mean(&self) -> Option<f64> {
        (self.weight_total > 0.0).then(|| self.weighted_sum / self.weight_total)
    }

    /// Estimated average degree from the same samples: `count / Σ(1/k)`.
    pub fn average_degree(&self) -> Option<f64> {
        (self.weight_total > 0.0).then(|| self.count as f64 / self.weight_total)
    }
}

/// Plain mean estimator for uniform samples (MHRW).
#[derive(Clone, Debug, Default)]
pub struct UniformMeanEstimator {
    sum: f64,
    count: usize,
}

impl UniformMeanEstimator {
    /// New empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample value.
    pub fn push(&mut self, f_v: f64) {
        self.sum += f_v;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The sample mean; `None` before any sample.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Merge another estimator.
    pub fn merge(&mut self, other: &UniformMeanEstimator) {
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Export the raw accumulators `(Σ f, count)` for snapshot/resume;
    /// [`from_parts`](Self::from_parts) restores them exactly.
    pub fn parts(&self) -> (f64, usize) {
        (self.sum, self.count)
    }

    /// Rebuild from [`parts`](Self::parts) output.
    pub fn from_parts(sum: f64, count: usize) -> Self {
        UniformMeanEstimator { sum, count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_estimator_exact_on_full_stationary_pass() {
        // Feed each node of a small graph exactly proportional to its
        // degree; the ratio estimator must recover the exact population
        // mean. Degrees: [3, 2, 2, 1]; f = [10, 20, 30, 40].
        let degrees = [3usize, 2, 2, 1];
        let f = [10.0, 20.0, 30.0, 40.0];
        let mut est = RatioEstimator::new();
        for (i, &k) in degrees.iter().enumerate() {
            for _ in 0..k {
                est.push(f[i], k); // k visits per node ~ pi(v) ∝ k_v
            }
        }
        let mean = est.mean().unwrap();
        let expected = (10.0 + 20.0 + 30.0 + 40.0) / 4.0;
        assert!((mean - expected).abs() < 1e-12, "{mean} vs {expected}");
        // SUM with n = 4.
        assert!((est.sum(4).unwrap() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn average_degree_is_harmonic_corrected() {
        // Degrees [4, 1]: degree-proportional sampling visits node0 4x,
        // node1 1x. True average degree = 2.5.
        let mut est = RatioEstimator::new();
        for _ in 0..4 {
            est.push(4.0, 4);
        }
        est.push(1.0, 1);
        assert!((est.average_degree().unwrap() - 2.5).abs() < 1e-12);
        // And the generic mean with f = degree agrees.
        assert!((est.mean().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_degree_samples_ignored() {
        let mut est = RatioEstimator::new();
        est.push(99.0, 0);
        assert_eq!(est.count(), 0);
        assert_eq!(est.mean(), None);
        assert_eq!(est.average_degree(), None);
        assert_eq!(est.sum(10), None);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = RatioEstimator::new();
        let mut b = RatioEstimator::new();
        let mut whole = RatioEstimator::new();
        for (f, k) in [(1.0, 1), (2.0, 2), (3.0, 3), (4.0, 4)] {
            whole.push(f, k);
        }
        a.push(1.0, 1);
        a.push(2.0, 2);
        b.push(3.0, 3);
        b.push(4.0, 4);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-15);
    }

    #[test]
    fn push_trace_uses_lookups() {
        let nodes = [NodeId(0), NodeId(1), NodeId(0)];
        let mut est = RatioEstimator::new();
        est.push_trace(
            nodes.iter(),
            |v| v.index() as f64 * 10.0,
            |v| if v.index() == 0 { 2 } else { 1 },
        );
        assert_eq!(est.count(), 3);
        // Σ f/k = 0/2 + 10/1 + 0/2 = 10; Σ 1/k = 0.5 + 1 + 0.5 = 2.
        assert!((est.mean().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn delta_corrected_matches_plain_ratio_without_mutations() {
        let samples = [(0u32, 10.0, 3), (1, 20.0, 2), (0, 10.0, 3), (2, 5.0, 1)];
        let mut plain = RatioEstimator::new();
        let mut delta = DeltaCorrectedEstimator::new();
        for &(v, f, k) in &samples {
            plain.push(f, k);
            delta.push(NodeId(v), f, k);
        }
        assert_eq!(delta.count(), plain.count());
        assert_eq!(delta.tracked_nodes(), 3);
        assert!((delta.mean().unwrap() - plain.mean().unwrap()).abs() < 1e-15);
        assert!((delta.average_degree().unwrap() - plain.average_degree().unwrap()).abs() < 1e-15);
    }

    #[test]
    fn degree_delta_equals_recollecting_under_new_degrees() {
        // Visit nodes, then mutate node 1's degree 2 -> 4; the corrected
        // estimator must match a fresh estimator fed the same visit counts
        // at the post-mutation degrees.
        let mut delta = DeltaCorrectedEstimator::new();
        delta.push(NodeId(0), 6.0, 3);
        delta.push(NodeId(1), 8.0, 2);
        delta.push(NodeId(1), 8.0, 2);
        delta.apply_degree_delta(NodeId(1), 8.0, 4);

        let mut fresh = RatioEstimator::new();
        fresh.push(6.0, 3);
        fresh.push(8.0, 4);
        fresh.push(8.0, 4);
        assert!((delta.mean().unwrap() - fresh.mean().unwrap()).abs() < 1e-12);
        // Correcting an unvisited node is a no-op.
        delta.apply_degree_delta(NodeId(9), 1.0, 7);
        assert_eq!(delta.count(), 3);
    }

    #[test]
    fn zero_degree_correction_retires_the_node() {
        let mut delta = DeltaCorrectedEstimator::new();
        delta.push(NodeId(0), 6.0, 3);
        delta.push(NodeId(1), 8.0, 2);
        delta.apply_degree_delta(NodeId(1), 8.0, 0);
        assert_eq!(delta.count(), 1);
        assert_eq!(delta.tracked_nodes(), 1);
        let mut survivor = RatioEstimator::new();
        survivor.push(6.0, 3);
        assert!((delta.mean().unwrap() - survivor.mean().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn push_self_heals_on_stale_degree() {
        // The driver "forgets" to report a mutation; the next visit of the
        // node observes the new degree and heals the history.
        let mut delta = DeltaCorrectedEstimator::new();
        delta.push(NodeId(0), 4.0, 4); // degree was 4 at visit time
        delta.push(NodeId(0), 5.0, 5); // now 5: past visit re-weighted too
        let mut fresh = RatioEstimator::new();
        fresh.push(5.0, 5);
        fresh.push(5.0, 5);
        assert!((delta.mean().unwrap() - fresh.mean().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn uniform_mean_basics() {
        let mut est = UniformMeanEstimator::new();
        assert_eq!(est.mean(), None);
        est.push(2.0);
        est.push(4.0);
        assert_eq!(est.count(), 2);
        assert!((est.mean().unwrap() - 3.0).abs() < 1e-12);
        let mut other = UniformMeanEstimator::new();
        other.push(6.0);
        est.merge(&other);
        assert!((est.mean().unwrap() - 4.0).abs() < 1e-12);
    }
}
