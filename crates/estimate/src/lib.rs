//! # osn-estimate
//!
//! Turning random-walk traces into statistics, and measuring how good they
//! are — the paper's §2.3 measurement apparatus:
//!
//! * [`estimators`] — aggregate estimation from biased samples. Samplers in
//!   the SRW family select nodes with probability proportional to degree;
//!   the importance-reweighted (Hansen–Hurwitz / respondent-driven-sampling)
//!   ratio estimator corrects that bias. MHRW samples are uniform and use
//!   the plain mean.
//! * [`metrics`] — sampling-bias measures: the paper's symmetric
//!   KL-divergence, `ℓ2` distance, plus total variation and relative error;
//!   [`metrics::EmpiricalDistribution`] accumulates
//!   visit counts across walks.
//! * [`variance`] — asymptotic-variance estimation from a single trace
//!   (batch means / overlapping batch means), the empirical counterpart of
//!   Definition 3.
//! * [`diagnostics`] — convergence diagnostics (Geweke z-score, multi-chain
//!   split R-hat, and the incremental windowed split-R̂ the multi-walker
//!   orchestrator consults online);
//! * [`burnin`] — automatic burn-in selection built on the diagnostics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burnin;
pub mod diagnostics;
pub mod estimators;
pub mod metrics;
pub mod variance;

pub use burnin::{suggest_burn_in, BurnInAdvice};
pub use diagnostics::{WindowVerdict, WindowedSplitRhat};
pub use estimators::{DeltaCorrectedEstimator, RatioEstimator, UniformMeanEstimator};
pub use metrics::{
    kl_divergence, l2_distance, relative_error, symmetric_kl, total_variation,
    EmpiricalDistribution,
};
pub use variance::{batch_means_variance, overlapping_batch_means_variance};
