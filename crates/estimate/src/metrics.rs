//! Sampling-bias metrics (paper §2.3 and §6.1).

use osn_graph::NodeId;

/// Kullback–Leibler divergence `D(P‖Q) = Σ P(i) ln(P(i)/Q(i))`.
///
/// Zero-probability entries of `P` contribute nothing; zero-probability
/// entries of `Q` where `P > 0` make the divergence infinite — callers
/// comparing an *empirical* distribution against a dense target should apply
/// smoothing first (see [`EmpiricalDistribution::probabilities_smoothed`]).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let mut sum = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi <= 0.0 {
            continue;
        }
        if qi <= 0.0 {
            return f64::INFINITY;
        }
        sum += pi * (pi / qi).ln();
    }
    sum
}

/// The paper's symmetric KL measure: `D(P‖Q) + D(Q‖P)` (Eq. 49 context).
pub fn symmetric_kl(p: &[f64], q: &[f64]) -> f64 {
    kl_divergence(p, q) + kl_divergence(q, p)
}

/// Euclidean (`ℓ2`) distance between distribution vectors, `‖P − Q‖₂`.
pub fn l2_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    p.iter()
        .zip(q)
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Total variation distance `½ Σ |P(i) − Q(i)|`.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// Relative error `|estimate − truth| / |truth|` — the paper's "golden
/// measure" for large graphs where the sampling distribution itself is
/// infeasible to estimate.
///
/// Returns `NaN` for a zero ground truth (define the aggregate differently
/// in that case).
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        return f64::NAN;
    }
    (estimate - truth).abs() / truth.abs()
}

/// Visit-count accumulator estimating the actual sampling distribution of a
/// walker, as in the paper's Figure 8 (100 runs × 10,000 steps, counts per
/// node).
#[derive(Clone, Debug)]
pub struct EmpiricalDistribution {
    counts: Vec<u64>,
    total: u64,
}

impl EmpiricalDistribution {
    /// New accumulator over `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        EmpiricalDistribution {
            counts: vec![0; node_count],
            total: 0,
        }
    }

    /// Record one visit.
    pub fn record(&mut self, v: NodeId) {
        self.counts[v.index()] += 1;
        self.total += 1;
    }

    /// Record every node of a trace.
    pub fn record_all<'a, I: IntoIterator<Item = &'a NodeId>>(&mut self, nodes: I) {
        for &v in nodes {
            self.record(v);
        }
    }

    /// Total recorded visits.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw per-node counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Maximum-likelihood probabilities (`count / total`). All-zero when
    /// nothing has been recorded.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Additively smoothed probabilities,
    /// `(count + alpha) / (total + alpha · n)` — keeps KL finite when some
    /// nodes were never visited. `alpha = 0.5` (Jeffreys) is a sound default.
    pub fn probabilities_smoothed(&self, alpha: f64) -> Vec<f64> {
        let n = self.counts.len() as f64;
        let denom = self.total as f64 + alpha * n;
        self.counts
            .iter()
            .map(|&c| (c as f64 + alpha) / denom)
            .collect()
    }

    /// Merge another accumulator (e.g. from a parallel trial).
    ///
    /// # Panics
    /// Panics if the node counts differ.
    pub fn merge(&mut self, other: &EmpiricalDistribution) {
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(kl_divergence(&p, &p), 0.0);
        assert_eq!(symmetric_kl(&p, &p), 0.0);
    }

    #[test]
    fn kl_known_value() {
        // D([1,0] || [0.5,0.5]) = ln 2
        let v = kl_divergence(&[1.0, 0.0], &[0.5, 0.5]);
        assert!((v - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn kl_infinite_on_unsupported_mass() {
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn symmetric_kl_is_symmetric() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.3, 0.3, 0.4];
        assert!((symmetric_kl(&p, &q) - symmetric_kl(&q, &p)).abs() < 1e-15);
        assert!(symmetric_kl(&p, &q) > 0.0);
    }

    #[test]
    fn l2_and_tv_basics() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((l2_distance(&p, &q) - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(total_variation(&p, &q), 1.0);
        assert_eq!(l2_distance(&p, &p), 0.0);
    }

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(9.0, 10.0) - 0.1).abs() < 1e-12);
        assert!(relative_error(1.0, 0.0).is_nan());
        assert!((relative_error(-5.0, -10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empirical_distribution_accumulates() {
        let mut d = EmpiricalDistribution::new(3);
        d.record(NodeId(0));
        d.record(NodeId(0));
        d.record(NodeId(2));
        assert_eq!(d.total(), 3);
        assert_eq!(d.counts(), &[2, 0, 1]);
        let p = d.probabilities();
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p[1], 0.0);
    }

    #[test]
    fn smoothing_keeps_kl_finite() {
        let mut d = EmpiricalDistribution::new(4);
        d.record_all(&[NodeId(0), NodeId(1)]);
        let target = [0.25; 4];
        assert_eq!(kl_divergence(&target, &d.probabilities()), f64::INFINITY);
        let smoothed = d.probabilities_smoothed(0.5);
        assert!(kl_divergence(&target, &smoothed).is_finite());
        assert!((smoothed.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = EmpiricalDistribution::new(2);
        a.record(NodeId(0));
        let mut b = EmpiricalDistribution::new(2);
        b.record(NodeId(1));
        b.record(NodeId(1));
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 2]);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn empty_distribution_probabilities_are_zero() {
        let d = EmpiricalDistribution::new(2);
        assert_eq!(d.probabilities(), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn kl_length_mismatch_panics() {
        let _ = kl_divergence(&[1.0], &[0.5, 0.5]);
    }
}
