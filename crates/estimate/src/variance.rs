//! Empirical asymptotic-variance estimation (Definition 3's `V∞`).
//!
//! For an order-1 chain on a small graph the fundamental matrix gives `V∞`
//! exactly (`osn_walks::markov`). CNRW/GNRW are high-order chains, so their
//! variance must be *estimated from traces* — this module provides the two
//! standard estimators:
//!
//! * **batch means** — split the trace into `b` consecutive batches; the
//!   variance of batch means times the batch length estimates `V∞`;
//! * **overlapping batch means** — same idea with sliding windows, lower
//!   estimator variance at the same trace length.

/// Sample mean of a slice.
fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Batch-means estimate of the asymptotic variance of the sequence `xs`
/// (i.e. `lim n·Var(µ̂_n)`), using `batch_count` equal batches. Remainder
/// elements at the tail are dropped.
///
/// Rule of thumb: `batch_count ≈ sqrt(n)` balances bias and noise; 20–50
/// batches are typical.
///
/// Returns `None` when the trace is too short (fewer than 2 usable batches
/// or batches shorter than 2 elements).
pub fn batch_means_variance(xs: &[f64], batch_count: usize) -> Option<f64> {
    if batch_count < 2 {
        return None;
    }
    let batch_len = xs.len() / batch_count;
    if batch_len < 2 {
        return None;
    }
    let usable = batch_len * batch_count;
    let xs = &xs[..usable];
    let overall = mean(xs);
    let batch_means: Vec<f64> = xs.chunks_exact(batch_len).map(mean).collect();
    let s2: f64 = batch_means
        .iter()
        .map(|&m| (m - overall) * (m - overall))
        .sum::<f64>()
        / (batch_count as f64 - 1.0);
    Some(batch_len as f64 * s2)
}

/// Overlapping-batch-means estimate of the asymptotic variance with window
/// length `window`.
///
/// Returns `None` when `window < 2` or the trace has fewer than `2 * window`
/// elements.
pub fn overlapping_batch_means_variance(xs: &[f64], window: usize) -> Option<f64> {
    let n = xs.len();
    if window < 2 || n < 2 * window {
        return None;
    }
    let overall = mean(xs);
    // Sliding-window means via prefix sums.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
        prefix.push(acc);
    }
    let windows = n - window + 1;
    let mut s2 = 0.0;
    for i in 0..windows {
        let m = (prefix[i + window] - prefix[i]) / window as f64;
        s2 += (m - overall) * (m - overall);
    }
    // Standard OBM normalization.
    let denom = (n - window) as f64 * (n - window + 1) as f64;
    Some(n as f64 * window as f64 * s2 / denom)
}

/// Lag-`k` autocovariance of the sequence (biased, `1/n` normalization —
/// the convention used in spectral variance estimation).
pub fn autocovariance(xs: &[f64], lag: usize) -> Option<f64> {
    let n = xs.len();
    if lag >= n {
        return None;
    }
    let m = mean(xs);
    let sum: f64 = (0..n - lag).map(|i| (xs[i] - m) * (xs[i + lag] - m)).sum();
    Some(sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    fn iid_normal(n: usize, seed: u64) -> Vec<f64> {
        // Sum of 12 uniforms minus 6: near-normal, variance 1.
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0)
            .collect()
    }

    #[test]
    fn iid_sequence_recovers_unit_variance() {
        let xs = iid_normal(200_000, 1);
        let v = batch_means_variance(&xs, 100).unwrap();
        assert!((v - 1.0).abs() < 0.2, "batch means {v}");
        let v = overlapping_batch_means_variance(&xs, 500).unwrap();
        assert!((v - 1.0).abs() < 0.2, "OBM {v}");
    }

    #[test]
    fn positively_correlated_sequence_has_larger_variance() {
        // AR(1) with phi = 0.9: asymptotic variance = (1+phi)/(1-phi) = 19x
        // the innovation-driven marginal variance ratio... just check it is
        // far above the i.i.d. value of the same marginal variance.
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let n = 400_000;
        let phi: f64 = 0.9;
        let mut xs = Vec::with_capacity(n);
        let mut x = 0.0;
        for _ in 0..n {
            let e: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            x = phi * x + e;
            xs.push(x);
        }
        // Marginal variance of AR(1): 1/(1-phi^2) ≈ 5.26.
        // Asymptotic variance: 1/(1-phi)^2 = 100.
        let v = batch_means_variance(&xs, 200).unwrap();
        assert!(v > 50.0, "AR(1) asymptotic variance {v} too small");
    }

    #[test]
    fn too_short_traces_return_none() {
        assert_eq!(batch_means_variance(&[1.0, 2.0, 3.0], 2), None);
        assert_eq!(batch_means_variance(&[1.0; 100], 1), None);
        assert_eq!(overlapping_batch_means_variance(&[1.0; 10], 1), None);
        assert_eq!(overlapping_batch_means_variance(&[1.0; 10], 6), None);
    }

    #[test]
    fn constant_sequence_zero_variance() {
        let xs = vec![4.2; 1000];
        assert!(batch_means_variance(&xs, 10).unwrap().abs() < 1e-20);
        assert!(overlapping_batch_means_variance(&xs, 50).unwrap().abs() < 1e-20);
    }

    #[test]
    fn autocovariance_basics() {
        let xs = iid_normal(100_000, 3);
        let c0 = autocovariance(&xs, 0).unwrap();
        assert!((c0 - 1.0).abs() < 0.1, "lag-0 {c0}");
        let c5 = autocovariance(&xs, 5).unwrap();
        assert!(c5.abs() < 0.05, "lag-5 {c5} should be ~0 for i.i.d.");
        assert_eq!(autocovariance(&xs[..3], 3), None);
    }

    #[test]
    fn alternating_sequence_has_tiny_asymptotic_variance() {
        // x alternates +1/-1: ergodic averages converge at 1/n, so V∞ -> 0.
        // This is the CNRW intuition in its purest form: anti-correlation
        // *reduces* asymptotic variance below the i.i.d. level.
        let xs: Vec<f64> = (0..10_000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let v = batch_means_variance(&xs, 50).unwrap();
        assert!(v < 0.01, "alternating variance {v}");
    }
}
