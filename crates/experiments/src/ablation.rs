//! Ablation: edge-based vs node-based circulation (paper §3.2).
//!
//! The paper picks **edge-keyed** history `b(u, v)` over **node-keyed**
//! `b(v)` and argues edge-rooted path blocks, being longer, give each block
//! a more similar content distribution and therefore a larger variance
//! reduction. It states that "extensive experiments" verified this but
//! omitted them for space. This module runs that comparison:
//!
//! * long-run asymptotic variance (batch means) of the degree estimator
//!   under SRW, node-CNRW and edge-CNRW;
//! * budget-sweep estimation error of the three walkers.

use std::sync::Arc;

use osn_datasets::{clustered_graph, facebook_like, Scale};
use osn_estimate::variance::batch_means_variance;
use osn_graph::attributes::AttributedGraph;
use osn_graph::NodeId;
use osn_walks::{Cnrw, NodeCnrw, RandomWalk, Srw, WalkConfig, WalkSession};

use crate::output::{ExperimentResult, Series};
use crate::runner::parallel_map;

/// Configuration for the circulation-keying ablation.
#[derive(Clone, Debug)]
pub struct AblationConfig {
    /// Steps per variance trace.
    pub steps: usize,
    /// Batch count for the batch-means estimator.
    pub batches: usize,
    /// Independent replicates (averaged).
    pub replicates: usize,
    /// Seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            steps: 300_000,
            batches: 150,
            replicates: 8,
            seed: 0xAB1,
            threads: crate::runner::default_threads(),
        }
    }
}

impl AblationConfig {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        AblationConfig {
            steps: 60_000,
            batches: 60,
            replicates: 4,
            seed: 0xAB1,
            threads: crate::runner::default_threads(),
        }
    }
}

fn variance_of(
    network: &Arc<AttributedGraph>,
    make: &(dyn Fn() -> Box<dyn RandomWalk + Send> + Sync),
    config: &AblationConfig,
) -> f64 {
    let vars = parallel_map(config.replicates, config.threads, |r| {
        let mut client = osn_client::SimulatedOsn::new_shared(network.clone());
        let mut walker = make();
        let trace = WalkSession::new(
            WalkConfig::steps(config.steps).with_seed(config.seed.wrapping_add(r as u64)),
        )
        .run(walker.as_mut(), &mut client);
        let seq: Vec<f64> = trace
            .nodes()
            .iter()
            .map(|&v| network.graph.degree(v) as f64)
            .collect();
        batch_means_variance(&seq, config.batches).unwrap_or(f64::NAN)
    });
    vars.iter().sum::<f64>() / vars.len() as f64
}

/// Run the ablation on two topologies (the paper-exact clustered graph and
/// the Facebook stand-in), reporting asymptotic variance per walker.
pub fn run(config: &AblationConfig) -> ExperimentResult {
    let topologies: Vec<(&str, Arc<AttributedGraph>)> = vec![
        ("clustered", Arc::new(clustered_graph().network)),
        (
            "facebook",
            Arc::new(facebook_like(Scale::Test, config.seed).network),
        ),
    ];
    type Maker = Box<dyn Fn() -> Box<dyn RandomWalk + Send> + Sync>;
    let walkers: Vec<(&str, Maker)> = vec![
        ("SRW", Box::new(|| Box::new(Srw::new(NodeId(0))))),
        (
            "CNRW-node-keyed",
            Box::new(|| Box::new(NodeCnrw::new(NodeId(0)))),
        ),
        (
            "CNRW-edge-keyed",
            Box::new(|| Box::new(Cnrw::new(NodeId(0)))),
        ),
    ];

    let xs: Vec<f64> = (0..topologies.len()).map(|i| i as f64).collect();
    let mut result = ExperimentResult::new(
        "ablation_circulation",
        "Edge-based vs node-based circulation: asymptotic variance of the degree estimator",
        "topology (index)",
        "batch-means asymptotic variance",
    )
    .with_note(format!(
        "{} steps x {} replicates; batch means with {} batches",
        config.steps, config.replicates, config.batches
    ));
    for (i, (name, _)) in topologies.iter().enumerate() {
        result.notes.push(format!("index {i} = {name}"));
    }

    for (wname, make) in &walkers {
        let ys: Vec<f64> = topologies
            .iter()
            .map(|(_, net)| variance_of(net, make.as_ref(), config))
            .collect();
        result.series.push(Series::new(*wname, xs.clone(), ys));
    }
    result
}

/// Budget-sweep companion: mean relative error of the average-degree
/// estimate for SRW vs node-keyed vs edge-keyed CNRW at small budgets on
/// the Facebook stand-in (the regime the paper's figures measure).
pub fn run_budget(config: &AblationConfig) -> ExperimentResult {
    use crate::runner::{trial_seed, TrialPlan};
    use osn_estimate::estimators::RatioEstimator;

    let network = Arc::new(facebook_like(Scale::Default, config.seed).network);
    let truth = network.graph.average_degree();
    let budgets: Vec<u64> = vec![40, 80, 120, 160, 200];
    let trials = (config.replicates * 60).max(120);

    type Maker = Box<dyn Fn(NodeId) -> Box<dyn RandomWalk + Send> + Sync>;
    let walkers: Vec<(&str, Maker)> = vec![
        ("SRW", Box::new(|s| Box::new(Srw::new(s)))),
        ("CNRW-node-keyed", Box::new(|s| Box::new(NodeCnrw::new(s)))),
        ("CNRW-edge-keyed", Box::new(|s| Box::new(Cnrw::new(s)))),
    ];

    let mut result = ExperimentResult::new(
        "ablation_circulation_budget",
        "Edge-based vs node-based circulation: estimation error at small budgets",
        "Query Cost",
        "Relative Error",
    )
    .with_note(format!(
        "facebook stand-in, {} trials/point; average-degree estimate",
        trials
    ));

    for (wname, make) in &walkers {
        let ys: Vec<f64> = budgets
            .iter()
            .map(|&budget| {
                let plan = TrialPlan::budgeted(network.clone(), budget);
                let errors = parallel_map(trials, config.threads, |t| {
                    let seed = trial_seed(config.seed ^ budget, t as u64);
                    let start = plan.start_node(seed);
                    let mut walker = make(start);
                    let session =
                        WalkSession::new(WalkConfig::steps(plan.max_steps).with_seed(seed));
                    let mut client = osn_client::BudgetedClient::new(
                        osn_client::SimulatedOsn::new_shared(plan.network.clone()),
                        budget,
                        plan.network.graph.node_count(),
                    );
                    let trace = session.run(walker.as_mut(), &mut client);
                    let mut est = RatioEstimator::new();
                    for &v in trace.nodes() {
                        let k = plan.network.graph.degree(v);
                        est.push(k as f64, k);
                    }
                    est.mean().map(|e| (e - truth).abs() / truth).unwrap_or(1.0)
                });
                errors.iter().sum::<f64>() / errors.len() as f64
            })
            .collect();
        result.series.push(Series::new(
            *wname,
            budgets.iter().map(|&b| b as f64).collect(),
            ys,
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_keyed_at_least_matches_srw() {
        let r = run(&AblationConfig::quick());
        let srw = r.series_by_label("SRW").unwrap();
        let edge = r.series_by_label("CNRW-edge-keyed").unwrap();
        for (i, (&s, &e)) in srw.y.iter().zip(&edge.y).enumerate() {
            assert!(
                e < s * 1.1,
                "topology {i}: edge-keyed variance {e} vs SRW {s}"
            );
        }
    }

    #[test]
    fn budget_companion_has_three_curves() {
        let mut cfg = AblationConfig::quick();
        cfg.replicates = 1;
        let r = run_budget(&cfg);
        assert_eq!(r.series.len(), 3);
        for s in &r.series {
            assert!(s.y.iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn all_variances_finite_positive() {
        let r = run(&AblationConfig::quick());
        for s in &r.series {
            for &v in &s.y {
                assert!(v.is_finite() && v > 0.0, "{}: {v}", s.label);
            }
        }
    }
}
