//! Algorithm selection: a serializable description of every sampler under
//! test, and the factory turning it into a live walker.

use std::sync::Arc;

use osn_graph::attributes::AttributedGraph;
use osn_graph::NodeId;
use osn_walks::{
    ByAttribute, ByDegree, ByHash, Cnrw, Gnrw, GroupPlan, HistoryBackend, Mhrw, NbCnrw, NbSrw,
    PlanMode, RandomWalk, Srw,
};

/// Which grouping GNRW uses (mirrors the paper's Figure 9 variants).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroupingSpec {
    /// `GNRW_By_Degree`.
    ByDegree,
    /// `GNRW_By_MD5` (hash) with the given group count.
    ByHash(u64),
    /// `GNRW_By_<attribute>`.
    ByAttribute(String),
}

impl GroupingSpec {
    /// Instantiate the live grouping strategy this spec describes.
    pub fn strategy(&self) -> Box<dyn osn_walks::GroupingStrategy + Send> {
        match self {
            GroupingSpec::ByDegree => Box::new(ByDegree::new()),
            GroupingSpec::ByHash(groups) => Box::new(ByHash::new(*groups)),
            GroupingSpec::ByAttribute(name) => Box::new(ByAttribute::new(name.clone())),
        }
    }
}

/// A sampler under test.
#[derive(Clone, Debug, PartialEq)]
pub enum Algorithm {
    /// Simple random walk (baseline).
    Srw,
    /// Metropolis–Hastings random walk (uniform target).
    Mhrw,
    /// Non-backtracking SRW (state of the art prior to the paper).
    NbSrw,
    /// Circulated Neighbors RW (paper §3).
    Cnrw,
    /// GroupBy Neighbors RW (paper §4) with a grouping choice.
    Gnrw(GroupingSpec),
    /// Non-backtracking CNRW (paper §5 extension).
    NbCnrw,
}

impl Algorithm {
    /// Display label used in tables/series (matches the paper's legends).
    pub fn label(&self) -> String {
        match self {
            Algorithm::Srw => "SRW".to_string(),
            Algorithm::Mhrw => "MHRW".to_string(),
            Algorithm::NbSrw => "NB-SRW".to_string(),
            Algorithm::Cnrw => "CNRW".to_string(),
            Algorithm::Gnrw(GroupingSpec::ByDegree) => "GNRW_By_Degree".to_string(),
            Algorithm::Gnrw(GroupingSpec::ByHash(_)) => "GNRW_By_MD5".to_string(),
            Algorithm::Gnrw(GroupingSpec::ByAttribute(a)) => format!("GNRW_By_{a}"),
            Algorithm::NbCnrw => "NB-CNRW".to_string(),
        }
    }

    /// Instantiate a walker starting at `start` on the default (arena)
    /// history backend.
    pub fn make(&self, start: NodeId) -> Box<dyn RandomWalk + Send> {
        self.make_with_backend(start, HistoryBackend::default())
    }

    /// Instantiate a walker starting at `start` with an explicit history
    /// backend for the history-aware samplers (memoryless samplers ignore
    /// it).
    pub fn make_with_backend(
        &self,
        start: NodeId,
        backend: HistoryBackend,
    ) -> Box<dyn RandomWalk + Send> {
        match self {
            Algorithm::Srw => Box::new(Srw::new(start)),
            Algorithm::Mhrw => Box::new(Mhrw::new(start)),
            Algorithm::NbSrw => Box::new(NbSrw::new(start)),
            Algorithm::Cnrw => Box::new(Cnrw::with_backend(start, backend)),
            Algorithm::Gnrw(spec) => Box::new(Gnrw::with_backend(start, spec.strategy(), backend)),
            Algorithm::NbCnrw => Box::new(NbCnrw::with_backend(start, backend)),
        }
    }

    /// Precompute the [`GroupPlan`] for a GNRW algorithm over `network`
    /// (`None` for every other sampler — they have no grouping to plan).
    /// Build once per graph, share via `Arc` across trials and walkers.
    pub fn build_group_plan(&self, network: &AttributedGraph) -> Option<GroupPlan> {
        match self {
            Algorithm::Gnrw(spec) => Some(GroupPlan::build(network, spec.strategy().as_ref())),
            _ => None,
        }
    }

    /// Instantiate a walker like [`Self::make_with_backend`], but with GNRW
    /// running plan-backed against the shared `plan` in the given mode.
    /// Non-GNRW samplers ignore the plan.
    pub fn make_planned(
        &self,
        start: NodeId,
        plan: Arc<GroupPlan>,
        mode: PlanMode,
        backend: HistoryBackend,
    ) -> Box<dyn RandomWalk + Send> {
        match self {
            Algorithm::Gnrw(_) => {
                debug_assert_eq!(
                    plan.strategy_label(),
                    self.label(),
                    "group plan built for a different grouping"
                );
                Box::new(Gnrw::with_plan_backend(start, plan, mode, backend))
            }
            _ => self.make_with_backend(start, backend),
        }
    }

    /// Whether the sampler keeps circulation history (and therefore has a
    /// meaningful [`HistoryBackend`] ablation axis).
    pub fn uses_history(&self) -> bool {
        matches!(
            self,
            Algorithm::Cnrw | Algorithm::Gnrw(_) | Algorithm::NbCnrw
        )
    }

    /// Whether the sampler's stationary distribution is uniform (MHRW) as
    /// opposed to degree-proportional — decides which estimator applies.
    pub fn uniform_stationary(&self) -> bool {
        matches!(self, Algorithm::Mhrw)
    }

    /// The Figure 6 comparison set: the five algorithms of the paper's main
    /// experiment. GNRW groups by degree there (the aggregate is average
    /// degree).
    pub fn figure6_set() -> Vec<Algorithm> {
        vec![
            Algorithm::Mhrw,
            Algorithm::Srw,
            Algorithm::NbSrw,
            Algorithm::Cnrw,
            Algorithm::Gnrw(GroupingSpec::ByDegree),
        ]
    }

    /// The Figure 7/10 comparison set: SRW-family only (MHRW's stationary
    /// distribution differs, so distribution-distance measures do not apply).
    pub fn srw_family_set() -> Vec<Algorithm> {
        vec![
            Algorithm::Srw,
            Algorithm::NbSrw,
            Algorithm::Cnrw,
            Algorithm::Gnrw(GroupingSpec::ByDegree),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Algorithm::Srw.label(), "SRW");
        assert_eq!(Algorithm::NbSrw.label(), "NB-SRW");
        assert_eq!(
            Algorithm::Gnrw(GroupingSpec::ByHash(16)).label(),
            "GNRW_By_MD5"
        );
        assert_eq!(
            Algorithm::Gnrw(GroupingSpec::ByAttribute("reviews_count".into())).label(),
            "GNRW_By_reviews_count"
        );
    }

    #[test]
    fn factories_produce_working_walkers() {
        use osn_client::{OsnClient, SimulatedOsn};
        use osn_graph::generators::barbell;
        use rand::SeedableRng;

        let g = barbell(5, 5).unwrap();
        let algorithms = vec![
            Algorithm::Srw,
            Algorithm::Mhrw,
            Algorithm::NbSrw,
            Algorithm::Cnrw,
            Algorithm::Gnrw(GroupingSpec::ByDegree),
            Algorithm::Gnrw(GroupingSpec::ByHash(4)),
            Algorithm::NbCnrw,
        ];
        for a in algorithms {
            let mut client = SimulatedOsn::from_graph(g.clone());
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(0);
            let mut w = a.make(NodeId(0));
            for _ in 0..50 {
                w.step(&mut client, &mut rng).unwrap();
            }
            assert!(client.stats().issued >= 50, "{}", a.label());
        }
    }

    #[test]
    fn estimator_kind() {
        assert!(Algorithm::Mhrw.uniform_stationary());
        assert!(!Algorithm::Cnrw.uniform_stationary());
    }

    #[test]
    fn comparison_sets() {
        assert_eq!(Algorithm::figure6_set().len(), 5);
        assert_eq!(Algorithm::srw_family_set().len(), 4);
    }
}
