//! Figure 10 — the "ill-formed" clustered graph (three cliques of 10/30/50
//! chained by bridges): KL divergence, ℓ2 distance and estimation error vs
//! query cost for SRW / NB-SRW / CNRW / GNRW.
//!
//! Small conductance makes burn-in maximally expensive; this is where
//! history-aware transitions pay off most.

use std::sync::Arc;

use osn_datasets::clustered_graph;

use crate::algorithms::Algorithm;
use crate::output::{ExperimentResult, Series};
use crate::sweeps::{bias_vs_budget, SweepConfig};

/// Configuration for the Figure 10 reproduction.
#[derive(Clone, Debug)]
pub struct Fig10Config {
    /// Sweep parameters (paper: budgets 20..140).
    pub sweep: SweepConfig,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            sweep: SweepConfig::small_graph(1500, 0x000F_1610),
        }
    }
}

impl Fig10Config {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        Fig10Config {
            sweep: SweepConfig {
                budgets: vec![20, 60],
                trials: 24,
                seed: 0x000F_1610,
                threads: crate::runner::default_threads(),
            },
        }
    }
}

/// The three panels of Figure 10.
pub struct Fig10Results {
    /// 10a: KL divergence vs query cost.
    pub kl: ExperimentResult,
    /// 10b: ℓ2 distance vs query cost.
    pub l2: ExperimentResult,
    /// 10c: estimation error vs query cost.
    pub error: ExperimentResult,
}

/// Run all three panels.
pub fn run(config: &Fig10Config) -> Fig10Results {
    let network = Arc::new(clustered_graph().network);
    let algorithms = Algorithm::srw_family_set();
    let xs: Vec<f64> = config.sweep.budgets.iter().map(|&b| b as f64).collect();

    let mut kl = ExperimentResult::new(
        "fig10a",
        "Clustered graph: KL divergence",
        "Query Cost",
        "KL-Divergence",
    );
    let mut l2 = ExperimentResult::new(
        "fig10b",
        "Clustered graph: l2 distance",
        "Query Cost",
        "2-Norm Distance",
    );
    let mut error = ExperimentResult::new(
        "fig10c",
        "Clustered graph: estimation error (average degree)",
        "Query Cost",
        "Relative Error",
    );
    let note = format!(
        "clustered graph: cliques 10/30/50, 90 nodes, 1707 edges (paper-exact); {} trials/point",
        config.sweep.trials
    );
    kl.notes.push(note.clone());
    l2.notes.push(note.clone());
    error.notes.push(note);

    for alg in &algorithms {
        let m = bias_vs_budget(network.clone(), alg, &config.sweep);
        kl.series.push(Series::new(alg.label(), xs.clone(), m.kl));
        l2.series.push(Series::new(alg.label(), xs.clone(), m.l2));
        error
            .series
            .push(Series::new(alg.label(), xs.clone(), m.error));
    }
    Fig10Results { kl, l2, error }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_history_advantage() {
        let r = run(&Fig10Config::quick());
        for panel in [&r.kl, &r.l2, &r.error] {
            assert_eq!(panel.series.len(), 4);
        }
        // On the ill-formed graph CNRW must not lose to SRW on KL.
        let auc = |label: &str| r.kl.series_by_label(label).unwrap().auc();
        assert!(
            auc("CNRW") < auc("SRW") * 1.05,
            "CNRW {} vs SRW {}",
            auc("CNRW"),
            auc("SRW")
        );
    }

    #[test]
    fn metrics_shrink_with_budget() {
        let r = run(&Fig10Config::quick());
        for s in &r.kl.series {
            assert!(s.y[1] < s.y[0], "{}: {:?}", s.label, s.y);
        }
    }
}
