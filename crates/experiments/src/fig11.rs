//! Figure 11 — barbell graphs of varying size (paper: 20–56 nodes): KL
//! divergence, ℓ2 distance and relative error **vs graph size** at a fixed
//! query budget, for SRW / CNRW / GNRW.
//!
//! The barbell is *asymmetric*: the left bell stays at [`LEFT_BELL`] nodes
//! while the right bell grows with the sweep. A symmetric barbell is
//! near-regular, which makes the average-degree aggregate trivially easy at
//! any budget; with asymmetric bells the degree distribution is bimodal and
//! a walk trapped in one bell reports that bell's mode — precisely the
//! failure Figure 11 charts against graph size.

use std::sync::Arc;

use osn_datasets::barbell_graph_sized;
use osn_estimate::estimators::RatioEstimator;
use osn_estimate::metrics::{l2_distance, relative_error, symmetric_kl, EmpiricalDistribution};

use crate::algorithms::{Algorithm, GroupingSpec};
use crate::output::{ExperimentResult, Series};
use crate::runner::{parallel_map, trial_seed, TrialPlan};

/// Fixed size of the left bell across the sweep.
pub const LEFT_BELL: usize = 10;

/// Configuration for the Figure 11 reproduction.
#[derive(Clone, Debug)]
pub struct Fig11Config {
    /// Total barbell sizes to sweep (paper: 20..=56).
    pub sizes: Vec<usize>,
    /// Fixed unique-query budget per walk.
    pub budget: u64,
    /// Trials per (algorithm, size) point.
    pub trials: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for Fig11Config {
    fn default() -> Self {
        Fig11Config {
            sizes: (5..=14).map(|i| i * 4).collect(), // 20, 24, ..., 56
            // Below the smallest graph size: the sweep then measures how
            // sampling difficulty grows with the graph (paper Figure 11);
            // a budget above the node count covers every node and collapses
            // all metrics to ~0 for every walker.
            budget: 25,
            trials: 1200,
            seed: 0x000F_1611,
            threads: crate::runner::default_threads(),
        }
    }
}

impl Fig11Config {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        Fig11Config {
            sizes: vec![20, 40],
            budget: 15,
            trials: 24,
            seed: 0x000F_1611,
            threads: crate::runner::default_threads(),
        }
    }
}

/// The three panels of Figure 11.
pub struct Fig11Results {
    /// 11a: KL divergence vs graph size.
    pub kl: ExperimentResult,
    /// 11b: ℓ2 distance vs graph size.
    pub l2: ExperimentResult,
    /// 11c: relative error vs graph size.
    pub error: ExperimentResult,
}

/// Run all three panels.
pub fn run(config: &Fig11Config) -> Fig11Results {
    let algorithms = vec![
        Algorithm::Srw,
        Algorithm::Cnrw,
        Algorithm::Gnrw(GroupingSpec::ByDegree),
    ];
    let xs: Vec<f64> = config.sizes.iter().map(|&s| s as f64).collect();

    let mut kl_panel = ExperimentResult::new(
        "fig11a",
        "Barbell graphs: KL divergence vs size",
        "Graph size",
        "KL-Divergence",
    );
    let mut l2_panel = ExperimentResult::new(
        "fig11b",
        "Barbell graphs: l2 distance vs size",
        "Graph size",
        "2-Norm Distance",
    );
    let mut error_panel = ExperimentResult::new(
        "fig11c",
        "Barbell graphs: relative error vs size",
        "Graph size",
        "Relative Error",
    );
    let note = format!(
        "budget {} unique queries, {} trials/point; barbell split 10 + (size-10)",
        config.budget, config.trials
    );
    kl_panel.notes.push(note.clone());
    l2_panel.notes.push(note.clone());
    error_panel.notes.push(note);

    for alg in &algorithms {
        let mut kl_y = Vec::with_capacity(config.sizes.len());
        let mut l2_y = Vec::with_capacity(config.sizes.len());
        let mut err_y = Vec::with_capacity(config.sizes.len());
        for &size in &config.sizes {
            let dataset = barbell_graph_sized(LEFT_BELL, size - LEFT_BELL);
            let network = Arc::new(dataset.network);
            let n = network.graph.node_count();
            let target_dist = network.graph.degree_stationary_distribution();
            let truth = network.graph.average_degree();
            let plan = TrialPlan::budgeted(network.clone(), config.budget);

            let per_trial = parallel_map(config.trials, config.threads, |t| {
                let seed = trial_seed(config.seed ^ size as u64, t as u64);
                let trace = plan.run(alg, seed);
                let mut dist = EmpiricalDistribution::new(n);
                dist.record_all(trace.nodes());
                let mut est = RatioEstimator::new();
                for &v in trace.nodes() {
                    let k = plan.network.graph.degree(v);
                    est.push(k as f64, k);
                }
                let err = est.mean().map(|e| relative_error(e, truth)).unwrap_or(1.0);
                (dist, err)
            });

            let mut pooled = EmpiricalDistribution::new(n);
            let mut err_sum = 0.0;
            for (d, e) in &per_trial {
                pooled.merge(d);
                err_sum += e;
            }
            kl_y.push(symmetric_kl(
                &target_dist,
                &pooled.probabilities_smoothed(0.5),
            ));
            l2_y.push(l2_distance(&target_dist, &pooled.probabilities()));
            err_y.push(err_sum / per_trial.len() as f64);
        }
        kl_panel
            .series
            .push(Series::new(alg.label(), xs.clone(), kl_y));
        l2_panel
            .series
            .push(Series::new(alg.label(), xs.clone(), l2_y));
        error_panel
            .series
            .push(Series::new(alg.label(), xs.clone(), err_y));
    }
    Fig11Results {
        kl: kl_panel,
        l2: l2_panel,
        error: error_panel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_three_curves_per_panel() {
        let r = run(&Fig11Config::quick());
        for panel in [&r.kl, &r.l2, &r.error] {
            assert_eq!(panel.series.len(), 3);
            for s in &panel.series {
                assert_eq!(s.len(), 2);
                assert!(s.y.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn cnrw_no_worse_than_srw_on_small_barbell() {
        let r = run(&Fig11Config::quick());
        let srw = r.kl.series_by_label("SRW").unwrap().mean_y();
        let cnrw = r.kl.series_by_label("CNRW").unwrap().mean_y();
        assert!(cnrw < srw * 1.1, "CNRW {cnrw} vs SRW {srw}");
    }
}
