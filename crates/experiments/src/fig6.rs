//! Figure 6 — Google Plus: relative error of the average-degree estimate vs
//! unique-query cost, for MHRW / SRW / NB-SRW / CNRW / GNRW.
//!
//! The paper's headline comparison: to reach 6% relative error CNRW and
//! GNRW need ≈486/447 queries where SRW needs >800 and MHRW never gets
//! there within 1000.

use std::sync::Arc;

use osn_datasets::{gplus_like, Scale};

use crate::algorithms::Algorithm;
use crate::output::{ExperimentResult, Series};
use crate::sweeps::{error_vs_budget, AggregateTarget, SweepConfig};

/// Configuration for the Figure 6 reproduction.
#[derive(Clone, Debug)]
pub struct Fig6Config {
    /// Dataset scale for the Google Plus stand-in.
    pub scale: Scale,
    /// Sweep parameters (budgets, trials, seed, threads).
    pub sweep: SweepConfig,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            scale: Scale::Default,
            sweep: SweepConfig::large_graph(1200, 0xF166),
        }
    }
}

impl Fig6Config {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        Fig6Config {
            scale: Scale::Test,
            sweep: SweepConfig {
                budgets: vec![50, 100, 200],
                trials: 16,
                seed: 0xF166,
                threads: crate::runner::default_threads(),
            },
        }
    }
}

/// Run the Figure 6 experiment.
pub fn run(config: &Fig6Config) -> ExperimentResult {
    let dataset = gplus_like(config.scale, config.sweep.seed);
    let network = Arc::new(dataset.network);
    let series: Vec<Series> = error_vs_budget(
        network.clone(),
        &Algorithm::figure6_set(),
        &AggregateTarget::AverageDegree,
        &config.sweep,
    );
    let mut result = ExperimentResult::new(
        "fig6",
        "Google Plus stand-in: estimation of average degree",
        "Query Cost",
        "Relative Error",
    )
    .with_note(format!(
        "graph: {} nodes, {} edges, avg degree {:.1}; {} trials/point",
        network.graph.node_count(),
        network.graph.edge_count(),
        network.graph.average_degree(),
        config.sweep.trials
    ))
    .with_note("paper shape: CNRW/GNRW < NB-SRW < SRW << MHRW at every budget");
    for s in series {
        result.series.push(s);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_ordering() {
        let r = run(&Fig6Config::quick());
        assert_eq!(r.series.len(), 5);
        // Single-number summary: area under the error curve.
        let auc = |label: &str| r.series_by_label(label).unwrap().auc();
        // The paper's two key ordering claims, which must hold even on the
        // small quick profile: history-aware walks beat SRW, and MHRW is
        // clearly the worst.
        assert!(
            auc("CNRW") < auc("SRW") * 1.05,
            "CNRW {} vs SRW {}",
            auc("CNRW"),
            auc("SRW")
        );
        assert!(
            auc("MHRW") > auc("CNRW"),
            "MHRW {} should exceed CNRW {}",
            auc("MHRW"),
            auc("CNRW")
        );
    }
}
