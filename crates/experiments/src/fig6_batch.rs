//! Batched variant of the Figure 6 setting: **charged unique queries vs
//! walker count**, coalescing dispatcher against independent walkers.
//!
//! The paper charges one unit per unique neighbor-list fetch (§2.3). A
//! production crawler running `k` walkers can pay that bill three ways:
//!
//! * **independent** — each walker crawls with its own cache (the naive
//!   fleet): a node visited by `j` walkers is charged `j` times;
//! * **shared cache** — the `fig6_parallel` setting: one cache, charged
//!   once per node, but still one interface call per walker step;
//! * **coalesced batches** (this sweep) — walkers park their neighbor
//!   requests in a queue and a dispatcher dedups in-flight ids across
//!   walkers before fanning them out in batches of at most `B` over the
//!   rate-limited batch endpoint
//!   ([`osn_walks::CoalescingDispatcher`] over
//!   [`osn_client::SimulatedBatchOsn`]).
//!
//! Per-walker trajectories are **identical across the arms** (same
//! SplitMix64 RNG streams, same snapshot), so the sweep isolates the I/O
//! architecture: the charged-query gap is pure cache sharing + request
//! dedup, at exactly equal steps. The batch size cannot change what is
//! charged (unique nodes are unique nodes) — it divides the *request*
//! count, which is what a per-call rate limit meters; the request totals
//! are reported in the notes.

use std::sync::Arc;

use osn_client::{BatchConfig, SimulatedBatchOsn, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_graph::attributes::AttributedGraph;
use osn_graph::NodeId;
use osn_walks::multiwalk::stream_seed;
use osn_walks::{Cnrw, MultiWalkRunner, RandomWalk, WalkConfig, WalkSession};

use crate::output::{ExperimentResult, Series};
use crate::runner::trial_seed;

/// Configuration for the batched Figure 6 sweep.
#[derive(Clone, Debug)]
pub struct Fig6BatchConfig {
    /// Dataset scale for the Google Plus stand-in.
    pub scale: Scale,
    /// Concurrent walker counts (the x axis).
    pub walkers: Vec<usize>,
    /// Batch sizes to sweep, one coalesced curve each.
    pub batch_sizes: Vec<usize>,
    /// Steps per walker — equal across every arm.
    pub steps_per_walker: usize,
    /// In-flight request window of the simulated endpoint.
    pub max_in_flight: usize,
    /// Independent trials per point.
    pub trials: usize,
    /// Experiment seed (trial seeds derive from it).
    pub seed: u64,
}

impl Default for Fig6BatchConfig {
    fn default() -> Self {
        Fig6BatchConfig {
            scale: Scale::Default,
            walkers: vec![1, 2, 4, 8],
            batch_sizes: vec![1, 4, 16],
            steps_per_walker: 2_000,
            max_in_flight: 4,
            trials: 8,
            seed: 0x0F16_BA7C,
        }
    }
}

impl Fig6BatchConfig {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        Fig6BatchConfig {
            scale: Scale::Test,
            walkers: vec![1, 4, 8],
            batch_sizes: vec![4],
            steps_per_walker: 300,
            max_in_flight: 4,
            trials: 4,
            seed: 0x0F16_BA7C,
        }
    }
}

/// Start node for walker `i` of a trial (spread deterministically, same
/// rule as the parallel Figure 6 sweep).
fn start_node(seed: u64, i: usize, n: usize) -> NodeId {
    NodeId(((seed as usize + i * 31) % n) as u32)
}

/// Independent arm: `k` walkers, each with its **own** cache, summing their
/// per-walker charged queries at equal steps. RNG streams match the
/// coalesced arm's exactly.
fn independent_charged(network: &Arc<AttributedGraph>, k: usize, steps: usize, seed: u64) -> u64 {
    let n = network.graph.node_count();
    (0..k)
        .map(|i| {
            let mut client = SimulatedOsn::new_shared(network.clone());
            let mut walker = Cnrw::new(start_node(seed, i, n));
            let config = WalkConfig::steps(steps).with_seed(stream_seed(seed, i as u64));
            WalkSession::new(config)
                .run(&mut walker, &mut client)
                .stats
                .unique
        })
        .sum()
}

/// Coalesced arm: the same `k` trajectories through the batching
/// dispatcher; returns `(charged unique, requests issued)`.
fn coalesced_charged(
    network: &Arc<AttributedGraph>,
    k: usize,
    batch_size: usize,
    in_flight: usize,
    steps: usize,
    seed: u64,
) -> (u64, u64) {
    let n = network.graph.node_count();
    let mut client = SimulatedBatchOsn::new(
        SimulatedOsn::new_shared(network.clone()),
        BatchConfig::new(batch_size).with_in_flight(in_flight),
    );
    let report = MultiWalkRunner::new(k, steps, seed).run_batched(
        &mut client,
        |i, backend| {
            Box::new(Cnrw::with_backend(start_node(seed, i, n), backend))
                as Box<dyn RandomWalk + Send>
        },
        |v| v.index() as f64,
    );
    (report.interface.unique, client.batch_stats().submitted)
}

/// Run the batched Figure 6 sweep: charged queries vs walker count, one
/// curve per batch size plus the independent-walkers baseline.
pub fn run(config: &Fig6BatchConfig) -> ExperimentResult {
    let network = Arc::new(gplus_like(config.scale, config.seed).network);
    let steps = config.steps_per_walker;
    let mut result = ExperimentResult::new(
        "fig6_batch",
        "Google Plus stand-in: charged unique queries at equal steps — coalescing batch \
         dispatcher vs independent CNRW walkers",
        "Concurrent Walkers",
        "Charged Unique Queries (mean)",
    )
    .with_note(format!(
        "graph: {} nodes, {} edges; {} steps/walker; {} trials/point; in-flight window {}",
        network.graph.node_count(),
        network.graph.edge_count(),
        steps,
        config.trials,
        config.max_in_flight
    ))
    .with_note(
        "identical per-walker RNG streams in every arm: the gap is pure request \
         coalescing (queue -> dedup -> charge -> fan-out), not different walks",
    );
    let xs: Vec<f64> = config.walkers.iter().map(|&k| k as f64).collect();

    let mean = |values: Vec<u64>| values.iter().sum::<u64>() as f64 / values.len() as f64;
    let independent: Vec<f64> = config
        .walkers
        .iter()
        .map(|&k| {
            mean(
                (0..config.trials)
                    .map(|t| {
                        independent_charged(&network, k, steps, trial_seed(config.seed, t as u64))
                    })
                    .collect(),
            )
        })
        .collect();
    result.series.push(Series::new(
        "independent walkers".to_string(),
        xs.clone(),
        independent,
    ));

    for &batch_size in &config.batch_sizes {
        let mut requests_note: Option<String> = None;
        let ys: Vec<f64> = config
            .walkers
            .iter()
            .map(|&k| {
                let mut charged = Vec::with_capacity(config.trials);
                let mut requests = Vec::with_capacity(config.trials);
                for t in 0..config.trials {
                    let (c, r) = coalesced_charged(
                        &network,
                        k,
                        batch_size,
                        config.max_in_flight,
                        steps,
                        trial_seed(config.seed, t as u64),
                    );
                    charged.push(c);
                    requests.push(r);
                }
                if k == *config.walkers.iter().max().unwrap() {
                    requests_note = Some(format!(
                        "B={batch_size}, k={k}: {:.0} charged nodes in {:.0} batch requests \
                         (vs {} per-node calls the serial path would issue)",
                        mean(charged.clone()),
                        mean(requests),
                        k * steps
                    ));
                }
                mean(charged)
            })
            .collect();
        result.series.push(Series::new(
            format!("coalesced B={batch_size}"),
            xs.clone(),
            ys,
        ));
        if let Some(note) = requests_note {
            result.notes.push(note);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shapes_and_sanity() {
        let config = Fig6BatchConfig::quick();
        let r = run(&config);
        assert_eq!(r.series.len(), 1 + config.batch_sizes.len());
        for s in &r.series {
            assert_eq!(s.len(), config.walkers.len());
            assert!(s.y.iter().all(|v| v.is_finite() && *v > 0.0), "{}", s.label);
        }
    }

    #[test]
    fn coalescing_charges_measurably_fewer_queries_than_independent_walkers() {
        // The acceptance property: with 8 walkers on the gplus-like graph
        // at equal steps, the coalescing dispatcher's charged unique count
        // is measurably below 8 independent walkers' summed bill.
        let network = Arc::new(gplus_like(Scale::Test, 0x0F16_BA7C).network);
        let (steps, seed) = (400usize, trial_seed(0x0F16_BA7C, 1));
        let independent = independent_charged(&network, 8, steps, seed);
        let (coalesced, requests) = coalesced_charged(&network, 8, 8, 4, steps, seed);
        assert!(
            (coalesced as f64) < independent as f64 * 0.9,
            "coalesced {coalesced} should be <90% of independent {independent}"
        );
        // Dedup also compresses the request stream: batches of 8 need far
        // fewer calls than one per charged node.
        assert!(
            requests < coalesced,
            "requests {requests} should be fewer than charged nodes {coalesced} at B=8"
        );
    }

    #[test]
    fn batch_size_does_not_change_what_is_charged() {
        // Charged cost is a property of the unique-node set; the batch size
        // only divides the request count.
        let network = Arc::new(gplus_like(Scale::Test, 7).network);
        let seed = trial_seed(7, 0);
        let (charged_1, requests_1) = coalesced_charged(&network, 4, 1, 4, 200, seed);
        let (charged_16, requests_16) = coalesced_charged(&network, 4, 16, 4, 200, seed);
        assert_eq!(charged_1, charged_16);
        assert!(requests_16 < requests_1);
    }
}
