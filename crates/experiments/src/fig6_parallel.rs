//! Parallel variant of the Figure 6 sweep: relative error of the
//! average-degree estimate vs **shared** unique-query cost, for 1/2/4/8
//! concurrent CNRW walkers pooling one lock-striped cache.
//!
//! The paper's Figure 6 charges each (single) walker its own budget. A
//! production crawler instead runs many walkers against one cache — a node
//! any walker queries is free for all of them, and the budget is global.
//! This sweep answers the follow-up question the paper leaves open: *given
//! the same global budget, does splitting it across `k` concurrent
//! history-aware walkers hurt the estimate?* Each walker keeps its own
//! circulation history (history is per-walker state, not cache state), while
//! queries are pooled through [`osn_client::SharedOsn`] and per-walker
//! estimates are merged by [`osn_walks::MultiWalkRunner`].

use std::sync::Arc;

use osn_client::{SharedOsn, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_estimate::metrics::relative_error;
use osn_graph::attributes::AttributedGraph;
use osn_graph::NodeId;
use osn_walks::{Cnrw, MultiWalkRunner, RandomWalk};

use crate::output::{ExperimentResult, Series};
use crate::runner::trial_seed;

/// Configuration for the parallel Figure 6 sweep.
#[derive(Clone, Debug)]
pub struct Fig6ParallelConfig {
    /// Dataset scale for the Google Plus stand-in.
    pub scale: Scale,
    /// Shared unique-query budgets to sweep (the x axis).
    pub budgets: Vec<u64>,
    /// Concurrent walker counts, one curve each.
    pub walkers: Vec<usize>,
    /// Cache stripes for the shared client.
    pub stripes: usize,
    /// Independent trials per (walkers, budget) point.
    pub trials: usize,
    /// Experiment seed (trial seeds derive from it).
    pub seed: u64,
}

impl Default for Fig6ParallelConfig {
    fn default() -> Self {
        Fig6ParallelConfig {
            scale: Scale::Default,
            budgets: (1..=10).map(|i| i * 100).collect(),
            walkers: vec![1, 2, 4, 8],
            stripes: 64,
            trials: 48,
            seed: 0x0F16_69A7,
        }
    }
}

impl Fig6ParallelConfig {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        Fig6ParallelConfig {
            scale: Scale::Test,
            budgets: vec![50, 100, 200],
            walkers: vec![1, 4],
            stripes: 16,
            trials: 12,
            seed: 0x0F16_69A7,
        }
    }
}

/// One trial: `k` concurrent CNRW walkers over one budgeted shared cache;
/// returns the relative error of the merged average-degree estimate.
fn trial_error(
    network: &Arc<AttributedGraph>,
    stripes: usize,
    k: usize,
    budget: u64,
    seed: u64,
) -> f64 {
    let truth = network.graph.average_degree();
    let n = network.graph.node_count();
    let client = SharedOsn::configured(
        SimulatedOsn::new_shared(network.clone()),
        stripes,
        Some(budget),
    );
    // Same step-cap rule as `TrialPlan::budgeted`, split across walkers.
    let max_steps = ((budget as usize).saturating_mul(50).max(10_000) / k).max(1_000);
    let graph = &network.graph;
    let report = MultiWalkRunner::new(k, max_steps, seed).run(
        &client,
        |i, backend| {
            let start = NodeId(((seed as usize + i * 31) % n) as u32);
            Box::new(Cnrw::with_backend(start, backend)) as Box<dyn RandomWalk + Send>
        },
        // Average degree: f(v) = k_v, read from the shared snapshot.
        |v| graph.degree(v) as f64,
    );
    match report.estimate.average_degree() {
        Some(estimate) => relative_error(estimate, truth),
        None => 1.0, // all walkers refused before their first step
    }
}

/// Run the parallel Figure 6 sweep: one error-vs-budget curve per walker
/// count, sharing one global budget and one striped cache per trial.
pub fn run(config: &Fig6ParallelConfig) -> ExperimentResult {
    let network = Arc::new(gplus_like(config.scale, config.seed).network);
    let mut result = ExperimentResult::new(
        "fig6_parallel",
        "Google Plus stand-in: average degree, k concurrent CNRW walkers on one shared budget",
        "Shared Query Cost",
        "Relative Error",
    )
    .with_note(format!(
        "graph: {} nodes, {} edges, avg degree {:.1}; {} trials/point; {} cache stripes",
        network.graph.node_count(),
        network.graph.edge_count(),
        network.graph.average_degree(),
        config.trials,
        config.stripes
    ))
    .with_note(
        "walkers share one SharedOsn cache + atomic budget; per-walker estimates \
         merged in walker order (MultiWalkRunner)",
    );
    for &k in &config.walkers {
        let ys: Vec<f64> = config
            .budgets
            .iter()
            .map(|&budget| {
                let errors: Vec<f64> = (0..config.trials)
                    .map(|t| {
                        trial_error(
                            &network,
                            config.stripes,
                            k,
                            budget,
                            trial_seed(config.seed ^ budget ^ ((k as u64) << 32), t as u64),
                        )
                    })
                    .collect();
                errors.iter().sum::<f64>() / errors.len() as f64
            })
            .collect();
        result.series.push(Series::new(
            format!("CNRW x{k}"),
            config.budgets.iter().map(|&b| b as f64).collect(),
            ys,
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shapes_and_sanity() {
        let config = Fig6ParallelConfig::quick();
        let r = run(&config);
        assert_eq!(r.series.len(), config.walkers.len());
        for s in &r.series {
            assert_eq!(s.len(), config.budgets.len());
            assert!(
                s.y.iter().all(|e| e.is_finite() && (0.0..=2.0).contains(e)),
                "{}: {:?}",
                s.label,
                s.y
            );
        }
    }

    #[test]
    fn single_walker_error_shrinks_with_budget() {
        // k = 1 is fully deterministic (no budget races), so the classic
        // budget-helps claim must hold exactly as in the serial Figure 6.
        let mut config = Fig6ParallelConfig::quick();
        config.budgets = vec![20, 200];
        config.walkers = vec![1];
        config.trials = 16;
        let r = run(&config);
        let y = &r.series[0].y;
        assert!(y[1] < y[0], "error should shrink with budget: {y:?}");
    }

    #[test]
    fn pooled_walkers_stay_competitive_at_high_budget() {
        // The headline property: splitting one shared budget across several
        // history-aware walkers does not blow up the pooled estimate.
        let mut config = Fig6ParallelConfig::quick();
        config.budgets = vec![200];
        config.walkers = vec![1, 4];
        config.trials = 16;
        let r = run(&config);
        let solo = r.series[0].y[0];
        let pooled = r.series[1].y[0];
        assert!(
            pooled < solo + 0.25,
            "4-walker pooled error {pooled} should stay near solo {solo}"
        );
    }
}
