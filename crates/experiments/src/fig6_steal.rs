//! Work-stealing variant of the Figure 6 setting: **estimator NRMSE at a
//! fixed shared budget, with and without frontier restarts**, on the
//! clustered stand-in.
//!
//! The adversarial scenario the paper's clustered experiments (Figure 10)
//! hint at: a fleet of history-aware walkers all started inside the
//! *smallest* clique of the clustered graph. Each walker exhausts its
//! 10-node home clique within a few dozen steps; until it finds one of the
//! sparse bridges, every further step resamples known territory — the
//! pooled estimate is dominated by low-degree clique-A samples while the
//! high-degree 50-clique goes unseen.
//!
//! The two arms run **identical fleets, budgets, seeds, and RNG streams**
//! through the unified orchestrator's serial backend
//! ([`osn_walks::WalkOrchestrator::run_serial`]); the only difference is
//! the restart policy:
//!
//! * `never` — [`osn_walks::Never`]: the classic run;
//! * `steal` — [`osn_walks::WorkStealing`]: walkers publish the nodes they
//!   walk through into a [`osn_walks::SharedFrontier`], and a walker whose
//!   check window went sterile (or whose chain the online windowed split-R̂
//!   flags as the non-mixing outlier) restarts from territory another
//!   walker discovered.
//!
//! The metric is the **NRMSE** of the average-degree estimate across
//! trials: `sqrt(mean(((est − truth)/truth)²))` — it punishes both bias
//! (trapped fleets systematically underestimate) and variance.

use std::sync::Arc;

use osn_client::{BudgetedClient, SimulatedOsn};
use osn_graph::attributes::AttributedGraph;
use osn_graph::NodeId;
use osn_walks::{
    Cnrw, Never, RandomWalk, RestartPolicy, RestartReason, SharedFrontier, WalkOrchestrator,
    WorkStealing,
};

use crate::output::{ExperimentResult, Series};
use crate::runner::trial_seed;

/// Configuration for the work-stealing Figure 6 sweep.
#[derive(Clone, Debug)]
pub struct Fig6StealConfig {
    /// Shared unique-query budgets to sweep (the x axis).
    pub budgets: Vec<u64>,
    /// Fleet size (all walkers start clumped in the smallest clique).
    pub walkers: usize,
    /// Steps between restart-policy checks (also the split-R̂ window).
    pub check_every: usize,
    /// Windowed split-R̂ above this flags non-mixing.
    pub rhat_threshold: f64,
    /// Independent trials per (arm, budget) point.
    pub trials: usize,
    /// Experiment seed (trial seeds derive from it).
    pub seed: u64,
}

impl Default for Fig6StealConfig {
    fn default() -> Self {
        Fig6StealConfig {
            budgets: vec![20, 30, 45, 60, 75],
            walkers: 8,
            check_every: 32,
            rhat_threshold: 1.1,
            trials: 48,
            seed: 0x0F16_57EA,
        }
    }
}

impl Fig6StealConfig {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        Fig6StealConfig {
            budgets: vec![30, 60],
            trials: 16,
            ..Default::default()
        }
    }
}

/// Per-trial outcome: the relative estimation error plus restart counts.
struct TrialOutcome {
    rel_error: f64,
    restarts_exhausted: usize,
    restarts_nonmixing: usize,
    rescues: usize,
}

/// One trial: the clumped fleet over one shared budget, under `policy`.
fn run_trial(
    network: &Arc<AttributedGraph>,
    config: &Fig6StealConfig,
    budget: u64,
    seed: u64,
    policy: &dyn RestartPolicy,
) -> TrialOutcome {
    let truth = network.graph.average_degree();
    let n = network.graph.node_count();
    let k = config.walkers;
    // Same step-cap rule as `TrialPlan::budgeted`, split across walkers.
    let max_steps = ((budget as usize).saturating_mul(50).max(10_000) / k).max(1_000);
    let mut client = BudgetedClient::new(SimulatedOsn::new_shared(network.clone()), budget, n);
    let graph = &network.graph;
    let report = WalkOrchestrator::new(k, max_steps, seed).run_serial(
        &mut client,
        // Clumped adversarial starts: every walker inside the 10-clique.
        |i, backend| {
            Box::new(Cnrw::with_backend(NodeId((i % 10) as u32), backend))
                as Box<dyn RandomWalk + Send>
        },
        |v| graph.degree(v) as f64,
        policy,
    );
    let rel_error = match report.estimate.average_degree() {
        Some(estimate) => (estimate - truth) / truth,
        None => 1.0, // all walkers refused before their first step
    };
    TrialOutcome {
        rel_error,
        restarts_exhausted: report
            .restarts
            .iter()
            .filter(|e| e.reason == RestartReason::Exhausted)
            .count(),
        restarts_nonmixing: report
            .restarts
            .iter()
            .filter(|e| e.reason == RestartReason::NonMixing)
            .count(),
        rescues: report
            .restarts
            .iter()
            .filter(|e| e.reason == RestartReason::Refused)
            .count(),
    }
}

/// NRMSE across trials from signed relative errors.
fn nrmse(rel_errors: &[f64]) -> f64 {
    (rel_errors.iter().map(|e| e * e).sum::<f64>() / rel_errors.len() as f64).sqrt()
}

/// Run the work-stealing Figure 6 sweep: NRMSE vs budget, one curve per
/// arm, identical fleets and RNG streams in both.
pub fn run(config: &Fig6StealConfig) -> ExperimentResult {
    let network = Arc::new(osn_datasets::clustered_graph().network);
    let mut result = ExperimentResult::new(
        "fig6_steal",
        "Clustered stand-in: average-degree NRMSE at a fixed shared budget — \
         work-stealing frontier restarts vs never restarting, clumped starts",
        "Shared Query Cost",
        "NRMSE of Average-Degree Estimate",
    )
    .with_note(format!(
        "graph: {} nodes, {} edges, true avg degree {:.2}; {} CNRW walkers all started \
         in the 10-clique; {} trials/point; check_every={}, rhat_threshold={}",
        network.graph.node_count(),
        network.graph.edge_count(),
        network.graph.average_degree(),
        config.walkers,
        config.trials,
        config.check_every,
        config.rhat_threshold,
    ))
    .with_note(
        "identical fleets, budgets and RNG streams in both arms (orchestrator serial \
         backend): the gap is purely the WorkStealing restart policy",
    );
    let xs: Vec<f64> = config.budgets.iter().map(|&b| b as f64).collect();

    let mut arm = |steal: bool| -> Vec<f64> {
        let mut ys = Vec::with_capacity(config.budgets.len());
        for &budget in &config.budgets {
            let mut errors = Vec::with_capacity(config.trials);
            let mut exhausted = 0usize;
            let mut nonmixing = 0usize;
            let mut rescues = 0usize;
            for t in 0..config.trials {
                let seed = trial_seed(config.seed ^ budget, t as u64);
                let outcome = if steal {
                    let policy = WorkStealing::new(
                        config.rhat_threshold,
                        config.check_every,
                        SharedFrontier::with_stripes(16, 32),
                    );
                    run_trial(&network, config, budget, seed, &policy)
                } else {
                    run_trial(&network, config, budget, seed, &Never)
                };
                errors.push(outcome.rel_error);
                exhausted += outcome.restarts_exhausted;
                nonmixing += outcome.restarts_nonmixing;
                rescues += outcome.rescues;
            }
            let y = nrmse(&errors);
            ys.push(y);
            if steal {
                result.notes.push(format!(
                    "budget {budget}: steal NRMSE {y:.4}; {:.1} relocations/trial \
                     ({exhausted} exhausted + {nonmixing} non-mixing + {rescues} budget \
                     rescues over {} trials)",
                    (exhausted + nonmixing + rescues) as f64 / config.trials as f64,
                    config.trials,
                ));
            } else {
                result
                    .notes
                    .push(format!("budget {budget}: never NRMSE {y:.4}"));
            }
        }
        ys
    };

    let never = arm(false);
    let steal = arm(true);
    result
        .series
        .push(Series::new("CNRW never".to_string(), xs.clone(), never));
    result
        .series
        .push(Series::new("CNRW work-stealing".to_string(), xs, steal));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shapes_and_sanity() {
        let config = Fig6StealConfig::quick();
        let r = run(&config);
        assert_eq!(r.series.len(), 2);
        for s in &r.series {
            assert_eq!(s.len(), config.budgets.len());
            assert!(
                s.y.iter().all(|e| e.is_finite() && (0.0..=2.0).contains(e)),
                "{}: {:?}",
                s.label,
                s.y
            );
        }
    }

    #[test]
    fn stealing_reaches_at_most_the_never_nrmse_at_fixed_budget() {
        // The acceptance property of the work-stealing orchestrator:
        // at the same shared budget, restarting stalled walkers from
        // stolen frontier nodes must not lose to never restarting —
        // and on the clumped-start clustered scenario it should win.
        let config = Fig6StealConfig {
            budgets: vec![30, 60],
            trials: 24,
            ..Default::default()
        };
        let r = run(&config);
        let never = &r.series[0].y;
        let steal = &r.series[1].y;
        for (i, budget) in config.budgets.iter().enumerate() {
            assert!(
                steal[i] <= never[i],
                "budget {budget}: steal NRMSE {} must be <= never {}",
                steal[i],
                never[i]
            );
        }
    }

    #[test]
    fn stealing_actually_restarts_in_this_scenario() {
        let config = Fig6StealConfig::quick();
        let network = Arc::new(osn_datasets::clustered_graph().network);
        let policy = WorkStealing::new(
            config.rhat_threshold,
            config.check_every,
            SharedFrontier::with_stripes(16, 32),
        );
        let outcome = run_trial(&network, &config, 60, trial_seed(config.seed, 1), &policy);
        assert!(
            outcome.restarts_exhausted + outcome.restarts_nonmixing > 0,
            "clumped starts must trigger at least one cadence steal"
        );
        assert!(
            outcome.rescues > 0,
            "budget exhaustion must trigger at least one rescue"
        );
    }
}
