//! Figure 7 — public benchmark datasets:
//!
//! * 7a/7b/7c: Facebook — KL divergence, ℓ2 distance and estimation error vs
//!   query cost for SRW / NB-SRW / CNRW / GNRW;
//! * 7d: Youtube — estimation error vs query cost for SRW / CNRW / GNRW.

use std::sync::Arc;

use osn_datasets::{facebook_like, youtube_like, Scale};

use crate::algorithms::{Algorithm, GroupingSpec};
use crate::output::{ExperimentResult, Series};
use crate::sweeps::{bias_vs_budget, error_vs_budget, AggregateTarget, SweepConfig};

/// Configuration for the Figure 7 reproduction.
#[derive(Clone, Debug)]
pub struct Fig7Config {
    /// Dataset scale.
    pub scale: Scale,
    /// Sweep for the Facebook panels (paper: budgets 20..140).
    pub facebook_sweep: SweepConfig,
    /// Sweep for the Youtube panel (paper: budgets up to 1000).
    pub youtube_sweep: SweepConfig,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            scale: Scale::Default,
            facebook_sweep: SweepConfig::small_graph(1000, 0xF167),
            youtube_sweep: SweepConfig::large_graph(300, 0xF167D),
        }
    }
}

impl Fig7Config {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        Fig7Config {
            scale: Scale::Test,
            facebook_sweep: SweepConfig {
                budgets: vec![20, 60, 100],
                trials: 16,
                seed: 0xF167,
                threads: crate::runner::default_threads(),
            },
            youtube_sweep: SweepConfig {
                budgets: vec![100, 300],
                trials: 8,
                seed: 0xF167D,
                threads: crate::runner::default_threads(),
            },
        }
    }
}

/// The four panels of Figure 7.
pub struct Fig7Results {
    /// 7a: Facebook KL divergence vs query cost.
    pub facebook_kl: ExperimentResult,
    /// 7b: Facebook ℓ2 distance vs query cost.
    pub facebook_l2: ExperimentResult,
    /// 7c: Facebook estimation error vs query cost.
    pub facebook_error: ExperimentResult,
    /// 7d: Youtube estimation error vs query cost.
    pub youtube_error: ExperimentResult,
}

/// Run all four panels.
pub fn run(config: &Fig7Config) -> Fig7Results {
    // --- Facebook panels (bias metrics need the full distribution). ---
    let fb = Arc::new(facebook_like(config.scale, config.facebook_sweep.seed).network);
    let algorithms = Algorithm::srw_family_set();
    let xs: Vec<f64> = config
        .facebook_sweep
        .budgets
        .iter()
        .map(|&b| b as f64)
        .collect();

    let mut kl = ExperimentResult::new(
        "fig7a",
        "Facebook stand-in: KL divergence",
        "Query Cost",
        "KL-Divergence",
    );
    let mut l2 = ExperimentResult::new(
        "fig7b",
        "Facebook stand-in: l2 distance",
        "Query Cost",
        "2-Norm Distance",
    );
    let mut err = ExperimentResult::new(
        "fig7c",
        "Facebook stand-in: estimation error (average degree)",
        "Query Cost",
        "Relative Error",
    );
    for alg in &algorithms {
        let metrics = bias_vs_budget(fb.clone(), alg, &config.facebook_sweep);
        kl.series
            .push(Series::new(alg.label(), xs.clone(), metrics.kl));
        l2.series
            .push(Series::new(alg.label(), xs.clone(), metrics.l2));
        err.series
            .push(Series::new(alg.label(), xs.clone(), metrics.error));
    }
    let note = format!(
        "facebook stand-in: {} nodes, {} edges; {} trials/point; \
         KL computed on the trial-pooled empirical distribution (Jeffreys-smoothed)",
        fb.graph.node_count(),
        fb.graph.edge_count(),
        config.facebook_sweep.trials
    );
    kl.notes.push(note.clone());
    l2.notes.push(note.clone());
    err.notes.push(note);

    // --- Youtube panel (error only; SRW vs CNRW vs GNRW as in the paper). ---
    let yt = Arc::new(youtube_like(config.scale, config.youtube_sweep.seed).network);
    let yt_algorithms = vec![
        Algorithm::Srw,
        Algorithm::Cnrw,
        Algorithm::Gnrw(GroupingSpec::ByDegree),
    ];
    let series = error_vs_budget(
        yt.clone(),
        &yt_algorithms,
        &AggregateTarget::AverageDegree,
        &config.youtube_sweep,
    );
    let mut youtube_error = ExperimentResult::new(
        "fig7d",
        "Youtube stand-in: estimation error (average degree)",
        "Query Cost",
        "Estimation Error",
    )
    .with_note(format!(
        "youtube stand-in: {} nodes, {} edges; {} trials/point",
        yt.graph.node_count(),
        yt.graph.edge_count(),
        config.youtube_sweep.trials
    ));
    for s in series {
        youtube_error.series.push(s);
    }

    Fig7Results {
        facebook_kl: kl,
        facebook_l2: l2,
        facebook_error: err,
        youtube_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_panels() {
        let r = run(&Fig7Config::quick());
        assert_eq!(r.facebook_kl.series.len(), 4);
        assert_eq!(r.facebook_l2.series.len(), 4);
        assert_eq!(r.facebook_error.series.len(), 4);
        assert_eq!(r.youtube_error.series.len(), 3);
        // KL must shrink with budget for every algorithm.
        for s in &r.facebook_kl.series {
            assert!(
                s.y.last().unwrap() < s.y.first().unwrap(),
                "{}: {:?}",
                s.label,
                s.y
            );
        }
        // History-aware walks should not lose to SRW on the KL sweep.
        let auc = |label: &str| r.facebook_kl.series_by_label(label).unwrap().auc();
        assert!(
            auc("CNRW") < auc("SRW") * 1.1,
            "CNRW {} SRW {}",
            auc("CNRW"),
            auc("SRW")
        );
    }
}
