//! Figure 8 — sampling distributions of SRW, CNRW and GNRW against the
//! theoretical `k_v / 2|E|`, nodes ordered by degree.
//!
//! The paper runs 100 instances of each walk for 10,000 steps on two
//! Facebook snapshots and shows all three walks converging to the same
//! stationary distribution — the empirical face of Theorems 1 and 4.

use std::sync::Arc;

use osn_datasets::{facebook_like, Scale};
use osn_estimate::metrics::EmpiricalDistribution;
use osn_graph::attributes::AttributedGraph;

use crate::algorithms::{Algorithm, GroupingSpec};
use crate::output::{ExperimentResult, Series};
use crate::runner::{parallel_map, trial_seed, TrialPlan};

/// Configuration for the Figure 8 reproduction.
#[derive(Clone, Debug)]
pub struct Fig8Config {
    /// Dataset scale.
    pub scale: Scale,
    /// Independent walk instances (paper: 100).
    pub instances: usize,
    /// Steps per instance (paper: 10,000).
    pub steps: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            scale: Scale::Default,
            instances: 100,
            steps: 10_000,
            seed: 0xF168,
            threads: crate::runner::default_threads(),
        }
    }
}

impl Fig8Config {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        Fig8Config {
            scale: Scale::Test,
            instances: 30,
            steps: 5_000,
            seed: 0xF168,
            threads: crate::runner::default_threads(),
        }
    }
}

/// Run one panel (one dataset snapshot): returns the distribution of each
/// algorithm plus the theoretical line, with nodes ordered by degree.
pub fn run_panel(
    network: Arc<AttributedGraph>,
    config: &Fig8Config,
    panel_id: &str,
    title: &str,
) -> ExperimentResult {
    let n = network.graph.node_count();

    // Degree-ascending node order (the paper's x axis).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| network.graph.degree(osn_graph::NodeId(v)));
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();

    let theoretical = network.graph.degree_stationary_distribution();
    let theo_sorted: Vec<f64> = order.iter().map(|&v| theoretical[v as usize]).collect();

    let algorithms = vec![
        Algorithm::Srw,
        Algorithm::Cnrw,
        Algorithm::Gnrw(GroupingSpec::ByDegree),
    ];

    let mut result = ExperimentResult::new(
        panel_id,
        title,
        "Nodes ordered by degree (rank)",
        "Distribution",
    )
    .with_note(format!(
        "{} instances x {} steps on {} nodes",
        config.instances, config.steps, n
    ))
    .with_series(Series::new("Theo", xs.clone(), theo_sorted));

    for alg in algorithms {
        let plan = TrialPlan::steps(network.clone(), config.steps);
        let dists = parallel_map(config.instances, config.threads, |t| {
            let trace = plan.run(&alg, trial_seed(config.seed, t as u64));
            let mut d = EmpiricalDistribution::new(n);
            d.record_all(trace.nodes());
            d
        });
        let mut pooled = EmpiricalDistribution::new(n);
        for d in &dists {
            pooled.merge(d);
        }
        let probs = pooled.probabilities();
        let sorted: Vec<f64> = order.iter().map(|&v| probs[v as usize]).collect();
        result
            .series
            .push(Series::new(alg.label(), xs.clone(), sorted));
    }
    result
}

/// Run both panels (two snapshot seeds standing in for the paper's two
/// Facebook ego-nets).
pub fn run(config: &Fig8Config) -> Vec<ExperimentResult> {
    let panels = [
        (config.seed, "fig8a", "facebook dataset 1: distribution"),
        (
            config.seed ^ 0x5eed,
            "fig8b",
            "facebook dataset 2: distribution",
        ),
    ];
    panels
        .iter()
        .map(|&(seed, id, title)| {
            let network = Arc::new(facebook_like(config.scale, seed).network);
            run_panel(network, config, id, title)
        })
        .collect()
}

/// Maximum absolute deviation between an algorithm's series and the
/// theoretical one — the number EXPERIMENTS.md reports per panel.
pub fn max_deviation(result: &ExperimentResult, label: &str) -> Option<f64> {
    let theo = result.series_by_label("Theo")?;
    let alg = result.series_by_label(label)?;
    Some(
        theo.y
            .iter()
            .zip(&alg.y)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_walks_converge_to_theoretical() {
        let config = Fig8Config::quick();
        let panels = run(&config);
        assert_eq!(panels.len(), 2);
        for panel in &panels {
            assert_eq!(panel.series.len(), 4); // Theo + 3 algorithms
            let theo = &panel.series_by_label("Theo").unwrap().y;
            for label in ["SRW", "CNRW", "GNRW_By_Degree"] {
                // Total variation aggregates the convergence claim; the
                // per-node maximum is noisy for autocorrelated walk samples.
                let alg = &panel.series_by_label(label).unwrap().y;
                let tv: f64 = 0.5
                    * theo
                        .iter()
                        .zip(alg)
                        .map(|(&a, &b)| (a - b).abs())
                        .sum::<f64>();
                assert!(tv < 0.08, "{label}: TV distance {tv}");
                let dev = max_deviation(panel, label).unwrap();
                assert!(dev < 0.02, "{label}: max per-node deviation {dev}");
            }
        }
    }

    #[test]
    fn distributions_sum_to_one() {
        let config = Fig8Config::quick();
        let panel = &run(&config)[0];
        for s in &panel.series {
            let sum: f64 = s.y.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{} sums to {sum}", s.label);
        }
    }
}
