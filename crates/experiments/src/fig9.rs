//! Figure 9 — Yelp: GNRW grouping strategies vs SRW, for two aggregates.
//!
//! The design-space study of §4.1: grouping by the attribute you intend to
//! aggregate should win *that* aggregate. Panel (a) estimates average
//! degree; panel (b) estimates average `reviews_count`.
//!
//! Measured outcome (see EXPERIMENTS.md): all GNRW variants beat SRW at
//! moderate-to-large budgets, and `GNRW_By_Degree` does win the degree
//! aggregate; on the reviews panel the aligned strategy is among the best
//! but within noise of hash grouping at our stand-in's scale — the
//! attribute's neighborhood-level variation is tied to degree and
//! community, so the strategies overlap.

use std::sync::Arc;
use std::time::Instant;

use osn_datasets::{yelp_like, Scale};
use osn_estimate::estimators::RatioEstimator;
use osn_estimate::metrics::relative_error;
use osn_walks::PlanMode;

use crate::algorithms::{Algorithm, GroupingSpec};
use crate::output::{ExperimentResult, Series};
use crate::runner::{parallel_map, trial_seed, TrialPlan};
use crate::sweeps::{error_vs_budget, AggregateTarget, SweepConfig};

/// Configuration for the Figure 9 reproduction.
#[derive(Clone, Debug)]
pub struct Fig9Config {
    /// Dataset scale for the Yelp stand-in.
    pub scale: Scale,
    /// Sweep parameters.
    pub sweep: SweepConfig,
    /// Group count for the hash (MD5 stand-in) strategy.
    pub hash_groups: u64,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            scale: Scale::Default,
            sweep: SweepConfig::large_graph(1000, 0xF169),
            hash_groups: 8,
        }
    }
}

impl Fig9Config {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        Fig9Config {
            scale: Scale::Test,
            sweep: SweepConfig {
                budgets: vec![50, 150],
                trials: 12,
                seed: 0xF169,
                threads: crate::runner::default_threads(),
            },
            hash_groups: 8,
        }
    }

    fn algorithms(&self) -> Vec<Algorithm> {
        vec![
            Algorithm::Srw,
            Algorithm::Gnrw(GroupingSpec::ByDegree),
            Algorithm::Gnrw(GroupingSpec::ByHash(self.hash_groups)),
            Algorithm::Gnrw(GroupingSpec::ByAttribute("reviews_count".to_string())),
        ]
    }
}

/// The two panels of Figure 9.
pub struct Fig9Results {
    /// 9a: estimating average degree.
    pub average_degree: ExperimentResult,
    /// 9b: estimating average reviews count.
    pub average_reviews: ExperimentResult,
}

/// Run both panels over one Yelp stand-in snapshot.
pub fn run(config: &Fig9Config) -> Fig9Results {
    let network = Arc::new(yelp_like(config.scale, config.sweep.seed).network);
    let algorithms = config.algorithms();

    let build = |id: &str, title: &str, target: AggregateTarget| {
        let series = error_vs_budget(network.clone(), &algorithms, &target, &config.sweep);
        let mut r =
            ExperimentResult::new(id, title, "Query Cost", "Relative Error").with_note(format!(
                "yelp stand-in: {} nodes, {} edges, attribute `reviews_count`; {} trials/point",
                network.graph.node_count(),
                network.graph.edge_count(),
                config.sweep.trials
            ));
        for s in series {
            r.series.push(s);
        }
        r
    };

    Fig9Results {
        average_degree: build(
            "fig9a",
            "Yelp stand-in: estimate average degree (GNRW strategies)",
            AggregateTarget::AverageDegree,
        ),
        average_reviews: build(
            "fig9b",
            "Yelp stand-in: estimate average reviews count (GNRW strategies)",
            AggregateTarget::AttributeMean("reviews_count".to_string()),
        ),
    }
}

/// The "equal wall-clock" arm of the plan ablation: scratch GNRW vs
/// plan-backed (alias-mode) GNRW over the same yelp stand-in, where each arm
/// is granted the number of steps *it* completes in the same wall-clock
/// window rather than the same step count. Throughput is calibrated with one
/// warm timed walk per arm; the plan arm's step allowance at each point is
/// scaled by the measured rate ratio, so the y values answer the operational
/// question: at a fixed time budget, which execution path estimates better?
///
/// Reported as NRMSE (root-mean-square of the per-trial relative errors) of
/// the average-degree estimate. `base_steps` are the scratch arm's step
/// allowances (the x axis is the implied wall-clock per point).
pub fn plan_equal_walltime(config: &Fig9Config, base_steps: &[usize]) -> ExperimentResult {
    let network = Arc::new(yelp_like(config.scale, config.sweep.seed).network);
    let alg = Algorithm::Gnrw(GroupingSpec::ByDegree);
    let plan = Arc::new(alg.build_group_plan(&network).expect("GNRW has a plan"));
    let truth = network.graph.average_degree();

    let scratch_arm = TrialPlan::new(network.clone());
    let alias_arm =
        TrialPlan::new(network.clone()).with_group_plan(Arc::clone(&plan), PlanMode::Alias);

    // One warm run to settle allocations/caches, then one timed run.
    let calibrate = |arm: &TrialPlan| {
        let steps = base_steps.iter().copied().max().unwrap_or(1_000).max(1_000);
        let _ = arm
            .clone()
            .with_max_steps(steps.min(2_000))
            .run(&alg, config.sweep.seed);
        let started = Instant::now();
        let _ = arm
            .clone()
            .with_max_steps(steps)
            .run(&alg, config.sweep.seed);
        steps as f64 / started.elapsed().as_secs_f64().max(1e-9)
    };
    let scratch_rate = calibrate(&scratch_arm);
    let alias_rate = calibrate(&alias_arm);

    let nrmse = |arm: &TrialPlan, steps: usize, salt: u64| {
        let arm = arm.clone().with_max_steps(steps.max(1));
        let errors = parallel_map(config.sweep.trials, config.sweep.threads, |t| {
            let trace = arm.run(&alg, trial_seed(config.sweep.seed ^ salt, t as u64));
            let mut est = RatioEstimator::new();
            for &v in trace.nodes() {
                est.push(
                    arm.network.graph.degree(v) as f64,
                    arm.network.graph.degree(v),
                );
            }
            est.mean().map(|e| relative_error(e, truth)).unwrap_or(1.0)
        });
        (errors.iter().map(|e| e * e).sum::<f64>() / errors.len() as f64).sqrt()
    };

    let mut xs = Vec::new();
    let mut scratch_y = Vec::new();
    let mut alias_y = Vec::new();
    let mut alias_steps_used = Vec::new();
    for (i, &base) in base_steps.iter().enumerate() {
        let wall_secs = base as f64 / scratch_rate;
        let alias_steps = ((wall_secs * alias_rate).round() as usize).max(1);
        xs.push(wall_secs * 1e3);
        scratch_y.push(nrmse(&scratch_arm, base, i as u64));
        alias_y.push(nrmse(&alias_arm, alias_steps, i as u64));
        alias_steps_used.push(alias_steps);
    }

    let mut r = ExperimentResult::new(
        "fig9c",
        "Yelp stand-in: scratch vs plan-backed GNRW at equal wall-clock",
        "Wall-clock budget (ms)",
        "NRMSE (average degree)",
    )
    .with_note(format!(
        "calibrated throughput: scratch {scratch_rate:.0} steps/s, plan+alias \
         {alias_rate:.0} steps/s; scratch steps per point: {base_steps:?}; \
         plan steps per point: {alias_steps_used:?}"
    ));
    r.series
        .push(Series::new("GNRW_By_Degree/scratch", xs.clone(), scratch_y));
    r.series
        .push(Series::new("GNRW_By_Degree/plan", xs, alias_y));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_four_strategies_per_panel() {
        let r = run(&Fig9Config::quick());
        assert_eq!(r.average_degree.series.len(), 4);
        assert_eq!(r.average_reviews.series.len(), 4);
        let labels: Vec<&str> = r
            .average_degree
            .series
            .iter()
            .map(|s| s.label.as_str())
            .collect();
        assert!(labels.contains(&"SRW"));
        assert!(labels.contains(&"GNRW_By_Degree"));
        assert!(labels.contains(&"GNRW_By_MD5"));
        assert!(labels.contains(&"GNRW_By_reviews_count"));
    }

    #[test]
    fn equal_walltime_arm_compares_both_paths() {
        let r = plan_equal_walltime(&Fig9Config::quick(), &[300, 900]);
        assert_eq!(r.id, "fig9c");
        assert_eq!(r.series.len(), 2);
        let labels: Vec<&str> = r.series.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"GNRW_By_Degree/scratch"));
        assert!(labels.contains(&"GNRW_By_Degree/plan"));
        for s in &r.series {
            assert_eq!(s.len(), 2);
            assert!(
                s.y.iter().all(|y| y.is_finite() && *y >= 0.0),
                "{}: {:?}",
                s.label,
                s.y
            );
            assert!(s.x.iter().all(|x| *x > 0.0));
        }
        // The calibration note records both arms' throughput and step grants.
        assert!(r.notes.iter().any(|n| n.contains("plan steps per point")));
    }

    #[test]
    fn errors_are_bounded() {
        let r = run(&Fig9Config::quick());
        for panel in [&r.average_degree, &r.average_reviews] {
            for s in &panel.series {
                for &y in &s.y {
                    assert!(y.is_finite() && y >= 0.0, "{}: {y}", s.label);
                }
            }
        }
    }
}
