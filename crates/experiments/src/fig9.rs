//! Figure 9 — Yelp: GNRW grouping strategies vs SRW, for two aggregates.
//!
//! The design-space study of §4.1: grouping by the attribute you intend to
//! aggregate should win *that* aggregate. Panel (a) estimates average
//! degree; panel (b) estimates average `reviews_count`.
//!
//! Measured outcome (see EXPERIMENTS.md): all GNRW variants beat SRW at
//! moderate-to-large budgets, and `GNRW_By_Degree` does win the degree
//! aggregate; on the reviews panel the aligned strategy is among the best
//! but within noise of hash grouping at our stand-in's scale — the
//! attribute's neighborhood-level variation is tied to degree and
//! community, so the strategies overlap.

use std::sync::Arc;

use osn_datasets::{yelp_like, Scale};

use crate::algorithms::{Algorithm, GroupingSpec};
use crate::output::ExperimentResult;
use crate::sweeps::{error_vs_budget, AggregateTarget, SweepConfig};

/// Configuration for the Figure 9 reproduction.
#[derive(Clone, Debug)]
pub struct Fig9Config {
    /// Dataset scale for the Yelp stand-in.
    pub scale: Scale,
    /// Sweep parameters.
    pub sweep: SweepConfig,
    /// Group count for the hash (MD5 stand-in) strategy.
    pub hash_groups: u64,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            scale: Scale::Default,
            sweep: SweepConfig::large_graph(1000, 0xF169),
            hash_groups: 8,
        }
    }
}

impl Fig9Config {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        Fig9Config {
            scale: Scale::Test,
            sweep: SweepConfig {
                budgets: vec![50, 150],
                trials: 12,
                seed: 0xF169,
                threads: crate::runner::default_threads(),
            },
            hash_groups: 8,
        }
    }

    fn algorithms(&self) -> Vec<Algorithm> {
        vec![
            Algorithm::Srw,
            Algorithm::Gnrw(GroupingSpec::ByDegree),
            Algorithm::Gnrw(GroupingSpec::ByHash(self.hash_groups)),
            Algorithm::Gnrw(GroupingSpec::ByAttribute("reviews_count".to_string())),
        ]
    }
}

/// The two panels of Figure 9.
pub struct Fig9Results {
    /// 9a: estimating average degree.
    pub average_degree: ExperimentResult,
    /// 9b: estimating average reviews count.
    pub average_reviews: ExperimentResult,
}

/// Run both panels over one Yelp stand-in snapshot.
pub fn run(config: &Fig9Config) -> Fig9Results {
    let network = Arc::new(yelp_like(config.scale, config.sweep.seed).network);
    let algorithms = config.algorithms();

    let build = |id: &str, title: &str, target: AggregateTarget| {
        let series = error_vs_budget(network.clone(), &algorithms, &target, &config.sweep);
        let mut r =
            ExperimentResult::new(id, title, "Query Cost", "Relative Error").with_note(format!(
                "yelp stand-in: {} nodes, {} edges, attribute `reviews_count`; {} trials/point",
                network.graph.node_count(),
                network.graph.edge_count(),
                config.sweep.trials
            ));
        for s in series {
            r.series.push(s);
        }
        r
    };

    Fig9Results {
        average_degree: build(
            "fig9a",
            "Yelp stand-in: estimate average degree (GNRW strategies)",
            AggregateTarget::AverageDegree,
        ),
        average_reviews: build(
            "fig9b",
            "Yelp stand-in: estimate average reviews count (GNRW strategies)",
            AggregateTarget::AttributeMean("reviews_count".to_string()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_four_strategies_per_panel() {
        let r = run(&Fig9Config::quick());
        assert_eq!(r.average_degree.series.len(), 4);
        assert_eq!(r.average_reviews.series.len(), 4);
        let labels: Vec<&str> = r
            .average_degree
            .series
            .iter()
            .map(|s| s.label.as_str())
            .collect();
        assert!(labels.contains(&"SRW"));
        assert!(labels.contains(&"GNRW_By_Degree"));
        assert!(labels.contains(&"GNRW_By_MD5"));
        assert!(labels.contains(&"GNRW_By_reviews_count"));
    }

    #[test]
    fn errors_are_bounded() {
        let r = run(&Fig9Config::quick());
        for panel in [&r.average_degree, &r.average_reviews] {
            for s in &panel.series {
                for &y in &s.y {
                    assert!(y.is_finite() && y >= 0.0, "{}: {y}", s.label);
                }
            }
        }
    }
}
