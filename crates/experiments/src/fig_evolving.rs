//! Evolving-graph figure: **delta-corrected continuation vs
//! restart-from-scratch** on a mutating network.
//!
//! The paper samples a *static* snapshot; real OSNs mutate under the
//! sampler. This experiment drives a seeded
//! [`osn_graph::MutationSchedule`] against the Google Plus stand-in and
//! compares two ways of keeping an average-degree estimate current:
//!
//! * **delta** — one continuous CNRW walk over the
//!   [`osn_client::SimulatedOsn`] delta overlay. After each mutation epoch
//!   the walker drops the circulation state of touched nodes
//!   ([`osn_walks::RandomWalk::invalidate_node`] — Theorem 4's exactly-once
//!   coverage restarts on the new neighborhood) and the
//!   [`osn_estimate::DeltaCorrectedEstimator`] re-weights the touched
//!   nodes' past samples to their new degrees instead of discarding them.
//!   The query cache persists: only mutated endpoints re-charge.
//! * **restart** — the honest baseline: every epoch throws the walk,
//!   estimator, *and cache* away and starts a fresh walk over the current
//!   graph, re-paying the query budget from zero.
//!
//! Both arms see the identical mutation stream and walk the same number of
//! steps per epoch; the figure reports per-epoch relative error against
//! the live ground truth (the rebuilt graph's true average degree) and the
//! cumulative charged unique queries. The acceptance bar — pinned by this
//! module's test — is that the delta arm tracks the mutating truth at
//! **no more than half** the restart arm's queries.

use osn_client::{OsnClient, SimulatedOsn};
use osn_datasets::{gplus_like, Scale};
use osn_estimate::DeltaCorrectedEstimator;
use osn_graph::{MutationSchedule, NodeId, ScheduleSpec};
use osn_walks::{Cnrw, RandomWalk};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::output::{ExperimentResult, Series};

/// Configuration for the evolving-graph figure.
#[derive(Clone, Debug)]
pub struct FigEvolvingConfig {
    /// Dataset scale for the Google Plus stand-in.
    pub scale: Scale,
    /// Mutation epochs (schedule drains once per epoch).
    pub epochs: usize,
    /// Edge mutations per epoch.
    pub mutations_per_epoch: usize,
    /// Fraction of mutations that delete (vs insert) an edge.
    pub delete_fraction: f64,
    /// Walk steps both arms take per epoch.
    pub steps_per_epoch: usize,
    /// Experiment seed (graph, schedule, and walk streams derive from it).
    pub seed: u64,
}

impl Default for FigEvolvingConfig {
    fn default() -> Self {
        FigEvolvingConfig {
            scale: Scale::Default,
            epochs: 12,
            mutations_per_epoch: 400,
            delete_fraction: 0.45,
            steps_per_epoch: 4_000,
            seed: 0xE701_5EED,
        }
    }
}

impl FigEvolvingConfig {
    /// Reduced profile for CI and quick runs.
    pub fn quick() -> Self {
        FigEvolvingConfig {
            scale: Scale::Test,
            epochs: 6,
            mutations_per_epoch: 60,
            delete_fraction: 0.45,
            steps_per_epoch: 1_200,
            seed: 0xE701_5EED,
        }
    }
}

/// Per-epoch measurements of one arm.
struct ArmTrack {
    /// Relative error of the arm's estimate vs the live true average
    /// degree, one entry per epoch.
    errors: Vec<f64>,
    /// Cumulative charged unique queries after each epoch.
    queries: Vec<f64>,
}

/// True average degree of the client's **current** (base + overlay) graph.
fn live_truth(client: &SimulatedOsn) -> f64 {
    let g = client.rebuilt_graph();
    2.0 * g.edge_count() as f64 / g.node_count() as f64
}

/// The delta arm: one continuous walk, invalidation + estimator
/// corrections at each epoch boundary, cache kept.
fn run_delta(
    base: &SimulatedOsn,
    schedule: &MutationSchedule,
    config: &FigEvolvingConfig,
) -> ArmTrack {
    let mut client = base.clone();
    let mut schedule = schedule.clone();
    let mut walker = Cnrw::new(NodeId(0));
    let mut rng = ChaCha12Rng::seed_from_u64(config.seed ^ 0xDE17A);
    let mut est = DeltaCorrectedEstimator::new();
    let mut errors = Vec::with_capacity(config.epochs);
    let mut queries = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        for _ in 0..config.steps_per_epoch {
            let v = walker.step(&mut client, &mut rng).expect("no budget");
            let k = client.peek_degree(v);
            est.push(v, k as f64, k);
        }
        let due = schedule.due((epoch + 1) as f64).to_vec();
        let touched = client.apply_mutations(&due);
        for &v in &touched {
            walker.invalidate_node(v);
            let k = client.peek_degree(v);
            est.apply_degree_delta(v, k as f64, k);
        }
        let truth = live_truth(&client);
        let mean = est.mean().expect("samples recorded");
        errors.push((mean - truth).abs() / truth);
        queries.push(client.stats().unique as f64);
    }
    ArmTrack { errors, queries }
}

/// The restart arm: per epoch, a fresh walk + estimator + accounting over
/// the current graph — every query re-charges.
fn run_restart(
    base: &SimulatedOsn,
    schedule: &MutationSchedule,
    config: &FigEvolvingConfig,
) -> ArmTrack {
    let mut client = base.clone();
    let mut schedule = schedule.clone();
    let mut errors = Vec::with_capacity(config.epochs);
    let mut queries = Vec::with_capacity(config.epochs);
    let mut cumulative = 0u64;
    for epoch in 0..config.epochs {
        client.reset(); // discard the cache: restart re-pays its budget
        let mut walker = Cnrw::new(NodeId(0));
        let mut rng = ChaCha12Rng::seed_from_u64(config.seed ^ 0x2E57A27 ^ (epoch as u64) << 32);
        let mut est = osn_estimate::RatioEstimator::new();
        for _ in 0..config.steps_per_epoch {
            let v = walker.step(&mut client, &mut rng).expect("no budget");
            let k = client.peek_degree(v);
            est.push(k as f64, k);
        }
        cumulative += client.stats().unique;
        let due = schedule.due((epoch + 1) as f64).to_vec();
        client.apply_mutations(&due);
        // The estimate was collected on the pre-mutation epoch graph; it
        // goes stale the moment the epoch's mutations land — exactly the
        // staleness the error is measured against.
        let truth = live_truth(&client);
        let mean = est.mean().expect("samples recorded");
        errors.push((mean - truth).abs() / truth);
        queries.push(cumulative as f64);
    }
    ArmTrack { errors, queries }
}

/// Run the evolving-graph comparison.
pub fn run(config: &FigEvolvingConfig) -> ExperimentResult {
    let dataset = gplus_like(config.scale, config.seed);
    let base = SimulatedOsn::new(dataset.network);
    let spec = ScheduleSpec::new(
        config.epochs * config.mutations_per_epoch,
        config.epochs as f64,
        config.seed ^ 0x5C4ED,
    )
    .with_delete_fraction(config.delete_fraction);
    let schedule = MutationSchedule::generate(base.graph(), &spec);

    let delta = run_delta(&base, &schedule, config);
    let restart = run_restart(&base, &schedule, config);

    let epochs_x: Vec<f64> = (1..=config.epochs).map(|e| e as f64).collect();
    let delta_total = *delta.queries.last().expect("epochs > 0");
    let restart_total = *restart.queries.last().expect("epochs > 0");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    ExperimentResult::new(
        "fig_evolving",
        format!(
            "Evolving {}: delta-corrected continuation vs restart-from-scratch ({} epochs × {} mutations)",
            dataset.name, config.epochs, config.mutations_per_epoch
        ),
        "epoch",
        "avg-degree relative error / cumulative unique queries",
    )
    .with_series(Series::new("delta error", epochs_x.clone(), delta.errors.clone()))
    .with_series(Series::new("restart error", epochs_x.clone(), restart.errors.clone()))
    .with_series(Series::new("delta queries", epochs_x.clone(), delta.queries.clone()))
    .with_series(Series::new("restart queries", epochs_x, restart.queries.clone()))
    .with_note(format!(
        "total queries: delta {delta_total:.0} vs restart {restart_total:.0} ({:.2}x)",
        restart_total / delta_total
    ))
    .with_note(format!(
        "mean relative error: delta {:.4} vs restart {:.4}",
        mean(&delta.errors),
        mean(&restart.errors)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_tracks_at_half_the_queries() {
        let result = run(&FigEvolvingConfig::quick());
        let delta_q = result
            .series_by_label("delta queries")
            .expect("series present");
        let restart_q = result
            .series_by_label("restart queries")
            .expect("series present");
        let (d, r) = (*delta_q.y.last().unwrap(), *restart_q.y.last().unwrap());
        assert!(
            d <= r / 2.0,
            "delta arm must track at ≤ half the queries: delta {d} vs restart {r}"
        );
        // And the savings cannot come from giving up on accuracy: the
        // delta arm's tracking error stays in the same band as the
        // restart baseline's (generous 2x + absolute floor — both arms
        // are a single 1.2k-step walk per epoch at quick scale).
        let delta_e = result.series_by_label("delta error").unwrap();
        let restart_e = result.series_by_label("restart error").unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (de, re) = (mean(&delta_e.y), mean(&restart_e.y));
        assert!(
            de <= (2.0 * re).max(0.15),
            "delta mean error {de:.4} out of band vs restart {re:.4}"
        );
    }
}
